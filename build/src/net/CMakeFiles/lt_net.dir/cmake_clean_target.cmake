file(REMOVE_RECURSE
  "liblt_net.a"
)
