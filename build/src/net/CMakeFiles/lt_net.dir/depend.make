# Empty dependencies file for lt_net.
# This may be replaced when dependencies are built.
