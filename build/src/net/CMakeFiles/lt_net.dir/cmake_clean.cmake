file(REMOVE_RECURSE
  "CMakeFiles/lt_net.dir/client.cc.o"
  "CMakeFiles/lt_net.dir/client.cc.o.d"
  "CMakeFiles/lt_net.dir/server.cc.o"
  "CMakeFiles/lt_net.dir/server.cc.o.d"
  "CMakeFiles/lt_net.dir/socket.cc.o"
  "CMakeFiles/lt_net.dir/socket.cc.o.d"
  "CMakeFiles/lt_net.dir/wire.cc.o"
  "CMakeFiles/lt_net.dir/wire.cc.o.d"
  "liblt_net.a"
  "liblt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
