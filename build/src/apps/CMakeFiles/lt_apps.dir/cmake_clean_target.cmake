file(REMOVE_RECURSE
  "liblt_apps.a"
)
