# Empty dependencies file for lt_apps.
# This may be replaced when dependencies are built.
