file(REMOVE_RECURSE
  "CMakeFiles/lt_apps.dir/aggregator.cc.o"
  "CMakeFiles/lt_apps.dir/aggregator.cc.o.d"
  "CMakeFiles/lt_apps.dir/device_sim.cc.o"
  "CMakeFiles/lt_apps.dir/device_sim.cc.o.d"
  "CMakeFiles/lt_apps.dir/events_grabber.cc.o"
  "CMakeFiles/lt_apps.dir/events_grabber.cc.o.d"
  "CMakeFiles/lt_apps.dir/motion.cc.o"
  "CMakeFiles/lt_apps.dir/motion.cc.o.d"
  "CMakeFiles/lt_apps.dir/motion_grabber.cc.o"
  "CMakeFiles/lt_apps.dir/motion_grabber.cc.o.d"
  "CMakeFiles/lt_apps.dir/usage_grabber.cc.o"
  "CMakeFiles/lt_apps.dir/usage_grabber.cc.o.d"
  "liblt_apps.a"
  "liblt_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
