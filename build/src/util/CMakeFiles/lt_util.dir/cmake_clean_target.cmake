file(REMOVE_RECURSE
  "liblt_util.a"
)
