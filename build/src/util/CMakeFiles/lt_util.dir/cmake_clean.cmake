file(REMOVE_RECURSE
  "CMakeFiles/lt_util.dir/bloom.cc.o"
  "CMakeFiles/lt_util.dir/bloom.cc.o.d"
  "CMakeFiles/lt_util.dir/clock.cc.o"
  "CMakeFiles/lt_util.dir/clock.cc.o.d"
  "CMakeFiles/lt_util.dir/coding.cc.o"
  "CMakeFiles/lt_util.dir/coding.cc.o.d"
  "CMakeFiles/lt_util.dir/crc32c.cc.o"
  "CMakeFiles/lt_util.dir/crc32c.cc.o.d"
  "CMakeFiles/lt_util.dir/histogram.cc.o"
  "CMakeFiles/lt_util.dir/histogram.cc.o.d"
  "CMakeFiles/lt_util.dir/hyperloglog.cc.o"
  "CMakeFiles/lt_util.dir/hyperloglog.cc.o.d"
  "CMakeFiles/lt_util.dir/lzmini.cc.o"
  "CMakeFiles/lt_util.dir/lzmini.cc.o.d"
  "CMakeFiles/lt_util.dir/status.cc.o"
  "CMakeFiles/lt_util.dir/status.cc.o.d"
  "liblt_util.a"
  "liblt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
