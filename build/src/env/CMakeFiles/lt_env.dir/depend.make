# Empty dependencies file for lt_env.
# This may be replaced when dependencies are built.
