file(REMOVE_RECURSE
  "liblt_env.a"
)
