file(REMOVE_RECURSE
  "CMakeFiles/lt_env.dir/mem_env.cc.o"
  "CMakeFiles/lt_env.dir/mem_env.cc.o.d"
  "CMakeFiles/lt_env.dir/posix_env.cc.o"
  "CMakeFiles/lt_env.dir/posix_env.cc.o.d"
  "CMakeFiles/lt_env.dir/sim_disk_env.cc.o"
  "CMakeFiles/lt_env.dir/sim_disk_env.cc.o.d"
  "liblt_env.a"
  "liblt_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
