# Empty compiler generated dependencies file for lt_core.
# This may be replaced when dependencies are built.
