
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/block.cc" "src/core/CMakeFiles/lt_core.dir/block.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/block.cc.o.d"
  "/root/repo/src/core/cursor.cc" "src/core/CMakeFiles/lt_core.dir/cursor.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/cursor.cc.o.d"
  "/root/repo/src/core/db.cc" "src/core/CMakeFiles/lt_core.dir/db.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/db.cc.o.d"
  "/root/repo/src/core/descriptor.cc" "src/core/CMakeFiles/lt_core.dir/descriptor.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/descriptor.cc.o.d"
  "/root/repo/src/core/memtablet.cc" "src/core/CMakeFiles/lt_core.dir/memtablet.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/memtablet.cc.o.d"
  "/root/repo/src/core/merge_policy.cc" "src/core/CMakeFiles/lt_core.dir/merge_policy.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/merge_policy.cc.o.d"
  "/root/repo/src/core/periods.cc" "src/core/CMakeFiles/lt_core.dir/periods.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/periods.cc.o.d"
  "/root/repo/src/core/row_codec.cc" "src/core/CMakeFiles/lt_core.dir/row_codec.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/row_codec.cc.o.d"
  "/root/repo/src/core/schema.cc" "src/core/CMakeFiles/lt_core.dir/schema.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/schema.cc.o.d"
  "/root/repo/src/core/table.cc" "src/core/CMakeFiles/lt_core.dir/table.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/table.cc.o.d"
  "/root/repo/src/core/tablet_reader.cc" "src/core/CMakeFiles/lt_core.dir/tablet_reader.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/tablet_reader.cc.o.d"
  "/root/repo/src/core/tablet_writer.cc" "src/core/CMakeFiles/lt_core.dir/tablet_writer.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/tablet_writer.cc.o.d"
  "/root/repo/src/core/value.cc" "src/core/CMakeFiles/lt_core.dir/value.cc.o" "gcc" "src/core/CMakeFiles/lt_core.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/env/CMakeFiles/lt_env.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
