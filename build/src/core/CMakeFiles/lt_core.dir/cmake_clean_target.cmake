file(REMOVE_RECURSE
  "liblt_core.a"
)
