file(REMOVE_RECURSE
  "CMakeFiles/lt_core.dir/block.cc.o"
  "CMakeFiles/lt_core.dir/block.cc.o.d"
  "CMakeFiles/lt_core.dir/cursor.cc.o"
  "CMakeFiles/lt_core.dir/cursor.cc.o.d"
  "CMakeFiles/lt_core.dir/db.cc.o"
  "CMakeFiles/lt_core.dir/db.cc.o.d"
  "CMakeFiles/lt_core.dir/descriptor.cc.o"
  "CMakeFiles/lt_core.dir/descriptor.cc.o.d"
  "CMakeFiles/lt_core.dir/memtablet.cc.o"
  "CMakeFiles/lt_core.dir/memtablet.cc.o.d"
  "CMakeFiles/lt_core.dir/merge_policy.cc.o"
  "CMakeFiles/lt_core.dir/merge_policy.cc.o.d"
  "CMakeFiles/lt_core.dir/periods.cc.o"
  "CMakeFiles/lt_core.dir/periods.cc.o.d"
  "CMakeFiles/lt_core.dir/row_codec.cc.o"
  "CMakeFiles/lt_core.dir/row_codec.cc.o.d"
  "CMakeFiles/lt_core.dir/schema.cc.o"
  "CMakeFiles/lt_core.dir/schema.cc.o.d"
  "CMakeFiles/lt_core.dir/table.cc.o"
  "CMakeFiles/lt_core.dir/table.cc.o.d"
  "CMakeFiles/lt_core.dir/tablet_reader.cc.o"
  "CMakeFiles/lt_core.dir/tablet_reader.cc.o.d"
  "CMakeFiles/lt_core.dir/tablet_writer.cc.o"
  "CMakeFiles/lt_core.dir/tablet_writer.cc.o.d"
  "CMakeFiles/lt_core.dir/value.cc.o"
  "CMakeFiles/lt_core.dir/value.cc.o.d"
  "liblt_core.a"
  "liblt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
