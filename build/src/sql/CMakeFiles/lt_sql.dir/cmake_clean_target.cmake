file(REMOVE_RECURSE
  "liblt_sql.a"
)
