file(REMOVE_RECURSE
  "CMakeFiles/lt_sql.dir/backend.cc.o"
  "CMakeFiles/lt_sql.dir/backend.cc.o.d"
  "CMakeFiles/lt_sql.dir/executor.cc.o"
  "CMakeFiles/lt_sql.dir/executor.cc.o.d"
  "CMakeFiles/lt_sql.dir/lexer.cc.o"
  "CMakeFiles/lt_sql.dir/lexer.cc.o.d"
  "CMakeFiles/lt_sql.dir/parser.cc.o"
  "CMakeFiles/lt_sql.dir/parser.cc.o.d"
  "liblt_sql.a"
  "liblt_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
