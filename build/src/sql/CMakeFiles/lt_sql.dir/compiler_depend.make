# Empty compiler generated dependencies file for lt_sql.
# This may be replaced when dependencies are built.
