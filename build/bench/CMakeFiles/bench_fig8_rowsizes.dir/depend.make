# Empty dependencies file for bench_fig8_rowsizes.
# This may be replaced when dependencies are built.
