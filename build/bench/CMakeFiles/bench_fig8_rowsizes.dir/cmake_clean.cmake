file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_rowsizes.dir/bench_fig8_rowsizes.cc.o"
  "CMakeFiles/bench_fig8_rowsizes.dir/bench_fig8_rowsizes.cc.o.d"
  "bench_fig8_rowsizes"
  "bench_fig8_rowsizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_rowsizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
