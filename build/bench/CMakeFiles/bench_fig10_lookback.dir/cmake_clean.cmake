file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_lookback.dir/bench_fig10_lookback.cc.o"
  "CMakeFiles/bench_fig10_lookback.dir/bench_fig10_lookback.cc.o.d"
  "bench_fig10_lookback"
  "bench_fig10_lookback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_lookback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
