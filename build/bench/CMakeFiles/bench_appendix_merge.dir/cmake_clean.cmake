file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_merge.dir/bench_appendix_merge.cc.o"
  "CMakeFiles/bench_appendix_merge.dir/bench_appendix_merge.cc.o.d"
  "bench_appendix_merge"
  "bench_appendix_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
