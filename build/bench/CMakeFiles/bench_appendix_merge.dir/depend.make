# Empty dependencies file for bench_appendix_merge.
# This may be replaced when dependencies are built.
