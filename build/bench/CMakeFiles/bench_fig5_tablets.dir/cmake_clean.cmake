file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_tablets.dir/bench_fig5_tablets.cc.o"
  "CMakeFiles/bench_fig5_tablets.dir/bench_fig5_tablets.cc.o.d"
  "bench_fig5_tablets"
  "bench_fig5_tablets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_tablets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
