# Empty compiler generated dependencies file for lt_bench_util.
# This may be replaced when dependencies are built.
