file(REMOVE_RECURSE
  "CMakeFiles/lt_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/lt_bench_util.dir/bench_util.cc.o.d"
  "liblt_bench_util.a"
  "liblt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
