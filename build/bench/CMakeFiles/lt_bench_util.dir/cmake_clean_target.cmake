file(REMOVE_RECURSE
  "liblt_bench_util.a"
)
