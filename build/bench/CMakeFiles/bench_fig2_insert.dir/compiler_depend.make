# Empty compiler generated dependencies file for bench_fig2_insert.
# This may be replaced when dependencies are built.
