file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_insert.dir/bench_fig2_insert.cc.o"
  "CMakeFiles/bench_fig2_insert.dir/bench_fig2_insert.cc.o.d"
  "bench_fig2_insert"
  "bench_fig2_insert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_insert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
