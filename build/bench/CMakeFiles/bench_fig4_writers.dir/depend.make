# Empty dependencies file for bench_fig4_writers.
# This may be replaced when dependencies are built.
