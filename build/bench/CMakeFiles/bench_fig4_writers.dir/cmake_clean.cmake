file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_writers.dir/bench_fig4_writers.cc.o"
  "CMakeFiles/bench_fig4_writers.dir/bench_fig4_writers.cc.o.d"
  "bench_fig4_writers"
  "bench_fig4_writers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_writers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
