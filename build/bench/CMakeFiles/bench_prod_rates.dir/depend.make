# Empty dependencies file for bench_prod_rates.
# This may be replaced when dependencies are built.
