file(REMOVE_RECURSE
  "CMakeFiles/bench_prod_rates.dir/bench_prod_rates.cc.o"
  "CMakeFiles/bench_prod_rates.dir/bench_prod_rates.cc.o.d"
  "bench_prod_rates"
  "bench_prod_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prod_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
