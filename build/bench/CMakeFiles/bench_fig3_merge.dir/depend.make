# Empty dependencies file for bench_fig3_merge.
# This may be replaced when dependencies are built.
