file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_merge.dir/bench_fig3_merge.cc.o"
  "CMakeFiles/bench_fig3_merge.dir/bench_fig3_merge.cc.o.d"
  "bench_fig3_merge"
  "bench_fig3_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
