file(REMOVE_RECURSE
  "CMakeFiles/motion_search.dir/motion_search.cpp.o"
  "CMakeFiles/motion_search.dir/motion_search.cpp.o.d"
  "motion_search"
  "motion_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motion_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
