# Empty dependencies file for motion_search.
# This may be replaced when dependencies are built.
