file(REMOVE_RECURSE
  "CMakeFiles/littletable_shell.dir/littletable_shell.cpp.o"
  "CMakeFiles/littletable_shell.dir/littletable_shell.cpp.o.d"
  "littletable_shell"
  "littletable_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/littletable_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
