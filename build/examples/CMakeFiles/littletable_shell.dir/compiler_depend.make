# Empty compiler generated dependencies file for littletable_shell.
# This may be replaced when dependencies are built.
