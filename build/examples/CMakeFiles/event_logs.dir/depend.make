# Empty dependencies file for event_logs.
# This may be replaced when dependencies are built.
