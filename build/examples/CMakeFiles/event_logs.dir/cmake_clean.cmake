file(REMOVE_RECURSE
  "CMakeFiles/event_logs.dir/event_logs.cpp.o"
  "CMakeFiles/event_logs.dir/event_logs.cpp.o.d"
  "event_logs"
  "event_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
