# Empty compiler generated dependencies file for network_usage.
# This may be replaced when dependencies are built.
