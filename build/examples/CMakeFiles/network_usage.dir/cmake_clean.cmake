file(REMOVE_RECURSE
  "CMakeFiles/network_usage.dir/network_usage.cpp.o"
  "CMakeFiles/network_usage.dir/network_usage.cpp.o.d"
  "network_usage"
  "network_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
