file(REMOVE_RECURSE
  "CMakeFiles/periods_merge_test.dir/periods_merge_test.cc.o"
  "CMakeFiles/periods_merge_test.dir/periods_merge_test.cc.o.d"
  "periods_merge_test"
  "periods_merge_test.pdb"
  "periods_merge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periods_merge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
