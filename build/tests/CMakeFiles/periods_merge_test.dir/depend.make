# Empty dependencies file for periods_merge_test.
# This may be replaced when dependencies are built.
