# Empty compiler generated dependencies file for lzmini_test.
# This may be replaced when dependencies are built.
