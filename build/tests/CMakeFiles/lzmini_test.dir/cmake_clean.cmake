file(REMOVE_RECURSE
  "CMakeFiles/lzmini_test.dir/lzmini_test.cc.o"
  "CMakeFiles/lzmini_test.dir/lzmini_test.cc.o.d"
  "lzmini_test"
  "lzmini_test.pdb"
  "lzmini_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lzmini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
