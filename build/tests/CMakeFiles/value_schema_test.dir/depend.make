# Empty dependencies file for value_schema_test.
# This may be replaced when dependencies are built.
