# Empty compiler generated dependencies file for bloom_hll_test.
# This may be replaced when dependencies are built.
