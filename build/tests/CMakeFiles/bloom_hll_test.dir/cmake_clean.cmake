file(REMOVE_RECURSE
  "CMakeFiles/bloom_hll_test.dir/bloom_hll_test.cc.o"
  "CMakeFiles/bloom_hll_test.dir/bloom_hll_test.cc.o.d"
  "bloom_hll_test"
  "bloom_hll_test.pdb"
  "bloom_hll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_hll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
