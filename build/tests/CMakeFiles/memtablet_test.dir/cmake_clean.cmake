file(REMOVE_RECURSE
  "CMakeFiles/memtablet_test.dir/memtablet_test.cc.o"
  "CMakeFiles/memtablet_test.dir/memtablet_test.cc.o.d"
  "memtablet_test"
  "memtablet_test.pdb"
  "memtablet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtablet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
