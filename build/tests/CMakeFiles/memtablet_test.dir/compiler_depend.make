# Empty compiler generated dependencies file for memtablet_test.
# This may be replaced when dependencies are built.
