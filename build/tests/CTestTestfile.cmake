# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/lzmini_test[1]_include.cmake")
include("/root/repo/build/tests/bloom_hll_test[1]_include.cmake")
include("/root/repo/build/tests/env_test[1]_include.cmake")
include("/root/repo/build/tests/value_schema_test[1]_include.cmake")
include("/root/repo/build/tests/tablet_test[1]_include.cmake")
include("/root/repo/build/tests/periods_merge_test[1]_include.cmake")
include("/root/repo/build/tests/memtablet_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
