// Env: the filesystem abstraction behind the storage engine.
//
// Everything the engine does to stable storage goes through an Env, which
// lets the same code run against the real filesystem (PosixEnv), an
// in-memory store with crash simulation (MemEnv), or a seek/throughput model
// of a spinning disk (SimDiskEnv). The engine relies on two POSIX-grade
// guarantees: RenameFile is atomic (table descriptors, §3.2) and appends to a
// WritableFile become visible in order.
#ifndef LITTLETABLE_ENV_ENV_H_
#define LITTLETABLE_ENV_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lt {

/// A file being read from front to back.
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;
  /// Reads up to n bytes. `*result` points into `scratch` (or an internal
  /// buffer) and is empty at EOF.
  virtual Status Read(size_t n, Slice* result, char* scratch) = 0;
  virtual Status Skip(uint64_t n) = 0;
};

/// A file supporting positional reads from multiple threads.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;
  /// Reads up to n bytes at `offset`. Short reads at EOF are not an error.
  virtual Status Read(uint64_t offset, size_t n, Slice* result,
                      char* scratch) const = 0;
  virtual Status Size(uint64_t* size) const = 0;
};

/// A file being written by appending.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(const Slice& data) = 0;
  /// Flushes application and OS buffers to the device.
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// Filesystem interface.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewSequentialFile(const std::string& fname,
                                   std::unique_ptr<SequentialFile>* result) = 0;
  virtual Status NewRandomAccessFile(
      const std::string& fname, std::unique_ptr<RandomAccessFile>* result) = 0;
  virtual Status NewWritableFile(const std::string& fname,
                                 std::unique_ptr<WritableFile>* result) = 0;

  virtual bool FileExists(const std::string& fname) = 0;
  virtual Status GetFileSize(const std::string& fname, uint64_t* size) = 0;
  virtual Status RemoveFile(const std::string& fname) = 0;
  /// Atomic replace, per POSIX rename(2).
  virtual Status RenameFile(const std::string& src,
                            const std::string& dst) = 0;
  virtual Status CreateDirIfMissing(const std::string& dirname) = 0;
  /// Lists immediate children of `dirname` (names only, no paths).
  virtual Status GetChildren(const std::string& dirname,
                             std::vector<std::string>* result) = 0;

  /// The real-filesystem Env (process-wide singleton).
  static Env* Default();
};

/// Reads an entire file into `*data`.
Status ReadFileToString(Env* env, const std::string& fname, std::string* data);

/// Writes `data` to `fname` (replacing it), optionally syncing.
Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync);

}  // namespace lt

#endif  // LITTLETABLE_ENV_ENV_H_
