#include "env/mem_env.h"

#include <algorithm>
#include <cstring>

namespace lt {
namespace {

std::string DirPrefix(const std::string& dirname) {
  if (!dirname.empty() && dirname.back() == '/') return dirname;
  return dirname + "/";
}

}  // namespace

class MemSequentialFile final : public SequentialFile {
 public:
  MemSequentialFile(MemEnv* env, MemEnv::FileRef file)
      : env_(env), file_(std::move(file)) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (env_->ConsumeReadFault()) return Status::IOError("injected read fault");
    std::lock_guard<std::mutex> lock(file_->mu);
    if (pos_ >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t take = std::min(n, file_->data.size() - pos_);
    memcpy(scratch, file_->data.data() + pos_, take);
    *result = Slice(scratch, take);
    pos_ += take;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return Status::OK();
  }

 private:
  MemEnv* const env_;
  MemEnv::FileRef file_;
  size_t pos_ = 0;
};

class MemRandomAccessFile final : public RandomAccessFile {
 public:
  MemRandomAccessFile(MemEnv* env, MemEnv::FileRef file)
      : env_(env), file_(std::move(file)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (env_->ConsumeReadFault()) return Status::IOError("injected read fault");
    std::lock_guard<std::mutex> lock(file_->mu);
    if (offset >= file_->data.size()) {
      *result = Slice();
      return Status::OK();
    }
    size_t take =
        std::min(n, file_->data.size() - static_cast<size_t>(offset));
    memcpy(scratch, file_->data.data() + offset, take);
    *result = Slice(scratch, take);
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    std::lock_guard<std::mutex> lock(file_->mu);
    *size = file_->data.size();
    return Status::OK();
  }

 private:
  MemEnv* const env_;
  MemEnv::FileRef file_;
};

class MemWritableFile final : public WritableFile {
 public:
  MemWritableFile(MemEnv* env, MemEnv::FileRef file)
      : env_(env), file_(std::move(file)) {}

  Status Append(const Slice& data) override {
    if (env_->ConsumeWriteFault()) {
      return Status::IOError("injected write fault");
    }
    std::lock_guard<std::mutex> lock(file_->mu);
    file_->data.append(data.data(), data.size());
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(file_->mu);
    file_->synced = file_->data.size();
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  MemEnv* const env_;
  MemEnv::FileRef file_;
};

Status MemEnv::NewSequentialFile(const std::string& fname,
                                 std::unique_ptr<SequentialFile>* result) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  result->reset(new MemSequentialFile(this, it->second));
  return Status::OK();
}

Status MemEnv::NewRandomAccessFile(const std::string& fname,
                                   std::unique_ptr<RandomAccessFile>* result) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  result->reset(new MemRandomAccessFile(this, it->second));
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& fname,
                               std::unique_ptr<WritableFile>* result) {
  std::lock_guard<std::mutex> lock(mu_);
  auto file = std::make_shared<FileState>();
  files_[fname] = file;
  result->reset(new MemWritableFile(this, std::move(file)));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.find(fname) != files_.end();
}

Status MemEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(fname);
  if (it == files_.end()) return Status::NotFound(fname);
  std::lock_guard<std::mutex> flock(it->second->mu);
  *size = it->second->data.size();
  return Status::OK();
}

Status MemEnv::RemoveFile(const std::string& fname) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(fname) == 0) return Status::NotFound(fname);
  return Status::OK();
}

Status MemEnv::RenameFile(const std::string& src, const std::string& dst) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(src);
  if (it == files_.end()) return Status::NotFound(src);
  files_[dst] = it->second;
  files_.erase(it);
  return Status::OK();
}

Status MemEnv::CreateDirIfMissing(const std::string& dirname) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_.insert(DirPrefix(dirname));
  return Status::OK();
}

Status MemEnv::GetChildren(const std::string& dirname,
                           std::vector<std::string>* result) {
  result->clear();
  std::lock_guard<std::mutex> lock(mu_);
  const std::string prefix = DirPrefix(dirname);
  std::set<std::string> names;
  for (const auto& [name, state] : files_) {
    if (name.size() > prefix.size() &&
        name.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = name.substr(prefix.size());
      // Files directly inside the directory, plus the first path component
      // of deeper files (i.e. subdirectory names).
      size_t slash = rest.find('/');
      if (slash != std::string::npos) rest.resize(slash);
      names.insert(std::move(rest));
    }
  }
  for (const std::string& dir : dirs_) {
    if (dir.size() > prefix.size() &&
        dir.compare(0, prefix.size(), prefix) == 0) {
      std::string rest = dir.substr(prefix.size());
      if (!rest.empty() && rest.back() == '/') rest.pop_back();
      size_t slash = rest.find('/');
      if (slash != std::string::npos) rest.resize(slash);
      if (!rest.empty()) names.insert(std::move(rest));
    }
  }
  result->assign(names.begin(), names.end());
  return Status::OK();
}

void MemEnv::DropUnsynced() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = files_.begin(); it != files_.end();) {
    std::unique_lock<std::mutex> flock(it->second->mu);
    if (it->second->synced == 0) {
      flock.unlock();
      it = files_.erase(it);
    } else {
      it->second->data.resize(it->second->synced);
      ++it;
    }
  }
}

Status MemEnv::CorruptFile(const std::string& fname, uint64_t offset,
                           uint8_t mask) {
  FileRef file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::NotFound(fname);
    file = it->second;
  }
  std::lock_guard<std::mutex> flock(file->mu);
  if (offset >= file->data.size()) {
    return Status::InvalidArgument("corrupt offset past EOF");
  }
  file->data[offset] = static_cast<char>(file->data[offset] ^ mask);
  return Status::OK();
}

Status MemEnv::TruncateFile(const std::string& fname, uint64_t size) {
  FileRef file;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(fname);
    if (it == files_.end()) return Status::NotFound(fname);
    file = it->second;
  }
  std::lock_guard<std::mutex> flock(file->mu);
  if (size > file->data.size()) {
    return Status::InvalidArgument("truncate size past EOF");
  }
  file->data.resize(size);
  file->synced = std::min(file->synced, static_cast<size_t>(size));
  return Status::OK();
}

bool MemEnv::ConsumeReadFault() {
  int v = fail_read_countdown_.load();
  while (v > 0) {
    if (fail_read_countdown_.compare_exchange_weak(v, v - 1)) return v == 1;
  }
  return false;
}

bool MemEnv::ConsumeWriteFault() {
  int v = fail_write_countdown_.load();
  while (v > 0) {
    if (fail_write_countdown_.compare_exchange_weak(v, v - 1)) return v == 1;
  }
  return false;
}

uint64_t MemEnv::TotalBytes() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [name, state] : files_) {
    std::lock_guard<std::mutex> flock(state->mu);
    total += state->data.size();
  }
  return total;
}

}  // namespace lt
