#include "env/sim_disk_env.h"

#include <algorithm>

namespace lt {
namespace {

std::string CacheKey(const std::string& fname, uint64_t chunk) {
  return fname + ':' + std::to_string(chunk);
}

}  // namespace

class SimSequentialFile final : public SequentialFile {
 public:
  SimSequentialFile(SimDiskEnv* env, std::string fname,
                    std::unique_ptr<SequentialFile> base, uint64_t size)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)),
        size_(size) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (env_->ConsumeReadFault()) return Status::IOError("injected read fault");
    {
      std::lock_guard<std::mutex> lock(env_->mu_);
      env_->ChargeReadLocked(fname_, pos_, n, size_);
    }
    Status s = base_->Read(n, result, scratch);
    if (s.ok()) pos_ += result->size();
    return s;
  }

  Status Skip(uint64_t n) override {
    pos_ += n;
    return base_->Skip(n);
  }

 private:
  SimDiskEnv* env_;
  std::string fname_;
  std::unique_ptr<SequentialFile> base_;
  uint64_t size_;
  uint64_t pos_ = 0;
};

class SimRandomAccessFile final : public RandomAccessFile {
 public:
  SimRandomAccessFile(SimDiskEnv* env, std::string fname,
                      std::unique_ptr<RandomAccessFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    if (env_->ConsumeReadFault()) return Status::IOError("injected read fault");
    uint64_t size = 0;
    Status s = base_->Size(&size);
    if (!s.ok()) return s;
    {
      std::lock_guard<std::mutex> lock(env_->mu_);
      env_->ChargeReadLocked(fname_, offset, n, size);
    }
    return base_->Read(offset, n, result, scratch);
  }

  Status Size(uint64_t* size) const override { return base_->Size(size); }

 private:
  SimDiskEnv* env_;
  std::string fname_;
  std::unique_ptr<RandomAccessFile> base_;
};

class SimWritableFile final : public WritableFile {
 public:
  SimWritableFile(SimDiskEnv* env, std::string fname,
                  std::unique_ptr<WritableFile> base)
      : env_(env), fname_(std::move(fname)), base_(std::move(base)) {}

  Status Append(const Slice& data) override {
    if (env_->ConsumeWriteFault()) {
      return Status::IOError("injected write fault");
    }
    if (!env_->ConsumeDiskSpace(data.size())) {
      return Status::IOError("no space left on device");
    }
    {
      std::lock_guard<std::mutex> lock(env_->mu_);
      env_->ChargeWriteLocked(fname_, pos_, data.size());
    }
    pos_ += data.size();
    return base_->Append(data);
  }

  Status Sync() override {
    LT_RETURN_IF_ERROR(base_->Sync());
    std::lock_guard<std::mutex> lock(env_->mu_);
    env_->synced_len_[fname_] = pos_;
    return Status::OK();
  }
  Status Close() override { return base_->Close(); }

 private:
  SimDiskEnv* env_;
  std::string fname_;
  std::unique_ptr<WritableFile> base_;
  uint64_t pos_ = 0;
};

SimDiskEnv::SimDiskEnv(Env* base, SimDiskOptions options)
    : base_(base), opts_(options) {}

Status SimDiskEnv::NewSequentialFile(const std::string& fname,
                                     std::unique_ptr<SequentialFile>* result) {
  std::unique_ptr<SequentialFile> file;
  LT_RETURN_IF_ERROR(base_->NewSequentialFile(fname, &file));
  uint64_t size = 0;
  LT_RETURN_IF_ERROR(base_->GetFileSize(fname, &size));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ChargeOpenLocked(fname);
  }
  result->reset(new SimSequentialFile(this, fname, std::move(file), size));
  return Status::OK();
}

Status SimDiskEnv::NewRandomAccessFile(
    const std::string& fname, std::unique_ptr<RandomAccessFile>* result) {
  std::unique_ptr<RandomAccessFile> file;
  LT_RETURN_IF_ERROR(base_->NewRandomAccessFile(fname, &file));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ChargeOpenLocked(fname);
  }
  result->reset(new SimRandomAccessFile(this, fname, std::move(file)));
  return Status::OK();
}

Status SimDiskEnv::NewWritableFile(const std::string& fname,
                                   std::unique_ptr<WritableFile>* result) {
  std::unique_ptr<WritableFile> file;
  LT_RETURN_IF_ERROR(base_->NewWritableFile(fname, &file));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Creating a file truncates: drop stale cache entries and reassign the
    // extent so the new contents land "elsewhere" on the platter.
    CacheEraseFileLocked(fname);
    extents_.erase(fname);
    inode_cache_.insert(fname);
    synced_len_[fname] = 0;  // Nothing durable until the first Sync.
  }
  result->reset(new SimWritableFile(this, fname, std::move(file)));
  return Status::OK();
}

bool SimDiskEnv::FileExists(const std::string& fname) {
  return base_->FileExists(fname);
}

Status SimDiskEnv::GetFileSize(const std::string& fname, uint64_t* size) {
  return base_->GetFileSize(fname, size);
}

Status SimDiskEnv::RemoveFile(const std::string& fname) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CacheEraseFileLocked(fname);
    extents_.erase(fname);
    inode_cache_.erase(fname);
    synced_len_.erase(fname);
  }
  return base_->RemoveFile(fname);
}

Status SimDiskEnv::RenameFile(const std::string& src, const std::string& dst) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    CacheEraseFileLocked(src);
    CacheEraseFileLocked(dst);
    auto it = extents_.find(src);
    if (it != extents_.end()) {
      extents_[dst] = it->second;
      extents_.erase(it);
    }
    inode_cache_.erase(src);
    inode_cache_.insert(dst);
    auto sit = synced_len_.find(src);
    if (sit != synced_len_.end()) {
      synced_len_[dst] = sit->second;
      synced_len_.erase(sit);
    }
  }
  return base_->RenameFile(src, dst);
}

Status SimDiskEnv::CreateDirIfMissing(const std::string& dirname) {
  return base_->CreateDirIfMissing(dirname);
}

Status SimDiskEnv::GetChildren(const std::string& dirname,
                               std::vector<std::string>* result) {
  return base_->GetChildren(dirname, result);
}

int64_t SimDiskEnv::SimElapsedMicros() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sim_micros_;
}

void SimDiskEnv::ResetSimTime() {
  std::lock_guard<std::mutex> lock(mu_);
  sim_micros_ = 0;
  seeks_ = 0;
  bytes_read_ = 0;
  bytes_written_ = 0;
}

void SimDiskEnv::ClearCaches() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_.clear();
  inode_cache_.clear();
  streaks_.clear();
  recent_files_.clear();
  head_ = -1;
}

void SimDiskEnv::SetReadahead(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  opts_.readahead_bytes = bytes == 0 ? 1 : bytes;
}

int64_t SimDiskEnv::seek_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seeks_;
}
int64_t SimDiskEnv::bytes_read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_read_;
}
int64_t SimDiskEnv::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

bool SimDiskEnv::ConsumeReadFault() {
  int v = fail_read_countdown_.load();
  while (v > 0) {
    if (fail_read_countdown_.compare_exchange_weak(v, v - 1)) return v == 1;
  }
  return false;
}

bool SimDiskEnv::ConsumeWriteFault() {
  int v = fail_write_countdown_.load();
  while (v > 0) {
    if (fail_write_countdown_.compare_exchange_weak(v, v - 1)) return v == 1;
  }
  return false;
}

bool SimDiskEnv::ConsumeDiskSpace(size_t n) {
  int64_t free = disk_free_.load();
  while (free >= 0) {
    if (free < static_cast<int64_t>(n)) return false;
    if (disk_free_.compare_exchange_weak(free, free - static_cast<int64_t>(n))) {
      return true;
    }
  }
  return true;  // Negative budget = unlimited space.
}

Status SimDiskEnv::PowerCut() {
  std::map<std::string, uint64_t> synced;
  {
    std::lock_guard<std::mutex> lock(mu_);
    synced = synced_len_;
  }
  for (const auto& [fname, len] : synced) {
    if (!base_->FileExists(fname)) continue;
    if (len == 0) {
      // Never synced: nothing of it survives the power cut.
      LT_RETURN_IF_ERROR(base_->RemoveFile(fname));
      continue;
    }
    uint64_t size = 0;
    LT_RETURN_IF_ERROR(base_->GetFileSize(fname, &size));
    if (size <= len) continue;
    // Unsynced tail beyond the last Sync is lost. Rewrite through base_
    // directly so the truncation itself is exempt from sim accounting and
    // injected faults.
    std::string data;
    LT_RETURN_IF_ERROR(ReadFileToString(base_, fname, &data));
    data.resize(len);
    LT_RETURN_IF_ERROR(WriteStringToFile(base_, data, fname, /*sync=*/true));
  }
  ClearCaches();
  return Status::OK();
}

uint64_t SimDiskEnv::ExtentStartLocked(const std::string& fname) {
  auto it = extents_.find(fname);
  if (it != extents_.end()) return it->second.start;
  uint64_t start = next_extent_;
  next_extent_ += opts_.extent_bytes;
  extents_[fname] = Extent{start};
  return start;
}

void SimDiskEnv::ChargeOpenLocked(const std::string& fname) {
  // Reading the inode costs one seek unless it is cached.
  if (inode_cache_.insert(fname).second) {
    sim_micros_ += opts_.seek_micros;
    seeks_++;
    // The inode lives in the metadata area, away from the data extent.
    head_ = -1;
  }
}

void SimDiskEnv::ChargeReadLocked(const std::string& fname, uint64_t offset,
                                  size_t n, uint64_t file_size) {
  if (n == 0 || offset >= file_size) return;
  uint64_t end = std::min<uint64_t>(offset + n, file_size);
  const uint64_t unit = opts_.readahead_bytes;
  uint64_t first_chunk = offset / unit;
  uint64_t last_chunk = (end - 1) / unit;
  uint64_t start_addr = ExtentStartLocked(fname);
  const uint64_t file_chunks = (file_size + unit - 1) / unit;

  for (uint64_t chunk = first_chunk; chunk <= last_chunk; chunk++) {
    if (opts_.page_cache_bytes > 0 && CacheContainsLocked(fname, chunk)) {
      continue;  // Page-cache hit: free.
    }
    // Drive-cache model: a sequential miss stream on this file doubles its
    // prefetch window, capped by the drive cache split across the files
    // recently being read. On a miss we read `fetch` chunks in one
    // sequential pass (one seek, then pure transfer).
    uint64_t fetch = 1;
    if (opts_.drive_cache_bytes > 0) {
      // Track the set of recently read files (bounded).
      recent_files_.remove(fname);
      recent_files_.push_front(fname);
      if (recent_files_.size() > 256) recent_files_.pop_back();
      Streak& st = streaks_[fname];
      if (chunk == st.next_chunk && st.window > 0) {
        st.window = st.window * 2;
      } else {
        st.window = 1;
      }
      uint64_t cap_bytes =
          opts_.drive_cache_bytes / std::max<size_t>(1, recent_files_.size());
      uint64_t cap_chunks = std::max<uint64_t>(1, cap_bytes / unit);
      st.window = std::min(st.window, cap_chunks);
      fetch = st.window;
      st.next_chunk = chunk + fetch;
    }

    int64_t addr = static_cast<int64_t>(start_addr + chunk * unit);
    if (head_ != addr) {
      sim_micros_ += opts_.seek_micros;
      seeks_++;
    }
    uint64_t fetched_bytes = 0;
    for (uint64_t c = chunk; c < std::min(chunk + fetch, file_chunks); c++) {
      uint64_t chunk_off = c * unit;
      fetched_bytes += std::min<uint64_t>(unit, file_size - chunk_off);
      if (opts_.page_cache_bytes > 0) CacheInsertLocked(fname, c);
    }
    sim_micros_ += static_cast<int64_t>(fetched_bytes * 1000000.0 /
                                        opts_.read_bytes_per_sec);
    bytes_read_ += static_cast<int64_t>(fetched_bytes);
    head_ = addr + static_cast<int64_t>(fetched_bytes);
    // Chunks beyond the fetched range are handled by later iterations
    // (they are now cache hits if within `fetch`).
  }
}

void SimDiskEnv::ChargeWriteLocked(const std::string& fname, uint64_t offset,
                                   size_t n) {
  if (n == 0) return;
  uint64_t start_addr = ExtentStartLocked(fname);
  int64_t addr = static_cast<int64_t>(start_addr + offset);
  if (head_ != addr) {
    sim_micros_ += opts_.seek_micros;
    seeks_++;
  }
  sim_micros_ +=
      static_cast<int64_t>(n * 1000000.0 / opts_.write_bytes_per_sec);
  bytes_written_ += static_cast<int64_t>(n);
  head_ = addr + static_cast<int64_t>(n);
  // Freshly written chunks are in the page cache.
  if (opts_.page_cache_bytes > 0) {
    const uint64_t unit = opts_.readahead_bytes;
    for (uint64_t c = offset / unit; c <= (offset + n - 1) / unit; c++) {
      CacheInsertLocked(fname, c);
    }
  }
}

bool SimDiskEnv::CacheContainsLocked(const std::string& fname,
                                     uint64_t chunk) {
  auto it = cache_.find(CacheKey(fname, chunk));
  if (it == cache_.end()) return false;
  // Touch for LRU.
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void SimDiskEnv::CacheInsertLocked(const std::string& fname, uint64_t chunk) {
  std::string key = CacheKey(fname, chunk);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(fname, chunk);
  cache_[key] = lru_.begin();
  uint64_t capacity_entries =
      std::max<uint64_t>(1, opts_.page_cache_bytes / opts_.readahead_bytes);
  while (lru_.size() > capacity_entries) {
    auto& back = lru_.back();
    cache_.erase(CacheKey(back.first, back.second));
    lru_.pop_back();
  }
}

void SimDiskEnv::CacheEraseFileLocked(const std::string& fname) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first == fname) {
      cache_.erase(CacheKey(it->first, it->second));
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace lt
