// MemEnv: an in-memory Env with crash simulation.
//
// Every file tracks how many of its bytes have been Sync()'d. DropUnsynced()
// models a machine crash: unsynced suffixes vanish, never-synced files
// disappear entirely. The durability property tests (§3.1's "if a row
// survives, every earlier insert survives") iterate crash points with this.
//
// Open handles hold a reference to the file's state, matching POSIX
// semantics: a file removed or renamed while open remains readable through
// existing handles (merges delete source tablets while queries still hold
// cursors on them).
#ifndef LITTLETABLE_ENV_MEM_ENV_H_
#define LITTLETABLE_ENV_MEM_ENV_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "env/env.h"

namespace lt {

class MemEnv final : public Env {
 public:
  MemEnv() = default;

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RemoveFile(const std::string& fname) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override;

  /// Simulates a crash: truncates every file to its synced length and
  /// removes files that were never synced.
  void DropUnsynced();

  /// Total bytes across all (linked) files, for space-accounting tests.
  uint64_t TotalBytes();

  // Deterministic fault injection for corruption-detection tests. Faults
  // affect existing open handles too (they share the FileState).

  /// XORs the byte at `offset` with `mask` (silent on-disk bit rot).
  Status CorruptFile(const std::string& fname, uint64_t offset,
                     uint8_t mask = 0x40);

  /// Truncates the file to `size` bytes (torn write / lost tail).
  Status TruncateFile(const std::string& fname, uint64_t size);

  /// Makes the Nth read from now (1 = the very next one) fail with an
  /// IOError; n <= 0 clears the fault. Counts both sequential and
  /// random-access reads.
  void FailNthRead(int n) { fail_read_countdown_.store(n); }

  /// Same for writes (Append calls).
  void FailNthWrite(int n) { fail_write_countdown_.store(n); }

 private:
  struct FileState {
    std::mutex mu;
    std::string data;
    size_t synced = 0;
  };
  using FileRef = std::shared_ptr<FileState>;

  friend class MemSequentialFile;
  friend class MemRandomAccessFile;
  friend class MemWritableFile;

  /// True if this call should fail (decrements the countdown).
  bool ConsumeReadFault();
  bool ConsumeWriteFault();

  std::mutex mu_;
  std::map<std::string, FileRef> files_;
  std::set<std::string> dirs_;

  std::atomic<int> fail_read_countdown_{0};   // 0 = no fault armed.
  std::atomic<int> fail_write_countdown_{0};
};

}  // namespace lt

#endif  // LITTLETABLE_ENV_MEM_ENV_H_
