// SimDiskEnv: a spinning-disk cost model wrapped around any Env.
//
// The paper's evaluation (§5.1) runs on a 7,200 RPM drive: ~120 MB/s
// sequential throughput, ~8 ms combined seek + rotational latency, kernel
// readahead of 128 kB (default) or 1 MB, and a 64 MB on-drive cache. The
// experiments that depend on the medium — query throughput vs. tablet count
// (Figure 5) and first-row latency vs. tablet count (Figure 6) — measure how
// the engine's access pattern amortizes seeks, not the medium itself.
//
// SimDiskEnv reproduces those experiments deterministically on any hardware
// by charging *simulated* time to every I/O:
//   - each file occupies one contiguous extent of a virtual disk (the
//     paper notes ext4 stores tablets ≤1 GB in a single extent);
//   - reads happen in readahead-sized chunks; a chunk that is not in the
//     simulated page cache costs a seek (if the head has to move) plus
//     transfer time at the sequential rate;
//   - opening a file charges one seek for the inode unless cached (§3.5's
//     "three seeks to read a tablet's footer" accounting);
//   - writes charge a seek when the head moves between files plus transfer.
//
// Accumulated simulated time is read with SimElapsed(); ClearCaches() models
// `echo 3 > drop_caches` plus the drive-cache flush the paper performs
// between benchmark runs.
#ifndef LITTLETABLE_ENV_SIM_DISK_ENV_H_
#define LITTLETABLE_ENV_SIM_DISK_ENV_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "env/env.h"

namespace lt {

struct SimDiskOptions {
  /// Combined average seek + rotational latency.
  int64_t seek_micros = 8000;
  /// Sequential transfer rates.
  int64_t read_bytes_per_sec = 120 * 1000 * 1000;
  int64_t write_bytes_per_sec = 120 * 1000 * 1000;
  /// Kernel readahead granularity: reads are rounded to this unit.
  uint64_t readahead_bytes = 128 * 1024;
  /// Simulated OS page cache capacity (0 disables caching entirely).
  uint64_t page_cache_bytes = 4ull << 30;
  /// Virtual extent reserved per file; files never collide.
  uint64_t extent_bytes = 4ull << 30;
  /// Drive-internal cache modeled as sequential prefetch: a file read
  /// sequentially grows a prefetch window (doubling per sequential miss) up
  /// to drive_cache_bytes divided by the number of concurrently read files.
  /// The paper observes exactly this effect: its 64 MB drive cache lifts
  /// multi-tablet scan throughput above the naive seek-amortization floor
  /// (§5.1.5). 0 disables the model.
  uint64_t drive_cache_bytes = 64ull << 20;
};

class SimDiskEnv final : public Env {
 public:
  /// Does not take ownership of `base`, which stores the actual bytes
  /// (typically a MemEnv so benchmarks are self-contained).
  SimDiskEnv(Env* base, SimDiskOptions options);

  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override;
  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override;
  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override;
  bool FileExists(const std::string& fname) override;
  Status GetFileSize(const std::string& fname, uint64_t* size) override;
  Status RemoveFile(const std::string& fname) override;
  Status RenameFile(const std::string& src, const std::string& dst) override;
  Status CreateDirIfMissing(const std::string& dirname) override;
  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override;

  /// Total simulated I/O time so far, in microseconds.
  int64_t SimElapsedMicros() const;
  void ResetSimTime();

  /// Drops the simulated page cache and inode cache.
  void ClearCaches();

  /// Changes the readahead unit (the paper compares 128 kB vs 1 MB).
  void SetReadahead(uint64_t bytes);

  /// Counters for assertions in tests.
  int64_t seek_count() const;
  int64_t bytes_read() const;
  int64_t bytes_written() const;

  // Deterministic fault injection at the simulated-disk layer: the Nth read
  // (or write) from now fails with an IOError before reaching the base env
  // and before any sim time is charged; n <= 0 clears the fault.
  void FailNthRead(int n) { fail_read_countdown_.store(n); }
  void FailNthWrite(int n) { fail_write_countdown_.store(n); }

  // Disk-full injection: after `bytes` more bytes are appended through this
  // env, every further append fails with IOError("no space left on device")
  // until ClearDiskFull() — modeling ENOSPC on a filling disk.
  void SetDiskFullAfter(int64_t bytes) { disk_free_.store(bytes); }
  void ClearDiskFull() { disk_free_.store(-1); }

  /// Simulates pulling the plug: every file written through this env is
  /// truncated back to its last-synced length (files never synced at all
  /// disappear), and all simulated caches are dropped. Files the env never
  /// wrote are untouched. Reopen the table afterwards to exercise crash
  /// recovery.
  Status PowerCut();

 private:
  friend class SimSequentialFile;
  friend class SimRandomAccessFile;
  friend class SimWritableFile;

  struct Extent {
    uint64_t start = 0;
  };

  // All charging happens under mu_.
  void ChargeOpenLocked(const std::string& fname);
  void ChargeReadLocked(const std::string& fname, uint64_t offset, size_t n,
                        uint64_t file_size);
  void ChargeWriteLocked(const std::string& fname, uint64_t offset, size_t n);
  uint64_t ExtentStartLocked(const std::string& fname);
  void CacheInsertLocked(const std::string& fname, uint64_t chunk);
  bool CacheContainsLocked(const std::string& fname, uint64_t chunk);
  void CacheEraseFileLocked(const std::string& fname);
  bool ConsumeReadFault();
  bool ConsumeWriteFault();
  /// False once the disk-full budget is exhausted (the write must fail).
  bool ConsumeDiskSpace(size_t n);

  Env* const base_;
  SimDiskOptions opts_;

  mutable std::mutex mu_;
  int64_t sim_micros_ = 0;
  int64_t seeks_ = 0;
  int64_t bytes_read_ = 0;
  int64_t bytes_written_ = 0;
  uint64_t next_extent_ = 1 << 20;  // Leave a hole at address 0.
  int64_t head_ = -1;               // Disk head position; -1 = unknown.
  std::map<std::string, Extent> extents_;
  std::set<std::string> inode_cache_;
  // Page cache: key = fname + ':' + chunk index, LRU by byte budget.
  std::list<std::pair<std::string, uint64_t>> lru_;
  std::unordered_map<std::string,
                     std::list<std::pair<std::string, uint64_t>>::iterator>
      cache_;
  // Sequential-prefetch state per file (drive-cache model).
  struct Streak {
    uint64_t next_chunk = 0;   // Expected next sequential chunk.
    uint64_t window = 0;       // Current prefetch window in chunks.
  };
  std::map<std::string, Streak> streaks_;
  // Files read recently, to divide the drive cache between streams.
  std::list<std::string> recent_files_;

  // Durability tracking for PowerCut(): bytes of each written file known to
  // have reached stable storage (advanced by Sync, moved by rename).
  std::map<std::string, uint64_t> synced_len_;

  std::atomic<int> fail_read_countdown_{0};   // 0 = no fault armed.
  std::atomic<int> fail_write_countdown_{0};
  std::atomic<int64_t> disk_free_{-1};        // -1 = unlimited space.
};

}  // namespace lt

#endif  // LITTLETABLE_ENV_SIM_DISK_ENV_H_
