#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "env/env.h"

namespace lt {
namespace {

Status PosixError(const std::string& context, int err) {
  if (err == ENOENT) return Status::NotFound(context + ": " + strerror(err));
  return Status::IOError(context + ": " + strerror(err));
}

class PosixSequentialFile final : public SequentialFile {
 public:
  PosixSequentialFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixSequentialFile() override { close(fd_); }

  Status Read(size_t n, Slice* result, char* scratch) override {
    while (true) {
      ssize_t r = read(fd_, scratch, n);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      *result = Slice(scratch, static_cast<size_t>(r));
      return Status::OK();
    }
  }

  Status Skip(uint64_t n) override {
    if (lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return PosixError(fname_, errno);
    }
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixRandomAccessFile final : public RandomAccessFile {
 public:
  PosixRandomAccessFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixRandomAccessFile() override { close(fd_); }

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    size_t got = 0;
    while (got < n) {
      ssize_t r = pread(fd_, scratch + got, n - got,
                        static_cast<off_t>(offset + got));
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      if (r == 0) break;  // EOF.
      got += static_cast<size_t>(r);
    }
    *result = Slice(scratch, got);
    return Status::OK();
  }

  Status Size(uint64_t* size) const override {
    struct stat st;
    if (fstat(fd_, &st) != 0) return PosixError(fname_, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(std::string fname, int fd)
      : fname_(std::move(fname)), fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) close(fd_);
  }

  Status Append(const Slice& data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t w = write(fd_, p, left);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError(fname_, errno);
      }
      p += w;
      left -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (fdatasync(fd_) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

  Status Close() override {
    int fd = fd_;
    fd_ = -1;
    if (close(fd) != 0) return PosixError(fname_, errno);
    return Status::OK();
  }

 private:
  std::string fname_;
  int fd_;
};

class PosixEnv final : public Env {
 public:
  Status NewSequentialFile(const std::string& fname,
                           std::unique_ptr<SequentialFile>* result) override {
    int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(fname, errno);
    result->reset(new PosixSequentialFile(fname, fd));
    return Status::OK();
  }

  Status NewRandomAccessFile(
      const std::string& fname,
      std::unique_ptr<RandomAccessFile>* result) override {
    int fd = open(fname.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixError(fname, errno);
    result->reset(new PosixRandomAccessFile(fname, fd));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& fname,
                         std::unique_ptr<WritableFile>* result) override {
    int fd =
        open(fname.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return PosixError(fname, errno);
    result->reset(new PosixWritableFile(fname, fd));
    return Status::OK();
  }

  bool FileExists(const std::string& fname) override {
    return access(fname.c_str(), F_OK) == 0;
  }

  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    struct stat st;
    if (stat(fname.c_str(), &st) != 0) return PosixError(fname, errno);
    *size = static_cast<uint64_t>(st.st_size);
    return Status::OK();
  }

  Status RemoveFile(const std::string& fname) override {
    if (unlink(fname.c_str()) != 0) return PosixError(fname, errno);
    return Status::OK();
  }

  Status RenameFile(const std::string& src, const std::string& dst) override {
    if (rename(src.c_str(), dst.c_str()) != 0) return PosixError(src, errno);
    return Status::OK();
  }

  Status CreateDirIfMissing(const std::string& dirname) override {
    if (mkdir(dirname.c_str(), 0755) != 0 && errno != EEXIST) {
      return PosixError(dirname, errno);
    }
    return Status::OK();
  }

  Status GetChildren(const std::string& dirname,
                     std::vector<std::string>* result) override {
    result->clear();
    DIR* d = opendir(dirname.c_str());
    if (d == nullptr) return PosixError(dirname, errno);
    struct dirent* entry;
    while ((entry = readdir(d)) != nullptr) {
      std::string name = entry->d_name;
      if (name != "." && name != "..") result->push_back(std::move(name));
    }
    closedir(d);
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status ReadFileToString(Env* env, const std::string& fname,
                        std::string* data) {
  data->clear();
  std::unique_ptr<SequentialFile> file;
  LT_RETURN_IF_ERROR(env->NewSequentialFile(fname, &file));
  static constexpr size_t kBufSize = 64 << 10;
  std::string scratch(kBufSize, '\0');
  while (true) {
    Slice chunk;
    LT_RETURN_IF_ERROR(file->Read(kBufSize, &chunk, scratch.data()));
    if (chunk.empty()) break;
    data->append(chunk.data(), chunk.size());
  }
  return Status::OK();
}

Status WriteStringToFile(Env* env, const Slice& data, const std::string& fname,
                         bool sync) {
  std::unique_ptr<WritableFile> file;
  LT_RETURN_IF_ERROR(env->NewWritableFile(fname, &file));
  LT_RETURN_IF_ERROR(file->Append(data));
  if (sync) LT_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

}  // namespace lt
