// Motion-event encoding and search (§4.3).
//
// A camera divides each 960×540 frame into a grid of 16×16-pixel
// macroblocks (60 columns × 34 rows) grouped into coarse cells of six
// macroblock columns × four macroblock rows — a 10×9 coarse grid. When a
// coarse cell changes between frames, the camera emits one 32-bit word:
//
//   bits 28..31  coarse-cell row (nibble, 0..8)
//   bits 24..27  coarse-cell column (nibble, 0..9)
//   bits  0..23  presence of motion in each of the cell's 24 macroblocks
//                (row-major within the cell)
//
// Motion in the same cell across successive frames coalesces by OR'ing the
// bit vectors into a single event with a duration. Dashboard lets a user
// select any rectangle of the frame and search backwards in time for motion
// inside it, and draws heatmaps of motion over time.
#ifndef LITTLETABLE_APPS_MOTION_H_
#define LITTLETABLE_APPS_MOTION_H_

#include <cstdint>
#include <vector>

#include "util/clock.h"

namespace lt {
namespace apps {

constexpr int kFrameWidth = 960;
constexpr int kFrameHeight = 540;
constexpr int kMacroblockPx = 16;
constexpr int kMacroblockCols = 60;  // 960 / 16.
constexpr int kMacroblockRows = 34;  // ceil(540 / 16).
constexpr int kCellBlockCols = 6;
constexpr int kCellBlockRows = 4;
constexpr int kMotionCellCols = 10;  // 60 / 6.
constexpr int kMotionCellRows = 9;   // ceil(34 / 4).
constexpr uint32_t kMotionBlockMask = (1u << 24) - 1;

/// Packs a motion word. `blocks` is the 24-bit macroblock vector.
inline uint32_t EncodeMotionWord(int cell_row, int cell_col, uint32_t blocks) {
  return (static_cast<uint32_t>(cell_row & 0xf) << 28) |
         (static_cast<uint32_t>(cell_col & 0xf) << 24) |
         (blocks & kMotionBlockMask);
}

inline int MotionCellRow(uint32_t word) { return (word >> 28) & 0xf; }
inline int MotionCellCol(uint32_t word) { return (word >> 24) & 0xf; }
inline uint32_t MotionBlocks(uint32_t word) { return word & kMotionBlockMask; }

/// A rectangle in macroblock coordinates (inclusive bounds), as selected on
/// the 60×34 grid.
struct MotionRect {
  int min_block_col = 0;
  int min_block_row = 0;
  int max_block_col = kMacroblockCols - 1;
  int max_block_row = kMacroblockRows - 1;

  /// Converts from pixel coordinates.
  static MotionRect FromPixels(int x0, int y0, int x1, int y1);
};

/// True if any set macroblock of `word` lies inside `rect`.
bool MotionIntersects(uint32_t word, const MotionRect& rect);

/// A per-macroblock heatmap accumulated from motion words.
struct MotionHeatmap {
  // counts[row][col] over the 34×60 macroblock grid.
  uint32_t counts[kMacroblockRows][kMacroblockCols] = {};

  void Add(uint32_t word);
  uint64_t Total() const;
};

}  // namespace apps
}  // namespace lt

#endif  // LITTLETABLE_APPS_MOTION_H_
