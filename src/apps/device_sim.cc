#include "apps/device_sim.h"

#include <algorithm>

#include "apps/motion.h"
#include "util/bloom.h"  // BloomHash as a mixing function.
#include "util/random.h"

namespace lt {
namespace apps {
namespace {

const char* kEventKinds[] = {"assoc", "disassoc", "dhcp", "auth"};

double UnitFloat(uint64_t h) {
  return static_cast<double>(h % 1000000) / 1000000.0;
}

}  // namespace

SimulatedDevice::SimulatedDevice(DeviceId id, const DeviceSimOptions& options)
    : id_(id), opts_(options) {
  // Per-device rate in [0.25, 1.75) of the mean.
  double factor = 0.25 + 1.5 * UnitFloat(Mix(0xbeef));
  rate_ = std::max<int64_t>(1, static_cast<int64_t>(opts_.mean_rate * factor));
}

uint64_t SimulatedDevice::Mix(uint64_t salt) const {
  uint64_t h = opts_.seed * 0x9e3779b97f4a7c15ull +
               static_cast<uint64_t>(id_) * 0xbf58476d1ce4e5b9ull + salt;
  h ^= h >> 31;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 29;
  return h;
}

bool SimulatedDevice::ReachableAt(Timestamp t) const {
  for (const auto& [from, to] : outages_) {
    if (t >= from && t < to) return false;
  }
  uint64_t hour = static_cast<uint64_t>(t / kMicrosPerHour);
  return UnitFloat(Mix(hour * 2654435761u + 7)) >= opts_.unreachable_hour_prob;
}

int64_t SimulatedDevice::ByteCounterAt(Timestamp t) const {
  if (t <= opts_.birth) return 0;
  // Base linear growth plus a deterministic per-minute wiggle whose partial
  // sums stay monotone (each minute contributes >= 0).
  int64_t seconds = (t - opts_.birth) / kMicrosPerSecond;
  int64_t base = rate_ * seconds;
  // Wiggle: the current minute's extra bytes, bounded by one minute of
  // rate so the counter cannot regress between samples.
  uint64_t minute = static_cast<uint64_t>(t / kMicrosPerMinute);
  int64_t wiggle = static_cast<int64_t>(Mix(minute) % (rate_ + 1));
  return base + wiggle;
}

Timestamp SimulatedDevice::EventTime(int64_t index) const {
  // Event i at birth + i*interval + jitter(i), jitter < interval/2 so times
  // are strictly increasing with id.
  Timestamp interval = opts_.event_interval_sec * kMicrosPerSecond;
  Timestamp jitter = static_cast<Timestamp>(
      Mix(static_cast<uint64_t>(index) * 31 + 5) % (interval / 2));
  return opts_.birth + index * interval + jitter;
}

int64_t SimulatedDevice::EventCountAt(Timestamp now) const {
  if (now < opts_.birth) return 0;
  Timestamp interval = opts_.event_interval_sec * kMicrosPerSecond;
  // EventTime(i) <= now for i <= n; probe around the linear estimate.
  int64_t n = (now - opts_.birth) / interval + 1;
  while (n > 0 && EventTime(n - 1) > now) n--;
  while (EventTime(n) <= now) n++;
  return n;
}

std::vector<SimEvent> SimulatedDevice::EventsAfter(int64_t after_id,
                                                   Timestamp now,
                                                   size_t max_events) const {
  std::vector<SimEvent> events;
  int64_t total = EventCountAt(now);
  int64_t oldest = std::max<int64_t>(0, total - opts_.event_capacity);
  int64_t first = std::max(after_id + 1, oldest);
  for (int64_t i = first; i < total && events.size() < max_events; i++) {
    SimEvent e;
    e.id = i;
    e.ts = EventTime(i);
    e.kind = kEventKinds[Mix(static_cast<uint64_t>(i) * 13 + 1) % 4];
    char detail[32];
    snprintf(detail, sizeof(detail), "client-%02llx",
             static_cast<unsigned long long>(Mix(i * 17 + 3) % 64));
    e.detail = detail;
    events.push_back(std::move(e));
  }
  return events;
}

bool SimulatedDevice::OldestStoredEvent(Timestamp now, SimEvent* event) const {
  int64_t total = EventCountAt(now);
  if (total == 0) return false;
  int64_t oldest = std::max<int64_t>(0, total - opts_.event_capacity);
  std::vector<SimEvent> events = EventsAfter(oldest - 1, now, 1);
  if (events.empty()) return false;
  *event = events[0];
  return true;
}

std::vector<SimMotion> SimulatedDevice::MotionBetween(Timestamp from,
                                                      Timestamp to) const {
  // One candidate motion sample per second; consecutive seconds with motion
  // in the same coarse cell coalesce into a single event with a duration
  // (§4.3: "OR'ing together their bit vectors").
  std::vector<SimMotion> out;
  int64_t first_sec = from / kMicrosPerSecond;
  int64_t last_sec = (to - 1) / kMicrosPerSecond;

  bool active = false;
  SimMotion current;
  int active_row = 0, active_col = 0;
  for (int64_t sec = first_sec; sec <= last_sec; sec++) {
    uint64_t h = Mix(static_cast<uint64_t>(sec) * 2246822519u + 11);
    bool motion = UnitFloat(h) < opts_.motion_prob ||
                  (active && UnitFloat(Mix(sec * 7 + 2)) < 0.6);
    if (!motion) {
      if (active) {
        out.push_back(current);
        active = false;
      }
      continue;
    }
    int row = static_cast<int>((h >> 20) % kMotionCellRows);
    int col = static_cast<int>((h >> 28) % kMotionCellCols);
    uint32_t blocks =
        static_cast<uint32_t>(Mix(sec * 3 + 1) & kMotionBlockMask);
    if (blocks == 0) blocks = 1;
    if (active && row == active_row && col == active_col) {
      // Coalesce: same cell in successive seconds.
      current.word |= EncodeMotionWord(row, col, blocks);
      current.duration += kMicrosPerSecond;
    } else {
      if (active) out.push_back(current);
      current.ts = sec * kMicrosPerSecond;
      current.word = EncodeMotionWord(row, col, blocks);
      current.duration = kMicrosPerSecond;
      active_row = row;
      active_col = col;
      active = true;
    }
  }
  if (active) out.push_back(current);
  // Clip to [from, to).
  std::vector<SimMotion> clipped;
  for (const SimMotion& m : out) {
    if (m.ts >= from && m.ts < to) clipped.push_back(m);
  }
  return clipped;
}

void DeviceFleet::PopulateFromConfig(const ConfigStore& config) {
  for (DeviceId id : config.AllDevices()) AddDevice(id);
}

SimulatedDevice* DeviceFleet::AddDevice(DeviceId id) {
  auto [it, inserted] = devices_.emplace(id, SimulatedDevice(id, opts_));
  (void)inserted;
  return &it->second;
}

SimulatedDevice* DeviceFleet::Get(DeviceId id) {
  auto it = devices_.find(id);
  return it == devices_.end() ? nullptr : &it->second;
}

std::vector<DeviceId> DeviceFleet::DeviceIds() const {
  std::vector<DeviceId> ids;
  ids.reserve(devices_.size());
  for (const auto& [id, d] : devices_) ids.push_back(id);
  return ids;
}

void BuildShardConfig(uint64_t seed, int networks, int devices_per_network,
                      ConfigStore* config) {
  Random r(seed);
  static const char* kTags[] = {"classrooms", "playing-fields", "offices",
                                "guest", "warehouse"};
  DeviceId next_device = 1;
  for (int n = 1; n <= networks; n++) {
    NetworkConfig net;
    net.id = n;
    net.customer = 1 + (n - 1) / 4;  // ~4 networks per customer.
    net.name = "network-" + std::to_string(n);
    config->AddNetwork(net);
    for (int d = 0; d < devices_per_network; d++) {
      DeviceConfig dev;
      dev.id = next_device++;
      dev.network = n;
      // Every 8th device is a camera (§4.3); the rest are APs/switches.
      if (d % 8 == 7) dev.type = DeviceType::kCamera;
      else if (d % 5 == 4) dev.type = DeviceType::kSwitch;
      int ntags = static_cast<int>(r.Uniform(3));
      for (int t = 0; t < ntags; t++) {
        dev.tags.push_back(kTags[r.Uniform(5)]);
      }
      std::sort(dev.tags.begin(), dev.tags.end());
      dev.tags.erase(std::unique(dev.tags.begin(), dev.tags.end()),
                     dev.tags.end());
      config->AddDevice(dev);
    }
  }
}

}  // namespace apps
}  // namespace lt
