// MotionGrabber and video motion search (§4.3).
//
// Meraki cameras store video in flash on the camera itself; LittleTable only
// stores the motion metadata. MotionGrabber fetches coalesced motion events
// (32-bit words + durations, see motion.h) from each camera the way
// EventsGrabber fetches logs, and stores them keyed on the camera id. Over a
// recent week the paper measured ~51,000 rows/camera; at the 500k rows/s
// query rate, searching a week of one camera's motion takes ~100 ms.
//
// Search: a Dashboard user selects a rectangle of the frame and searches
// backwards in time for motion inside it; the same rows drive heatmaps.
#ifndef LITTLETABLE_APPS_MOTION_GRABBER_H_
#define LITTLETABLE_APPS_MOTION_GRABBER_H_

#include <map>
#include <string>

#include "apps/config_store.h"
#include "apps/device_sim.h"
#include "apps/motion.h"
#include "sql/backend.h"

namespace lt {
namespace apps {

struct MotionGrabberOptions {
  std::string table = "motion";
  Timestamp ttl = 0;
};

/// One stored motion event, as returned by searches.
struct MotionHit {
  Timestamp ts = 0;
  uint32_t word = 0;
  Timestamp duration = 0;
};

class MotionGrabber {
 public:
  MotionGrabber(sql::SqlBackend* backend, DeviceFleet* fleet,
                const ConfigStore* config, MotionGrabberOptions options);

  /// Creates the motion table if missing:
  ///   (camera int64, ts) -> (word int32, duration int64)
  Status EnsureTable();

  /// Fetches motion events since each camera's last fetch up to `now`.
  Status Poll(Timestamp now);

  /// Searches camera `camera` backwards in time over [from, to) for motion
  /// intersecting `rect`; returns up to `limit` hits, newest first.
  Status SearchMotion(DeviceId camera, const MotionRect& rect, Timestamp from,
                      Timestamp to, size_t limit, std::vector<MotionHit>* hits);

  /// Accumulates a heatmap over [from, to).
  Status Heatmap(DeviceId camera, Timestamp from, Timestamp to,
                 MotionHeatmap* heatmap);

  uint64_t rows_inserted() const { return rows_inserted_; }

 private:
  sql::SqlBackend* const backend_;
  DeviceFleet* const fleet_;
  const ConfigStore* const config_;
  MotionGrabberOptions opts_;
  std::map<DeviceId, Timestamp> fetched_through_;
  uint64_t rows_inserted_ = 0;
};

}  // namespace apps
}  // namespace lt

#endif  // LITTLETABLE_APPS_MOTION_GRABBER_H_
