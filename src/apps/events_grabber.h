// EventsGrabber (§4.2): pulls device event logs — DHCP leases, wireless
// (dis-)associations, 802.1X authentications — into LittleTable.
//
// Devices assign each event a unique id from a monotonically increasing
// counter. The grabber caches the most recent id fetched per device,
// supplies it on each poll, and the device replies with newer events, which
// are inserted keyed (network, device, ts) with the *device-side* event
// timestamp — so a device reconnecting after a long outage inserts rows
// arbitrarily far in the past (the §3.4.3 out-of-order case).
//
// Restart recovery is two-tier:
//   1. one query over a fixed recent window rebuilds most of the cache;
//   2. a device absent from that window is asked for its oldest stored
//      event; that event's timestamp bounds how far back to search, and a
//      latest-row-for-prefix query (§3.4.5) finds the device's last row.
// Optional sentinel rows bound tier 2: every sentinel period the grabber
// inserts a row carrying the device's latest event id, so restart never
// looks back more than one sentinel period.
#ifndef LITTLETABLE_APPS_EVENTS_GRABBER_H_
#define LITTLETABLE_APPS_EVENTS_GRABBER_H_

#include <map>
#include <string>

#include "apps/config_store.h"
#include "apps/device_sim.h"
#include "sql/backend.h"

namespace lt {
namespace apps {

struct EventsGrabberOptions {
  std::string table = "events";
  Timestamp ttl = 0;
  /// Recent window the restart path scans first.
  Timestamp recent_window = kMicrosPerHour;
  /// Max events fetched per device per poll.
  size_t max_events_per_poll = 1000;
  /// Sentinel cadence; 0 disables sentinels.
  Timestamp sentinel_period = 0;
};

class EventsGrabber {
 public:
  EventsGrabber(sql::SqlBackend* backend, DeviceFleet* fleet,
                const ConfigStore* config, EventsGrabberOptions options);

  /// Creates the events table if missing:
  ///   (network int64, device int64, ts) ->
  ///   (event_id int64, kind string, detail string)
  /// Sentinel rows use kind "sentinel" and carry the latest id.
  Status EnsureTable();

  /// One polling pass at `now`.
  Status Poll(Timestamp now);

  /// Rebuilds the per-device id cache after a restart.
  Status RebuildCache(Timestamp now);

  void ForgetCache() { last_id_.clear(); }
  size_t cache_size() const { return last_id_.size(); }
  uint64_t rows_inserted() const { return rows_inserted_; }
  uint64_t deep_searches() const { return deep_searches_; }

 private:
  Status InsertSentinels(Timestamp now);

  sql::SqlBackend* const backend_;
  DeviceFleet* const fleet_;
  const ConfigStore* const config_;
  EventsGrabberOptions opts_;
  std::map<DeviceId, int64_t> last_id_;
  Timestamp last_sentinel_ = 0;
  uint64_t rows_inserted_ = 0;
  uint64_t deep_searches_ = 0;
};

}  // namespace apps
}  // namespace lt

#endif  // LITTLETABLE_APPS_EVENTS_GRABBER_H_
