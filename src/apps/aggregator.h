// Aggregator (§4.1.2): background rollups of LittleTable source tables into
// smaller derived tables.
//
// Rendering a month of per-minute samples for a 100-device network would
// read over four million rows (~8 seconds at 500k rows/s) to draw a graph a
// few thousand pixels wide. Instead, aggregators periodically derive:
//   - usage_by_network_10m: bytes transferred per network per 10-minute
//     period, computed from the per-device rate rows;
//   - usage_by_tag_10m: the same, joined against ConfigStore tags (the
//     paper's "classrooms"/"playing-fields" example) and keyed by
//     (customer, tag, ts);
//   - clients_hourly: a HyperLogLog sketch of distinct clients per network
//     per hour, stored as a blob so later re-aggregation can union sketches
//     across hours without revisiting source data.
//
// Two durability techniques from the paper:
//   - restart discovery: LittleTable has no cheap "most recent row in a
//     table" primitive, so after a restart the aggregator queries its
//     destination over exponentially longer lookbacks until it finds any
//     row, then locates the newest aggregated period by binary search;
//   - before aggregating a period, it issues FlushThrough(source, end) —
//     the §4.1.2 proposed command — instead of assuming data older than 20
//     minutes has reached disk.
#ifndef LITTLETABLE_APPS_AGGREGATOR_H_
#define LITTLETABLE_APPS_AGGREGATOR_H_

#include <optional>
#include <string>

#include "apps/config_store.h"
#include "sql/backend.h"
#include "util/hyperloglog.h"

namespace lt {
namespace apps {

struct AggregatorOptions {
  std::string usage_table = "usage";
  std::string events_table = "events";
  std::string network_dest = "usage_by_network_10m";
  std::string tag_dest = "usage_by_tag_10m";
  std::string clients_dest = "clients_hourly";
  Timestamp period = 10 * kMicrosPerMinute;
  Timestamp hll_period = kMicrosPerHour;
  /// Furthest the restart discovery looks back before assuming an empty
  /// destination.
  Timestamp max_lookback = 60 * kMicrosPerDay;
  Timestamp ttl = 0;
  int hll_precision = 12;
};

class Aggregator {
 public:
  Aggregator(sql::SqlBackend* backend, const ConfigStore* config,
             AggregatorOptions options);

  Status EnsureTables();

  /// Catches up: aggregates every complete period whose data is durable,
  /// from the last aggregated period (discovering it if unknown) to `now`.
  Status Run(Timestamp now);

  /// Restart discovery (exponential lookback + binary search); leaves the
  /// next period to aggregate in next_period_start_.
  Status RebuildProgress(Timestamp now);

  /// Unions the hourly sketches of [from, to) and estimates the distinct
  /// client count — re-aggregation at a coarser granularity.
  Result<double> DistinctClientsOverRange(NetworkId network, Timestamp from,
                                          Timestamp to);

  void ForgetProgress() { next_period_start_.reset(); }
  uint64_t periods_aggregated() const { return periods_aggregated_; }
  std::optional<Timestamp> next_period_start() const {
    return next_period_start_;
  }

 private:
  Status AggregateUsagePeriod(Timestamp start);
  Status AggregateClientsPeriod(Timestamp start);
  /// True if any destination row exists with ts in [from, to].
  Result<bool> AnyDestRowIn(Timestamp from, Timestamp to);

  sql::SqlBackend* const backend_;
  const ConfigStore* const config_;
  AggregatorOptions opts_;
  std::optional<Timestamp> next_period_start_;
  uint64_t periods_aggregated_ = 0;
};

}  // namespace apps
}  // namespace lt

#endif  // LITTLETABLE_APPS_AGGREGATOR_H_
