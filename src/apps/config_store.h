// ConfigStore: the stand-in for the PostgreSQL configuration database the
// shard runs alongside LittleTable (§2.1).
//
// Dashboard keeps device/network configuration — including user-defined
// tags — in PostgreSQL, and aggregators join LittleTable source data against
// those dimension tables (§4.1.2: "a school might tag its wireless access
// points with 'classrooms', 'playing-fields'"). This reproduction only needs
// the dimension-table role, so ConfigStore is a small in-memory relational
// map: customers own networks, networks own devices, devices carry tags.
#ifndef LITTLETABLE_APPS_CONFIG_STORE_H_
#define LITTLETABLE_APPS_CONFIG_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lt {
namespace apps {

using CustomerId = int64_t;
using NetworkId = int64_t;
using DeviceId = int64_t;

enum class DeviceType { kAccessPoint, kSwitch, kFirewall, kCamera };

struct DeviceConfig {
  DeviceId id = 0;
  NetworkId network = 0;
  DeviceType type = DeviceType::kAccessPoint;
  std::vector<std::string> tags;
};

struct NetworkConfig {
  NetworkId id = 0;
  CustomerId customer = 0;
  std::string name;
};

class ConfigStore {
 public:
  void AddNetwork(const NetworkConfig& network) {
    networks_[network.id] = network;
  }
  void AddDevice(const DeviceConfig& device) {
    devices_[device.id] = device;
    by_network_[device.network].push_back(device.id);
  }

  const NetworkConfig* GetNetwork(NetworkId id) const {
    auto it = networks_.find(id);
    return it == networks_.end() ? nullptr : &it->second;
  }
  const DeviceConfig* GetDevice(DeviceId id) const {
    auto it = devices_.find(id);
    return it == devices_.end() ? nullptr : &it->second;
  }

  std::vector<DeviceId> DevicesInNetwork(NetworkId id) const {
    auto it = by_network_.find(id);
    return it == by_network_.end() ? std::vector<DeviceId>{} : it->second;
  }

  std::vector<NetworkId> AllNetworks() const {
    std::vector<NetworkId> ids;
    for (const auto& [id, n] : networks_) ids.push_back(id);
    return ids;
  }
  std::vector<DeviceId> AllDevices() const {
    std::vector<DeviceId> ids;
    for (const auto& [id, d] : devices_) ids.push_back(id);
    return ids;
  }

 private:
  std::map<NetworkId, NetworkConfig> networks_;
  std::map<DeviceId, DeviceConfig> devices_;
  std::map<NetworkId, std::vector<DeviceId>> by_network_;
};

}  // namespace apps
}  // namespace lt

#endif  // LITTLETABLE_APPS_CONFIG_STORE_H_
