#include "apps/aggregator.h"

#include <map>

namespace lt {
namespace apps {
namespace {

Timestamp AlignDown(Timestamp t, Timestamp unit) {
  Timestamp r = t % unit;
  if (r < 0) r += unit;
  return t - r;
}

}  // namespace

Aggregator::Aggregator(sql::SqlBackend* backend, const ConfigStore* config,
                       AggregatorOptions options)
    : backend_(backend), config_(config), opts_(options) {}

Status Aggregator::EnsureTables() {
  auto create = [&](const std::string& name, Schema schema) -> Status {
    Status s = backend_->CreateTable(name, schema, opts_.ttl);
    if (s.IsAlreadyExists()) return Status::OK();
    return s;
  };
  LT_RETURN_IF_ERROR(create(
      opts_.network_dest,
      Schema({Column("network", ColumnType::kInt64),
              Column("ts", ColumnType::kTimestamp),
              Column("bytes", ColumnType::kInt64),
              Column("avg_rate", ColumnType::kDouble),
              Column("samples", ColumnType::kInt64)},
             2)));
  LT_RETURN_IF_ERROR(create(
      opts_.tag_dest,
      Schema({Column("customer", ColumnType::kInt64),
              Column("tag", ColumnType::kString),
              Column("ts", ColumnType::kTimestamp),
              Column("bytes", ColumnType::kInt64)},
             3)));
  LT_RETURN_IF_ERROR(create(
      opts_.clients_dest,
      Schema({Column("network", ColumnType::kInt64),
              Column("ts", ColumnType::kTimestamp),
              Column("sketch", ColumnType::kBlob),
              Column("estimate", ColumnType::kDouble)},
             2)));
  return Status::OK();
}

Result<bool> Aggregator::AnyDestRowIn(Timestamp from, Timestamp to) {
  QueryBounds bounds;
  bounds.min_ts = from;
  bounds.max_ts = to;
  bounds.limit = 1;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.network_dest, bounds, &rows));
  return !rows.empty();
}

Status Aggregator::RebuildProgress(Timestamp now) {
  // Exponentially longer lookbacks until some destination row appears
  // (§4.1.2): each probe is a cheap limit-1 query.
  Timestamp lookback = opts_.period;
  bool found = false;
  while (lookback <= opts_.max_lookback) {
    LT_ASSIGN_OR_RETURN(found, AnyDestRowIn(now - lookback, now));
    if (found) break;
    lookback *= 2;
  }
  if (!found) {
    LT_ASSIGN_OR_RETURN(found, AnyDestRowIn(now - opts_.max_lookback, now));
  }
  if (!found) {
    // Empty destination: start aggregating from one lookback ago.
    next_period_start_ =
        AlignDown(now - opts_.max_lookback, opts_.period);
    return Status::OK();
  }
  // Binary search for the most recent row: maintain the invariant that
  // [lo, now] contains a row, and shrink until lo is within one period of
  // the newest row.
  Timestamp lo = now - lookback;
  Timestamp hi = now;
  while (hi - lo > opts_.period) {
    Timestamp mid = lo + (hi - lo) / 2;
    LT_ASSIGN_OR_RETURN(bool upper, AnyDestRowIn(mid, now));
    if (upper) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  // The newest aggregated period starts at or after AlignDown(lo); re-run
  // it and everything after (aggregation periods are idempotent to
  // re-process only if the destination rows don't already exist, so resume
  // from the period after lo's).
  next_period_start_ = AlignDown(lo, opts_.period) + opts_.period;
  return Status::OK();
}

Status Aggregator::Run(Timestamp now) {
  if (!next_period_start_) {
    LT_RETURN_IF_ERROR(RebuildProgress(now));
  }
  while (*next_period_start_ + opts_.period <= now) {
    Timestamp start = *next_period_start_;
    // Make sure the source rows for this period are on disk before deriving
    // data from them (§4.1.2's proposed flush command).
    LT_RETURN_IF_ERROR(
        backend_->FlushThrough(opts_.usage_table, start + opts_.period));
    LT_RETURN_IF_ERROR(AggregateUsagePeriod(start));
    if (start % opts_.hll_period == 0 &&
        start + opts_.hll_period <= now) {
      LT_RETURN_IF_ERROR(
          backend_->FlushThrough(opts_.events_table, start + opts_.hll_period));
      LT_RETURN_IF_ERROR(AggregateClientsPeriod(start));
    }
    periods_aggregated_++;
    next_period_start_ = start + opts_.period;
  }
  return Status::OK();
}

Status Aggregator::AggregateUsagePeriod(Timestamp start) {
  QueryBounds bounds;
  bounds.min_ts = start;
  bounds.max_ts = start + opts_.period;
  bounds.max_ts_inclusive = false;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.usage_table, bounds, &rows));

  struct NetAgg {
    int64_t bytes = 0;
    double rate_sum = 0;
    int64_t samples = 0;
  };
  std::map<NetworkId, NetAgg> by_network;
  std::map<std::pair<CustomerId, std::string>, int64_t> by_tag;

  for (const Row& row : rows) {
    // Source row: (network, device, ts) -> (t1, counter, rate).
    NetworkId network = row[0].i64();
    DeviceId device = row[1].i64();
    Timestamp t2 = row[2].AsInt();
    Timestamp t1 = row[3].AsInt();
    double rate = row[5].dbl();
    int64_t bytes = static_cast<int64_t>(
        rate * (static_cast<double>(t2 - t1) / kMicrosPerSecond));

    NetAgg& agg = by_network[network];
    agg.bytes += bytes;
    agg.rate_sum += rate;
    agg.samples++;

    // Tag rollup joins the device's tags from the config store (§4.1.2).
    const DeviceConfig* cfg = config_->GetDevice(device);
    const NetworkConfig* net = config_->GetNetwork(network);
    if (cfg != nullptr && net != nullptr) {
      for (const std::string& tag : cfg->tags) {
        by_tag[{net->customer, tag}] += bytes;
      }
    }
  }

  // Destination rows for one period are inserted in ascending key order,
  // the pattern the §3.4.4 max-key uniqueness fast path is built for.
  std::vector<Row> out;
  for (const auto& [network, agg] : by_network) {
    out.push_back({Value::Int64(network), Value::Ts(start),
                   Value::Int64(agg.bytes),
                   Value::Double(agg.samples ? agg.rate_sum / agg.samples : 0),
                   Value::Int64(agg.samples)});
  }
  if (!out.empty()) {
    Status s = backend_->Insert(opts_.network_dest, out);
    // Re-processing a period after a crash re-creates existing rows.
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }

  out.clear();
  for (const auto& [key, bytes] : by_tag) {
    out.push_back({Value::Int64(key.first), Value::String(key.second),
                   Value::Ts(start), Value::Int64(bytes)});
  }
  if (!out.empty()) {
    Status s = backend_->Insert(opts_.tag_dest, out);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  return Status::OK();
}

Status Aggregator::AggregateClientsPeriod(Timestamp start) {
  QueryBounds bounds;
  bounds.min_ts = start;
  bounds.max_ts = start + opts_.hll_period;
  bounds.max_ts_inclusive = false;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.events_table, bounds, &rows));

  std::map<NetworkId, HyperLogLog> sketches;
  for (const Row& row : rows) {
    // Source row: (network, device, ts) -> (event_id, kind, detail); the
    // detail of assoc/dhcp events identifies the client.
    const std::string& kind = row[4].bytes();
    if (kind != "assoc" && kind != "dhcp") continue;
    NetworkId network = row[0].i64();
    auto it = sketches.find(network);
    if (it == sketches.end()) {
      it = sketches.emplace(network, HyperLogLog(opts_.hll_precision)).first;
    }
    it->second.Add(row[5].bytes());
  }

  std::vector<Row> out;
  for (auto& [network, sketch] : sketches) {
    out.push_back({Value::Int64(network), Value::Ts(start),
                   Value::Blob(sketch.Serialize()),
                   Value::Double(sketch.Estimate())});
  }
  if (out.empty()) return Status::OK();
  Status s = backend_->Insert(opts_.clients_dest, out);
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  return Status::OK();
}

Result<double> Aggregator::DistinctClientsOverRange(NetworkId network,
                                                    Timestamp from,
                                                    Timestamp to) {
  QueryBounds bounds = QueryBounds::ForPrefix({Value::Int64(network)});
  bounds.min_ts = from;
  bounds.max_ts = to;
  bounds.max_ts_inclusive = false;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.clients_dest, bounds, &rows));
  HyperLogLog merged(opts_.hll_precision);
  for (const Row& row : rows) {
    HyperLogLog sketch(opts_.hll_precision);
    LT_RETURN_IF_ERROR(HyperLogLog::Deserialize(row[2].bytes(), &sketch));
    LT_RETURN_IF_ERROR(merged.Merge(sketch));
  }
  return merged.Estimate();
}

}  // namespace apps
}  // namespace lt
