#include "apps/events_grabber.h"

namespace lt {
namespace apps {

EventsGrabber::EventsGrabber(sql::SqlBackend* backend, DeviceFleet* fleet,
                             const ConfigStore* config,
                             EventsGrabberOptions options)
    : backend_(backend), fleet_(fleet), config_(config), opts_(options) {}

Status EventsGrabber::EnsureTable() {
  Schema schema({Column("network", ColumnType::kInt64),
                 Column("device", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("event_id", ColumnType::kInt64),
                 Column("kind", ColumnType::kString),
                 Column("detail", ColumnType::kString)},
                /*num_key_columns=*/3);
  Status s = backend_->CreateTable(opts_.table, schema, opts_.ttl);
  if (s.IsAlreadyExists()) return Status::OK();
  return s;
}

Status EventsGrabber::Poll(Timestamp now) {
  std::vector<Row> rows;
  for (DeviceId id : fleet_->DeviceIds()) {
    SimulatedDevice* device = fleet_->Get(id);
    if (!device->ReachableAt(now)) continue;
    const DeviceConfig* cfg = config_->GetDevice(id);
    if (cfg == nullptr) continue;

    int64_t after;
    auto it = last_id_.find(id);
    if (it != last_id_.end()) {
      after = it->second;
    } else {
      // First contact with no cache entry: take everything the device still
      // stores (its ring buffer bounds the damage).
      after = -1;
    }
    std::vector<SimEvent> events =
        device->EventsAfter(after, now, opts_.max_events_per_poll);
    if (events.empty()) continue;
    for (const SimEvent& e : events) {
      rows.push_back({Value::Int64(cfg->network), Value::Int64(id),
                      Value::Ts(e.ts), Value::Int64(e.id),
                      Value::String(e.kind), Value::String(e.detail)});
    }
    last_id_[id] = events.back().id;
  }
  Status s = rows.empty() ? Status::OK() : backend_->Insert(opts_.table, rows);
  // Duplicate keys mean a previous poll's insert partially survived a crash
  // boundary we didn't know about; the grabber treats them as benign
  // (append-only, single-writer data is idempotent to re-fetch).
  if (!s.ok() && !s.IsAlreadyExists()) return s;
  if (s.ok()) rows_inserted_ += rows.size();

  if (opts_.sentinel_period > 0 && now - last_sentinel_ >= opts_.sentinel_period) {
    LT_RETURN_IF_ERROR(InsertSentinels(now));
    last_sentinel_ = now;
  }
  return Status::OK();
}

Status EventsGrabber::InsertSentinels(Timestamp now) {
  // A sentinel row per device carrying its latest event id (§4.2's proposed
  // optimization): the restart path then never searches further back than
  // one sentinel period.
  std::vector<Row> rows;
  for (const auto& [id, latest] : last_id_) {
    const DeviceConfig* cfg = config_->GetDevice(id);
    if (cfg == nullptr) continue;
    rows.push_back({Value::Int64(cfg->network), Value::Int64(id),
                    Value::Ts(now), Value::Int64(latest),
                    Value::String("sentinel"), Value::String("")});
  }
  if (rows.empty()) return Status::OK();
  Status s = backend_->Insert(opts_.table, rows);
  if (s.IsAlreadyExists()) return Status::OK();
  return s;
}

Status EventsGrabber::RebuildCache(Timestamp now) {
  last_id_.clear();
  // Tier 1: one scan over the recent window.
  QueryBounds bounds;
  bounds.min_ts = now - opts_.recent_window;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.table, bounds, &rows));
  std::map<DeviceId, std::pair<Timestamp, int64_t>> best;
  for (const Row& row : rows) {
    DeviceId id = row[1].i64();
    Timestamp ts = row[2].AsInt();
    auto it = best.find(id);
    if (it == best.end() || ts > it->second.first) {
      best[id] = {ts, row[3].i64()};
    }
  }
  for (const auto& [id, entry] : best) last_id_[id] = entry.second;

  // Tier 2: devices with no recent row. Ask the device for its oldest
  // stored event to bound the lookback, then use a latest-row-for-prefix
  // query (§3.4.5) for its last inserted row.
  for (DeviceId id : fleet_->DeviceIds()) {
    if (last_id_.count(id)) continue;
    SimulatedDevice* device = fleet_->Get(id);
    if (!device->ReachableAt(now)) continue;
    const DeviceConfig* cfg = config_->GetDevice(id);
    if (cfg == nullptr) continue;
    SimEvent oldest;
    if (!device->OldestStoredEvent(now, &oldest)) continue;
    deep_searches_++;
    Row row;
    bool found = false;
    LT_RETURN_IF_ERROR(backend_->LatestRow(
        opts_.table, {Value::Int64(cfg->network), Value::Int64(id)}, &row,
        &found));
    if (found) {
      last_id_[id] = row[3].i64();
    }
    // If nothing was found, the next Poll starts from the device's oldest
    // stored event (after = -1), exactly like first contact.
  }
  return Status::OK();
}

}  // namespace apps
}  // namespace lt
