// UsageGrabber (§4.1.1): the daemon that polls byte counters from devices
// and stores transfer rates in LittleTable.
//
// Every minute it fetches from each device D in network N a cumulative byte
// counter. It keeps an in-memory cache of the previous (t1, c1) per device;
// on fetching (t2, c2) it computes r = (c2-c1)/(t2-t1) and inserts the row
// key (N, D, t2) -> (t1, c2, r), meaning "the device transferred at rate r
// over [t1, t2)".
//
// The unavailability threshold T does double duty:
//   - a device silent for longer than T gets no synthetic rate row —
//     Dashboard shows a gap instead of a fictitious steady rate;
//   - after a LittleTable crash the grabber rebuilds its cache by querying
//     only the last T of data, because any device entry older than T would
//     be treated as first-contact anyway.
// The paper sets T to one hour and estimates the rebuild query at under
// four seconds for a 30,000-device shard.
#ifndef LITTLETABLE_APPS_USAGE_GRABBER_H_
#define LITTLETABLE_APPS_USAGE_GRABBER_H_

#include <map>
#include <memory>
#include <string>

#include "apps/config_store.h"
#include "apps/device_sim.h"
#include "sql/backend.h"

namespace lt {
namespace apps {

struct UsageGrabberOptions {
  std::string table = "usage";
  /// The unavailability threshold T (paper: one hour).
  Timestamp threshold = kMicrosPerHour;
  /// Table TTL when the grabber creates the table.
  Timestamp ttl = 0;
  /// Poll cadence (for PollDue bookkeeping; the caller drives time).
  Timestamp poll_interval = kMicrosPerMinute;
};

class UsageGrabber {
 public:
  /// `backend`, `fleet`, and `config` must outlive the grabber.
  UsageGrabber(sql::SqlBackend* backend, DeviceFleet* fleet,
               const ConfigStore* config, UsageGrabberOptions options);

  /// Creates the usage table if missing:
  ///   (network int64, device int64, ts) -> (t1 timestamp, counter int64,
  ///    rate double)
  Status EnsureTable();

  /// One polling pass at time `now`: fetches counters from every reachable
  /// device and inserts rate rows.
  Status Poll(Timestamp now);

  /// Rebuilds the in-memory cache from LittleTable after a restart or
  /// database crash: one query over the last T of data.
  Status RebuildCache(Timestamp now);

  /// Drops all in-memory state (simulates a grabber crash).
  void ForgetCache() { cache_.clear(); }

  size_t cache_size() const { return cache_.size(); }
  uint64_t rows_inserted() const { return rows_inserted_; }
  uint64_t gaps_observed() const { return gaps_; }

 private:
  struct Sample {
    Timestamp t = 0;
    int64_t counter = 0;
  };

  sql::SqlBackend* const backend_;
  DeviceFleet* const fleet_;
  const ConfigStore* const config_;
  UsageGrabberOptions opts_;
  std::map<DeviceId, Sample> cache_;
  uint64_t rows_inserted_ = 0;
  uint64_t gaps_ = 0;
};

}  // namespace apps
}  // namespace lt

#endif  // LITTLETABLE_APPS_USAGE_GRABBER_H_
