#include "apps/motion_grabber.h"

namespace lt {
namespace apps {

MotionGrabber::MotionGrabber(sql::SqlBackend* backend, DeviceFleet* fleet,
                             const ConfigStore* config,
                             MotionGrabberOptions options)
    : backend_(backend), fleet_(fleet), config_(config), opts_(options) {}

Status MotionGrabber::EnsureTable() {
  Schema schema({Column("camera", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("word", ColumnType::kInt32),
                 Column("duration", ColumnType::kInt64)},
                /*num_key_columns=*/2);
  Status s = backend_->CreateTable(opts_.table, schema, opts_.ttl);
  if (s.IsAlreadyExists()) return Status::OK();
  return s;
}

Status MotionGrabber::Poll(Timestamp now) {
  std::vector<Row> rows;
  for (DeviceId id : fleet_->DeviceIds()) {
    const DeviceConfig* cfg = config_->GetDevice(id);
    if (cfg == nullptr || cfg->type != DeviceType::kCamera) continue;
    SimulatedDevice* camera = fleet_->Get(id);
    if (!camera->ReachableAt(now)) continue;
    Timestamp from = fetched_through_.count(id) ? fetched_through_[id]
                                                : now - kMicrosPerHour;
    if (from >= now) continue;
    for (const SimMotion& m : camera->MotionBetween(from, now)) {
      rows.push_back({Value::Int64(id), Value::Ts(m.ts),
                      Value::Int32(static_cast<int32_t>(m.word)),
                      Value::Int64(m.duration)});
    }
    fetched_through_[id] = now;
  }
  if (rows.empty()) return Status::OK();
  Status s = backend_->Insert(opts_.table, rows);
  if (s.IsAlreadyExists()) return Status::OK();  // Re-fetch overlap: benign.
  LT_RETURN_IF_ERROR(s);
  rows_inserted_ += rows.size();
  return Status::OK();
}

Status MotionGrabber::SearchMotion(DeviceId camera, const MotionRect& rect,
                                   Timestamp from, Timestamp to, size_t limit,
                                   std::vector<MotionHit>* hits) {
  hits->clear();
  QueryBounds bounds = QueryBounds::ForPrefix({Value::Int64(camera)});
  bounds.min_ts = from;
  bounds.max_ts = to;
  bounds.max_ts_inclusive = false;
  bounds.direction = Direction::kDescending;  // Backwards in time (§4.3).
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.table, bounds, &rows));
  for (const Row& row : rows) {
    uint32_t word = static_cast<uint32_t>(row[2].i32());
    if (!MotionIntersects(word, rect)) continue;
    hits->push_back(MotionHit{row[1].AsInt(), word, row[3].i64()});
    if (limit > 0 && hits->size() >= limit) break;
  }
  return Status::OK();
}

Status MotionGrabber::Heatmap(DeviceId camera, Timestamp from, Timestamp to,
                              MotionHeatmap* heatmap) {
  QueryBounds bounds = QueryBounds::ForPrefix({Value::Int64(camera)});
  bounds.min_ts = from;
  bounds.max_ts = to;
  bounds.max_ts_inclusive = false;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.table, bounds, &rows));
  for (const Row& row : rows) {
    heatmap->Add(static_cast<uint32_t>(row[2].i32()));
  }
  return Status::OK();
}

}  // namespace apps
}  // namespace lt
