#include "apps/motion.h"

#include <algorithm>

namespace lt {
namespace apps {

MotionRect MotionRect::FromPixels(int x0, int y0, int x1, int y1) {
  MotionRect rect;
  rect.min_block_col = std::clamp(x0 / kMacroblockPx, 0, kMacroblockCols - 1);
  rect.min_block_row = std::clamp(y0 / kMacroblockPx, 0, kMacroblockRows - 1);
  rect.max_block_col = std::clamp(x1 / kMacroblockPx, 0, kMacroblockCols - 1);
  rect.max_block_row = std::clamp(y1 / kMacroblockPx, 0, kMacroblockRows - 1);
  return rect;
}

bool MotionIntersects(uint32_t word, const MotionRect& rect) {
  const int base_col = MotionCellCol(word) * kCellBlockCols;
  const int base_row = MotionCellRow(word) * kCellBlockRows;
  uint32_t blocks = MotionBlocks(word);
  while (blocks != 0) {
    int bit = __builtin_ctz(blocks);
    blocks &= blocks - 1;
    int col = base_col + bit % kCellBlockCols;
    int row = base_row + bit / kCellBlockCols;
    if (col >= rect.min_block_col && col <= rect.max_block_col &&
        row >= rect.min_block_row && row <= rect.max_block_row) {
      return true;
    }
  }
  return false;
}

void MotionHeatmap::Add(uint32_t word) {
  const int base_col = MotionCellCol(word) * kCellBlockCols;
  const int base_row = MotionCellRow(word) * kCellBlockRows;
  uint32_t blocks = MotionBlocks(word);
  while (blocks != 0) {
    int bit = __builtin_ctz(blocks);
    blocks &= blocks - 1;
    int col = base_col + bit % kCellBlockCols;
    int row = base_row + bit / kCellBlockCols;
    if (row < kMacroblockRows && col < kMacroblockCols) counts[row][col]++;
  }
}

uint64_t MotionHeatmap::Total() const {
  uint64_t total = 0;
  for (int r = 0; r < kMacroblockRows; r++) {
    for (int c = 0; c < kMacroblockCols; c++) total += counts[r][c];
  }
  return total;
}

}  // namespace apps
}  // namespace lt
