#include "apps/usage_grabber.h"

namespace lt {
namespace apps {

UsageGrabber::UsageGrabber(sql::SqlBackend* backend, DeviceFleet* fleet,
                           const ConfigStore* config,
                           UsageGrabberOptions options)
    : backend_(backend), fleet_(fleet), config_(config), opts_(options) {}

Status UsageGrabber::EnsureTable() {
  Schema schema({Column("network", ColumnType::kInt64),
                 Column("device", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("t1", ColumnType::kTimestamp),
                 Column("counter", ColumnType::kInt64),
                 Column("rate", ColumnType::kDouble)},
                /*num_key_columns=*/3);
  Status s = backend_->CreateTable(opts_.table, schema, opts_.ttl);
  if (s.IsAlreadyExists()) return Status::OK();
  return s;
}

Status UsageGrabber::Poll(Timestamp now) {
  std::vector<Row> rows;
  for (DeviceId id : fleet_->DeviceIds()) {
    SimulatedDevice* device = fleet_->Get(id);
    if (!device->ReachableAt(now)) continue;
    const DeviceConfig* cfg = config_->GetDevice(id);
    if (cfg == nullptr) continue;

    const int64_t c2 = device->ByteCounterAt(now);
    auto it = cache_.find(id);
    if (it == cache_.end()) {
      // Very first response from this device (or first since its cache
      // entry aged out): remember it, insert nothing (§4.1.1).
      cache_[id] = Sample{now, c2};
      continue;
    }
    const Sample prev = it->second;
    it->second = Sample{now, c2};
    if (now - prev.t > opts_.threshold) {
      // Unavailable for longer than T: showing a steady rate over the whole
      // span would be disingenuous — leave a gap.
      gaps_++;
      continue;
    }
    if (now <= prev.t) continue;
    double rate = static_cast<double>(c2 - prev.counter) /
                  (static_cast<double>(now - prev.t) / kMicrosPerSecond);
    rows.push_back({Value::Int64(cfg->network), Value::Int64(id),
                    Value::Ts(now), Value::Ts(prev.t), Value::Int64(c2),
                    Value::Double(rate)});
  }
  if (rows.empty()) return Status::OK();
  LT_RETURN_IF_ERROR(backend_->Insert(opts_.table, rows));
  rows_inserted_ += rows.size();
  return Status::OK();
}

Status UsageGrabber::RebuildCache(Timestamp now) {
  cache_.clear();
  // One scan over the last T: the maximum-timestamp row per device within
  // the threshold window (older entries would be dropped anyway).
  QueryBounds bounds;
  bounds.min_ts = now - opts_.threshold;
  std::vector<Row> rows;
  LT_RETURN_IF_ERROR(backend_->QueryAll(opts_.table, bounds, &rows));
  for (const Row& row : rows) {
    DeviceId id = row[1].i64();
    Timestamp ts = row[2].AsInt();
    int64_t counter = row[4].i64();
    auto it = cache_.find(id);
    if (it == cache_.end() || ts > it->second.t) {
      cache_[id] = Sample{ts, counter};
    }
  }
  return Status::OK();
}

}  // namespace apps
}  // namespace lt
