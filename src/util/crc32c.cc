#include "util/crc32c.h"

#include <array>

namespace lt {
namespace crc32c {
namespace {

// CRC32C polynomial, reflected.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Table {
  uint32_t t[4][256];
};

Table BuildTable() {
  Table table{};
  for (uint32_t i = 0; i < 256; i++) {
    uint32_t crc = i;
    for (int j = 0; j < 8; j++) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    table.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; i++) {
    table.t[1][i] = (table.t[0][i] >> 8) ^ table.t[0][table.t[0][i] & 0xff];
    table.t[2][i] = (table.t[1][i] >> 8) ^ table.t[0][table.t[1][i] & 0xff];
    table.t[3][i] = (table.t[2][i] >> 8) ^ table.t[0][table.t[2][i] & 0xff];
  }
  return table;
}

const Table& GetTable() {
  static const Table table = BuildTable();
  return table;
}

}  // namespace

uint32_t Extend(uint32_t init_crc, const char* data, size_t n) {
  const Table& tab = GetTable();
  const unsigned char* p = reinterpret_cast<const unsigned char*>(data);
  uint32_t crc = init_crc ^ 0xffffffffu;
  // Process 4 bytes at a time (slicing-by-4).
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tab.t[3][crc & 0xff] ^ tab.t[2][(crc >> 8) & 0xff] ^
          tab.t[1][(crc >> 16) & 0xff] ^ tab.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) {
    crc = (crc >> 8) ^ tab.t[0][(crc ^ *p++) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace lt
