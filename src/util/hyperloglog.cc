#include "util/hyperloglog.h"

#include <cmath>

#include "util/bloom.h"  // Reuses the 64-bit byte-string hash.

namespace lt {

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  if (precision_ < 4) precision_ = 4;
  if (precision_ > 16) precision_ = 16;
  registers_.assign(1u << precision_, 0);
}

void HyperLogLog::Add(const Slice& element) { AddHash(BloomHash(element)); }

void HyperLogLog::AddHash(uint64_t hash) {
  const uint32_t index = static_cast<uint32_t>(hash >> (64 - precision_));
  // Rank = position of the leftmost 1-bit in the remaining bits, 1-based.
  uint64_t rest = hash << precision_;
  uint8_t rank;
  if (rest == 0) {
    rank = static_cast<uint8_t>(64 - precision_ + 1);
  } else {
    rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
  }
  if (rank > registers_[index]) registers_[index] = rank;
}

double HyperLogLog::Estimate() const {
  const size_t m = registers_.size();
  double alpha;
  switch (m) {
    case 16: alpha = 0.673; break;
    case 32: alpha = 0.697; break;
    case 64: alpha = 0.709; break;
    default: alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(m)); break;
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) zeros++;
  }
  double estimate = alpha * m * m / sum;
  if (estimate <= 2.5 * m && zeros != 0) {
    // Small-range correction: linear counting.
    estimate = m * std::log(static_cast<double>(m) / zeros);
  }
  return estimate;
}

Status HyperLogLog::Merge(const HyperLogLog& other) {
  if (other.precision_ != precision_) {
    return Status::InvalidArgument("HLL precision mismatch");
  }
  for (size_t i = 0; i < registers_.size(); i++) {
    if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
  }
  return Status::OK();
}

std::string HyperLogLog::Serialize() const {
  std::string out;
  out.push_back(static_cast<char>(precision_));
  out.append(reinterpret_cast<const char*>(registers_.data()),
             registers_.size());
  return out;
}

Status HyperLogLog::Deserialize(const Slice& data, HyperLogLog* out) {
  if (data.empty()) return Status::Corruption("empty HLL blob");
  int precision = static_cast<unsigned char>(data[0]);
  if (precision < 4 || precision > 16 ||
      data.size() != 1 + (1u << precision)) {
    return Status::Corruption("bad HLL blob");
  }
  out->precision_ = precision;
  out->registers_.assign(
      reinterpret_cast<const uint8_t*>(data.data()) + 1,
      reinterpret_cast<const uint8_t*>(data.data()) + data.size());
  return Status::OK();
}

}  // namespace lt
