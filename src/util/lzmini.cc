#include "util/lzmini.h"

#include <cstdint>
#include <cstring>

#include "util/coding.h"

namespace lt {
namespace lzmini {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxDistance = 65535;
constexpr int kHashBits = 14;
constexpr size_t kHashSize = 1u << kHashBits;
// The final kTailLiterals bytes of the input are always emitted as literals,
// which lets the match loop read 4 bytes at a time without bounds checks.
constexpr size_t kTailLiterals = 5;

inline uint32_t Load32(const char* p) {
  uint32_t v;
  memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutLength(std::string* out, size_t extra) {
  // Emits the continuation bytes for a nibble that was 15.
  while (extra >= 255) {
    out->push_back(static_cast<char>(0xff));
    extra -= 255;
  }
  out->push_back(static_cast<char>(extra));
}

void EmitToken(std::string* out, const char* lit, size_t lit_len,
               size_t match_len /* 0 = none */, size_t distance) {
  size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  size_t match_nibble = 0;
  if (match_len > 0) {
    size_t m = match_len - kMinMatch;
    match_nibble = m < 15 ? m : 15;
  }
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_nibble == 15) PutLength(out, lit_len - 15);
  out->append(lit, lit_len);
  if (match_len > 0) {
    if (match_nibble == 15) PutLength(out, match_len - kMinMatch - 15);
    out->push_back(static_cast<char>(distance & 0xff));
    out->push_back(static_cast<char>(distance >> 8));
  }
}

bool GetLength(Slice* in, size_t base, size_t* len) {
  *len = base;
  if (base != 15) return true;
  while (true) {
    if (in->empty()) return false;
    unsigned char b = static_cast<unsigned char>((*in)[0]);
    in->remove_prefix(1);
    *len += b;
    if (b < 255) return true;
  }
}

}  // namespace

void Compress(const Slice& input, std::string* out) {
  PutVarint64(out, input.size());
  const char* base = input.data();
  const size_t n = input.size();
  if (n <= kMinMatch + kTailLiterals) {
    if (n > 0) EmitToken(out, base, n, 0, 0);
    return;
  }

  uint32_t table[kHashSize];
  // Positions are stored +1 so 0 means "empty".
  memset(table, 0, sizeof(table));

  size_t i = 0;           // Current scan position.
  size_t lit_start = 0;   // Start of the pending literal run.
  const size_t limit = n - kTailLiterals;

  while (i < limit) {
    uint32_t seq = Load32(base + i);
    uint32_t h = Hash(seq);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(i + 1);
    if (cand != 0) {
      size_t pos = cand - 1;
      if (i - pos <= kMaxDistance && Load32(base + pos) == seq) {
        // Extend the match as far as possible (stopping before the tail).
        size_t match_len = kMinMatch;
        while (i + match_len < limit &&
               base[pos + match_len] == base[i + match_len]) {
          match_len++;
        }
        EmitToken(out, base + lit_start, i - lit_start, match_len, i - pos);
        // Insert a couple of positions inside the match to improve later
        // matches without paying full per-byte hashing cost.
        size_t mid = i + match_len / 2;
        if (mid + kMinMatch <= limit) {
          table[Hash(Load32(base + mid))] = static_cast<uint32_t>(mid + 1);
        }
        i += match_len;
        lit_start = i;
        continue;
      }
    }
    i++;
  }
  // Trailing literals (always non-empty because of kTailLiterals).
  EmitToken(out, base + lit_start, n - lit_start, 0, 0);
}

Status GetUncompressedSize(const Slice& input, uint64_t* size) {
  Slice in = input;
  if (!GetVarint64(&in, size)) {
    return Status::Corruption("lzmini: bad frame header");
  }
  return Status::OK();
}

Status Decompress(const Slice& input, std::string* out) {
  Slice in = input;
  uint64_t expected;
  if (!GetVarint64(&in, &expected)) {
    return Status::Corruption("lzmini: bad frame header");
  }
  const size_t out_base = out->size();
  out->reserve(out_base + expected);

  size_t produced = 0;
  while (produced < expected) {
    if (in.empty()) return Status::Corruption("lzmini: truncated frame");
    unsigned char token = static_cast<unsigned char>(in[0]);
    in.remove_prefix(1);

    size_t lit_len;
    if (!GetLength(&in, token >> 4, &lit_len)) {
      return Status::Corruption("lzmini: truncated literal length");
    }
    if (lit_len > in.size() || produced + lit_len > expected) {
      return Status::Corruption("lzmini: literal overruns frame");
    }
    out->append(in.data(), lit_len);
    in.remove_prefix(lit_len);
    produced += lit_len;
    if (produced == expected) break;  // Final token carries no match.

    size_t match_len;
    if (!GetLength(&in, token & 0x0f, &match_len)) {
      return Status::Corruption("lzmini: truncated match length");
    }
    match_len += kMinMatch;
    if (in.size() < 2) return Status::Corruption("lzmini: truncated distance");
    size_t distance = static_cast<unsigned char>(in[0]) |
                      (static_cast<size_t>(static_cast<unsigned char>(in[1]))
                       << 8);
    in.remove_prefix(2);
    if (distance == 0 || distance > produced) {
      return Status::Corruption("lzmini: bad match distance");
    }
    if (produced + match_len > expected) {
      return Status::Corruption("lzmini: match overruns frame");
    }
    // Byte-by-byte copy: matches may overlap their own output (RLE case).
    size_t src = out->size() - distance;
    for (size_t k = 0; k < match_len; k++) {
      out->push_back((*out)[src + k]);
    }
    produced += match_len;
  }
  if (!in.empty()) return Status::Corruption("lzmini: trailing garbage");
  return Status::OK();
}

}  // namespace lzmini
}  // namespace lt
