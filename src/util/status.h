// Status and Result<T>: the error-handling idiom used throughout LittleTable.
//
// The core library does not throw exceptions. Every fallible operation
// returns a Status (or a Result<T>, which is a Status plus a value). This
// mirrors the convention of production storage engines (RocksDB, LevelDB,
// Arrow) and keeps error paths explicit and cheap.
#ifndef LITTLETABLE_UTIL_STATUS_H_
#define LITTLETABLE_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace lt {

/// Result status of a fallible operation.
///
/// A Status is either OK (the common, allocation-free case) or carries an
/// error code and a human-readable message. Statuses are cheap to copy and
/// move; an OK status stores no heap data.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kInvalidArgument,
    kIOError,
    kAlreadyExists,
    kNotSupported,
    kAborted,
    kNetworkError,
    kDeadlineExceeded,
    kUnavailable,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status NetworkError(std::string msg) {
    return Status(Code::kNetworkError, std::move(msg));
  }
  /// An operation did not complete within its deadline (e.g. a socket read
  /// against a hung peer). Retrying later may succeed.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// The service is temporarily unable to handle the request (peer closed
  /// the connection, server draining or over capacity, flush backlog at its
  /// hard cap). Safe to retry idempotent operations with backoff.
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsNetworkError() const { return code_ == Code::kNetworkError; }
  bool IsDeadlineExceeded() const { return code_ == Code::kDeadlineExceeded; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Renders e.g. "IOError: disk full" or "OK".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

/// A Status combined with a value: holds T on success, a non-OK Status on
/// failure. Use `value()` only after checking `ok()`.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}          // NOLINT(runtime/explicit)
  Result(Status status) : v_(std::move(status)) {    // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  T& value() {
    assert(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    assert(ok());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> v_;
};

}  // namespace lt

/// Propagates a non-OK status to the caller.
#define LT_RETURN_IF_ERROR(expr)             \
  do {                                       \
    ::lt::Status _s = (expr);                \
    if (!_s.ok()) return _s;                 \
  } while (0)

/// Evaluates a Result<T> expression, propagating failure, else binds `lhs`.
#define LT_ASSIGN_OR_RETURN(lhs, expr)       \
  auto LT_CONCAT_(res_, __LINE__) = (expr);  \
  if (!LT_CONCAT_(res_, __LINE__).ok())      \
    return LT_CONCAT_(res_, __LINE__).status(); \
  lhs = std::move(*LT_CONCAT_(res_, __LINE__))

#define LT_CONCAT_INNER_(a, b) a##b
#define LT_CONCAT_(a, b) LT_CONCAT_INNER_(a, b)

#endif  // LITTLETABLE_UTIL_STATUS_H_
