#include "util/metrics.h"

namespace lt {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<LatencyHistogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter->Value());
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.emplace_back(name, gauge->Value());
  }
  return out;
}

std::vector<std::pair<std::string, HistogramSnapshot>>
MetricsRegistry::HistogramSnapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, HistogramSnapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, hist] : histograms_) {
    out.emplace_back(name, hist->Snapshot());
  }
  return out;
}

}  // namespace lt
