#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace lt {
namespace {

// Two-sided 95% critical values of the Student's t-distribution by degrees of
// freedom; entries beyond the table fall back to the normal value 1.96.
double TCritical95(size_t df) {
  static const double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return 0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.96;
}

}  // namespace

std::vector<double>& Samples::sorted() const {
  if (sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return sorted_;
}

double Samples::Mean() const {
  if (values_.empty()) return 0;
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / values_.size();
}

double Samples::StdDev() const {
  if (values_.size() < 2) return 0;
  double mean = Mean();
  double ss = 0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / (values_.size() - 1));
}

double Samples::Min() const { return values_.empty() ? 0 : sorted().front(); }
double Samples::Max() const { return values_.empty() ? 0 : sorted().back(); }

double Samples::Quantile(double q) const {
  if (values_.empty()) return 0;
  const std::vector<double>& s = sorted();
  if (q <= 0) return s.front();
  if (q >= 1) return s.back();
  double pos = q * (s.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - lo;
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1 - frac) + s[lo + 1] * frac;
}

double Samples::ConfidenceInterval95() const {
  if (values_.size() < 2) return 0;
  double sem = StdDev() / std::sqrt(static_cast<double>(values_.size()));
  return TCritical95(values_.size() - 1) * sem;
}

double Samples::CdfAt(double x) const {
  if (values_.empty()) return 0;
  const std::vector<double>& s = sorted();
  size_t n = std::upper_bound(s.begin(), s.end(), x) - s.begin();
  return static_cast<double>(n) / s.size();
}

std::string FormatQuantileSummary(uint64_t n, double mean, double p50,
                                  double p90, double p99, double min,
                                  double max) {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "n=%llu mean=%.3f p50=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f",
           static_cast<unsigned long long>(n), mean, p50, p90, p99, min, max);
  return buf;
}

std::string SummaryString(const Samples& s) {
  return FormatQuantileSummary(s.Count(), s.Mean(), s.Quantile(0.5),
                               s.Quantile(0.9), s.Quantile(0.99), s.Min(),
                               s.Max());
}

// ---------------------------------------------------------------------------
// LatencyHistogram.

size_t LatencyHistogram::BucketFor(uint64_t v) {
  if (v < kSubBucketCount) return static_cast<size_t>(v);
  // v has bit width k >= kSubBucketBits + 1; its top (kSubBucketBits + 1)
  // bits select the sub-bucket within the power-of-two range.
  int k = 64 - std::countl_zero(v);
  uint64_t sub = (v >> (k - 1 - kSubBucketBits)) - kSubBucketCount;
  return static_cast<size_t>(k - kSubBucketBits) * kSubBucketCount +
         static_cast<size_t>(sub);
}

uint64_t LatencyHistogram::BucketValue(size_t bucket) {
  if (bucket < kSubBucketCount) return bucket;
  uint64_t power = bucket / kSubBucketCount;  // >= 1.
  uint64_t sub = bucket % kSubBucketCount;
  uint64_t lo = (kSubBucketCount + sub) << (power - 1);
  uint64_t width = 1ull << (power - 1);
  return lo + (width >> 1);
}

void LatencyHistogram::Record(uint64_t micros) {
  if (micros == 0) micros = 1;
  buckets_[BucketFor(micros)].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (micros > prev &&
         !max_.compare_exchange_weak(prev, micros,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t LatencyHistogram::Count() const {
  uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; i++) {
    uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    snap.buckets[i] = c;
    snap.count += c;
    if (c > 0 && snap.min == 0) snap.min = BucketValue(i);
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  return snap;
}

uint64_t HistogramSnapshot::ValueAtQuantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(q * count));
  if (target == 0) target = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets.size(); i++) {
    seen += buckets[i];
    if (seen >= target) {
      // The top bucket's midpoint can overshoot the true maximum; clamp.
      return std::min(LatencyHistogram::BucketValue(i), max);
    }
  }
  return max;
}

std::string HistogramSnapshot::ToString() const {
  return FormatQuantileSummary(
      count, Mean(), static_cast<double>(P50()), static_cast<double>(P90()),
      static_cast<double>(P99()), static_cast<double>(min),
      static_cast<double>(max));
}

}  // namespace lt
