#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lt {
namespace {

// Two-sided 95% critical values of the Student's t-distribution by degrees of
// freedom; entries beyond the table fall back to the normal value 1.96.
double TCritical95(size_t df) {
  static const double kTable[] = {
      0,      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
      2.262,  2.228,  2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
      2.101,  2.093,  2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
      2.052,  2.048,  2.045, 2.042};
  if (df == 0) return 0;
  if (df < sizeof(kTable) / sizeof(kTable[0])) return kTable[df];
  return 1.96;
}

}  // namespace

std::vector<double>& Samples::sorted() const {
  if (sorted_.size() != values_.size()) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
  }
  return sorted_;
}

double Samples::Mean() const {
  if (values_.empty()) return 0;
  double sum = 0;
  for (double v : values_) sum += v;
  return sum / values_.size();
}

double Samples::StdDev() const {
  if (values_.size() < 2) return 0;
  double mean = Mean();
  double ss = 0;
  for (double v : values_) ss += (v - mean) * (v - mean);
  return std::sqrt(ss / (values_.size() - 1));
}

double Samples::Min() const { return values_.empty() ? 0 : sorted().front(); }
double Samples::Max() const { return values_.empty() ? 0 : sorted().back(); }

double Samples::Quantile(double q) const {
  if (values_.empty()) return 0;
  const std::vector<double>& s = sorted();
  if (q <= 0) return s.front();
  if (q >= 1) return s.back();
  double pos = q * (s.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - lo;
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1 - frac) + s[lo + 1] * frac;
}

double Samples::ConfidenceInterval95() const {
  if (values_.size() < 2) return 0;
  double sem = StdDev() / std::sqrt(static_cast<double>(values_.size()));
  return TCritical95(values_.size() - 1) * sem;
}

double Samples::CdfAt(double x) const {
  if (values_.empty()) return 0;
  const std::vector<double>& s = sorted();
  size_t n = std::upper_bound(s.begin(), s.end(), x) - s.begin();
  return static_cast<double>(n) / s.size();
}

std::string SummaryString(const Samples& s) {
  char buf[160];
  snprintf(buf, sizeof(buf),
           "n=%zu mean=%.3f p50=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f",
           s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.9),
           s.Quantile(0.99), s.Min(), s.Max());
  return buf;
}

}  // namespace lt
