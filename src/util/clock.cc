#include "util/clock.h"

namespace lt {

Timestamp MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const std::shared_ptr<SystemClock>& SystemClock::Instance() {
  static const std::shared_ptr<SystemClock> clock =
      std::make_shared<SystemClock>();
  return clock;
}

}  // namespace lt
