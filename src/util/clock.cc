#include "util/clock.h"

namespace lt {

const std::shared_ptr<SystemClock>& SystemClock::Instance() {
  static const std::shared_ptr<SystemClock> clock =
      std::make_shared<SystemClock>();
  return clock;
}

}  // namespace lt
