// Deterministic PRNGs. The benchmarks use xorshift128+ exactly as the paper's
// microbenchmarks do (§5.1.1): fast enough not to bottleneck insert paths and
// producing incompressible payloads that defeat block compression.
#ifndef LITTLETABLE_UTIL_RANDOM_H_
#define LITTLETABLE_UTIL_RANDOM_H_

#include <cstdint>
#include <string>

namespace lt {

/// xorshift128+ generator. Not cryptographic; seeded deterministically.
class Random {
 public:
  explicit Random(uint64_t seed) {
    // SplitMix64 to spread the seed across both words.
    s_[0] = Mix(&seed);
    s_[1] = Mix(&seed);
    if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// True with probability p in [0,1].
  bool Bernoulli(double p) {
    return (Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Uniform double in [0,1).
  double NextDouble() { return (Next() >> 11) * (1.0 / 9007199254740992.0); }

  /// Returns n incompressible bytes.
  std::string Bytes(size_t n) {
    std::string out;
    out.reserve(n);
    while (out.size() + 8 <= n) {
      uint64_t v = Next();
      out.append(reinterpret_cast<char*>(&v), 8);
    }
    uint64_t v = Next();
    out.append(reinterpret_cast<char*>(&v), n - out.size());
    return out;
  }

 private:
  static uint64_t Mix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  uint64_t s_[2];
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_RANDOM_H_
