#include "util/status.h"

namespace lt {

std::string Status::ToString() const {
  const char* name = nullptr;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kAlreadyExists:
      name = "AlreadyExists";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kAborted:
      name = "Aborted";
      break;
    case Code::kNetworkError:
      name = "NetworkError";
      break;
    case Code::kDeadlineExceeded:
      name = "DeadlineExceeded";
      break;
    case Code::kUnavailable:
      name = "Unavailable";
      break;
  }
  std::string out = name;
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace lt
