// lzmini: a fast byte-oriented LZ77 codec, standing in for the LZO1X-1
// compressor the paper uses for tablet blocks and footers (§3.5).
//
// Format of a frame:
//   varint64 uncompressed_size
//   sequence of tokens, LZ4-style:
//     token byte = (literal_len_nibble << 4) | match_len_nibble
//     nibble value 15 means "length continues": subsequent bytes each add
//     0..255, terminated by a byte < 255.
//     literal bytes follow, then (if not the final token) a 2-byte
//     little-endian match distance (1..65535) and a match of length
//     match_len + 4.
//   The stream ends when uncompressed_size bytes have been produced; the
//   final token carries no match.
//
// The decoder is defensive: any out-of-bounds length, zero distance, or
// truncated frame returns Status::Corruption rather than reading or writing
// out of range.
#ifndef LITTLETABLE_UTIL_LZMINI_H_
#define LITTLETABLE_UTIL_LZMINI_H_

#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace lt {
namespace lzmini {

/// Compresses `input`, appending the frame to `*out`.
void Compress(const Slice& input, std::string* out);

/// Decompresses one frame from `input`, appending the original bytes to
/// `*out`. `input` must contain exactly one frame.
Status Decompress(const Slice& input, std::string* out);

/// Returns the uncompressed size recorded in a frame header without decoding
/// the body; 0-size frames and corrupt headers yield a Corruption status.
Status GetUncompressedSize(const Slice& input, uint64_t* size);

}  // namespace lzmini
}  // namespace lt

#endif  // LITTLETABLE_UTIL_LZMINI_H_
