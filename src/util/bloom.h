// Bloom filters, the §3.4.5 extension: each on-disk tablet stores a filter
// over its key prefixes so latest-row-for-prefix queries (and the uniqueness
// slow path) can skip ~99% of non-matching tablets at ~10 bits/row.
#ifndef LITTLETABLE_UTIL_BLOOM_H_
#define LITTLETABLE_UTIL_BLOOM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lt {

/// Builds a Bloom filter from a set of byte-string elements.
class BloomFilterBuilder {
 public:
  /// bits_per_key controls the false-positive rate; the paper's proposed 10
  /// bits/key gives ~1% false positives with the derived k = 7 probes.
  explicit BloomFilterBuilder(int bits_per_key = 10);

  void Add(const Slice& key);
  size_t NumKeys() const { return hashes_.size(); }

  /// Serializes the filter (bit array + probe count). Safe to call on an
  /// empty builder; the resulting filter matches nothing.
  std::string Finish() const;

 private:
  int bits_per_key_;
  std::vector<uint64_t> hashes_;
};

/// Read-side view over a serialized Bloom filter.
class BloomFilter {
 public:
  /// Parses a serialized filter. The data is copied.
  static Status Parse(const Slice& data, BloomFilter* out);

  /// True if `key` may be in the set (false positives possible, false
  /// negatives not). An empty filter returns false for every key.
  bool MayContain(const Slice& key) const;

  size_t SizeBytes() const { return bits_.size(); }

 private:
  std::string bits_;
  int num_probes_ = 0;
};

/// 64-bit hash used by the filter (also exposed for tests).
uint64_t BloomHash(const Slice& key);

}  // namespace lt

#endif  // LITTLETABLE_UTIL_BLOOM_H_
