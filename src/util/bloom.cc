#include "util/bloom.h"

#include "util/coding.h"

namespace lt {

uint64_t BloomHash(const Slice& key) {
  // FNV-1a 64-bit followed by a finalizing mix.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < key.size(); i++) {
    h ^= static_cast<unsigned char>(key[i]);
    h *= 1099511628211ull;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

BloomFilterBuilder::BloomFilterBuilder(int bits_per_key)
    : bits_per_key_(bits_per_key < 1 ? 1 : bits_per_key) {}

void BloomFilterBuilder::Add(const Slice& key) {
  hashes_.push_back(BloomHash(key));
}

std::string BloomFilterBuilder::Finish() const {
  // k = bits_per_key * ln(2), clamped to [1, 30].
  int k = static_cast<int>(bits_per_key_ * 0.69);
  if (k < 1) k = 1;
  if (k > 30) k = 30;

  size_t bits = hashes_.size() * static_cast<size_t>(bits_per_key_);
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string array(bytes, '\0');
  for (uint64_t h : hashes_) {
    // Double hashing: probe_i = h1 + i * h2.
    uint64_t h1 = h;
    uint64_t h2 = (h >> 32) | (h << 32);
    for (int i = 0; i < k; i++) {
      uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bits;
      array[bit / 8] |= static_cast<char>(1 << (bit % 8));
    }
  }

  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(k));
  PutLengthPrefixedSlice(&out, array);
  return out;
}

Status BloomFilter::Parse(const Slice& data, BloomFilter* out) {
  Slice in = data;
  uint32_t k;
  Slice array;
  if (!GetVarint32(&in, &k) || !GetLengthPrefixedSlice(&in, &array) ||
      k == 0 || k > 30 || array.empty()) {
    return Status::Corruption("bad bloom filter encoding");
  }
  out->num_probes_ = static_cast<int>(k);
  out->bits_ = array.ToString();
  return Status::OK();
}

bool BloomFilter::MayContain(const Slice& key) const {
  if (bits_.empty()) return false;
  const uint64_t nbits = bits_.size() * 8;
  uint64_t h = BloomHash(key);
  uint64_t h1 = h;
  uint64_t h2 = (h >> 32) | (h << 32);
  for (int i = 0; i < num_probes_; i++) {
    uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % nbits;
    if (!(bits_[bit / 8] & (1 << (bit % 8)))) return false;
  }
  return true;
}

}  // namespace lt
