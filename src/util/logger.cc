#include "util/logger.h"

#include <chrono>
#include <cstdio>
#include <ctime>

#include "util/clock.h"

namespace lt {
namespace {

// ts=2026-08-06T12:34:56.123456Z — UTC wall time with microseconds.
std::string FormatWallTime() {
  using namespace std::chrono;
  auto now = system_clock::now();
  auto micros = duration_cast<microseconds>(now.time_since_epoch()).count();
  time_t secs = static_cast<time_t>(micros / 1000000);
  int64_t frac = micros % 1000000;
  struct tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  size_t n = strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  snprintf(buf + n, sizeof(buf) - n, ".%06lldZ",
           static_cast<long long>(frac));
  return buf;
}

void AppendQuoted(std::string* out, const std::string& v) {
  out->push_back('"');
  for (char c : v) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

LogField::LogField(std::string k, double v) : key(std::move(k)), quoted(false) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.6g", v);
  value = buf;
}

void StderrLogSink::Write(const std::string& line) {
  // One fputs per line; POSIX stdio locks the stream, so concurrent lines
  // never interleave mid-line.
  std::string with_newline = line;
  with_newline.push_back('\n');
  fputs(with_newline.c_str(), stderr);
}

void CaptureLogSink::Write(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  lines_.push_back(line);
}

std::vector<std::string> CaptureLogSink::lines() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

Logger::Logger(LogLevel min_level, std::shared_ptr<LogSink> sink)
    : min_level_(static_cast<int>(min_level)), sink_(std::move(sink)) {
  if (!sink_) sink_ = std::make_shared<StderrLogSink>();
}

void Logger::Log(LogLevel level, std::string_view event,
                 std::initializer_list<LogField> fields) {
  if (!Enabled(level)) return;
  std::string line;
  line.reserve(128);
  line.append("ts=");
  line.append(FormatWallTime());
  line.append(" mono_us=");
  line.append(std::to_string(MonotonicMicros()));
  line.append(" level=");
  line.append(LogLevelName(level));
  line.append(" event=");
  line.append(event);
  for (const LogField& f : fields) {
    line.push_back(' ');
    line.append(f.key);
    line.push_back('=');
    if (f.quoted) {
      AppendQuoted(&line, f.value);
    } else {
      line.append(f.value);
    }
  }
  sink_->Write(line);
}

const std::shared_ptr<Logger>& Logger::Default() {
  static const std::shared_ptr<Logger>* kDefault =
      new std::shared_ptr<Logger>(std::make_shared<Logger>());
  return *kDefault;
}

}  // namespace lt
