// Sharded LRU cache with ref-counted handles — the DB-wide decompressed
// block cache of the read path (see DESIGN.md, "Read path caching").
//
// §3.5 prices every block access at "one more seek" once a tablet's footer
// is cached; dashboards re-reading the newest tablet pay that seek, a CRC
// check, and an lzmini decompress for the *same* hot block on every query.
// This cache sits between TabletReader and the Env so the second and later
// reads of a hot block cost a hash lookup instead.
//
// Design (the LevelDB/Bigtable lineage the paper sits in):
//   - Entries are (key, value*) pairs with a caller-supplied deleter and a
//     byte charge; total charge per shard is bounded by capacity/shards.
//   - 2^shard_bits shards, selected by key hash; each shard has its own
//     mutex, intrusive doubly-linked LRU list, and open-hash table, so
//     concurrent readers on different blocks rarely contend.
//   - Handles are ref-counted: a Lookup/Insert returns a pinned handle and
//     the entry cannot be freed until every handle is Released, even if the
//     LRU evicts it meanwhile — in-flight cursors keep their current block
//     alive across eviction.
//   - Eviction is strict LRU per shard, triggered by Insert when the
//     shard's charge exceeds its capacity share. Only unpinned entries are
//     evictable.
#ifndef LITTLETABLE_UTIL_CACHE_H_
#define LITTLETABLE_UTIL_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "util/slice.h"

namespace lt {

class Cache {
 public:
  /// Total capacity in charged bytes, split evenly across 2^shard_bits
  /// shards. shard_bits = 0 gives one shard (deterministic LRU order —
  /// used by tests); the production default is 16 shards.
  explicit Cache(size_t capacity_bytes, int shard_bits = kDefaultShardBits);
  ~Cache();

  Cache(const Cache&) = delete;
  Cache& operator=(const Cache&) = delete;

  /// Opaque pinned-entry token; see Insert/Lookup/Release.
  struct Handle;

  /// Called exactly once per entry, after the entry has been both evicted
  /// (or erased/replaced) and fully unpinned.
  using Deleter = void (*)(const Slice& key, void* value);

  /// Inserts a mapping, replacing any existing entry for `key` (the old
  /// entry is deleted once unpinned). Charges `charge` bytes against the
  /// shard and evicts LRU entries as needed. Returns a pinned handle to the
  /// new entry; the caller must Release() it.
  Handle* Insert(const Slice& key, void* value, size_t charge,
                 Deleter deleter);

  /// Returns a pinned handle to the entry for `key`, or nullptr. The caller
  /// must Release() a non-null result.
  Handle* Lookup(const Slice& key);

  /// The value of a handle obtained from Insert or Lookup.
  void* Value(Handle* handle);

  /// Unpins a handle. The entry is freed once it is both unpinned and no
  /// longer in the cache.
  void Release(Handle* handle);

  /// Drops the entry for `key` if present (deleted once unpinned).
  void Erase(const Slice& key);

  /// A process-unique id. Clients sharing one cache prefix their keys with
  /// an id to partition the key space (TabletReader uses one per tablet).
  uint64_t NewId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  size_t capacity() const { return capacity_; }

  /// Sum of charges of all resident entries.
  size_t TotalCharge() const;

  /// Which shard `key` lands in (stable for the life of the process);
  /// exposed so tests can construct shard-local workloads.
  size_t ShardOf(const Slice& key) const;
  size_t num_shards() const { return size_t{1} << shard_bits_; }

  /// Counter snapshot, aggregated across shards.
  struct Stats {
    uint64_t hits = 0;        // Lookups that found the key.
    uint64_t misses = 0;      // Lookups that did not.
    uint64_t inserts = 0;
    uint64_t evictions = 0;   // Entries pushed out by capacity pressure.
    uint64_t charge = 0;      // Current resident bytes.
    uint64_t capacity = 0;
  };
  Stats GetStats() const;

  static constexpr int kDefaultShardBits = 4;  // 16 shards.

 private:
  class Shard;

  const size_t capacity_;
  const int shard_bits_;
  Shard* shards_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_CACHE_H_
