#include "util/fault.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace lt {
namespace fault {
namespace {

// 0 = disarmed fast path: one relaxed load per crash point in production.
std::atomic<bool> g_armed{false};
std::atomic<int64_t> g_hits{0};
// > 0: decremented per hit; fires when it reaches 0.
std::atomic<int64_t> g_countdown{0};

std::mutex g_mu;
std::string g_armed_name;  // guarded by g_mu
std::string g_last_fired;  // guarded by g_mu

void ArmFromEnv() {
  const char* spec = std::getenv("LT_CRASH_POINT");
  if (spec == nullptr || spec[0] == '\0') return;
  Status s = ArmCrashPointFromSpec(spec);
  if (!s.ok()) {
    // Arming an unknown name would make the intended crash never happen
    // and the test of it vacuously pass. Die where the operator can see.
    std::fprintf(stderr, "fatal: LT_CRASH_POINT: %s\n",
                 s.ToString().c_str());
    std::abort();
  }
}

void ArmFromEnvOnce() {
  static std::once_flag once;
  std::call_once(once, ArmFromEnv);
}

void RecordFired(const char* name) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_last_fired = name;
}

}  // namespace

bool CrashPointFire(const char* name) {
  ArmFromEnvOnce();
  g_hits.fetch_add(1, std::memory_order_relaxed);
  if (!g_armed.load(std::memory_order_acquire)) return false;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (!g_armed_name.empty() && g_armed_name == name) {
      g_last_fired = name;
      return true;
    }
  }
  int64_t c = g_countdown.load(std::memory_order_relaxed);
  while (c > 0) {
    if (g_countdown.compare_exchange_weak(c, c - 1,
                                          std::memory_order_acq_rel)) {
      if (c == 1) {
        RecordFired(name);
        return true;
      }
      return false;
    }
  }
  return false;
}

void ArmNthCrashPoint(int64_t n) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_armed_name.clear();
  }
  g_countdown.store(n, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void ArmNamedCrashPoint(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_armed_name = name;
  }
  g_countdown.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
}

void DisarmCrashPoints() {
  g_armed.store(false, std::memory_order_release);
  g_countdown.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed_name.clear();
}

int64_t CrashPointHits() { return g_hits.load(std::memory_order_relaxed); }

void ResetCrashPointHits() { g_hits.store(0, std::memory_order_relaxed); }

std::string LastFiredCrashPoint() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_last_fired;
}

const std::vector<std::string>& KnownCrashPoints() {
  static const std::vector<std::string>* kPoints = new std::vector<std::string>{
      "flush:after_commit",
      "merge:after_commit",
      "descriptor:tmp_write",
      "descriptor:rename",
      "tablet_writer:block_append",
      "tablet_writer:footer",
      "tablet_writer:trailer",
      "tablet_writer:sync",
      "tablet_writer:close",
  };
  return *kPoints;
}

bool IsKnownCrashPoint(const std::string& name) {
  for (const std::string& known : KnownCrashPoints()) {
    if (known == name) return true;
  }
  return false;
}

Status ArmCrashPointFromSpec(const std::string& spec) {
  if (!spec.empty() && spec.find_first_not_of("0123456789") ==
                           std::string::npos) {
    int64_t n = 0;
    for (char c : spec) {
      n = n * 10 + (c - '0');
      if (n > 1000000000) {
        return Status::InvalidArgument("crash point countdown out of range: " +
                                       spec);
      }
    }
    if (n == 0) {
      return Status::InvalidArgument(
          "crash point countdown must be positive (got 0)");
    }
    ArmNthCrashPoint(n);
    return Status::OK();
  }
  if (!IsKnownCrashPoint(spec)) {
    std::string known;
    for (const std::string& name : KnownCrashPoints()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return Status::InvalidArgument("unknown crash point \"" + spec +
                                   "\" (known: " + known + ")");
  }
  ArmNamedCrashPoint(spec);
  return Status::OK();
}

void ReArmFromEnvForTest() { ArmFromEnv(); }

}  // namespace fault
}  // namespace lt
