// Crash-point fault injection for the flush/merge/descriptor-commit
// protocol.
//
// The storage layer is sprinkled with named LT_CRASH_POINT(...) markers at
// every step that touches disk state (block append, footer/trailer write,
// sync, descriptor tmp write, rename, post-commit cleanup). In production
// builds a disarmed crash point is a single relaxed atomic load. Tests arm
// the registry — "fail at the Nth crash point hit from now" or "fail at
// every hit of this named point" — and the marked function returns
// Status::IOError as if the process had died there. Combined with
// MemEnv::DropUnsynced() (or SimDiskEnv::PowerCut()) and a table reopen,
// this deterministically simulates a kill at each step of the protocol and
// lets the crash-recovery harness assert the paper's §2.3 durability
// contract: every row synced before the crash survives recovery.
//
// The environment variable LT_CRASH_POINT=<spec> arms the registry at
// process startup, for crashing real binaries from the outside. <spec> is
// either a known point name or a positive integer N ("fire at the Nth hit
// from now"). A misspelled name used to arm silently and never fire —
// turning a crash test into a no-op that passes; now an unknown spec
// aborts the process with the list of known names.
#ifndef LITTLETABLE_UTIL_FAULT_H_
#define LITTLETABLE_UTIL_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lt {
namespace fault {

/// Returns true if this hit should simulate a crash. Every call increments
/// the global hit counter (armed or not).
bool CrashPointFire(const char* name);

/// Arms the registry to fire at the n-th crash point hit from now
/// (1-based). Replaces any previous arming.
void ArmNthCrashPoint(int64_t n);

/// Arms the registry to fire at every hit of the named point.
void ArmNamedCrashPoint(const std::string& name);

/// Disarms everything (named and countdown).
void DisarmCrashPoints();

/// Crash point hits since the last ResetCrashPointHits(), armed or not.
/// A clean (disarmed) run of an operation measures how many kill sites the
/// crash-recovery harness must iterate over.
int64_t CrashPointHits();
void ResetCrashPointHits();

/// Name of the most recently fired crash point ("" if none fired yet).
std::string LastFiredCrashPoint();

/// Every crash point name compiled into the storage layer. New
/// LT_CRASH_POINT sites must be added here (crash_recovery tests verify
/// the registry and the code agree).
const std::vector<std::string>& KnownCrashPoints();

/// True if `name` is a registered crash point name.
bool IsKnownCrashPoint(const std::string& name);

/// Arms from a spec string: a known point name (ArmNamedCrashPoint) or a
/// positive integer N (ArmNthCrashPoint). Returns InvalidArgument naming
/// the known points for anything else — an unknown name would otherwise
/// arm a point that never fires and silently vacuous-pass a crash test.
Status ArmCrashPointFromSpec(const std::string& spec);

/// Re-runs LT_CRASH_POINT env arming (normally done once at first hit).
/// Aborts the process on an invalid spec, exactly like startup. Test-only.
void ReArmFromEnvForTest();

}  // namespace fault
}  // namespace lt

/// Marks one step of a crash-consistent protocol. When the registry is
/// armed for this hit, returns Status::IOError from the enclosing function,
/// simulating a process death at this instruction.
#define LT_CRASH_POINT(point)                                              \
  do {                                                                     \
    if (::lt::fault::CrashPointFire(point)) {                              \
      return ::lt::Status::IOError(std::string("crash point: ") + point);  \
    }                                                                      \
  } while (0)

#endif  // LITTLETABLE_UTIL_FAULT_H_
