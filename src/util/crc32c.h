// CRC32C (Castagnoli) checksums, used to detect corruption in tablet blocks
// and footers. Software implementation with an 8-entry-per-byte slicing
// table; the masked form guards against checksumming a checksum.
#ifndef LITTLETABLE_UTIL_CRC32C_H_
#define LITTLETABLE_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace lt {
namespace crc32c {

/// Returns the CRC32C of data[0..n-1], extending `init_crc`.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Returns the CRC32C of data[0..n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Returns a masked CRC. Storing raw CRCs of data that itself contains CRCs
/// is error-prone; the mask makes stored checksums distinct from raw ones.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of Mask().
inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace lt

#endif  // LITTLETABLE_UTIL_CRC32C_H_
