// HyperLogLog distinct-count sketches (Flajolet et al. [10]).
//
// Dashboard's aggregators (§4.1.2) track distinct clients with HLL: a
// fixed-size, mergeable representation of a set with bounded relative error
// (~1.04/sqrt(2^p)). Sketches serialize to blob columns so rollup tables can
// store them directly and union them at a coarser granularity later.
#ifndef LITTLETABLE_UTIL_HYPERLOGLOG_H_
#define LITTLETABLE_UTIL_HYPERLOGLOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lt {

/// Dense HyperLogLog sketch with 2^precision registers.
class HyperLogLog {
 public:
  /// precision in [4, 16]; the default 12 gives ~1.6% standard error in 4 kB.
  explicit HyperLogLog(int precision = 12);

  /// Adds an element (hashed internally).
  void Add(const Slice& element);
  void AddHash(uint64_t hash);

  /// Estimated cardinality with small-range (linear counting) correction.
  double Estimate() const;

  /// Unions `other` into this sketch. Fails if precisions differ.
  Status Merge(const HyperLogLog& other);

  /// Serializes to a compact blob (precision byte + registers).
  std::string Serialize() const;
  static Status Deserialize(const Slice& data, HyperLogLog* out);

  int precision() const { return precision_; }

 private:
  int precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_HYPERLOGLOG_H_
