// Sample accumulator used by the benchmark harness (means, confidence
// intervals per §5.1.1, CDF quantiles for the §5.2 production-metrics
// figures) plus LatencyHistogram, the fixed-memory concurrent histogram the
// serving layers record into. The paper's evaluation is built from latency
// distributions collected off live shards; LatencyHistogram is the substrate
// that makes those distributions observable on a running server.
#ifndef LITTLETABLE_UTIL_HISTOGRAM_H_
#define LITTLETABLE_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace lt {

/// Collects double-valued samples and reports summary statistics.
class Samples {
 public:
  void Add(double v) { values_.push_back(v); }
  size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  double Mean() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  /// Half-width of the 95% confidence interval on the mean, using the
  /// Student's t-distribution (matches the paper's benchmark methodology).
  double ConfidenceInterval95() const;

  /// Fraction of samples <= x (empirical CDF).
  double CdfAt(double x) const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double>& sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
};

/// Renders "p50=… p90=… mean=…" for logging.
std::string SummaryString(const Samples& s);

/// The one quantile-summary format shared by bench output (Samples) and
/// server stats (HistogramSnapshot), so both render identically.
std::string FormatQuantileSummary(uint64_t n, double mean, double p50,
                                  double p90, double p99, double min,
                                  double max);

/// Point-in-time copy of a LatencyHistogram. Quantiles are resolved against
/// the log-bucketed counts: each reported value is its bucket's midpoint, so
/// the relative error is bounded by the sub-bucket width (~±3%).
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;  // Total recorded microseconds.
  uint64_t min = 0;  // Representative value of the lowest occupied bucket.
  uint64_t max = 0;  // Exact largest recorded value.
  std::vector<uint64_t> buckets;

  double Mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  /// q in [0,1]; smallest bucket value v such that >= ceil(q*count) recorded
  /// values are <= v.
  uint64_t ValueAtQuantile(double q) const;
  uint64_t P50() const { return ValueAtQuantile(0.50); }
  uint64_t P90() const { return ValueAtQuantile(0.90); }
  uint64_t P99() const { return ValueAtQuantile(0.99); }
  uint64_t P999() const { return ValueAtQuantile(0.999); }

  /// Same line format as SummaryString(Samples).
  std::string ToString() const;
};

/// Thread-safe, fixed-memory latency histogram (HdrHistogram-style): values
/// bucket by power of two, each power split into 2^kSubBucketBits linear
/// sub-buckets, every count an independent relaxed atomic — recording is
/// lock-free and wait-free on the hot path, ~8 kB per histogram, full uint64
/// microsecond range.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 4;
  static constexpr uint64_t kSubBucketCount = 1ull << kSubBucketBits;
  static constexpr size_t kNumBuckets =
      (64 - kSubBucketBits + 1) * kSubBucketCount;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency measurement. Sub-microsecond measurements count as
  /// 1 µs so quantiles of very hot operations stay nonzero.
  void Record(uint64_t micros);

  /// Consistent-enough copy under concurrent recording: each bucket is read
  /// atomically; the snapshot may miss records racing with it.
  HistogramSnapshot Snapshot() const;

  uint64_t Count() const;

  /// Bucket index for a value (exact below kSubBucketCount, log-linear
  /// above).
  static size_t BucketFor(uint64_t v);
  /// Representative (midpoint) value of a bucket.
  static uint64_t BucketValue(size_t bucket);

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_HISTOGRAM_H_
