// Sample accumulator used by the benchmark harness: means, confidence
// intervals (Student's t, as §5.1.1 specifies for the paper's error bars),
// and CDF quantiles for the §5.2 production-metrics figures.
#ifndef LITTLETABLE_UTIL_HISTOGRAM_H_
#define LITTLETABLE_UTIL_HISTOGRAM_H_

#include <string>
#include <vector>

namespace lt {

/// Collects double-valued samples and reports summary statistics.
class Samples {
 public:
  void Add(double v) { values_.push_back(v); }
  size_t Count() const { return values_.size(); }
  bool Empty() const { return values_.empty(); }

  double Mean() const;
  double StdDev() const;
  double Min() const;
  double Max() const;
  /// q in [0,1]; linear interpolation between order statistics.
  double Quantile(double q) const;
  /// Half-width of the 95% confidence interval on the mean, using the
  /// Student's t-distribution (matches the paper's benchmark methodology).
  double ConfidenceInterval95() const;

  /// Fraction of samples <= x (empirical CDF).
  double CdfAt(double x) const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double>& sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
};

/// Renders "p50=… p90=… mean=…" for logging.
std::string SummaryString(const Samples& s);

}  // namespace lt

#endif  // LITTLETABLE_UTIL_HISTOGRAM_H_
