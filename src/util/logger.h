// Leveled structured logger. Every line is machine-parseable key=value
// fields with both a wall-clock timestamp (correlating with external
// systems) and a monotonic microsecond timestamp (ordering within the
// process, immune to clock steps):
//
//   ts=2026-08-06T12:34:56.123456Z mono_us=8214722 level=warn
//       event=tablet_quarantined table="usage" tablet="000007.tab"
//       status="Corruption: ..."   (all on one line)
//
// The sink is pluggable (stderr by default; tests capture lines in memory).
// Field formatting is only paid for enabled levels.
#ifndef LITTLETABLE_UTIL_LOGGER_H_
#define LITTLETABLE_UTIL_LOGGER_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Lowercase level name ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// One key=value pair. String values are quoted (with escaping) on output;
/// numeric and boolean values are emitted bare.
struct LogField {
  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), quoted(true) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), value(v), quoted(true) {}
  LogField(std::string k, int64_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, uint64_t v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, int v)
      : key(std::move(k)), value(std::to_string(v)), quoted(false) {}
  LogField(std::string k, double v);
  LogField(std::string k, bool v)
      : key(std::move(k)), value(v ? "true" : "false"), quoted(false) {}
  LogField(std::string k, const Status& s)
      : key(std::move(k)), value(s.ToString()), quoted(true) {}

  std::string key;
  std::string value;
  bool quoted;
};

/// Destination for formatted lines (no trailing newline). Write must be
/// thread-safe.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const std::string& line) = 0;
};

/// Appends lines to stderr.
class StderrLogSink final : public LogSink {
 public:
  void Write(const std::string& line) override;
};

/// Collects lines in memory (tests).
class CaptureLogSink final : public LogSink {
 public:
  void Write(const std::string& line) override;
  std::vector<std::string> lines() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::string> lines_;
};

class Logger {
 public:
  /// Null sink means stderr.
  explicit Logger(LogLevel min_level = LogLevel::kInfo,
                  std::shared_ptr<LogSink> sink = nullptr);

  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }

  /// Emits one structured line if `level` is enabled.
  void Log(LogLevel level, std::string_view event,
           std::initializer_list<LogField> fields);

  void Debug(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kDebug, event, fields);
  }
  void Info(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kInfo, event, fields);
  }
  void Warn(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kWarn, event, fields);
  }
  void Error(std::string_view event, std::initializer_list<LogField> fields) {
    Log(LogLevel::kError, event, fields);
  }

  /// Shared process-wide stderr logger at kInfo — the default destination
  /// for components given no explicit logger.
  static const std::shared_ptr<Logger>& Default();

 private:
  std::atomic<int> min_level_;
  std::shared_ptr<LogSink> sink_;
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_LOGGER_H_
