// MetricsRegistry: names and owns the process's counters and latency
// histograms so serving layers share one instrument per metric name and the
// stats exposition (kStatsV2, lt_stats text) can enumerate everything that
// exists. Lookup takes a lock; the returned pointers are stable for the
// registry's lifetime, so hot paths resolve their instruments once and then
// record lock-free.
#ifndef LITTLETABLE_UTIL_METRICS_H_
#define LITTLETABLE_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/histogram.h"

namespace lt {

/// A monotonically named (not necessarily monotonically valued) integer
/// metric. Increment/Add are relaxed atomics — safe from any thread.
/// Gauge-like uses (active connections) Add(+1)/Add(-1).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// An instantaneous level rather than an accumulating count: queue depths,
/// busy workers, pending frames. Unlike a Counter, a Gauge's value is
/// meaningful at any moment (not only as a delta), may go down, and is
/// exported as-is — scrapers must not rate() it.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  void Decrement() { Add(-1); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the counter/gauge/histogram registered under `name`, creating
  /// it on first use. Pointers remain valid until the registry is destroyed.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);

  /// Name-sorted snapshots for exposition.
  std::vector<std::pair<std::string, int64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<std::pair<std::string, HistogramSnapshot>> HistogramSnapshots()
      const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_METRICS_H_
