// Primitive encoders/decoders for the tablet file format and wire protocol.
//
// All multi-byte integers are little-endian. Varints use the LEB128-style
// 7-bits-per-byte encoding. Decoders take a Slice cursor and consume from it.
#ifndef LITTLETABLE_UTIL_CODING_H_
#define LITTLETABLE_UTIL_CODING_H_

#include <cstdint>
#include <string>

#include "util/slice.h"

namespace lt {

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
/// Appends a varint length followed by the bytes of `value`.
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

void EncodeFixed32(char* dst, uint32_t value);
void EncodeFixed64(char* dst, uint64_t value);
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

/// Each GetX consumes the decoded bytes from `input` and returns false on
/// truncated or malformed input (leaving `input` unspecified).
bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

/// ZigZag maps signed integers to unsigned so small magnitudes stay small.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace lt

#endif  // LITTLETABLE_UTIL_CODING_H_
