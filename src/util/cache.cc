#include "util/cache.h"

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace lt {
namespace {

// An entry is a variable-length heap allocation: header + key bytes. It
// lives in one shard's hash table (via next_hash) and, while resident, in
// that shard's circular LRU list (via prev/next).
//
// Lifecycle invariants:
//   - refs counts one reference for residency (in_cache) plus one per
//     outstanding Handle.
//   - in_cache entries with refs == 1 sit in the lru list (evictable);
//     entries with refs > 1 sit in the in_use list (pinned).
//   - refs == 0 implies !in_cache; the entry is freed immediately.
struct LRUHandle {
  void* value;
  Cache::Deleter deleter;
  LRUHandle* next_hash;
  LRUHandle* next;
  LRUHandle* prev;
  size_t charge;
  size_t key_length;
  uint32_t refs;
  uint32_t hash;  // Of key(); avoids rehashing on table resize.
  bool in_cache;
  char key_data[1];

  Slice key() const { return Slice(key_data, key_length); }
};

// Same recipe as Bloom/LevelDB-style byte hashes: a multiplicative mix over
// 4-byte words with a tail, good enough to spread (file id, block index)
// keys across shards and buckets.
uint32_t HashBytes(const char* data, size_t n) {
  const uint32_t m = 0xc6a4a793u;
  const uint32_t seed = 0xa02fbe17u;
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);
  const char* limit = data + n;
  while (data + 4 <= limit) {
    uint32_t w;
    memcpy(&w, data, 4);
    data += 4;
    h += w;
    h *= m;
    h ^= h >> 16;
  }
  switch (limit - data) {
    case 3:
      h += static_cast<uint8_t>(data[2]) << 16;
      [[fallthrough]];
    case 2:
      h += static_cast<uint8_t>(data[1]) << 8;
      [[fallthrough]];
    case 1:
      h += static_cast<uint8_t>(data[0]);
      h *= m;
      h ^= h >> 24;
  }
  return h;
}

// Open-hashing table of LRUHandle* chained through next_hash. Grows by
// doubling so chains stay ~1 entry long.
class HandleTable {
 public:
  HandleTable() { Resize(); }
  ~HandleTable() { delete[] list_; }

  LRUHandle* Lookup(const Slice& key, uint32_t hash) {
    return *FindPointer(key, hash);
  }

  /// Links `h` in; returns the displaced entry with the same key (nullptr
  /// if none).
  LRUHandle* Insert(LRUHandle* h) {
    LRUHandle** ptr = FindPointer(h->key(), h->hash);
    LRUHandle* old = *ptr;
    h->next_hash = old == nullptr ? nullptr : old->next_hash;
    *ptr = h;
    if (old == nullptr) {
      elems_++;
      if (elems_ > length_) Resize();
    }
    return old;
  }

  LRUHandle* Remove(const Slice& key, uint32_t hash) {
    LRUHandle** ptr = FindPointer(key, hash);
    LRUHandle* h = *ptr;
    if (h != nullptr) {
      *ptr = h->next_hash;
      elems_--;
    }
    return h;
  }

 private:
  /// Slot holding the entry for (key, hash), or the end-of-chain slot where
  /// it would be linked.
  LRUHandle** FindPointer(const Slice& key, uint32_t hash) {
    LRUHandle** ptr = &list_[hash & (length_ - 1)];
    while (*ptr != nullptr &&
           ((*ptr)->hash != hash || key.compare((*ptr)->key()) != 0)) {
      ptr = &(*ptr)->next_hash;
    }
    return ptr;
  }

  void Resize() {
    uint32_t new_length = 16;
    while (new_length < elems_ * 2) new_length *= 2;
    LRUHandle** new_list = new LRUHandle*[new_length]();
    for (uint32_t i = 0; i < length_; i++) {
      LRUHandle* h = list_[i];
      while (h != nullptr) {
        LRUHandle* next = h->next_hash;
        LRUHandle** ptr = &new_list[h->hash & (new_length - 1)];
        h->next_hash = *ptr;
        *ptr = h;
        h = next;
      }
    }
    delete[] list_;
    list_ = new_list;
    length_ = new_length;
  }

  uint32_t length_ = 0;
  uint32_t elems_ = 0;
  LRUHandle** list_ = nullptr;
};

}  // namespace

// One shard: a mutex, a hash table, and two circular lists — lru_ (resident,
// unpinned, evictable; lru_.next is the oldest entry) and in_use_ (resident
// and pinned by at least one handle; unordered).
class Cache::Shard {
 public:
  Shard() {
    lru_.next = &lru_;
    lru_.prev = &lru_;
    in_use_.next = &in_use_;
    in_use_.prev = &in_use_;
  }

  ~Shard() {
    // Callers must have released every handle before destroying the cache.
    assert(in_use_.next == &in_use_);
    for (LRUHandle* h = lru_.next; h != &lru_;) {
      LRUHandle* next = h->next;
      assert(h->in_cache && h->refs == 1);
      h->in_cache = false;
      Unref(h);
      h = next;
    }
  }

  void set_capacity(size_t capacity) { capacity_ = capacity; }

  LRUHandle* Insert(const Slice& key, uint32_t hash, void* value,
                    size_t charge, Deleter deleter) {
    auto* h = static_cast<LRUHandle*>(
        malloc(sizeof(LRUHandle) - 1 + key.size()));
    h->value = value;
    h->deleter = deleter;
    h->charge = charge;
    h->key_length = key.size();
    h->hash = hash;
    h->in_cache = true;
    h->refs = 2;  // One for the cache's residency, one for the caller.
    memcpy(h->key_data, key.data(), key.size());

    std::lock_guard<std::mutex> lock(mu_);
    inserts_++;
    usage_ += charge;
    ListAppend(&in_use_, h);
    FinishErase(table_.Insert(h));  // Displace any entry with the same key.
    while (usage_ > capacity_ && lru_.next != &lru_) {
      LRUHandle* old = lru_.next;  // Oldest unpinned entry.
      evictions_++;
      bool erased = FinishErase(table_.Remove(old->key(), old->hash));
      assert(erased);
      (void)erased;
    }
    return h;
  }

  LRUHandle* Lookup(const Slice& key, uint32_t hash) {
    std::lock_guard<std::mutex> lock(mu_);
    LRUHandle* h = table_.Lookup(key, hash);
    if (h == nullptr) {
      misses_++;
      return nullptr;
    }
    hits_++;
    Ref(h);
    return h;
  }

  void Release(LRUHandle* h) {
    std::lock_guard<std::mutex> lock(mu_);
    Unref(h);
  }

  void Erase(const Slice& key, uint32_t hash) {
    std::lock_guard<std::mutex> lock(mu_);
    FinishErase(table_.Remove(key, hash));
  }

  size_t usage() const {
    std::lock_guard<std::mutex> lock(mu_);
    return usage_;
  }

  void AddStats(Stats* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    out->hits += hits_;
    out->misses += misses_;
    out->inserts += inserts_;
    out->evictions += evictions_;
    out->charge += usage_;
  }

 private:
  static void ListRemove(LRUHandle* h) {
    h->next->prev = h->prev;
    h->prev->next = h->next;
  }

  /// Appends before `list` (i.e. at the newest end of an LRU list).
  static void ListAppend(LRUHandle* list, LRUHandle* h) {
    h->next = list;
    h->prev = list->prev;
    h->prev->next = h;
    h->next->prev = h;
  }

  void Ref(LRUHandle* h) {
    if (h->refs == 1 && h->in_cache) {  // Leaving the evictable list.
      ListRemove(h);
      ListAppend(&in_use_, h);
    }
    h->refs++;
  }

  void Unref(LRUHandle* h) {
    assert(h->refs > 0);
    h->refs--;
    if (h->refs == 0) {
      assert(!h->in_cache);
      (*h->deleter)(h->key(), h->value);
      free(h);
    } else if (h->in_cache && h->refs == 1) {
      // Fully unpinned but still resident: becomes the newest evictable.
      ListRemove(h);
      ListAppend(&lru_, h);
    }
  }

  /// Finishes removing `h` from the cache after it has been unlinked from
  /// the hash table: drops residency. Returns false if h was null.
  bool FinishErase(LRUHandle* h) {
    if (h == nullptr) return false;
    assert(h->in_cache);
    ListRemove(h);
    h->in_cache = false;
    usage_ -= h->charge;
    Unref(h);
    return true;
  }

  mutable std::mutex mu_;
  size_t capacity_ = 0;
  size_t usage_ = 0;
  uint64_t hits_ = 0, misses_ = 0, inserts_ = 0, evictions_ = 0;
  HandleTable table_;
  LRUHandle lru_;     // Dummy head of the evictable list.
  LRUHandle in_use_;  // Dummy head of the pinned list.
};

Cache::Cache(size_t capacity_bytes, int shard_bits)
    : capacity_(capacity_bytes), shard_bits_(shard_bits) {
  assert(shard_bits_ >= 0 && shard_bits_ < 20);
  const size_t n = num_shards();
  shards_ = new Shard[n];
  const size_t per_shard = (capacity_bytes + n - 1) / n;
  for (size_t i = 0; i < n; i++) shards_[i].set_capacity(per_shard);
}

Cache::~Cache() { delete[] shards_; }

size_t Cache::ShardOf(const Slice& key) const {
  if (shard_bits_ == 0) return 0;
  return HashBytes(key.data(), key.size()) >> (32 - shard_bits_);
}

Cache::Handle* Cache::Insert(const Slice& key, void* value, size_t charge,
                             Deleter deleter) {
  const uint32_t hash = HashBytes(key.data(), key.size());
  return reinterpret_cast<Handle*>(
      shards_[ShardOf(key)].Insert(key, hash, value, charge, deleter));
}

Cache::Handle* Cache::Lookup(const Slice& key) {
  const uint32_t hash = HashBytes(key.data(), key.size());
  return reinterpret_cast<Handle*>(shards_[ShardOf(key)].Lookup(key, hash));
}

void* Cache::Value(Handle* handle) {
  return reinterpret_cast<LRUHandle*>(handle)->value;
}

void Cache::Release(Handle* handle) {
  LRUHandle* h = reinterpret_cast<LRUHandle*>(handle);
  shards_[shard_bits_ == 0 ? 0 : h->hash >> (32 - shard_bits_)].Release(h);
}

void Cache::Erase(const Slice& key) {
  const uint32_t hash = HashBytes(key.data(), key.size());
  shards_[ShardOf(key)].Erase(key, hash);
}

size_t Cache::TotalCharge() const {
  size_t total = 0;
  for (size_t i = 0; i < num_shards(); i++) total += shards_[i].usage();
  return total;
}

Cache::Stats Cache::GetStats() const {
  Stats stats;
  stats.capacity = capacity_;
  for (size_t i = 0; i < num_shards(); i++) shards_[i].AddStats(&stats);
  return stats;
}

}  // namespace lt
