#include "util/coding.h"

#include <cstring>

namespace lt {

void EncodeFixed32(char* dst, uint32_t value) {
  unsigned char* b = reinterpret_cast<unsigned char*>(dst);
  b[0] = static_cast<unsigned char>(value);
  b[1] = static_cast<unsigned char>(value >> 8);
  b[2] = static_cast<unsigned char>(value >> 16);
  b[3] = static_cast<unsigned char>(value >> 24);
}

void EncodeFixed64(char* dst, uint64_t value) {
  unsigned char* b = reinterpret_cast<unsigned char*>(dst);
  for (int i = 0; i < 8; i++) b[i] = static_cast<unsigned char>(value >> (8 * i));
}

uint32_t DecodeFixed32(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t DecodeFixed64(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  uint64_t v = 0;
  for (int i = 7; i >= 0; i--) v = (v << 8) | b[i];
  return v;
}

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[2];
  buf[0] = static_cast<char>(value);
  buf[1] = static_cast<char>(value >> 8);
  dst->append(buf, 2);
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  EncodeFixed32(buf, value);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  EncodeFixed64(buf, value);
  dst->append(buf, 8);
}

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < 2) return false;
  const unsigned char* b =
      reinterpret_cast<const unsigned char*>(input->data());
  *value = static_cast<uint16_t>(b[0] | (b[1] << 8));
  input->remove_prefix(2);
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < 4) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < 8) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(8);
  return true;
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(input->data());
  const unsigned char* limit = p + input->size();
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = *p++;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      input->remove_prefix(p - reinterpret_cast<const unsigned char*>(
                                   input->data()));
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

}  // namespace lt
