// Clock abstraction. Time-period binning (§3.4.2), flush ages (§3.4.1), and
// TTL aging (§3.3) all depend on "now"; injecting a SimClock makes every one
// of those policies unit-testable and lets benchmarks advance virtual days in
// microseconds.
//
// All timestamps in LittleTable are int64 microseconds since the Unix epoch.
#ifndef LITTLETABLE_UTIL_CLOCK_H_
#define LITTLETABLE_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace lt {

/// Microseconds since the Unix epoch.
using Timestamp = int64_t;

constexpr Timestamp kMicrosPerSecond = 1000000;
constexpr Timestamp kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr Timestamp kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr Timestamp kMicrosPerDay = 24 * kMicrosPerHour;
constexpr Timestamp kMicrosPerWeek = 7 * kMicrosPerDay;

/// Source of the current time.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Returns the current time in microseconds since the epoch.
  virtual Timestamp Now() const = 0;
};

/// Reads the real system clock.
class SystemClock : public Clock {
 public:
  Timestamp Now() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
  }

  /// Shared process-wide instance.
  static const std::shared_ptr<SystemClock>& Instance();
};

/// Monotonic microseconds since an arbitrary process-local epoch
/// (std::chrono::steady_clock). Latency instrumentation uses this rather
/// than a Clock: operation durations must be real elapsed time, immune to
/// SimClock jumps and wall-clock adjustments.
Timestamp MonotonicMicros();

/// A manually advanced clock for tests and simulation benchmarks.
class SimClock : public Clock {
 public:
  explicit SimClock(Timestamp start = 0) : now_(start) {}

  Timestamp Now() const override { return now_.load(std::memory_order_relaxed); }

  void Advance(Timestamp micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Set(Timestamp t) { now_.store(t, std::memory_order_relaxed); }

 private:
  std::atomic<Timestamp> now_;
};

}  // namespace lt

#endif  // LITTLETABLE_UTIL_CLOCK_H_
