// MetricsSampler: the self-monitoring subsystem — LittleTable storing its
// own telemetry in LittleTable, the way the paper's Meraki deployment stores
// fleets of per-device monitoring series (§2, §4).
//
// Every `interval` (default 1 s) the sampler snapshots its sources — the
// registered MetricsRegistry instances (the server registers its
// "server.*" metrics), the DB-wide block cache, and every user table's
// TableStats counters and latency quantiles — and inserts one row per
// metric into the reserved `__sys_metrics_1s` table:
//
//     (metric STRING, ts TIMESTAMP, value DOUBLE)   key = (metric, ts)
//
// Metric names are hierarchical dot paths ("server.requests",
// "table.usage.rows_inserted", "server.op.insert.micros.p99"), so a key
// prefix selects a subsystem and the (metric, ts) clustering makes "one
// metric's trajectory over a window" the cheap 2-D scan LittleTable is
// built for (§3.1). Counters are stored cumulative (consumers rate() them
// from deltas, which survives missed samples); gauges are stored as-is;
// histograms expand to .count/.p50/.p90/.p99/.p999/.max rows carrying the
// lifetime distribution so far.
//
// At every `rollup_interval` boundary (default 1 min) the 1 s samples of
// the elapsed window are rolled up — the §4.1.2 aggregator pattern turned
// inward — into `__sys_metrics_1m`:
//
//     (metric STRING, ts TIMESTAMP, avg, min, max DOUBLE, n INT64)
//
// Both tables get TTLs (2 h of seconds, 14 d of minutes by default) and age
// out through the ordinary ReclaimExpired maintenance path. They are
// ordinary tables in every other way too: queryable over the wire, through
// SQL, and by `lt_top`. Creation of `__sys*` names is reserved to this
// subsystem (DB::CreateSystemTable).
//
// Clock discipline: sampling is driven by the injected Clock, so under
// SimClock (lt_sim) the sample timestamps — and, in deterministic mode, the
// sampled values — are a pure function of the simulation schedule. The
// determinism contract: `deterministic = true` restricts sampling to
// per-table counters whose values depend only on the operation sequence
// (rows_inserted, queries, flushes, ...), excluding anything tainted by
// wall-clock time or thread scheduling (latency quantiles, group-commit
// coalescing, queue-depth gauges). Two same-seed lt_sim runs then produce
// byte-identical `__sys_metrics_1s` contents, which sim_test pins.
//
// Shutdown ordering: Start() registers a DB pre-close hook that runs
// Stop(), so DB::Close()/Abandon() always quiesces the sampler before any
// table flushes or closes — the final sample cannot race table shutdown.
#ifndef LITTLETABLE_OBS_METRICS_SAMPLER_H_
#define LITTLETABLE_OBS_METRICS_SAMPLER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/db.h"
#include "util/metrics.h"

namespace lt {
namespace obs {

/// Reserved system-table names the sampler writes.
inline constexpr char kMetricsTable1s[] = "__sys_metrics_1s";
inline constexpr char kMetricsTable1m[] = "__sys_metrics_1m";

/// Schemas of the system tables (exposed for tests and tools).
Schema MetricsSchema1s();
Schema MetricsSchema1m();

struct SamplerOptions {
  /// Sampling period for __sys_metrics_1s.
  Timestamp interval = kMicrosPerSecond;
  /// Rollup window for __sys_metrics_1m (must be a multiple of interval).
  Timestamp rollup_interval = kMicrosPerMinute;
  /// Retention for the two tables (0 = keep forever).
  Timestamp ttl_1s = 2 * kMicrosPerHour;
  Timestamp ttl_1m = 14 * kMicrosPerDay;
  /// Restrict sampling to the seed-deterministic per-table counter subset
  /// (see the determinism contract above). lt_sim sets this.
  bool deterministic = false;
  /// Run a background thread that samples on schedule. When false the
  /// caller drives SampleOnce() itself (deterministic harnesses do this at
  /// fixed points in their schedule).
  bool background = true;
  /// The background thread re-reads the clock at this real-time
  /// granularity, so a SimClock advanced by a test is noticed promptly
  /// while a SystemClock sampler burns ~no CPU between samples.
  int poll_ms = 10;
  /// Observed after every successful insert into a system table, with the
  /// exact rows inserted (the chaos oracle builds its durability model
  /// from this). Called on the sampling thread.
  std::function<void(const std::string& table, const std::vector<Row>& rows)>
      observer;
};

class MetricsSampler {
 public:
  /// `db` must outlive the sampler (Stop() runs via the DB pre-close hook
  /// at the latest).
  MetricsSampler(DB* db, SamplerOptions options);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Creates the __sys tables if missing, registers the pre-close hook,
  /// and (in background mode) starts the sampling thread.
  Status Start();

  /// Stops the background thread (if any) and detaches from the DB.
  /// Idempotent; called automatically by DB::Close()/Abandon() via the
  /// pre-close hook, and by the destructor.
  void Stop();

  /// Takes one sample stamped at `now` aligned down to the sampling
  /// interval, rolling up the elapsed 1m window first when `now` crossed a
  /// rollup boundary. Re-sampling an already-sampled aligned timestamp is
  /// a no-op (OK). Callers in background mode never need this; harnesses
  /// drive it directly.
  Status SampleOnce(Timestamp now);

  /// Registers/unregisters a named metrics registry as a sampling source
  /// (the server registers its own under no extra prefix: its metric names
  /// already carry "server."). The registry must stay valid until
  /// RemoveSource or Stop. `prefix` is prepended verbatim to metric names
  /// (pass "" when names are already fully qualified).
  void AddSource(const std::string& prefix, const MetricsRegistry* registry);
  void RemoveSource(const std::string& prefix);

  uint64_t samples_taken() const { return samples_.load(); }
  uint64_t sample_failures() const { return sample_failures_.load(); }
  uint64_t rollups_emitted() const { return rollups_.load(); }
  bool stopped() const { return stopped_.load(); }

 private:
  struct Accumulator {
    double sum = 0, min = 0, max = 0;
    int64_t n = 0;
  };

  void SamplerLoop();
  /// Collects the current sample as sorted (metric, value) pairs.
  std::vector<std::pair<std::string, double>> Collect();
  /// Emits the 1m rollup rows for the window starting at `window_start`.
  Status EmitRollup(Timestamp window_start);

  DB* const db_;
  const SamplerOptions opts_;
  std::shared_ptr<Clock> clock_;

  std::mutex mu_;  // Guards sources_, sample/rollup bookkeeping.
  std::map<std::string, const MetricsRegistry*> sources_;
  Timestamp last_sample_ts_ = -1;  // Aligned ts of the newest sample.
  Timestamp window_start_ = -1;    // Current 1m accumulation window.
  std::map<std::string, Accumulator> window_;

  std::atomic<uint64_t> samples_{0};
  std::atomic<uint64_t> sample_failures_{0};
  std::atomic<uint64_t> rollups_{0};

  std::atomic<bool> stopped_{true};
  size_t hook_id_ = 0;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace lt

#endif  // LITTLETABLE_OBS_METRICS_SAMPLER_H_
