#include "obs/metrics_sampler.h"

#include <algorithm>
#include <chrono>
#include <string_view>
#include <utility>

namespace lt {
namespace obs {
namespace {

/// Per-table counters whose values are a pure function of the operation
/// sequence: safe to sample under the determinism contract. Everything
/// measured in wall-clock time (latency histograms) or dependent on thread
/// scheduling (insert_groups coalescing, queue-depth gauges) is excluded —
/// those values differ between two same-seed runs even though the durable
/// state does not.
constexpr const char* kDeterministicTableCounters[] = {
    "table.insert_batches", "table.rows_inserted", "table.duplicates_rejected",
    "table.queries",        "table.rows_returned", "table.flushes",
    "table.flush_failures", "table.merges",        "table.tablets_merged",
    "table.tablets_expired",
};

bool DeterministicCounter(const char* name) {
  for (const char* ok : kDeterministicTableCounters) {
    if (std::string_view(name) == ok) return true;
  }
  return false;
}

/// "table.rows_inserted" + "usage" -> "table.usage.rows_inserted".
std::string PerTableName(const std::string& table, const char* stat_name) {
  std::string out = "table." + table + ".";
  out.append(stat_name + sizeof("table.") - 1);
  return out;
}

void AppendHistogram(std::map<std::string, double>* out,
                     const std::string& name, const HistogramSnapshot& snap) {
  if (snap.count == 0) return;  // Proportional to actual traffic, like kStatsV2.
  (*out)[name + ".count"] = static_cast<double>(snap.count);
  (*out)[name + ".p50"] = static_cast<double>(snap.P50());
  (*out)[name + ".p90"] = static_cast<double>(snap.P90());
  (*out)[name + ".p99"] = static_cast<double>(snap.P99());
  (*out)[name + ".p999"] = static_cast<double>(snap.P999());
  (*out)[name + ".max"] = static_cast<double>(snap.max);
}

}  // namespace

Schema MetricsSchema1s() {
  return Schema({Column("metric", ColumnType::kString),
                 Column("ts", ColumnType::kTimestamp),
                 Column("value", ColumnType::kDouble)},
                /*num_key_columns=*/2);
}

Schema MetricsSchema1m() {
  return Schema({Column("metric", ColumnType::kString),
                 Column("ts", ColumnType::kTimestamp),
                 Column("avg", ColumnType::kDouble),
                 Column("min", ColumnType::kDouble),
                 Column("max", ColumnType::kDouble),
                 Column("n", ColumnType::kInt64)},
                /*num_key_columns=*/2);
}

MetricsSampler::MetricsSampler(DB* db, SamplerOptions options)
    : db_(db), opts_(std::move(options)), clock_(db->clock()) {}

MetricsSampler::~MetricsSampler() { Stop(); }

Status MetricsSampler::Start() {
  if (opts_.interval <= 0 || opts_.rollup_interval < opts_.interval ||
      opts_.rollup_interval % opts_.interval != 0) {
    return Status::InvalidArgument(
        "rollup_interval must be a positive multiple of interval");
  }
  if (db_->GetTable(kMetricsTable1s) == nullptr) {
    TableOptions topts = db_->options().table_defaults;
    topts.ttl = opts_.ttl_1s;
    LT_RETURN_IF_ERROR(
        db_->CreateSystemTable(kMetricsTable1s, MetricsSchema1s(), &topts));
  }
  if (db_->GetTable(kMetricsTable1m) == nullptr) {
    TableOptions topts = db_->options().table_defaults;
    topts.ttl = opts_.ttl_1m;
    LT_RETURN_IF_ERROR(
        db_->CreateSystemTable(kMetricsTable1m, MetricsSchema1m(), &topts));
  }
  stopped_.store(false);
  // The hook makes shutdown ordering structural: DB::Close()/Abandon()
  // quiesces this sampler before any table is flushed or closed.
  hook_id_ = db_->AddPreCloseHook([this] { Stop(); });
  if (opts_.background) {
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = false;
    }
    thread_ = std::thread([this] { SamplerLoop(); });
  }
  return Status::OK();
}

void MetricsSampler::Stop() {
  if (stopped_.exchange(true)) return;
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // No-op if Stop is running from inside the pre-close hook (the DB has
  // already taken the hooks out); needed when the sampler stops first.
  db_->RemovePreCloseHook(hook_id_);
}

void MetricsSampler::SamplerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait_for(lock, std::chrono::milliseconds(opts_.poll_ms),
                      [this] { return bg_stop_; });
      if (bg_stop_) return;
    }
    // SampleOnce aligns and dedups, so polling faster than the interval
    // costs one clock read + one short lock per poll.
    SampleOnce(clock_->Now());
  }
}

std::vector<std::pair<std::string, double>> MetricsSampler::Collect() {
  // A map keyed by metric name gives a deterministic (sorted) row order —
  // part of the byte-identical-contents contract.
  std::map<std::string, double> out;

  for (const std::string& name : db_->ListTables()) {
    if (DB::IsSystemTableName(name)) continue;  // No self-feedback loop.
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) continue;  // Dropped between list and get.
    const TableStats& ts = table->stats();
    ts.ForEachCounter([&](const char* stat, uint64_t v) {
      if (opts_.deterministic && !DeterministicCounter(stat)) return;
      out[PerTableName(name, stat)] = static_cast<double>(v);
    });
    if (!opts_.deterministic) {
      ts.ForEachHistogram([&](const char* stat, const LatencyHistogram& h) {
        AppendHistogram(&out, PerTableName(name, stat), h.Snapshot());
      });
      out[PerTableName(name, "table.disk_tablets")] =
          static_cast<double>(table->NumDiskTablets());
      out[PerTableName(name, "table.disk_bytes")] =
          static_cast<double>(table->DiskBytes());
      out[PerTableName(name, "table.mem_bytes")] =
          static_cast<double>(table->ApproxMemBytes());
    }
  }

  if (!opts_.deterministic) {
    if (const std::shared_ptr<Cache>& cache = db_->block_cache()) {
      Cache::Stats cs = cache->GetStats();
      out["cache.hits"] = static_cast<double>(cs.hits);
      out["cache.misses"] = static_cast<double>(cs.misses);
      out["cache.inserts"] = static_cast<double>(cs.inserts);
      out["cache.evictions"] = static_cast<double>(cs.evictions);
      out["cache.charge_bytes"] = static_cast<double>(cs.charge);
      out["cache.capacity_bytes"] = static_cast<double>(cs.capacity);
    }
    for (const auto& [prefix, registry] : sources_) {
      for (const auto& [name, v] : registry->CounterValues()) {
        out[prefix + name] = static_cast<double>(v);
      }
      for (const auto& [name, v] : registry->GaugeValues()) {
        out[prefix + name] = static_cast<double>(v);
      }
      for (const auto& [name, snap] : registry->HistogramSnapshots()) {
        AppendHistogram(&out, prefix + name, snap);
      }
    }
    // The sampler monitors itself too (values as of the previous sample).
    out["obs.samples"] = static_cast<double>(samples_.load());
    out["obs.sample_failures"] = static_cast<double>(sample_failures_.load());
    out["obs.rollups"] = static_cast<double>(rollups_.load());
  }

  return {out.begin(), out.end()};
}

Status MetricsSampler::EmitRollup(Timestamp window_start) {
  if (window_.empty()) return Status::OK();
  std::shared_ptr<Table> table = db_->GetTable(kMetricsTable1m);
  if (!table) return Status::NotFound("missing __sys_metrics_1m");
  std::vector<Row> rows;
  rows.reserve(window_.size());
  for (const auto& [metric, acc] : window_) {
    rows.push_back({Value::String(metric), Value::Ts(window_start),
                    Value::Double(acc.sum / static_cast<double>(acc.n)),
                    Value::Double(acc.min), Value::Double(acc.max),
                    Value::Int64(acc.n)});
  }
  LT_RETURN_IF_ERROR(table->InsertBatch(rows));
  rollups_.fetch_add(1);
  if (opts_.observer) opts_.observer(kMetricsTable1m, rows);
  return Status::OK();
}

Status MetricsSampler::SampleOnce(Timestamp now) {
  if (stopped_.load() && !opts_.background) {
    // Manual drivers may race their own Stop; fail soft.
    return Status::Unavailable("sampler stopped");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const Timestamp aligned = now - (now % opts_.interval);
  if (aligned <= last_sample_ts_) return Status::OK();  // Interval not due.
  last_sample_ts_ = aligned;

  // Rollup the elapsed 1m window before sampling into the new one.
  const Timestamp window = aligned - (aligned % opts_.rollup_interval);
  Status rollup_status;
  if (window_start_ >= 0 && window > window_start_) {
    rollup_status = EmitRollup(window_start_);
    window_.clear();
  }
  if (window != window_start_) window_start_ = window;

  std::shared_ptr<Table> table = db_->GetTable(kMetricsTable1s);
  if (!table) {
    sample_failures_.fetch_add(1);
    return Status::NotFound("missing __sys_metrics_1s");
  }
  std::vector<std::pair<std::string, double>> sample = Collect();
  std::vector<Row> rows;
  rows.reserve(sample.size());
  for (const auto& [metric, value] : sample) {
    rows.push_back(
        {Value::String(metric), Value::Ts(aligned), Value::Double(value)});
  }
  if (rows.empty()) return rollup_status;
  Status s = table->InsertBatch(rows);
  if (!s.ok()) {
    // Backpressure or a sick disk: drop this sample (telemetry is lossy by
    // design — §3.1 weak durability applies doubly to self-monitoring) and
    // keep the schedule.
    sample_failures_.fetch_add(1);
    return s;
  }
  samples_.fetch_add(1);
  for (const auto& [metric, value] : sample) {
    Accumulator& acc = window_[metric];
    if (acc.n == 0) {
      acc.min = acc.max = value;
    } else {
      acc.min = std::min(acc.min, value);
      acc.max = std::max(acc.max, value);
    }
    acc.sum += value;
    acc.n++;
  }
  if (opts_.observer) opts_.observer(kMetricsTable1s, rows);
  return rollup_status.ok() ? Status::OK() : rollup_status;
}

void MetricsSampler::AddSource(const std::string& prefix,
                               const MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_[prefix] = registry;
}

void MetricsSampler::RemoveSource(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(prefix);
}

}  // namespace obs
}  // namespace lt
