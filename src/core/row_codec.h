// Row and key serialization against a schema. Rows are stored in tablet
// blocks as the concatenation of their cell encodings in schema order; keys
// appear standalone in block indexes and Bloom filters.
#ifndef LITTLETABLE_CORE_ROW_CODEC_H_
#define LITTLETABLE_CORE_ROW_CODEC_H_

#include <string>

#include "core/schema.h"

namespace lt {

/// Appends the encoding of all cells of `row` to `dst`.
void EncodeRow(std::string* dst, const Schema& schema, const Row& row);

/// Decodes one row, consuming from `input`.
Status DecodeRow(Slice* input, const Schema& schema, Row* out);

/// Appends the encoding of the leading `key.size()` key columns.
void EncodeKey(std::string* dst, const Schema& schema, const Key& key);

/// Decodes a full primary key (all key columns).
Status DecodeKey(Slice* input, const Schema& schema, Key* out);

/// Approximate in-memory footprint of a row, used for MemTablet accounting.
size_t ApproximateRowBytes(const Row& row);

}  // namespace lt

#endif  // LITTLETABLE_CORE_ROW_CODEC_H_
