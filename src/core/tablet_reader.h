// TabletReader: opens an on-disk tablet, caches its footer (index, schema,
// timespan, Bloom filter) in memory, and serves cursors.
//
// Reading the footer of a cold tablet costs three seeks (§3.5): the inode,
// the trailer words at the end of the file, and the footer itself. Once the
// footer is cached — readers stay open for the life of the table — any block
// is one more seek away, which is exactly the 4-seek/1-seek split Figure 6
// measures.
#ifndef LITTLETABLE_CORE_TABLET_READER_H_
#define LITTLETABLE_CORE_TABLET_READER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/block.h"
#include "core/bounds.h"
#include "core/cursor.h"
#include "core/query_trace.h"
#include "core/stats.h"
#include "core/tablet_meta.h"
#include "env/env.h"
#include "util/bloom.h"
#include "util/cache.h"

namespace lt {

class TabletReader : public std::enable_shared_from_this<TabletReader> {
 public:
  /// Creates a reader for `fname`. The footer is loaded lazily, on first
  /// use — after a restart, footers are "reloaded into memory on demand"
  /// (§3.5), so opening a table with hundreds of tablets costs nothing and
  /// a query pays footer seeks only for the tablets its timestamp range
  /// selects.
  ///
  /// `block_cache` (optional) is the shared decompressed-block cache
  /// consulted before any Env read; the reader claims a fresh cache id so
  /// its blocks never collide with another tablet's. `stats` (optional)
  /// receives per-table hit/miss counters and must outlive the reader (the
  /// owning Table's TableStats does).
  static Status Open(Env* env, const std::string& fname,
                     std::shared_ptr<TabletReader>* out,
                     std::shared_ptr<Cache> block_cache = nullptr,
                     TableStats* stats = nullptr);

  /// Forces the footer load (callers must Load() before using accessors
  /// below; Table does this for the tablets a request actually touches).
  Status Load() const;

  /// The schema rows in this tablet were written under (§3.5).
  const Schema& tablet_schema() const { return schema_; }

  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }
  uint64_t row_count() const { return row_count_; }
  const Key& min_key() const { return min_key_; }
  const Key& max_key() const { return max_key_; }
  bool has_bloom() const { return has_bloom_; }

  /// On-disk format version this tablet was written under (0 = no per-block
  /// CRCs in the index; 1 = index carries a CRC per stored block; 2 =
  /// columnar blocks with per-chunk encodings, see block.h).
  uint32_t format_version() const { return format_version_; }

  /// Bloom-filter check for a key prefix (or a full key). True means "may
  /// contain"; when the tablet carries no filter, always true.
  bool MayContainPrefix(const Key& prefix) const;

  /// Opens a cursor over rows satisfying `bounds`' *key* dimension, in
  /// bounds.direction order, translated to `current_schema` (§3.5).
  /// Timestamp filtering happens downstream: tablets are selected by
  /// timespan, but their rows generally straddle the exact bounds (§3.2).
  /// `scanned` (optional) is incremented for every row decoded — the
  /// rows-scanned side of the Figure 9 efficiency ratio. `trace` (optional)
  /// accumulates per-query block-read and cache-hit counts; it must outlive
  /// the cursor and is touched only from the cursor's thread.
  Status NewCursor(const QueryBounds& bounds, const Schema* current_schema,
                   std::atomic<uint64_t>* scanned,
                   std::unique_ptr<Cursor>* out, QueryTrace* trace = nullptr);

  size_t num_blocks() const { return index_.size(); }

 private:
  friend class TabletCursor;

  struct IndexEntry {
    Key last_key;
    uint64_t offset;
    uint32_t stored_len;
    uint32_t payload_len;
    uint32_t row_count;
    uint32_t crc = 0;  // Masked CRC32C of the stored block (format >= 1).
  };

  TabletReader() = default;

  Status LoadFooter(const std::string& fname);
  Status LoadLocked() const;
  /// Points `*out` at block `i`: served from the block cache when present
  /// (pinning the entry for the reader's lifetime), otherwise read from the
  /// Env, CRC-verified, decompressed, and inserted into the cache. Blocks
  /// that fail verification are NEVER cached — a corrupt block is
  /// re-detected on every access. Cache-probe and miss-read latencies go to
  /// `stats_`; per-query counts go to `trace` when non-null.
  Status ReadBlock(size_t i, BlockReader* out,
                   QueryTrace* trace = nullptr) const;

  /// Index of the first block that could contain a row with
  /// key-compare(prefix) >= 0 (`or_equal`) or > 0; == num_blocks() if none.
  size_t SeekBlock(const Key& prefix, bool or_equal) const;

  Env* env_ = nullptr;
  std::string fname_;
  std::shared_ptr<Cache> block_cache_;  // Null = uncached reads.
  uint64_t cache_id_ = 0;               // Key-space prefix within the cache.
  TableStats* stats_ = nullptr;         // Owned by the Table; may be null.
  mutable std::mutex load_mu_;
  mutable bool loaded_ = false;
  mutable Status load_status_;

  mutable std::unique_ptr<RandomAccessFile> file_;
  Schema schema_;
  uint32_t format_version_ = 0;
  std::vector<IndexEntry> index_;
  Timestamp min_ts_ = 0, max_ts_ = 0;
  uint64_t row_count_ = 0;
  Key min_key_, max_key_;
  bool has_bloom_ = false;
  BloomFilter bloom_;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_TABLET_READER_H_
