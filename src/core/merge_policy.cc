#include "core/merge_policy.h"

#include "util/bloom.h"  // BloomHash doubles as a string hash.

namespace lt {
namespace {

// Floor-aligns t to a multiple of unit from the epoch.
Timestamp AlignDown(Timestamp t, Timestamp unit) {
  Timestamp r = t % unit;
  if (r < 0) r += unit;
  return t - r;
}

// The instant at which a timestamp's period granularity became `unit`: a
// day bin exists once its day has fully passed, a week bin once its week
// has. (4-hour bins are never the result of a rollover.)
Timestamp RolloverInstant(Timestamp ts, Timestamp unit) {
  return AlignDown(ts, unit) + unit;
}

}  // namespace

double RolloverDelayFraction(const std::string& table_key, double max_frac) {
  uint64_t h = BloomHash(table_key);
  return (static_cast<double>(h % 10000) / 10000.0) * max_frac;
}

MergePick PickMerge(const std::vector<TabletMeta>& tablets, Timestamp now,
                    const std::string& table_key,
                    const MergePolicyOptions& options) {
  const double delay_frac =
      RolloverDelayFraction(table_key, options.rollover_delay_frac);

  auto eligible = [&](const TabletMeta& t) {
    if (now - t.flushed_at < options.min_tablet_age) return false;
    Period p = PeriodFor(t.min_ts, now);
    // Rollover delay: if the tablet was flushed under a smaller period than
    // it occupies now, wait a pseudorandom fraction of the larger period
    // past the rollover boundary before merging it (§3.4.2).
    Timestamp len_at_flush = PeriodLengthFor(t.min_ts, t.flushed_at);
    if (len_at_flush < p.length()) {
      Timestamp rollover = RolloverInstant(t.min_ts, p.length());
      Timestamp wait = static_cast<Timestamp>(delay_frac *
                                              static_cast<double>(p.length()));
      if (now < rollover + wait) return false;
    }
    return true;
  };

  for (size_t i = 0; i + 1 < tablets.size(); i++) {
    const TabletMeta& a = tablets[i];
    const TabletMeta& b = tablets[i + 1];
    if (!eligible(a) || !eligible(b)) continue;
    // Never merge across periods (as seen at `now`).
    if (!(PeriodFor(a.min_ts, now) == PeriodFor(b.min_ts, now))) continue;
    // The appendix condition: merge the first pair where the older tablet
    // is at most double the newer one.
    if (a.file_bytes > 2 * b.file_bytes) continue;
    uint64_t total = a.file_bytes + b.file_bytes;
    if (total > options.max_merged_bytes) continue;
    // Extend with newer adjacent tablets (same period, eligible, within the
    // size cap) — the appendix shows the bounds hold regardless of their
    // sizes.
    size_t end = i + 2;
    while (end < tablets.size() && eligible(tablets[end]) &&
           PeriodFor(tablets[end].min_ts, now) == PeriodFor(a.min_ts, now) &&
           total + tablets[end].file_bytes <= options.max_merged_bytes) {
      total += tablets[end].file_bytes;
      end++;
    }
    return MergePick{i, end};
  }
  return MergePick{};
}

}  // namespace lt
