// Table schemas (§3.1) and the supported schema manipulations (§3.5).
//
// A schema is an ordered list of typed, defaulted columns; an ordered prefix
// of them forms the primary key, whose final column must be a timestamp
// named "ts". Schemas carry a version number: every evolution step (append
// column, widen int32→int64) bumps it, and tablet readers translate rows
// written under older versions to the current one on the fly — existing
// on-disk tablets are never rewritten.
#ifndef LITTLETABLE_CORE_SCHEMA_H_
#define LITTLETABLE_CORE_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/value.h"

namespace lt {

/// One column definition.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  Value default_value;

  Column() = default;
  Column(std::string n, ColumnType t)
      : name(std::move(n)), type(t), default_value(DefaultValueFor(t)) {}
  Column(std::string n, ColumnType t, Value dflt)
      : name(std::move(n)), type(t), default_value(std::move(dflt)) {}
};

/// An immutable-by-convention table schema.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Column> columns, size_t num_key_columns,
         uint32_t version = 1)
      : columns_(std::move(columns)),
        num_key_columns_(num_key_columns),
        version_(version) {}

  /// Checks the §3.1 rules: at least one key column, key columns lead the
  /// column list, the final key column has type timestamp and name "ts",
  /// names are unique and non-empty, defaults match their types, and key
  /// columns are not doubles (keys must have exact ordering).
  Status Validate() const;

  const std::vector<Column>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_key_columns() const { return num_key_columns_; }
  /// Index of the timestamp key column (always num_key_columns-1).
  size_t ts_index() const { return num_key_columns_ - 1; }
  uint32_t version() const { return version_; }

  /// Returns the column index for `name`, or -1.
  int FindColumn(const std::string& name) const;

  /// True if a row (vector of cells) structurally matches this schema.
  bool RowMatches(const Row& row) const;

  /// Compares the key columns of two conforming rows.
  int CompareKeys(const Row& a, const Row& b) const;

  /// Compares a row's leading key columns against a key prefix (which may
  /// be shorter than the full key). Equal means "row starts with prefix".
  int CompareKeyToPrefix(const Row& row, const Key& prefix) const;

  /// Extracts the key cells of a row.
  Key KeyOf(const Row& row) const;

  /// Serialization used by tablet footers and table descriptors.
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(Slice* input, Schema* out);

  // ---- Evolution (§3.5): the only supported manipulations. ----

  /// Returns a schema with `column` appended (non-key), version bumped.
  Result<Schema> WithAppendedColumn(const Column& column) const;

  /// Returns a schema with non-key column `name` widened int32→int64.
  Result<Schema> WithWidenedColumn(const std::string& name) const;

  /// True if `old_schema` rows can be translated to this schema: every old
  /// column exists here at the same position with the same or widened type.
  bool IsCompatibleUpgradeOf(const Schema& old_schema) const;

  /// Translates a row written under `old_schema` (a compatible ancestor)
  /// into this schema: widens cells and fills appended columns with their
  /// defaults.
  Row TranslateRow(const Schema& old_schema, const Row& row) const;

  bool operator==(const Schema& other) const;

 private:
  std::vector<Column> columns_;
  size_t num_key_columns_ = 0;
  uint32_t version_ = 1;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_SCHEMA_H_
