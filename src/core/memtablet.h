// MemTablet: the in-memory tablet (§3.2).
//
// Newly inserted rows land in a balanced binary tree sorted by primary key.
// When a filling tablet reaches the configured size or age limit, the table
// marks it read-only (seals it) and queues it for flushing. With
// application-driven timespans (§3.4.3), several MemTablets fill at once —
// one per time period — and each remembers its period and creation time so
// the flush scheduler can apply the 10-minute age bound.
//
// Thread safety: guarded externally by the owning Table's mutex. Once
// sealed, a MemTablet is immutable and may be read without the lock.
#ifndef LITTLETABLE_CORE_MEMTABLET_H_
#define LITTLETABLE_CORE_MEMTABLET_H_

#include <memory>
#include <set>
#include <vector>

#include "core/bounds.h"
#include "core/periods.h"
#include "core/schema.h"

namespace lt {

class MemTablet {
 public:
  MemTablet(uint64_t id, std::shared_ptr<const Schema> schema, Period period,
            Timestamp created_at);

  /// Inserts a row (which must match the schema). Returns false if a row
  /// with the same primary key is already present.
  bool Insert(Row row);

  /// True if a row with exactly this full primary key exists.
  bool ContainsKey(const Row& key_row) const;

  uint64_t id() const { return id_; }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const Period& period() const { return period_; }
  Timestamp created_at() const { return created_at_; }
  bool sealed() const { return sealed_; }
  void Seal() { sealed_ = true; }

  size_t num_rows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  /// Approximate heap footprint, for the flush size trigger.
  size_t ApproximateBytes() const { return approx_bytes_; }

  /// Timespan of rows actually inserted (undefined when empty).
  Timestamp min_ts() const { return min_ts_; }
  Timestamp max_ts() const { return max_ts_; }

  /// The largest key currently present (for the §3.4.4 uniqueness fast
  /// path); requires non-empty.
  const Row& MaxKeyRow() const { return *rows_.rbegin(); }

  /// Copies the rows satisfying `bounds`' key dimension into `out`, in
  /// ascending key order. (Timestamp filtering happens downstream; this
  /// only snapshots, so queries never hold the table lock while streaming.)
  void Snapshot(const QueryBounds& bounds, std::vector<Row>* out) const;

  /// All rows in ascending key order (flush path; requires sealed).
  std::vector<Row> AllRows() const;

 private:
  /// Probe type for heterogeneous set lookups against a key prefix.
  struct KeyProbe {
    const Key* prefix;
  };

  struct RowLess {
    using is_transparent = void;
    const Schema* schema;
    bool operator()(const Row& a, const Row& b) const {
      return schema->CompareKeys(a, b) < 0;
    }
    bool operator()(const Row& a, const KeyProbe& p) const {
      return schema->CompareKeyToPrefix(a, *p.prefix) < 0;
    }
    bool operator()(const KeyProbe& p, const Row& b) const {
      return schema->CompareKeyToPrefix(b, *p.prefix) > 0;
    }
  };

  uint64_t id_;
  std::shared_ptr<const Schema> schema_;
  Period period_;
  Timestamp created_at_;
  bool sealed_ = false;
  size_t approx_bytes_ = 0;
  Timestamp min_ts_ = 0;
  Timestamp max_ts_ = 0;
  std::set<Row, RowLess> rows_;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_MEMTABLET_H_
