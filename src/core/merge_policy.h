// The tablet merge policy (§3.4.1, §3.4.2, and the appendix).
//
// Tablets are ordered by their timespans' lower bounds. The policy merges
// the oldest adjacent pair (t_i, t_{i+1}) such that |t_i| <= 2|t_{i+1}|,
// including any newer adjacent tablets up to a maximum merged size. Because
// only adjacent tablets merge, timespan disjointness is preserved; the
// appendix proves the remaining tablet count and the number of times any row
// is rewritten are both O(log T).
//
// Two period rules keep data clustered by time (§3.4.2): tablets from
// different time periods never merge, and when tablets roll over into a
// larger period the merge is delayed by a deterministic pseudorandom
// fraction of the larger period so that a day/week boundary does not trigger
// a surge of merges across every table at once.
#ifndef LITTLETABLE_CORE_MERGE_POLICY_H_
#define LITTLETABLE_CORE_MERGE_POLICY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/periods.h"
#include "core/tablet_meta.h"

namespace lt {

struct MergePolicyOptions {
  /// Upper bound on a merged tablet's size.
  uint64_t max_merged_bytes = 128ull << 20;
  /// Tablets younger than this never merge, maximizing the work available
  /// to any one merge (the 90-second delay of §5.1.3).
  Timestamp min_tablet_age = 90 * kMicrosPerSecond;
  /// Maximum rollover delay, as a fraction of the larger period. The actual
  /// delay is a table-keyed pseudorandom fraction of this.
  double rollover_delay_frac = 0.5;
};

/// A contiguous range [begin, end) of the input tablet vector to merge.
struct MergePick {
  size_t begin = 0;
  size_t end = 0;
  bool valid() const { return end > begin + 1; }
};

/// Selects tablets to merge from `tablets`, which must be sorted by
/// (min_ts, max_ts) — descriptor order. `table_key` seeds the pseudorandom
/// rollover delay. Returns an invalid pick when nothing should merge.
MergePick PickMerge(const std::vector<TabletMeta>& tablets, Timestamp now,
                    const std::string& table_key,
                    const MergePolicyOptions& options);

/// The deterministic delay fraction in [0, rollover_delay_frac) for a table.
double RolloverDelayFraction(const std::string& table_key, double max_frac);

}  // namespace lt

#endif  // LITTLETABLE_CORE_MERGE_POLICY_H_
