#include "core/schema.h"

#include <set>

#include "util/coding.h"

namespace lt {

Status Schema::Validate() const {
  if (columns_.empty()) return Status::InvalidArgument("schema has no columns");
  if (num_key_columns_ == 0) {
    return Status::InvalidArgument("schema has no primary key");
  }
  if (num_key_columns_ > columns_.size()) {
    return Status::InvalidArgument("more key columns than columns");
  }
  const Column& ts = columns_[num_key_columns_ - 1];
  if (ts.type != ColumnType::kTimestamp || ts.name != "ts") {
    return Status::InvalidArgument(
        "final primary key column must be a timestamp named \"ts\"");
  }
  std::set<std::string> names;
  for (size_t i = 0; i < columns_.size(); i++) {
    const Column& c = columns_[i];
    if (c.name.empty()) return Status::InvalidArgument("empty column name");
    if (!names.insert(c.name).second) {
      return Status::InvalidArgument("duplicate column name: " + c.name);
    }
    if (!c.default_value.MatchesType(c.type)) {
      return Status::InvalidArgument("default value type mismatch for column " +
                                     c.name);
    }
    if (i < num_key_columns_ && c.type == ColumnType::kDouble) {
      return Status::InvalidArgument("key column may not be double: " + c.name);
    }
  }
  return Status::OK();
}

int Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::RowMatches(const Row& row) const {
  if (row.size() != columns_.size()) return false;
  for (size_t i = 0; i < row.size(); i++) {
    if (!row[i].MatchesType(columns_[i].type)) return false;
  }
  return true;
}

int Schema::CompareKeys(const Row& a, const Row& b) const {
  for (size_t i = 0; i < num_key_columns_; i++) {
    int r = a[i].Compare(b[i]);
    if (r != 0) return r;
  }
  return 0;
}

int Schema::CompareKeyToPrefix(const Row& row, const Key& prefix) const {
  size_t n = prefix.size() < num_key_columns_ ? prefix.size() : num_key_columns_;
  for (size_t i = 0; i < n; i++) {
    int r = row[i].Compare(prefix[i]);
    if (r != 0) return r;
  }
  return 0;
}

Key Schema::KeyOf(const Row& row) const {
  return Key(row.begin(), row.begin() + num_key_columns_);
}

void Schema::EncodeTo(std::string* dst) const {
  PutVarint32(dst, version_);
  PutVarint32(dst, static_cast<uint32_t>(num_key_columns_));
  PutVarint32(dst, static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    PutLengthPrefixedSlice(dst, c.name);
    dst->push_back(static_cast<char>(c.type));
    EncodeValue(dst, c.default_value, c.type);
  }
}

Status Schema::DecodeFrom(Slice* input, Schema* out) {
  uint32_t version, num_key, num_cols;
  if (!GetVarint32(input, &version) || !GetVarint32(input, &num_key) ||
      !GetVarint32(input, &num_cols)) {
    return Status::Corruption("bad schema header");
  }
  if (num_cols > 4096) return Status::Corruption("absurd column count");
  std::vector<Column> cols;
  cols.reserve(num_cols);
  for (uint32_t i = 0; i < num_cols; i++) {
    Column c;
    Slice name;
    if (!GetLengthPrefixedSlice(input, &name) || input->empty()) {
      return Status::Corruption("bad column encoding");
    }
    c.name = name.ToString();
    uint8_t type_byte = static_cast<uint8_t>((*input)[0]);
    input->remove_prefix(1);
    if (type_byte < 1 || type_byte > 6) {
      return Status::Corruption("bad column type");
    }
    c.type = static_cast<ColumnType>(type_byte);
    LT_RETURN_IF_ERROR(DecodeValue(input, c.type, &c.default_value));
    cols.push_back(std::move(c));
  }
  *out = Schema(std::move(cols), num_key, version);
  return out->Validate();
}

Result<Schema> Schema::WithAppendedColumn(const Column& column) const {
  if (FindColumn(column.name) >= 0) {
    return Status::AlreadyExists("column exists: " + column.name);
  }
  if (!column.default_value.MatchesType(column.type)) {
    return Status::InvalidArgument("default value type mismatch");
  }
  std::vector<Column> cols = columns_;
  cols.push_back(column);
  Schema next(std::move(cols), num_key_columns_, version_ + 1);
  LT_RETURN_IF_ERROR(next.Validate());
  return next;
}

Result<Schema> Schema::WithWidenedColumn(const std::string& name) const {
  int idx = FindColumn(name);
  if (idx < 0) return Status::NotFound("no such column: " + name);
  if (static_cast<size_t>(idx) < num_key_columns_) {
    return Status::NotSupported("cannot widen a key column: " + name);
  }
  if (columns_[idx].type != ColumnType::kInt32) {
    return Status::InvalidArgument("only int32 columns can be widened");
  }
  std::vector<Column> cols = columns_;
  cols[idx].type = ColumnType::kInt64;
  cols[idx].default_value = Value::Int64(cols[idx].default_value.i32());
  Schema next(std::move(cols), num_key_columns_, version_ + 1);
  LT_RETURN_IF_ERROR(next.Validate());
  return next;
}

bool Schema::IsCompatibleUpgradeOf(const Schema& old_schema) const {
  if (old_schema.columns_.size() > columns_.size()) return false;
  if (old_schema.num_key_columns_ != num_key_columns_) return false;
  for (size_t i = 0; i < old_schema.columns_.size(); i++) {
    const Column& oc = old_schema.columns_[i];
    const Column& nc = columns_[i];
    if (oc.name != nc.name) return false;
    if (oc.type == nc.type) continue;
    if (oc.type == ColumnType::kInt32 && nc.type == ColumnType::kInt64) {
      continue;  // Widened.
    }
    return false;
  }
  return true;
}

Row Schema::TranslateRow(const Schema& old_schema, const Row& row) const {
  Row out;
  out.reserve(columns_.size());
  for (size_t i = 0; i < columns_.size(); i++) {
    if (i < old_schema.columns_.size()) {
      if (old_schema.columns_[i].type == ColumnType::kInt32 &&
          columns_[i].type == ColumnType::kInt64) {
        out.push_back(Value::Int64(row[i].i32()));
      } else {
        out.push_back(row[i]);
      }
    } else {
      out.push_back(columns_[i].default_value);
    }
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (num_key_columns_ != other.num_key_columns_ ||
      columns_.size() != other.columns_.size() ||
      version_ != other.version_) {
    return false;
  }
  for (size_t i = 0; i < columns_.size(); i++) {
    if (columns_[i].name != other.columns_[i].name ||
        columns_[i].type != other.columns_[i].type ||
        columns_[i].default_value.Compare(other.columns_[i].default_value) !=
            0) {
      return false;
    }
  }
  return true;
}

}  // namespace lt
