#include "core/row_codec.h"

namespace lt {

void EncodeRow(std::string* dst, const Schema& schema, const Row& row) {
  for (size_t i = 0; i < schema.num_columns(); i++) {
    EncodeValue(dst, row[i], schema.columns()[i].type);
  }
}

Status DecodeRow(Slice* input, const Schema& schema, Row* out) {
  out->clear();
  out->reserve(schema.num_columns());
  for (size_t i = 0; i < schema.num_columns(); i++) {
    Value v;
    LT_RETURN_IF_ERROR(DecodeValue(input, schema.columns()[i].type, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

void EncodeKey(std::string* dst, const Schema& schema, const Key& key) {
  for (size_t i = 0; i < key.size(); i++) {
    EncodeValue(dst, key[i], schema.columns()[i].type);
  }
}

Status DecodeKey(Slice* input, const Schema& schema, Key* out) {
  out->clear();
  out->reserve(schema.num_key_columns());
  for (size_t i = 0; i < schema.num_key_columns(); i++) {
    Value v;
    LT_RETURN_IF_ERROR(DecodeValue(input, schema.columns()[i].type, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

size_t ApproximateRowBytes(const Row& row) {
  size_t total = sizeof(Row) + row.size() * sizeof(Value);
  for (const Value& v : row) {
    if (v.is_bytes()) total += v.bytes().capacity();
  }
  return total;
}

}  // namespace lt
