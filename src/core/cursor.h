// Cursors: ordered row streams. A query opens one cursor per overlapping
// tablet (in-memory and on-disk), merge-sorts them into a single stream
// ordered by primary key (§3.2), and filters rows whose timestamps fall
// outside the query's bounds or past the table's TTL.
#ifndef LITTLETABLE_CORE_CURSOR_H_
#define LITTLETABLE_CORE_CURSOR_H_

#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/schema.h"

namespace lt {

/// An ordered stream of rows. A freshly created cursor is already positioned
/// on its first row (Valid() is false for an empty stream). All rows stream
/// in the cursor's scan direction by primary key.
class Cursor {
 public:
  virtual ~Cursor() = default;

  virtual bool Valid() const = 0;
  /// The current row; requires Valid().
  virtual const Row& row() const = 0;
  /// Advances to the next row in scan direction.
  virtual Status Next() = 0;
  /// First error encountered, if any (an erroring cursor becomes invalid).
  virtual Status status() const = 0;
};

/// A cursor over an in-memory vector of rows, already sorted ascending by
/// key; iterates in `direction`.
class VectorCursor final : public Cursor {
 public:
  VectorCursor(std::vector<Row> rows, Direction direction)
      : rows_(std::move(rows)), direction_(direction) {
    pos_ = direction_ == Direction::kAscending
               ? 0
               : static_cast<int64_t>(rows_.size()) - 1;
  }

  bool Valid() const override {
    return pos_ >= 0 && pos_ < static_cast<int64_t>(rows_.size());
  }
  const Row& row() const override { return rows_[pos_]; }
  Status Next() override {
    pos_ += direction_ == Direction::kAscending ? 1 : -1;
    return Status::OK();
  }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<Row> rows_;
  Direction direction_;
  int64_t pos_;
};

/// Merge-sorts N child cursors into one stream. Children must share the
/// direction and never produce duplicate keys (LittleTable enforces key
/// uniqueness at insert, §3.4.4).
class MergingCursor final : public Cursor {
 public:
  MergingCursor(const Schema* schema, std::vector<std::unique_ptr<Cursor>> children,
                Direction direction);

  bool Valid() const override { return current_ >= 0; }
  const Row& row() const override { return children_[current_]->row(); }
  Status Next() override;
  Status status() const override { return status_; }

 private:
  void PickCurrent();

  const Schema* schema_;
  std::vector<std::unique_ptr<Cursor>> children_;
  Direction direction_;
  int current_ = -1;
  Status status_;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_CURSOR_H_
