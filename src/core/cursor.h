// Cursors: ordered row streams. A query opens one cursor per overlapping
// tablet (in-memory and on-disk), merge-sorts them into a single stream
// ordered by primary key (§3.2), and filters rows whose timestamps fall
// outside the query's bounds or past the table's TTL.
#ifndef LITTLETABLE_CORE_CURSOR_H_
#define LITTLETABLE_CORE_CURSOR_H_

#include <memory>
#include <vector>

#include "core/bounds.h"
#include "core/schema.h"

namespace lt {

/// An ordered stream of rows. A freshly created cursor is already positioned
/// on its first row (Valid() is false for an empty stream). All rows stream
/// in the cursor's scan direction by primary key.
class Cursor {
 public:
  virtual ~Cursor() = default;

  virtual bool Valid() const = 0;
  /// The current row; requires Valid().
  virtual const Row& row() const = 0;
  /// Advances to the next row in scan direction.
  virtual Status Next() = 0;
  /// First error encountered, if any (an erroring cursor becomes invalid).
  virtual Status status() const = 0;
};

/// A cursor over an in-memory vector of rows, already sorted ascending by
/// key; iterates in `direction`.
///
/// Position is a signed int64_t rather than size_t on purpose: the
/// one-before-the-start state of a descending scan over an empty (or
/// exhausted) vector is pos_ == -1, which a size_t would wrap to 2^64-1 and
/// (since any size_t comparison against rows_.size() would also have to
/// wrap) make indistinguishable from a huge in-range index. The invariant
/// is -1 <= pos_ <= rows_.size(): Valid() is exactly 0 <= pos_ < size, and
/// Next() clamps at the sentinels so repeated calls past the end cannot
/// overflow. Rows_ is bounded far below 2^63 (it holds a query result), so
/// the cast to int64_t never truncates.
class VectorCursor final : public Cursor {
 public:
  VectorCursor(std::vector<Row> rows, Direction direction)
      : rows_(std::move(rows)), direction_(direction) {
    pos_ = direction_ == Direction::kAscending
               ? 0
               : static_cast<int64_t>(rows_.size()) - 1;
  }

  bool Valid() const override {
    return pos_ >= 0 && pos_ < static_cast<int64_t>(rows_.size());
  }
  const Row& row() const override {
    return rows_[static_cast<size_t>(pos_)];
  }
  Status Next() override {
    if (Valid()) pos_ += direction_ == Direction::kAscending ? 1 : -1;
    return Status::OK();
  }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<Row> rows_;
  Direction direction_;
  int64_t pos_;
};

/// Merge-sorts N child cursors into one stream via an N-way tournament
/// heap: heap_ holds the indices of the still-valid children, ordered by
/// their current row's key (direction-adjusted), so advancing costs
/// O(log N) comparisons instead of the previous O(N) rescan. Children must
/// share the direction and never produce duplicate keys (LittleTable
/// enforces key uniqueness at insert, §3.4.4).
class MergingCursor final : public Cursor {
 public:
  MergingCursor(const Schema* schema, std::vector<std::unique_ptr<Cursor>> children,
                Direction direction);

  bool Valid() const override { return !heap_.empty(); }
  const Row& row() const override { return children_[heap_[0]]->row(); }
  Status Next() override;
  Status status() const override { return status_; }

 private:
  /// True if child a's current row precedes child b's in scan direction.
  bool Before(size_t a, size_t b) const;
  /// Restores the heap property below heap_[i].
  void SiftDown(size_t i);
  void Fail(Status s);

  const Schema* schema_;
  std::vector<std::unique_ptr<Cursor>> children_;
  Direction direction_;
  std::vector<size_t> heap_;  // Indices into children_; heap_[0] is next.
  Status status_;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_CURSOR_H_
