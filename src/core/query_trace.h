// Per-query execution trace: how much work one query did and how much the
// pruning machinery saved it. Populated by Table::Query (tablet pruning) and
// TabletReader (block reads / cache hits); a query runs on one thread, so
// the fields are plain integers — copyable, and free to update on the scan
// hot path. The rows scanned vs. returned ratio is the paper's Figure 9
// efficiency metric.
#ifndef LITTLETABLE_CORE_QUERY_TRACE_H_
#define LITTLETABLE_CORE_QUERY_TRACE_H_

#include <cstdint>

namespace lt {

struct QueryTrace {
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;

  // Tablet pruning: of `tablets_considered`, how many each check excluded
  // before any block was read.
  uint64_t tablets_considered = 0;
  uint64_t tablets_pruned_time = 0;   // Timestamp bounds vs. tablet range.
  uint64_t tablets_pruned_key = 0;    // Key bounds vs. tablet key range.
  uint64_t tablets_pruned_bloom = 0;  // §3.4.5 Bloom filter rejections.

  uint64_t blocks_read = 0;  // Block fetches, from cache or disk.
  uint64_t cache_hits = 0;   // Of blocks_read, served by the block cache.

  // Column chunks the projection let this query skip in columnar (format 2)
  // blocks: for each such block visited, the unreferenced non-key columns
  // that were never decompressed or decoded.
  uint64_t column_chunks_skipped = 0;

  int64_t elapsed_micros = 0;

  uint64_t TabletsPruned() const {
    return tablets_pruned_time + tablets_pruned_key + tablets_pruned_bloom;
  }

  /// Accumulates another trace into this one (paginated queries: the SQL
  /// backend sums per-page traces into the statement's trace).
  void Merge(const QueryTrace& other) {
    rows_scanned += other.rows_scanned;
    rows_returned += other.rows_returned;
    tablets_considered += other.tablets_considered;
    tablets_pruned_time += other.tablets_pruned_time;
    tablets_pruned_key += other.tablets_pruned_key;
    tablets_pruned_bloom += other.tablets_pruned_bloom;
    blocks_read += other.blocks_read;
    cache_hits += other.cache_hits;
    column_chunks_skipped += other.column_chunks_skipped;
    elapsed_micros += other.elapsed_micros;
  }
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_QUERY_TRACE_H_
