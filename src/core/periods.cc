#include "core/periods.h"

namespace lt {
namespace {

// Floor-aligns t to a multiple of unit from the epoch, correct for negative
// timestamps as well.
Timestamp AlignDown(Timestamp t, Timestamp unit) {
  Timestamp r = t % unit;
  if (r < 0) r += unit;
  return t - r;
}

constexpr Timestamp kFourHours = 4 * kMicrosPerHour;

}  // namespace

Timestamp PeriodLengthFor(Timestamp ts, Timestamp now) {
  if (ts >= AlignDown(now, kMicrosPerDay)) return kFourHours;
  if (ts >= AlignDown(now, kMicrosPerWeek)) return kMicrosPerDay;
  return kMicrosPerWeek;
}

Period PeriodFor(Timestamp ts, Timestamp now) {
  Timestamp unit = PeriodLengthFor(ts, now);
  Timestamp start = AlignDown(ts, unit);
  return Period{start, start + unit};
}

}  // namespace lt
