// Application-driven time periods (§3.4.2).
//
// "Anecdotally, most queries ask for anthropocentric ranges of time: an
// hour, a day, a week," growing with lookback distance. LittleTable groups
// time into three ranges, each measured in even intervals from the Unix
// epoch: the six 4-hour periods of the most recent day, the seven days of
// the most recent week, and all the weeks previous to that. One in-memory
// tablet fills per period (§3.4.3), and the merge policy never combines
// tablets from different periods.
//
// Timestamps at or after "now"'s day boundary — including future timestamps,
// which clients are allowed to insert — bin at 4-hour granularity.
#ifndef LITTLETABLE_CORE_PERIODS_H_
#define LITTLETABLE_CORE_PERIODS_H_

#include "util/clock.h"

namespace lt {

/// A half-open interval [start, end) of absolute time, aligned to its
/// granularity from the epoch.
struct Period {
  Timestamp start = 0;
  Timestamp end = 0;

  Timestamp length() const { return end - start; }
  bool Contains(Timestamp t) const { return t >= start && t < end; }
  bool operator==(const Period& other) const {
    return start == other.start && end == other.end;
  }
};

/// Returns the period containing `ts`, as seen at time `now`:
///   - 4-hour bins within (and after) the epoch-aligned day containing now,
///   - 1-day bins within the epoch-aligned week containing now,
///   - 1-week bins before that.
Period PeriodFor(Timestamp ts, Timestamp now);

/// The granularity (bin length) PeriodFor would use, without computing the
/// bin. Useful for detecting rollover: a tablet written under a 4-hour bin
/// later falls into a day bin, then a week bin.
Timestamp PeriodLengthFor(Timestamp ts, Timestamp now);

}  // namespace lt

#endif  // LITTLETABLE_CORE_PERIODS_H_
