// DB: a LittleTable server's collection of tables, rooted in one directory
// (one subdirectory per table), plus the background maintenance scheduler
// that drives age-based flushes, tablet merges, and TTL reclamation.
//
// The server shares almost no state between tables (§5.1.4), which is why
// aggregate insert throughput scales with the number of writers: each Table
// has its own locks, and the DB map is only consulted to route requests.
#ifndef LITTLETABLE_CORE_DB_H_
#define LITTLETABLE_CORE_DB_H_

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "core/table.h"

namespace lt {

class DB {
 public:
  /// Opens (or initializes) a database rooted at `root`, loading every
  /// table subdirectory found there. Starts the maintenance thread unless
  /// options.background_maintenance is false.
  static Status Open(Env* env, std::shared_ptr<Clock> clock,
                     const std::string& root, const DbOptions& options,
                     std::unique_ptr<DB>* out);

  ~DB();

  /// Creates a table. Table names are restricted to [A-Za-z0-9_.-] because
  /// they double as directory names; names beginning with the reserved
  /// "__sys" prefix are rejected (that namespace belongs to the
  /// self-monitoring subsystem — see CreateSystemTable). `options`
  /// overrides the DB defaults (commonly just the TTL).
  Status CreateTable(const std::string& name, const Schema& schema,
                     const TableOptions* options = nullptr);

  /// Creates a table inside the reserved "__sys" namespace (the name MUST
  /// carry the prefix). Only internal subsystems (the metrics sampler) call
  /// this; the user-facing paths — CreateTable, the kCreateTable opcode,
  /// SQL CREATE TABLE — all refuse "__sys*" names, so system tables can
  /// never collide with (or be spoofed by) application tables. System
  /// tables are otherwise ordinary: queryable over every path, TTL-aged,
  /// flushed and merged by maintenance.
  Status CreateSystemTable(const std::string& name, const Schema& schema,
                           const TableOptions* options = nullptr);

  /// True for names in the reserved self-monitoring namespace.
  static bool IsSystemTableName(const std::string& name) {
    return name.rfind("__sys", 0) == 0;
  }

  /// Drops a table and deletes its files. The paper notes dropping and
  /// recreating with a new schema is the normal workflow during feature
  /// development (§3.5).
  Status DropTable(const std::string& name);

  /// Looks up a table; the returned pointer stays valid across a concurrent
  /// DropTable (the final release deletes the files' directory entry only).
  std::shared_ptr<Table> GetTable(const std::string& name);

  std::vector<std::string> ListTables();

  /// Flushes every in-memory tablet of every table.
  Status FlushAll();

  /// Runs one maintenance pass over all tables (tests and deterministic
  /// benchmarks; the background thread does the same on a timer).
  Status MaintainNow();

  /// Stops the background thread, then flushes every table's buffered rows
  /// so a clean shutdown never loses acknowledged inserts (crash loss stays
  /// bounded by §3.4.1; orderly exit loses nothing). Idempotent: later calls
  /// (including the destructor's) return OK without re-flushing. Close is
  /// bounded: tables are told to BeginShutdown first, which cancels any
  /// flush/merge retry backoff and stops maintenance from starting new
  /// work, so Close never waits out a backoff window.
  Status Close();

  /// Simulated-crash close: stops the background thread and releases every
  /// table WITHOUT the final flush, as a process kill would. Crash
  /// harnesses call this, then discard unsynced file state
  /// (MemEnv::DropUnsynced / SimDiskEnv::PowerCut) and reopen to exercise
  /// recovery. After Abandon, Close (and the destructor) are no-ops.
  void Abandon();

  Env* env() const { return env_; }
  const std::shared_ptr<Clock>& clock() const { return clock_; }
  const DbOptions& options() const { return options_; }

  /// The DB-wide decompressed-block cache shared by every table, or null
  /// when options.block_cache_bytes == 0.
  const std::shared_ptr<Cache>& block_cache() const { return block_cache_; }

  /// The DB-wide structured logger injected into every table (never null;
  /// defaults to Logger::Default()).
  const std::shared_ptr<Logger>& logger() const { return logger_; }

  /// Registers a hook Close()/Abandon() runs BEFORE stopping maintenance
  /// and closing tables, and returns an id for RemovePreCloseHook. The
  /// metrics sampler registers its Stop() here, so the final sample can
  /// never race table shutdown: by the time tables flush and close, no
  /// sampler thread is inserting. Hooks run at most once (the first of
  /// Close/Abandon); they must be idempotent and must not call back into
  /// Close/Abandon.
  size_t AddPreCloseHook(std::function<void()> hook);
  /// Unregisters a hook (callers whose lifetime may end before the DB's).
  void RemovePreCloseHook(size_t id);

 private:
  DB(Env* env, std::shared_ptr<Clock> clock, std::string root,
     DbOptions options);

  static bool ValidTableName(const std::string& name);
  std::string TableDir(const std::string& name) const {
    return root_ + "/" + name;
  }

  void BackgroundLoop();
  /// Runs and clears the registered pre-close hooks (first closer wins).
  void RunPreCloseHooks();
  Status CreateTableInternal(const std::string& name, const Schema& schema,
                             const TableOptions* options);

  Env* const env_;
  std::shared_ptr<Clock> clock_;
  const std::string root_;
  const DbOptions options_;
  std::shared_ptr<Cache> block_cache_;  // Shared across all tables.
  std::shared_ptr<Logger> logger_;      // Shared across all tables.

  std::mutex mu_;
  std::map<std::string, std::shared_ptr<Table>> tables_;

  std::thread background_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool stopping_ = false;

  std::mutex hooks_mu_;
  std::map<size_t, std::function<void()>> pre_close_hooks_;
  size_t next_hook_id_ = 1;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_DB_H_
