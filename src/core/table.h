// Table: one LittleTable table — the union of its in-memory filling tablets,
// sealed tablets awaiting flush, and on-disk tablets (§3.2).
//
// Consistency and durability model (§2.3.4, §3.1):
//   - Inserts are append-only; rows are never updated, only aged out by TTL.
//   - Primary keys are unique, enforced at insert with the §3.4.4 fast
//     paths.
//   - A query that starts after an insert completes sees all of the
//     insert's rows; a query concurrent with an insert may see some, all,
//     or none of them.
//   - There is no write-ahead log. The only crash guarantee is prefix
//     durability: if a row survives a crash, every row inserted into the
//     same table before it survives too. With multiple filling tablets
//     (§3.4.3) this is maintained by the flush dependency graph: inserting
//     into tablet t' right after tablet t adds the edge "t must flush
//     before t'", and a flush persists the whole transitive closure in one
//     atomic descriptor update.
#ifndef LITTLETABLE_CORE_TABLE_H_
#define LITTLETABLE_CORE_TABLE_H_

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/cursor.h"
#include "core/descriptor.h"
#include "core/memtablet.h"
#include "core/options.h"
#include "core/query_trace.h"
#include "core/stats.h"
#include "core/tablet_reader.h"
#include "env/env.h"
#include "util/clock.h"

namespace lt {

/// The result of a query: rows in scan order, plus the §3.5 more-available
/// flag the client uses to paginate with continuation queries.
struct QueryResult {
  std::vector<Row> rows;
  bool more_available = false;
  /// Rows the engine decoded to produce this result (Figure 9 numerator).
  uint64_t rows_scanned = 0;
};

class Table;

/// A pull-based query: the same snapshot visibility and TTL/limit semantics
/// as Table::Query, but rows come out one at a time on demand, so the caller
/// (the server's streaming read path) decides how much to materialize and
/// can abandon the scan at any point. Created by Table::NewQueryStream; the
/// Table must outlive the stream. Not thread-safe — one thread at a time,
/// though different calls may come from different worker threads.
class QueryStream {
 public:
  ~QueryStream();
  QueryStream(const QueryStream&) = delete;
  QueryStream& operator=(const QueryStream&) = delete;

  /// Pulls the next matching row. Exactly one of three outcomes:
  ///   *have_row = true            — a row was copied into *row;
  ///   *exhausted = true           — the scan is complete (no more rows, or
  ///                                 the row limit was hit — see
  ///                                 more_available());
  ///   both false                  — `max_scan_rows` rows were scanned
  ///                                 without a match (all TTL- or
  ///                                 bounds-filtered); call again. This is
  ///                                 the cooperative-yield hook: it bounds
  ///                                 the work per call even when the scan is
  ///                                 filtering everything out.
  /// max_scan_rows = 0 means no scan budget (never yields without a row).
  Status Next(uint64_t max_scan_rows, Row* row, bool* have_row,
              bool* exhausted);

  /// True once the scan stopped at the row limit with rows remaining.
  bool more_available() const { return more_available_; }
  /// Rows decoded so far (the Figure 9 numerator), live during the scan.
  uint64_t rows_scanned() const { return scanned_.load(); }
  uint64_t rows_returned() const { return returned_; }
  const Schema* schema() const { return schema_.get(); }

  /// Records the query's stats (rows scanned/returned counters, latency
  /// histogram, slow-query log) exactly once. Idempotent; the destructor
  /// calls it, so an abandoned (cancelled) stream still shows up in the
  /// table's accounting.
  void Finish();

 private:
  friend class Table;
  QueryStream() = default;

  Table* table_ = nullptr;
  std::shared_ptr<const Schema> schema_;
  QueryBounds bounds_;  // TTL-tightened.
  uint64_t limit_ = 0;
  // Incremented by every cursor as it decodes; must outlive merged_.
  std::atomic<uint64_t> scanned_{0};
  // Disk cursors inside merged_ reference these readers; pin them.
  std::vector<std::shared_ptr<TabletReader>> readers_;
  std::unique_ptr<Cursor> merged_;
  QueryTrace* trace_ = nullptr;  // Points at local_trace_ or a caller's.
  QueryTrace local_trace_;
  Timestamp op_start_ = 0;
  uint64_t returned_ = 0;
  bool more_available_ = false;
  bool done_ = false;
  // Starts true so a stream abandoned mid-construction records nothing;
  // NewQueryStream arms it on success.
  bool finished_ = true;
};

class Table {
 public:
  /// Creates a new table in `dir` (created if missing) and persists its
  /// initial descriptor.
  static Status Create(Env* env, std::shared_ptr<Clock> clock,
                       const std::string& dir, const std::string& name,
                       const Schema& schema, const TableOptions& options,
                       std::unique_ptr<Table>* out);

  /// Opens an existing table from its descriptor, removing any orphaned
  /// tablet files left by a crash mid-flush.
  static Status Open(Env* env, std::shared_ptr<Clock> clock,
                     const std::string& dir, const TableOptions& options,
                     std::unique_ptr<Table>* out);

  const std::string& name() const { return name_; }
  std::shared_ptr<const Schema> schema() const;
  Timestamp ttl() const;

  /// Inserts a batch of rows (each matching the current schema, timestamps
  /// already assigned). Rejects the whole batch atomically if any key
  /// duplicates an existing row or another row in the batch.
  ///
  /// Concurrent callers are group-committed: batches queued while another
  /// insert holds the critical section are coalesced into one insert_mu_
  /// acquisition and one memtablet/flush-accounting pass, with each batch
  /// keeping its own all-or-nothing status (a rejected batch never blocks
  /// the others in its group). Equivalent to some serial order of the
  /// batches — queue order — so durable state matches serial execution.
  Status InsertBatch(const std::vector<Row>& rows);

  /// Executes a 2-D bounded scan (§3.1). TTL-expired rows are filtered; the
  /// row limit is min(bounds.limit, server cap), and more_available is set
  /// if the scan stopped at the limit with rows remaining. `trace`
  /// (optional) accumulates this query's execution trace — pruning, block
  /// reads, cache hits, elapsed time; the same trace also feeds the
  /// slow-query log when TableOptions::slow_query_micros is set.
  Status Query(const QueryBounds& bounds, QueryResult* result,
               QueryTrace* trace = nullptr);

  /// Opens a pull-based stream over the same snapshot Query would read
  /// (incremental execution for the server's streaming path). `trace`, when
  /// non-null, must outlive the stream; the table always must. The stream
  /// pins tablet readers and memtablet snapshots for its lifetime, so
  /// callers should Finish and drop it promptly.
  Status NewQueryStream(const QueryBounds& bounds,
                        std::unique_ptr<QueryStream>* out,
                        QueryTrace* trace = nullptr);

  /// Finds the row with the largest timestamp whose key begins with
  /// `prefix` (§3.4.5), walking tablet groups backwards through time and
  /// skipping tablets via Bloom filters. Sets *found=false if none.
  Status LatestRowForPrefix(const Key& prefix, Row* row, bool* found);

  /// Seals and flushes every in-memory tablet.
  Status FlushAll();

  /// The §4.1.2 extension: flushes every in-memory tablet holding any row
  /// with timestamp <= `ts` (plus dependency closures), so aggregators can
  /// know their source data is durable without the 20-minute heuristic.
  Status FlushThrough(Timestamp ts);

  /// One maintenance pass: age-based seals, the flush queue, at most one
  /// tablet merge, and TTL reclamation. The DB background thread calls this
  /// periodically; deterministic tests call it directly.
  Status MaintainNow();

  /// Marks the table as shutting down: maintenance passes become no-ops
  /// (no new flush loops, merges, or TTL scans start) and any pending
  /// flush/merge retry-backoff window is cancelled so the close-time
  /// FlushAll runs immediately instead of waiting out the backoff. Explicit
  /// flushes (FlushAll/FlushThrough) still work — DB::Close relies on that.
  void BeginShutdown();

  /// True if a maintenance pass would do work right now.
  bool HasMaintenanceWork();

  // Schema evolution (§3.5). Each flushes in-memory data first; existing
  // on-disk tablets are never rewritten.
  Status AppendColumn(const Column& column);
  Status WidenColumn(const std::string& column_name);
  Status SetTtl(Timestamp ttl);

  // Replication hooks (src/cluster). Flushed tablets are immutable files,
  // so primary→secondary replication is whole-tablet shipping: the primary
  // exports raw file bytes, the secondary installs them atomically through
  // the same descriptor machinery a flush commits through.

  /// Reads one on-disk tablet whole for shipping: its descriptor entry
  /// plus the raw file bytes. NotFound if the tablet is no longer in the
  /// descriptor (e.g. merged away between listing and shipping).
  Status ExportTablet(const std::string& filename, TabletMeta* meta,
                      std::string* bytes);

  /// Installs a shipped tablet file atomically (tmp + sync + rename, then
  /// one descriptor update), validating the bytes by loading them as a
  /// tablet first. Idempotent: a tablet already installed with identical
  /// meta (filename, file_bytes, row_count) returns OK without touching
  /// disk; a same-named tablet with different meta is replaced (a
  /// divergent-history rejoin). A crash mid-install leaves at worst an
  /// orphan file, which Open removes.
  Status InstallTablet(const TabletMeta& meta, const Slice& bytes);

  /// Drops every on-disk tablet NOT in `keep` (matched by filename +
  /// file_bytes + row_count triple) in one descriptor update. The
  /// secondary applies the primary's authoritative tablet set with this,
  /// so tablets merged away on the primary are pruned here too.
  Status RetainOnlyTablets(const std::vector<TabletMeta>& keep);

  /// Discards all in-memory rows (filling and sealed tablets) without
  /// flushing. Demotion hook: a node rejoining as secondary must drop
  /// unflushed state that may diverge from the new primary's history,
  /// keeping its on-disk prefix as the replication starting point.
  void DiscardMem();

  TableStats& stats() { return stats_; }

  // Introspection (tests and benchmarks).
  /// InsertBatch calls currently queued or committing (the group-commit
  /// writer queue, leader included). Lets tests park a leader and verify
  /// followers pile up behind it before releasing the group.
  size_t PendingInserts() const {
    std::lock_guard<std::mutex> lock(writers_mu_);
    return writers_.size();
  }
  size_t NumDiskTablets() const;
  size_t NumMemTablets() const;
  uint64_t DiskBytes() const;
  uint64_t ApproxMemBytes() const;
  std::vector<TabletMeta> DiskTablets() const;
  const std::string& dir() const { return dir_; }

  /// Deletes every file belonging to the table in `dir`.
  static Status Destroy(Env* env, const std::string& dir);

 private:
  friend class QueryStream;  // Finish() records into stats_/opts_.

  Table(Env* env, std::shared_ptr<Clock> clock, std::string dir,
        TableOptions options);

  std::string DescriptorPath() const { return dir_ + "/DESC"; }
  std::string TabletPath(const std::string& fname) const {
    return dir_ + "/" + fname;
  }

  Timestamp ExpiryCutoffLocked(Timestamp now) const;

  /// Uniqueness check for one row (§3.4.4); `batch_keys` carries encoded
  /// keys earlier in the same batch. May read from disk (slow path).
  Status CheckUnique(const Row& row, const std::set<std::string>& batch_keys);

  /// One queued InsertBatch call awaiting (or leading) a commit group.
  struct InsertWaiter {
    explicit InsertWaiter(const std::vector<Row>* r) : rows(r) {}
    const std::vector<Row>* rows;
    Status status;
    bool done = false;  // Guarded by writers_mu_.
    std::condition_variable cv;
  };

  /// Executes one commit group under insert_mu_: per-batch validation and
  /// uniqueness (cross-batch duplicates within the group included), one
  /// mu_ application pass for every accepted batch, one backpressure flush
  /// pass. Sets each waiter's status.
  void RunInsertGroup(const std::vector<InsertWaiter*>& group);

  /// Seals `mt` and moves it from filling_ to the flush queue. mu_ held.
  /// Takes the pointer by value: callers often pass the shared_ptr living
  /// inside the filling_ map node this function erases.
  void SealLocked(std::shared_ptr<MemTablet> mt);

  /// Flushes the given root tablets plus their dependency closures as one
  /// atomic descriptor update.
  Status FlushSet(std::vector<uint64_t> root_ids);

  /// Performs at most one merge per call (§3.4.1).
  Status MaybeMerge(Timestamp now);

  /// Drops tablets whose rows have all expired (§3.3).
  Status ReclaimExpired(Timestamp now);

  /// Removes an unreadable tablet from the table so the rest keeps serving:
  /// renames its file to `<name>.corrupt` (kept for post-mortems), drops it
  /// from the descriptor and reader cache, and logs `why`. mu_ held.
  void QuarantineTabletLocked(const std::string& fname, const Status& why);

  /// True for load failures that mean the tablet itself is unusable (vs.
  /// transient I/O errors, which propagate to the caller).
  static bool ShouldQuarantine(const Status& s) {
    return s.IsCorruption() || s.IsNotFound();
  }

  Status SaveDescriptorLocked();
  /// Saves a descriptor naming `tablets` instead of tablets_, so flush and
  /// merge can commit durably before mutating in-memory state. mu_ held.
  Status SaveDescriptorWithLocked(const std::vector<TabletMeta>& tablets);

  /// Hard insert-rejection threshold while flushes are failing. mu_ held.
  size_t HardSealedCapLocked() const {
    return opts_.max_sealed_tablets_hard > 0
               ? opts_.max_sealed_tablets_hard
               : 2 * opts_.max_unflushed_tablets;
  }
  /// Records a flush/merge failure: bumps the counter and advances the
  /// exponential retry backoff. mu_ held.
  void RecordFlushFailureLocked(Timestamp now);
  void RecordMergeFailureLocked(Timestamp now);

  Env* const env_;
  std::shared_ptr<Clock> clock_;
  const std::string dir_;
  TableOptions opts_;
  std::string name_;

  mutable std::mutex mu_;
  std::shared_ptr<const Schema> schema_;
  Timestamp ttl_ = 0;
  uint64_t next_file_seq_ = 1;
  std::vector<TabletMeta> tablets_;  // Sorted by (min_ts, max_ts, name).
  std::map<std::string, std::shared_ptr<TabletReader>> readers_;

  std::map<Timestamp, std::shared_ptr<MemTablet>> filling_;  // By period start.
  std::deque<std::shared_ptr<MemTablet>> sealed_;
  // Retry state after flush/merge failures (guarded by mu_): attempts are
  // skipped until the backoff deadline passes; consecutive failures double
  // the delay up to flush_retry_max_backoff.
  Timestamp flush_backoff_until_ = 0;
  uint32_t flush_failure_streak_ = 0;
  Timestamp merge_backoff_until_ = 0;
  uint32_t merge_failure_streak_ = 0;
  bool closing_ = false;  // BeginShutdown called; maintenance stands down.
  // must_flush_first_[t'] = tablets that must flush before (or with) t'.
  std::map<uint64_t, std::set<uint64_t>> must_flush_first_;
  uint64_t last_insert_tablet_ = 0;
  uint64_t next_memtablet_id_ = 1;
  bool has_rows_ = false;
  Timestamp max_row_ts_ = 0;  // Valid when has_rows_.

  std::mutex insert_mu_;  // Serializes inserts; queries take only mu_.
  std::mutex flush_mu_;   // Serializes flush I/O.
  std::mutex merge_mu_;   // One merge at a time.

  // Group-commit writer queue (LevelDB-style): the front waiter leads,
  // claiming a bounded prefix of the queue as its group and running it
  // under insert_mu_; followers sleep on their own cv until the leader
  // hands back their status or the lead role.
  mutable std::mutex writers_mu_;
  std::deque<InsertWaiter*> writers_;

  TableStats stats_;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_TABLE_H_
