// Tuning knobs for tables and the database. Defaults are the paper's
// production values: 16 MB flushes, 10-minute maximum in-memory tablet age,
// 64 kB blocks, 128 MB merged-tablet cap, 90-second merge delay.
#ifndef LITTLETABLE_CORE_OPTIONS_H_
#define LITTLETABLE_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/merge_policy.h"
#include "util/cache.h"
#include "util/clock.h"
#include "util/logger.h"

namespace lt {

struct TableOptions {
  /// Seal an in-memory tablet once it holds this many bytes (§3.3: 16 MB
  /// sustains ~95% of a spinning disk's peak write rate).
  uint64_t flush_bytes = 16ull << 20;

  /// Seal an in-memory tablet this long after its first row (§3.4.1: bounds
  /// data lost in a crash to 10 minutes).
  Timestamp max_memtablet_age = 10 * kMicrosPerMinute;

  /// Uncompressed row bytes per on-disk block.
  size_t block_bytes = 64 * 1024;

  /// Bloom filter density for the §3.4.5 extension; <= 0 disables filters.
  int bloom_bits_per_key = 10;

  /// On-disk tablet format version flushes write (must be <=
  /// kTabletFormatLatest, which is also the default): 0/1 are the row-wise
  /// layouts, 2 is columnar with per-column encodings (block.h). Merges
  /// always write the latest format regardless, so downgrading this only
  /// affects fresh flushes; tablets of every version stay readable
  /// side-by-side.
  uint32_t format_version = 2;

  /// Rows with timestamps older than now - ttl are aged out (§3.1);
  /// 0 retains forever.
  Timestamp ttl = 0;

  /// Server-enforced cap on rows returned per query; results that hit it
  /// set more_available, and the client re-submits from the last key
  /// (§3.5).
  uint64_t server_row_limit = 64 * 1024;

  /// Backpressure: inserts stall once this many sealed tablets await
  /// flushing (the 100-tablet limit of the §5.1.3 experiment).
  size_t max_unflushed_tablets = 100;

  /// When a flush or merge fails (ENOSPC, injected fault), the failed
  /// tablets stay queued and retries back off exponentially from this
  /// delay up to the cap, so a sick disk isn't hammered while the table
  /// keeps serving reads and absorbing inserts in memory.
  Timestamp flush_retry_backoff = 1 * kMicrosPerSecond;
  Timestamp flush_retry_max_backoff = 60 * kMicrosPerSecond;

  /// Hard cap on sealed tablets queued while flushes are failing: past it,
  /// inserts are rejected with Unavailable instead of growing memory
  /// without bound. 0 means 2 * max_unflushed_tablets.
  size_t max_sealed_tablets_hard = 0;

  /// Eagerly load (and checksum-verify) every tablet footer at open,
  /// quarantining unreadable tablets immediately. Off by default: footers
  /// load lazily on first use (§3.5), so opening a table with hundreds of
  /// tablets stays cheap and corrupt tablets are quarantined when a query
  /// or insert first touches them.
  bool verify_open = false;

  /// Decompressed-block cache consulted by every tablet block read. Null
  /// means no shared cache; see block_cache_bytes. DB::Open and
  /// DB::CreateTable inject the DB-wide cache here (one cache across all
  /// tables) unless the caller supplied their own.
  std::shared_ptr<Cache> block_cache;

  /// When block_cache is null and this is > 0, the table builds a private
  /// cache of this many bytes at construction (standalone Table users and
  /// tests; tables under a DB normally share the DB-wide cache instead).
  /// 0 disables caching.
  uint64_t block_cache_bytes = 0;

  /// Structured logger for table events (quarantine, descriptor failures,
  /// slow queries). Null means Logger::Default() (stderr). DB::Open and
  /// DB::CreateTable inject the DB-wide logger unless the caller supplied
  /// their own.
  std::shared_ptr<Logger> logger;

  /// Queries whose end-to-end latency meets or exceeds this many
  /// microseconds emit one structured `slow_query` log line with their
  /// QueryTrace (rows scanned/returned, tablets pruned, blocks read).
  /// 0 disables the slow-query log.
  int64_t slow_query_micros = 0;

  MergePolicyOptions merge;
};

struct DbOptions {
  TableOptions table_defaults;
  /// Capacity of the DB-wide decompressed-block cache shared by every
  /// table (0 = no cache). Hot blocks — dashboards re-reading the newest
  /// tablet (§4) — are served without the per-block seek, CRC check, and
  /// decompress that §3.5's accounting charges on every access.
  uint64_t block_cache_bytes = 64ull << 20;
  /// Run flush/merge/TTL maintenance on a background thread. Tests and
  /// deterministic benchmarks disable this and call MaintainNow().
  bool background_maintenance = true;
  /// Background scheduler pass interval, in real microseconds.
  Timestamp maintenance_interval = 1 * kMicrosPerSecond;
  /// DB-wide structured logger, injected into every table that does not set
  /// its own. Null means Logger::Default() (stderr).
  std::shared_ptr<Logger> logger;
  /// DB-wide slow-query threshold, injected into tables whose
  /// table_defaults leave it 0. See TableOptions::slow_query_micros.
  int64_t slow_query_micros = 0;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_OPTIONS_H_
