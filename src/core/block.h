// Tablet blocks (§3.2, §3.5).
//
// An on-disk tablet is a sequence of rows sorted by primary key and grouped
// into blocks (64 kB of row data by default). Each block is stored as:
//
//   fixed32 masked-CRC32C of the compressed payload
//   lzmini-compressed payload
//
// where the payload is:
//
//   row encodings back-to-back
//   fixed32 start offset of each row   (enables in-block binary search)
//   fixed32 row count
//
// The per-tablet index stores the last key of every block, so a query
// binary-searches the index to find the relevant block and then
// binary-searches within the block to find the relevant row (§3.2).
#ifndef LITTLETABLE_CORE_BLOCK_H_
#define LITTLETABLE_CORE_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/row_codec.h"
#include "core/schema.h"

namespace lt {

/// Accumulates encoded rows into one block payload.
class BlockBuilder {
 public:
  explicit BlockBuilder(const Schema* schema) : schema_(schema) {}

  /// Appends a row. Rows must arrive in ascending key order.
  void Add(const Row& row);

  size_t num_rows() const { return offsets_.size(); }
  /// Bytes of row data so far (the 64 kB target applies to this).
  size_t data_bytes() const { return buffer_.size(); }
  bool empty() const { return offsets_.empty(); }

  /// Completes the payload (appends the offset array and count) and returns
  /// it; the builder resets for the next block.
  std::string Finish();

 private:
  const Schema* schema_;
  std::string buffer_;
  std::vector<uint32_t> offsets_;
};

/// A verified, decompressed, row-indexed block payload — schema-free, so
/// one BlockContents can be shared (via the block cache) by every cursor
/// reading the block, and can outlive the TabletReader that produced it.
struct BlockContents {
  std::string payload;
  std::vector<uint32_t> offsets;  // Start offset of each row in payload.
  size_t data_end = 0;            // Payload bytes before the offset trailer.

  /// Validates the trailer structure and indexes the rows.
  static Status Parse(std::string payload, BlockContents* out);

  size_t num_rows() const { return offsets.size(); }

  /// Heap footprint, the block-cache charge for this entry.
  size_t ApproximateMemoryUsage() const {
    return sizeof(*this) + payload.capacity() +
           offsets.capacity() * sizeof(uint32_t);
  }
};

/// Row access and in-block binary search over a (possibly shared)
/// BlockContents, interpreted under a schema. Copyable: copies share the
/// contents. The shared_ptr's deleter is how cache-resident blocks stay
/// pinned while a cursor is positioned in them.
class BlockReader {
 public:
  /// Parses `payload` into freshly owned contents.
  static Status Parse(const Schema* schema, std::string payload,
                      BlockReader* out);

  /// Points this reader at already-parsed contents (cache hits).
  void Reset(const Schema* schema,
             std::shared_ptr<const BlockContents> contents) {
    schema_ = schema;
    contents_ = std::move(contents);
  }

  size_t num_rows() const { return contents_ ? contents_->num_rows() : 0; }

  /// Decodes row i (rows are indexed in ascending key order).
  Status RowAt(size_t i, Row* out) const;

  /// Index of the first row whose key-vs-prefix comparison is >= 0
  /// (`or_equal`) or > 0 (!`or_equal`); returns num_rows() if none.
  /// Used to position cursors at a query's minimum key bound.
  Status SeekFirst(const Key& prefix, bool or_equal, size_t* index) const;

 private:
  Status KeyCompareAt(size_t i, const Key& prefix, int* cmp) const;

  const Schema* schema_ = nullptr;
  std::shared_ptr<const BlockContents> contents_;
};

/// Compresses and frames a block payload for storage (CRC + lzmini).
std::string StoreBlock(const std::string& payload);

/// Reverses StoreBlock; verifies the checksum.
Status LoadBlock(const Slice& stored, std::string* payload);

}  // namespace lt

#endif  // LITTLETABLE_CORE_BLOCK_H_
