// Tablet blocks (§3.2, §3.5).
//
// An on-disk tablet is a sequence of rows sorted by primary key and grouped
// into blocks (64 kB of row data by default). Two block layouts exist,
// selected by the tablet's format version (see tablet_writer.h):
//
// Row-wise (tablet formats 0 and 1) — stored as:
//
//   fixed32 masked-CRC32C of the compressed payload
//   lzmini-compressed payload
//
// where the payload is:
//
//   row encodings back-to-back
//   fixed32 start offset of each row   (enables in-block binary search)
//   fixed32 row count
//
// Columnar (tablet format 2) — stored as:
//
//   fixed32 masked-CRC32C of the image
//   image:
//     varint32 row count
//     varint32 column count
//     chunk directory, one entry per column:
//       uint8    encoding            (ChunkEncoding, column_codec.h)
//       uint8    compression marker  (0 = raw, 1 = lzmini)
//       varint32 stored_len          (chunk bytes as stored in the image)
//       varint32 raw_len             (chunk bytes before compression)
//     chunk bytes back-to-back, in column order
//
// Each column of the block's rows is one independently encoded chunk,
// compressed by itself — or stored raw when lzmini would expand it (the
// marker byte) — so a reader can decode exactly the columns a query
// references and nothing else. Chunks decode lazily, on first touch, into
// the shared BlockContents; in-block binary search touches only key
// columns, and a projected scan never touches unreferenced columns at all.
//
// The per-tablet index stores the last key of every block, so a query
// binary-searches the index to find the relevant block and then
// binary-searches within the block to find the relevant row (§3.2).
#ifndef LITTLETABLE_CORE_BLOCK_H_
#define LITTLETABLE_CORE_BLOCK_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/column_codec.h"
#include "core/row_codec.h"
#include "core/schema.h"
#include "core/stats.h"

namespace lt {

/// Accumulates rows into one block payload. `format_version` < 2 produces
/// the row-wise payload; 2 produces the columnar image. Block sizing is by
/// uncompressed row-encoding bytes (data_bytes) in both modes, so the 64 kB
/// split point is format-independent.
class BlockBuilder {
 public:
  explicit BlockBuilder(const Schema* schema, uint32_t format_version = 0)
      : schema_(schema), format_version_(format_version) {}

  /// Appends a row. Rows must arrive in ascending key order.
  void Add(const Row& row);

  size_t num_rows() const { return num_rows_; }
  /// Bytes of row data so far (the 64 kB target applies to this).
  size_t data_bytes() const { return buffer_.size(); }
  bool empty() const { return num_rows_ == 0; }

  /// Completes the payload (row-wise) or image (columnar) and returns it;
  /// the builder resets for the next block.
  std::string Finish();

  /// Cumulative chunk bytes this builder stored raw vs. lzmini-compressed
  /// across all Finish calls (columnar mode only) — the per-table
  /// block_bytes_raw/compressed counters.
  uint64_t bytes_raw() const { return bytes_raw_; }
  uint64_t bytes_compressed() const { return bytes_compressed_; }

 private:
  std::string FinishColumnar();

  const Schema* schema_;
  uint32_t format_version_;
  std::string buffer_;
  std::vector<uint32_t> offsets_;
  // Columnar mode: per-column value accumulators (indexed like the schema).
  std::vector<ColumnValues> cols_;
  size_t num_rows_ = 0;
  uint64_t bytes_raw_ = 0;
  uint64_t bytes_compressed_ = 0;
};

/// A verified block payload — schema-free, so one BlockContents can be
/// shared (via the block cache) by every cursor reading the block, and can
/// outlive the TabletReader that produced it.
///
/// Row-wise blocks are fully decoded at Parse. Columnar blocks keep the
/// image and materialize one column per EnsureColumn call — thread-safe
/// (double-checked atomics under a decode mutex), with sticky errors, so
/// concurrent cursors sharing a cached block each pay at most one decode
/// per column. Not movable once parsed; always heap-allocate and share.
struct BlockContents {
  // ---- Row-wise state (tablet formats 0/1). ----
  std::string payload;            // Row payload, or the columnar image.
  std::vector<uint32_t> offsets;  // Start offset of each row in payload.
  size_t data_end = 0;            // Payload bytes before the offset trailer.

  // ---- Columnar state (tablet format 2). ----
  struct ChunkRef {
    uint8_t encoding;     // ChunkEncoding byte (validated).
    uint8_t compression;  // 0 = raw, 1 = lzmini.
    uint32_t offset;      // Chunk start within payload.
    uint32_t stored_len;
    uint32_t raw_len;
  };
  bool columnar = false;
  uint32_t columnar_rows = 0;
  std::vector<ChunkRef> chunks;

  /// Validates the trailer structure and indexes the rows (row-wise).
  static Status Parse(std::string payload, BlockContents* out);

  /// Validates a columnar image's chunk directory (bounds, encoding bytes,
  /// markers, exact coverage of the image) without decoding any chunk.
  static Status ParseColumnar(std::string image, BlockContents* out);

  size_t num_rows() const { return columnar ? columnar_rows : offsets.size(); }
  size_t num_columns() const { return chunks.size(); }

  /// Decompresses and decodes column `c` if this is the first touch;
  /// `*did_decode` (optional) reports whether this call did the work.
  /// Errors are sticky: a corrupt chunk fails every caller identically.
  Status EnsureColumn(size_t c, bool* did_decode = nullptr) const;

  /// The decoded values of column `c`. Only valid after EnsureColumn(c)
  /// returned OK.
  const ColumnValues& column(size_t c) const { return lazy_[c].values; }

  /// Heap footprint, the block-cache charge for this entry. For columnar
  /// blocks this is a stable upper bound that includes every chunk fully
  /// materialized, so lazy decodes never grow an entry past its charge.
  size_t ApproximateMemoryUsage() const;

 private:
  struct LazyCol {
    // 0 = not decoded, 1 = ready, 2 = failed.
    std::atomic<int> state{0};
    ColumnValues values;
    Status error;
  };
  // Array (not vector): atomics are neither movable nor copyable.
  std::unique_ptr<LazyCol[]> lazy_;
  mutable std::mutex decode_mu_;
  size_t approx_mem_ = 0;  // Columnar: fixed at Parse (see above).
};

/// Row access and in-block binary search over a (possibly shared)
/// BlockContents, interpreted under a schema. Copyable: copies share the
/// contents. The shared_ptr's deleter is how cache-resident blocks stay
/// pinned while a cursor is positioned in them.
class BlockReader {
 public:
  /// Parses `payload` (row-wise) into freshly owned contents.
  static Status Parse(const Schema* schema, std::string payload,
                      BlockReader* out);

  /// Parses a columnar `image` into freshly owned contents.
  static Status ParseColumnar(const Schema* schema, std::string image,
                              BlockReader* out);

  /// Points this reader at already-parsed contents (cache hits). `stats`
  /// (optional) receives column_chunks_decoded increments for lazy decodes
  /// this reader triggers; it must outlive the reader.
  void Reset(const Schema* schema,
             std::shared_ptr<const BlockContents> contents,
             TableStats* stats = nullptr) {
    schema_ = schema;
    contents_ = std::move(contents);
    stats_ = stats;
  }

  /// Projection hint for columnar blocks: `needed` has one entry per schema
  /// column; rows materialize false entries as the column's default value
  /// without ever decoding the chunk. Key columns must be marked needed
  /// (seeks and merge ordering decode them regardless). Null (the default)
  /// materializes every column. Row-wise blocks decode whole rows and
  /// ignore the hint. The pointer must outlive the reader.
  void set_needed_columns(const std::vector<char>* needed) {
    needed_ = needed;
  }

  size_t num_rows() const { return contents_ ? contents_->num_rows() : 0; }
  bool columnar() const { return contents_ && contents_->columnar; }
  const BlockContents* contents() const { return contents_.get(); }

  /// Decodes row i (rows are indexed in ascending key order).
  Status RowAt(size_t i, Row* out) const;

  /// Index of the first row whose key-vs-prefix comparison is >= 0
  /// (`or_equal`) or > 0 (!`or_equal`); returns num_rows() if none.
  /// Used to position cursors at a query's minimum key bound.
  Status SeekFirst(const Key& prefix, bool or_equal, size_t* index) const;

 private:
  Status KeyCompareAt(size_t i, const Key& prefix, int* cmp) const;
  Status EnsureColumn(size_t c) const;
  /// Maps the decoded chunk arm to a typed cell of column `c` at row `i`.
  /// The column must be ensured. Arm/type mismatch is Corruption.
  Status MaterializeValue(size_t c, size_t i, Value* out) const;

  const Schema* schema_ = nullptr;
  std::shared_ptr<const BlockContents> contents_;
  TableStats* stats_ = nullptr;
  const std::vector<char>* needed_ = nullptr;
};

/// Compresses and frames a row-wise block payload (CRC + lzmini).
std::string StoreBlock(const std::string& payload);

/// Reverses StoreBlock; verifies the checksum.
Status LoadBlock(const Slice& stored, std::string* payload);

/// Frames a columnar image (CRC + image; chunks are already individually
/// compressed, so no whole-block pass).
std::string StoreBlockV2(const std::string& image);

/// Reverses StoreBlockV2; verifies the checksum.
Status LoadBlockV2(const Slice& stored, std::string* image);

}  // namespace lt

#endif  // LITTLETABLE_CORE_BLOCK_H_
