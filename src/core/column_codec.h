// Per-column chunk encodings for tablet block format v2 (§3.2, §3.5).
//
// A v2 block stores each column of its rows as one independently compressed
// chunk, encoded with a type-specialized scheme chosen per block:
//
//   kDeltaDelta  ints/timestamps: zigzag-varint delta-of-delta. Regularly
//                sampled time series ("one row per device per 20 s") have
//                near-constant deltas, so the stream is almost all
//                one-byte zeros — the cantera-table varbyte-delta idiom.
//   kZigZag      ints: plain zigzag varints, for columns whose deltas do
//                not help (random counters, hashes).
//   kXor         doubles: Gorilla-style XOR with the previous value,
//                byte-aligned — first value as fixed64 bits, then each
//                value as varint64(bits ^ prev_bits). Identical or
//                slowly-moving gauges share sign/exponent/high-mantissa
//                bits, so the varint drops the zeroed high bytes.
//   kDict        strings/blobs: sorted dictionary with front-coded entries
//                (shared-prefix length + suffix) followed by one varint
//                index per row. Hierarchical identifiers ("sw3.sjc.example
//                .com") share long prefixes and repeat across rows.
//   kPlainBytes  strings/blobs: length-prefixed values back-to-back — the
//                fallback when a dictionary would not pay (all-distinct
//                payload blobs).
//
// Encoders always succeed; the writer picks the cheapest scheme by exact
// cost accounting (see ChooseIntEncoding / ChooseBytesEncoding).
// Decoders are defensive: any truncated, trailing, or out-of-range input
// returns Status::Corruption without reading or writing out of bounds —
// the byte-flip corruption matrix and the bounds-fuzz test in
// column_codec_test.cc exercise exactly this contract.
#ifndef LITTLETABLE_CORE_COLUMN_CODEC_H_
#define LITTLETABLE_CORE_COLUMN_CODEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace lt {

enum class ChunkEncoding : uint8_t {
  kDeltaDelta = 1,
  kZigZag = 2,
  kXor = 3,
  kDict = 4,
  kPlainBytes = 5,
};

/// True for byte values that name a known encoding (directory validation).
bool IsValidChunkEncoding(uint8_t b);

/// Decoded values of one column chunk. Schema-free: the chunk's encoding
/// determines the arm (ints for kDeltaDelta/kZigZag, doubles for kXor,
/// bytes for kDict/kPlainBytes); the schema's declared column type maps the
/// arm to typed cells at row materialization.
struct ColumnValues {
  enum class Arm : uint8_t { kNone, kInt, kDouble, kBytes };
  Arm arm = Arm::kNone;
  std::vector<int64_t> ints;
  std::vector<double> dbls;
  std::vector<std::string> strs;

  size_t size() const {
    switch (arm) {
      case Arm::kInt: return ints.size();
      case Arm::kDouble: return dbls.size();
      case Arm::kBytes: return strs.size();
      case Arm::kNone: return 0;
    }
    return 0;
  }

  /// Heap footprint (block-cache charge accounting).
  size_t ApproximateMemoryUsage() const;
};

/// Appends the encoding of `v` under `enc` (kDeltaDelta or kZigZag).
void EncodeIntChunk(const std::vector<int64_t>& v, ChunkEncoding enc,
                    std::string* out);

/// Appends the kXor encoding of `v`.
void EncodeDoubleChunk(const std::vector<double>& v, std::string* out);

/// Appends the encoding of `v` under `enc` (kDict or kPlainBytes).
void EncodeBytesChunk(const std::vector<std::string>& v, ChunkEncoding enc,
                      std::string* out);

/// Exact-cost chooser for integer columns: encodes nothing, just sums the
/// varint lengths both ways and returns the cheaper of kDeltaDelta/kZigZag.
ChunkEncoding ChooseIntEncoding(const std::vector<int64_t>& v);

/// Exact-cost chooser for byte columns: returns kDict when the front-coded
/// dictionary plus per-row indices is smaller than plain length-prefixed
/// values, else kPlainBytes.
ChunkEncoding ChooseBytesEncoding(const std::vector<std::string>& v);

/// Decodes an entire chunk of exactly `count` values. `in` must contain the
/// chunk bytes and nothing else: trailing bytes, truncation, bad dictionary
/// indices, or any other malformation returns kCorruption. `count` is
/// trusted (it comes from the CRC-protected block directory, cross-checked
/// against the footer index); decoders never allocate more than
/// O(count + in.size()).
Status DecodeChunk(Slice in, ChunkEncoding enc, uint32_t count,
                   ColumnValues* out);

}  // namespace lt

#endif  // LITTLETABLE_CORE_COLUMN_CODEC_H_
