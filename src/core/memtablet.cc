#include "core/memtablet.h"

#include "core/row_codec.h"

namespace lt {

MemTablet::MemTablet(uint64_t id, std::shared_ptr<const Schema> schema,
                     Period period, Timestamp created_at)
    : id_(id),
      schema_(std::move(schema)),
      period_(period),
      created_at_(created_at),
      rows_(RowLess{schema_.get()}) {}

bool MemTablet::Insert(Row row) {
  Timestamp ts = row[schema_->ts_index()].AsInt();
  size_t bytes = ApproximateRowBytes(row);
  auto [it, inserted] = rows_.insert(std::move(row));
  if (!inserted) return false;
  approx_bytes_ += bytes;
  if (rows_.size() == 1) {
    min_ts_ = max_ts_ = ts;
  } else {
    if (ts < min_ts_) min_ts_ = ts;
    if (ts > max_ts_) max_ts_ = ts;
  }
  return true;
}

bool MemTablet::ContainsKey(const Row& key_row) const {
  return rows_.find(key_row) != rows_.end();
}

void MemTablet::Snapshot(const QueryBounds& bounds,
                         std::vector<Row>* out) const {
  // Seek to the first row satisfying the min-key bound, then copy rows until
  // the max-key bound fails. std::set iteration is ascending by key.
  auto it = rows_.begin();
  if (bounds.min_key) {
    // First row with CompareKeyToPrefix >= 0 (inclusive) or > 0 (exclusive).
    const KeyBound& kb = *bounds.min_key;
    KeyProbe probe{&kb.prefix};
    it = kb.inclusive ? rows_.lower_bound(probe) : rows_.upper_bound(probe);
  }
  for (; it != rows_.end(); ++it) {
    if (bounds.max_key) {
      int c = schema_->CompareKeyToPrefix(*it, bounds.max_key->prefix);
      if (bounds.max_key->inclusive ? c > 0 : c >= 0) break;
    }
    out->push_back(*it);
  }
}

std::vector<Row> MemTablet::AllRows() const {
  return std::vector<Row>(rows_.begin(), rows_.end());
}

}  // namespace lt
