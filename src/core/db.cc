#include "core/db.h"

#include <chrono>
#include <cstdio>

namespace lt {

DB::DB(Env* env, std::shared_ptr<Clock> clock, std::string root,
       DbOptions options)
    : env_(env), clock_(std::move(clock)), root_(std::move(root)),
      options_(options) {
  if (options_.block_cache_bytes > 0) {
    block_cache_ = std::make_shared<Cache>(options_.block_cache_bytes);
  }
  logger_ = options_.logger ? options_.logger : Logger::Default();
}

DB::~DB() {
  Status s = Close();
  if (!s.ok()) {
    logger_->Error("flush_on_close_failed", {{"status", s}});
  }
}

bool DB::ValidTableName(const std::string& name) {
  if (name.empty() || name.size() > 200) return false;
  bool all_dots = true;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
    if (c != '.') all_dots = false;
  }
  // Names double as directory names; "." and ".." (and friends) would
  // escape or alias the database root.
  return !all_dots;
}

Status DB::Open(Env* env, std::shared_ptr<Clock> clock,
                const std::string& root, const DbOptions& options,
                std::unique_ptr<DB>* out) {
  LT_RETURN_IF_ERROR(env->CreateDirIfMissing(root));
  std::unique_ptr<DB> db(new DB(env, clock, root, options));

  std::vector<std::string> children;
  LT_RETURN_IF_ERROR(env->GetChildren(root, &children));
  for (const std::string& child : children) {
    const std::string dir = root + "/" + child;
    if (!env->FileExists(dir + "/DESC")) continue;  // Not a table directory.
    std::unique_ptr<Table> table;
    TableOptions topts = options.table_defaults;
    if (!topts.block_cache) topts.block_cache = db->block_cache_;
    if (!topts.logger) topts.logger = db->logger_;
    if (topts.slow_query_micros == 0) {
      topts.slow_query_micros = options.slow_query_micros;
    }
    Status s = Table::Open(env, clock, dir, topts, &table);
    if (!s.ok()) {
      // One damaged table (unreadable descriptor) must not keep the whole
      // server down; skip it and serve the rest. Its files are left in
      // place for manual recovery.
      db->logger_->Error("table_open_failed_skipping",
                         {{"dir", dir}, {"status", s}});
      continue;
    }
    std::string name = table->name();
    db->tables_[name] = std::shared_ptr<Table>(table.release());
  }

  if (options.background_maintenance) {
    db->background_ = std::thread([raw = db.get()] { raw->BackgroundLoop(); });
  }
  *out = std::move(db);
  return Status::OK();
}

size_t DB::AddPreCloseHook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  const size_t id = next_hook_id_++;
  pre_close_hooks_[id] = std::move(hook);
  return id;
}

void DB::RemovePreCloseHook(size_t id) {
  std::lock_guard<std::mutex> lock(hooks_mu_);
  pre_close_hooks_.erase(id);
}

void DB::RunPreCloseHooks() {
  // Take the hooks out under the lock, run them outside it: a hook (the
  // sampler's Stop) may call RemovePreCloseHook from its own teardown.
  std::map<size_t, std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(hooks_mu_);
    hooks.swap(pre_close_hooks_);
  }
  for (auto& [id, hook] : hooks) hook();
}

Status DB::Close() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (stopping_) return Status::OK();
    stopping_ = true;
  }
  // Ordered shutdown: external feeders (the metrics sampler) stop first,
  // so nothing inserts while tables flush and close below.
  RunPreCloseHooks();
  // Stand maintenance down and cancel retry backoffs BEFORE joining: an
  // in-flight background pass cuts itself short at the next table, and the
  // final flush below is not skipped by a pending backoff window.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, table] : tables_) table->BeginShutdown();
  }
  bg_cv_.notify_all();
  if (background_.joinable()) background_.join();
  // With maintenance stopped, persist whatever is still buffered; without
  // this, rows inserted since the last flush silently vanish on shutdown.
  return FlushAll();
}

void DB::Abandon() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  RunPreCloseHooks();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, table] : tables_) table->BeginShutdown();
  }
  bg_cv_.notify_all();
  if (background_.joinable()) background_.join();
  std::lock_guard<std::mutex> lock(mu_);
  tables_.clear();  // No flush: buffered rows die with the "process".
}

void DB::BackgroundLoop() {
  const auto interval =
      std::chrono::microseconds(options_.maintenance_interval);
  while (true) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait_for(lock, interval, [this] { return stopping_; });
      if (stopping_) return;
    }
    MaintainNow();
  }
}

Status DB::CreateTable(const std::string& name, const Schema& schema,
                       const TableOptions* options) {
  if (!ValidTableName(name)) {
    return Status::InvalidArgument("invalid table name: " + name);
  }
  if (IsSystemTableName(name)) {
    // The "__sys" namespace is reserved for the self-monitoring subsystem;
    // a user table there could be spoofed as (or clobbered by) a system
    // table. Internal callers go through CreateSystemTable.
    return Status::InvalidArgument("table name is reserved (__sys*): " + name);
  }
  return CreateTableInternal(name, schema, options);
}

Status DB::CreateSystemTable(const std::string& name, const Schema& schema,
                             const TableOptions* options) {
  if (!ValidTableName(name) || !IsSystemTableName(name)) {
    return Status::InvalidArgument("invalid system table name: " + name);
  }
  return CreateTableInternal(name, schema, options);
}

Status DB::CreateTableInternal(const std::string& name, const Schema& schema,
                               const TableOptions* options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  TableOptions topts = options ? *options : options_.table_defaults;
  if (!topts.block_cache) topts.block_cache = block_cache_;
  if (!topts.logger) topts.logger = logger_;
  if (topts.slow_query_micros == 0) {
    topts.slow_query_micros = options_.slow_query_micros;
  }
  std::unique_ptr<Table> table;
  LT_RETURN_IF_ERROR(Table::Create(env_, clock_, TableDir(name), name, schema,
                                   topts, &table));
  tables_[name] = std::shared_ptr<Table>(table.release());
  return Status::OK();
}

Status DB::DropTable(const std::string& name) {
  std::shared_ptr<Table> table;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tables_.find(name);
    if (it == tables_.end()) return Status::NotFound("no such table: " + name);
    table = it->second;
    tables_.erase(it);
  }
  return Table::Destroy(env_, TableDir(name));
}

std::shared_ptr<Table> DB::GetTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second;
}

std::vector<std::string> DB::ListTables() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

Status DB::FlushAll() {
  std::vector<std::shared_ptr<Table>> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, table] : tables_) tables.push_back(table);
  }
  for (const auto& table : tables) LT_RETURN_IF_ERROR(table->FlushAll());
  return Status::OK();
}

Status DB::MaintainNow() {
  std::vector<std::shared_ptr<Table>> tables;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, table] : tables_) tables.push_back(table);
  }
  for (const auto& table : tables) LT_RETURN_IF_ERROR(table->MaintainNow());
  return Status::OK();
}

}  // namespace lt
