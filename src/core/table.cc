#include "core/table.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "core/merge_policy.h"
#include "core/row_codec.h"
#include "core/tablet_writer.h"
#include "util/fault.h"
#include "util/logger.h"

namespace lt {
namespace {

std::string TabletFileName(uint64_t seq) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%06llu.tab", static_cast<unsigned long long>(seq));
  return buf;
}

void SortMetas(std::vector<TabletMeta>* metas) {
  std::sort(metas->begin(), metas->end(),
            [](const TabletMeta& a, const TabletMeta& b) {
              if (a.min_ts != b.min_ts) return a.min_ts < b.min_ts;
              if (a.max_ts != b.max_ts) return a.max_ts < b.max_ts;
              return a.filename < b.filename;
            });
}

int CompareFullKeys(const Schema& schema, const Key& a, const Key& b) {
  for (size_t i = 0; i < schema.num_key_columns(); i++) {
    int r = a[i].Compare(b[i]);
    if (r != 0) return r;
  }
  return 0;
}

}  // namespace

Table::Table(Env* env, std::shared_ptr<Clock> clock, std::string dir,
             TableOptions options)
    : env_(env), clock_(std::move(clock)), dir_(std::move(dir)),
      opts_(options) {
  // Standalone tables (no DB-injected shared cache) get a private one when
  // sized; tables under a DB share the DB-wide cache instead.
  if (!opts_.block_cache && opts_.block_cache_bytes > 0) {
    opts_.block_cache = std::make_shared<Cache>(opts_.block_cache_bytes);
  }
  if (!opts_.logger) opts_.logger = Logger::Default();
}

Status Table::Create(Env* env, std::shared_ptr<Clock> clock,
                     const std::string& dir, const std::string& name,
                     const Schema& schema, const TableOptions& options,
                     std::unique_ptr<Table>* out) {
  LT_RETURN_IF_ERROR(schema.Validate());
  if (options.format_version > kTabletFormatLatest) {
    return Status::InvalidArgument("unknown tablet format version");
  }
  LT_RETURN_IF_ERROR(env->CreateDirIfMissing(dir));
  std::unique_ptr<Table> table(new Table(env, clock, dir, options));
  if (env->FileExists(table->DescriptorPath())) {
    return Status::AlreadyExists("table already exists in " + dir);
  }
  table->name_ = name;
  table->schema_ = std::make_shared<const Schema>(schema);
  table->ttl_ = options.ttl;
  {
    std::lock_guard<std::mutex> lock(table->mu_);
    LT_RETURN_IF_ERROR(table->SaveDescriptorLocked());
  }
  *out = std::move(table);
  return Status::OK();
}

Status Table::Open(Env* env, std::shared_ptr<Clock> clock,
                   const std::string& dir, const TableOptions& options,
                   std::unique_ptr<Table>* out) {
  if (options.format_version > kTabletFormatLatest) {
    return Status::InvalidArgument("unknown tablet format version");
  }
  std::unique_ptr<Table> table(new Table(env, clock, dir, options));
  TableDescriptor desc;
  LT_RETURN_IF_ERROR(TableDescriptor::Load(env, table->DescriptorPath(), &desc));
  table->name_ = desc.table_name;
  table->schema_ = std::make_shared<const Schema>(desc.schema);
  table->ttl_ = desc.ttl;
  table->next_file_seq_ = desc.next_file_seq;
  desc.SortTablets();
  table->tablets_ = desc.tablets;

  // Remove files a crash mid-flush or mid-merge left unreferenced.
  // Quarantined tablets (`*.corrupt`) are kept for post-mortems.
  std::set<std::string> live;
  for (const TabletMeta& m : table->tablets_) live.insert(m.filename);
  std::vector<std::string> children;
  LT_RETURN_IF_ERROR(env->GetChildren(dir, &children));
  for (const std::string& child : children) {
    if (child == "DESC") continue;
    if (child.ends_with(".corrupt")) continue;
    if (!live.count(child)) env->RemoveFile(dir + "/" + child);
  }

  std::vector<std::pair<std::string, Status>> doomed;
  for (const TabletMeta& m : table->tablets_) {
    std::shared_ptr<TabletReader> reader;
    Status s = TabletReader::Open(env, table->TabletPath(m.filename), &reader,
                                  table->opts_.block_cache, &table->stats_);
    if (s.ok() && options.verify_open) s = reader->Load();
    if (!s.ok()) {
      // A missing or corrupt tablet must not brick the whole table: the
      // paper's contract is that persisted data stays *recoverable*, so we
      // quarantine the bad tablet and keep serving the rest.
      if (!ShouldQuarantine(s)) return s;
      doomed.emplace_back(m.filename, std::move(s));
      continue;
    }
    table->readers_[m.filename] = std::move(reader);
    if (!table->has_rows_ || m.max_ts > table->max_row_ts_) {
      table->max_row_ts_ = m.max_ts;
      table->has_rows_ = m.row_count > 0 || table->has_rows_;
    }
    if (m.row_count > 0) table->has_rows_ = true;
  }
  if (!doomed.empty()) {
    std::lock_guard<std::mutex> lock(table->mu_);
    for (const auto& [fname, why] : doomed) {
      table->QuarantineTabletLocked(fname, why);
    }
  }
  *out = std::move(table);
  return Status::OK();
}

Status Table::Destroy(Env* env, const std::string& dir) {
  std::vector<std::string> children;
  Status s = env->GetChildren(dir, &children);
  if (s.IsNotFound()) return Status::OK();
  LT_RETURN_IF_ERROR(s);
  for (const std::string& child : children) {
    LT_RETURN_IF_ERROR(env->RemoveFile(dir + "/" + child));
  }
  return Status::OK();
}

std::shared_ptr<const Schema> Table::schema() const {
  std::lock_guard<std::mutex> lock(mu_);
  return schema_;
}

Timestamp Table::ttl() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ttl_;
}

Timestamp Table::ExpiryCutoffLocked(Timestamp now) const {
  if (ttl_ <= 0) return std::numeric_limits<Timestamp>::min();
  return now - ttl_;
}

void Table::QuarantineTabletLocked(const std::string& fname,
                                   const Status& why) {
  const std::string path = TabletPath(fname);
  opts_.logger->Warn("tablet_quarantined",
                     {{"table", name_}, {"tablet", fname}, {"status", why}});
  readers_.erase(fname);
  std::vector<TabletMeta> keep;
  keep.reserve(tablets_.size());
  for (TabletMeta& m : tablets_) {
    if (m.filename != fname) keep.push_back(std::move(m));
  }
  tablets_ = std::move(keep);
  if (env_->FileExists(path)) env_->RenameFile(path, path + ".corrupt");
  stats_.tablets_quarantined.fetch_add(1);
  // Persist the drop so the next open doesn't trip over the same tablet.
  // If this write fails, reopening just quarantines again.
  Status s = SaveDescriptorLocked();
  if (!s.ok()) {
    opts_.logger->Error(
        "quarantine_descriptor_update_failed",
        {{"table", name_}, {"tablet", fname}, {"status", s}});
  }
}

Status Table::SaveDescriptorLocked() { return SaveDescriptorWithLocked(tablets_); }

Status Table::SaveDescriptorWithLocked(const std::vector<TabletMeta>& tablets) {
  TableDescriptor desc;
  desc.table_name = name_;
  desc.schema = *schema_;
  desc.ttl = ttl_;
  desc.next_file_seq = next_file_seq_;
  desc.tablets = tablets;
  return desc.Save(env_, DescriptorPath());
}

// ---------------------------------------------------------------------------
// Replication hooks: whole-tablet export/install for primary→secondary
// shipping (flushed tablets are immutable, so a byte copy is a valid
// replica of the tablet).

namespace {
// Parses the numeric prefix of a tablet filename ("000042.tab" → 42);
// returns 0 if the name has no digit prefix.
uint64_t TabletSeqOf(const std::string& fname) {
  uint64_t seq = 0;
  for (char c : fname) {
    if (c < '0' || c > '9') break;
    seq = seq * 10 + static_cast<uint64_t>(c - '0');
  }
  return seq;
}

bool SameTablet(const TabletMeta& a, const TabletMeta& b) {
  return a.filename == b.filename && a.file_bytes == b.file_bytes &&
         a.row_count == b.row_count;
}
}  // namespace

Status Table::ExportTablet(const std::string& filename, TabletMeta* meta,
                           std::string* bytes) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    for (const TabletMeta& m : tablets_) {
      if (m.filename == filename) {
        *meta = m;
        found = true;
        break;
      }
    }
    if (!found) return Status::NotFound("no such tablet: " + filename);
  }
  LT_RETURN_IF_ERROR(ReadFileToString(env_, TabletPath(filename), bytes));
  if (bytes->size() != meta->file_bytes) {
    // Tablets never change size once flushed; a mismatch means the file
    // was replaced under us (merge) — the caller should re-list and retry.
    return Status::NotFound("tablet replaced mid-export: " + filename);
  }
  return Status::OK();
}

Status Table::InstallTablet(const TabletMeta& meta, const Slice& bytes) {
  if (meta.filename.empty() || meta.filename == "DESC" ||
      meta.filename.find('/') != std::string::npos) {
    return Status::InvalidArgument("bad tablet filename");
  }
  if (bytes.size() != meta.file_bytes) {
    return Status::InvalidArgument("tablet size does not match meta");
  }
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const TabletMeta& m : tablets_) {
      if (m.filename != meta.filename) continue;
      if (SameTablet(m, meta)) return Status::OK();  // Duplicate ship.
      // Same name, different contents: a divergent-history rejoin. Drop
      // the old entry durably BEFORE the file is overwritten, so a crash
      // in between leaves an orphan (removed at Open), never a descriptor
      // naming bytes it doesn't describe.
      std::vector<TabletMeta> next;
      next.reserve(tablets_.size() - 1);
      for (const TabletMeta& t : tablets_) {
        if (t.filename != meta.filename) next.push_back(t);
      }
      LT_RETURN_IF_ERROR(SaveDescriptorWithLocked(next));
      readers_.erase(meta.filename);
      tablets_ = std::move(next);
      break;
    }
  }
  const std::string path = TabletPath(meta.filename);
  const std::string tmp = path + ".ship";
  std::unique_ptr<WritableFile> f;
  LT_RETURN_IF_ERROR(env_->NewWritableFile(tmp, &f));
  Status s = f->Append(bytes);
  if (s.ok()) s = f->Sync();
  if (s.ok()) s = f->Close();
  if (s.ok()) s = env_->RenameFile(tmp, path);
  if (!s.ok()) {
    env_->RemoveFile(tmp);
    return s;
  }
  // Validate before committing: the bytes must load as a real tablet, so
  // a torn or corrupted transfer that slipped past the wire checksum can
  // never enter the descriptor.
  std::shared_ptr<TabletReader> reader;
  s = TabletReader::Open(env_, path, &reader, opts_.block_cache, &stats_);
  if (s.ok()) s = reader->Load();
  if (!s.ok()) {
    env_->RemoveFile(path);
    return s;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TabletMeta> next = tablets_;
    next.push_back(meta);
    SortMetas(&next);
    // Local flushes must never collide with shipped names: advance the
    // sequence counter past the installed file's.
    const uint64_t seq = TabletSeqOf(meta.filename);
    const uint64_t prev_seq = next_file_seq_;
    if (seq >= next_file_seq_) next_file_seq_ = seq + 1;
    Status cs = SaveDescriptorWithLocked(next);
    if (!cs.ok()) {
      next_file_seq_ = prev_seq;
      env_->RemoveFile(path);
      return cs;
    }
    readers_[meta.filename] = std::move(reader);
    tablets_ = std::move(next);
    if (meta.row_count > 0) {
      if (!has_rows_ || meta.max_ts > max_row_ts_) max_row_ts_ = meta.max_ts;
      has_rows_ = true;
    }
  }
  return Status::OK();
}

Status Table::RetainOnlyTablets(const std::vector<TabletMeta>& keep) {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  auto keeps = [&](const TabletMeta& m) {
    for (const TabletMeta& k : keep) {
      if (SameTablet(k, m)) return true;
    }
    return false;
  };
  std::vector<TabletMeta> next;
  std::vector<std::string> drop;
  next.reserve(tablets_.size());
  for (const TabletMeta& m : tablets_) {
    if (keeps(m)) {
      next.push_back(m);
    } else {
      drop.push_back(m.filename);
    }
  }
  if (drop.empty()) return Status::OK();
  // Commit the prune durably first; files are unreferenced afterwards, so
  // a crash between descriptor and removal just leaves orphans for Open.
  LT_RETURN_IF_ERROR(SaveDescriptorWithLocked(next));
  for (const std::string& fname : drop) {
    readers_.erase(fname);
    env_->RemoveFile(TabletPath(fname));
  }
  tablets_ = std::move(next);
  return Status::OK();
}

void Table::DiscardMem() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  filling_.clear();
  sealed_.clear();
  must_flush_first_.clear();
  last_insert_tablet_ = 0;
  flush_backoff_until_ = 0;
  flush_failure_streak_ = 0;
}

void Table::RecordFlushFailureLocked(Timestamp now) {
  stats_.flush_failures.fetch_add(1);
  Timestamp delay = opts_.flush_retry_backoff;
  for (uint32_t i = 0; i < flush_failure_streak_ &&
                       delay < opts_.flush_retry_max_backoff;
       i++) {
    delay *= 2;
  }
  delay = std::min(delay, opts_.flush_retry_max_backoff);
  flush_backoff_until_ = now + delay;
  flush_failure_streak_++;
}

void Table::RecordMergeFailureLocked(Timestamp now) {
  stats_.merge_failures.fetch_add(1);
  Timestamp delay = opts_.flush_retry_backoff;
  for (uint32_t i = 0; i < merge_failure_streak_ &&
                       delay < opts_.flush_retry_max_backoff;
       i++) {
    delay *= 2;
  }
  delay = std::min(delay, opts_.flush_retry_max_backoff);
  merge_backoff_until_ = now + delay;
  merge_failure_streak_++;
}

// ---------------------------------------------------------------------------
// Inserts.

Status Table::CheckUnique(const Row& row,
                          const std::set<std::string>& batch_keys) {
  std::shared_ptr<const Schema> schema;
  std::vector<std::shared_ptr<TabletReader>> candidates;
  Key full_key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    schema = schema_;
    full_key = schema->KeyOf(row);
    std::string enc;
    EncodeKey(&enc, *schema, full_key);
    if (batch_keys.count(enc)) {
      stats_.duplicates_rejected.fetch_add(1);
      return Status::AlreadyExists("duplicate key within batch");
    }
    Timestamp ts = row[schema->ts_index()].AsInt();
    // Fast path 1 (§3.4.4): newer than every existing row — provable from
    // cached metadata alone. Common because most applications timestamp
    // rows with the current time.
    if (!has_rows_ || ts > max_row_ts_) {
      stats_.unique_by_newest_ts.fetch_add(1);
      return Status::OK();
    }
    // In-memory tablets: exact, cheap checks.
    auto check_mem = [&](const std::shared_ptr<MemTablet>& mt) -> bool {
      return !mt->empty() && mt->min_ts() <= ts && ts <= mt->max_ts() &&
             mt->ContainsKey(row);
    };
    for (const auto& [start, mt] : filling_) {
      if (check_mem(mt)) {
        stats_.duplicates_rejected.fetch_add(1);
        return Status::AlreadyExists("duplicate key");
      }
    }
    for (const auto& mt : sealed_) {
      if (check_mem(mt)) {
        stats_.duplicates_rejected.fetch_add(1);
        return Status::AlreadyExists("duplicate key");
      }
    }
    // Fast path 2: within the row's time period, larger than every
    // tablet's max key — provable from cached indexes alone. A duplicate
    // shares the full key including ts, so only tablets whose timespan
    // contains ts can hold one.
    std::vector<std::pair<std::string, Status>> doomed;
    for (const TabletMeta& m : tablets_) {
      if (m.row_count == 0 || ts < m.min_ts || ts > m.max_ts) continue;
      auto it = readers_.find(m.filename);
      if (it == readers_.end()) {
        return Status::Aborted("internal: no reader for tablet " + m.filename);
      }
      Status ls = it->second->Load();
      if (!ls.ok()) {
        if (!ShouldQuarantine(ls)) return ls;
        // The tablet is unreadable, so it cannot hold a duplicate; drop it
        // from the table and keep checking the rest.
        doomed.emplace_back(m.filename, std::move(ls));
        continue;
      }
      int c = CompareFullKeys(*schema, it->second->max_key(), full_key);
      if (c == 0) {
        stats_.duplicates_rejected.fetch_add(1);
        return Status::AlreadyExists("duplicate key");
      }
      if (c > 0) candidates.push_back(it->second);
    }
    for (const auto& [fname, why] : doomed) QuarantineTabletLocked(fname, why);
    if (candidates.empty()) {
      stats_.unique_by_max_key.fetch_add(1);
      return Status::OK();
    }
  }
  // Slow path: point queries, outside mu_ so concurrent queries proceed
  // unencumbered (the paper's in-memory lock table is our insert_mu_, held
  // by the caller).
  for (const auto& reader : candidates) {
    stats_.bloom_tablet_probes.fetch_add(1);
    if (!reader->MayContainPrefix(full_key)) {
      stats_.bloom_tablet_skips.fetch_add(1);
      continue;
    }
    QueryBounds bounds = QueryBounds::ForPrefix(full_key);
    std::unique_ptr<Cursor> cursor;
    LT_RETURN_IF_ERROR(
        reader->NewCursor(bounds, schema.get(), nullptr, &cursor));
    if (cursor->Valid()) {
      stats_.duplicates_rejected.fetch_add(1);
      return Status::AlreadyExists("duplicate key");
    }
  }
  stats_.unique_by_point_query.fetch_add(1);
  return Status::OK();
}

void Table::SealLocked(std::shared_ptr<MemTablet> mt) {
  mt->Seal();
  auto it = filling_.find(mt->period().start);
  if (it != filling_.end() && it->second == mt) filling_.erase(it);
  sealed_.push_back(std::move(mt));
}

namespace {
// Group-commit bound: a leader stops claiming followers once the group
// holds this many rows, keeping the critical section (and any follower's
// worst-case wait) proportionate.
constexpr size_t kMaxInsertGroupRows = 65536;
}  // namespace

Status Table::InsertBatch(const std::vector<Row>& rows) {
  if (rows.empty()) return Status::OK();
  const Timestamp op_start = MonotonicMicros();

  // Group commit: enqueue, then either wait for a leader to carry this
  // batch or become the leader at the queue front. Latency is recorded per
  // caller — a follower's wait is part of its user-visible insert time.
  InsertWaiter me(&rows);
  std::unique_lock<std::mutex> lock(writers_mu_);
  writers_.push_back(&me);
  while (!me.done && &me != writers_.front()) {
    me.cv.wait(lock);
  }
  if (me.done) {
    lock.unlock();
    stats_.insert_micros.Record(
        static_cast<uint64_t>(MonotonicMicros() - op_start));
    return me.status;
  }

  // Leader: claim a bounded prefix of the queue as this commit group.
  std::vector<InsertWaiter*> group;
  size_t group_rows = 0;
  for (InsertWaiter* w : writers_) {
    if (!group.empty() && group_rows + w->rows->size() > kMaxInsertGroupRows) {
      break;
    }
    group.push_back(w);
    group_rows += w->rows->size();
  }
  lock.unlock();

  RunInsertGroup(group);

  lock.lock();
  for (InsertWaiter* w : group) {
    writers_.pop_front();
    w->done = true;
    if (w != &me) w->cv.notify_one();
  }
  // Promote the next queued writer to leader.
  if (!writers_.empty()) writers_.front()->cv.notify_one();
  lock.unlock();

  stats_.insert_micros.Record(
      static_cast<uint64_t>(MonotonicMicros() - op_start));
  return me.status;
}

void Table::RunInsertGroup(const std::vector<InsertWaiter*>& group) {
  std::lock_guard<std::mutex> insert_lock(insert_mu_);
  stats_.insert_groups.fetch_add(1);
  stats_.insert_group_size.Record(group.size());

  // While flushes are failing, memory absorbs inserts past the normal
  // backpressure threshold — but only up to a hard cap, rejected here
  // *before* any row applies so each caller sees a clean all-or-nothing.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sealed_.size() >= HardSealedCapLocked() &&
        clock_->Now() < flush_backoff_until_) {
      Status reject = Status::Unavailable(
          "too many unflushed tablets while flushes are failing");
      for (InsertWaiter* w : group) w->status = reject;
      return;
    }
  }

  std::shared_ptr<const Schema> schema = this->schema();

  // Validate and uniqueness-check each batch independently. group_keys
  // accumulates the keys of batches already accepted in this group: they
  // are not yet in any memtablet, so CheckUnique's fast paths cannot see
  // them, and a cross-batch duplicate must be caught here exactly as it
  // would have been had the batches run serially (earlier queue position
  // wins). A rejected batch's keys are rolled back so it cannot shadow a
  // later batch.
  std::set<std::string> group_keys;
  std::vector<InsertWaiter*> accepted;
  size_t accepted_rows = 0;
  for (InsertWaiter* w : group) {
    Status s;
    for (const Row& r : *w->rows) {
      if (!schema->RowMatches(r)) {
        s = Status::InvalidArgument("row does not match table schema");
        break;
      }
    }
    std::vector<std::string> added;
    if (s.ok()) {
      for (const Row& r : *w->rows) {
        s = CheckUnique(r, group_keys);
        if (!s.ok()) break;
        std::string enc;
        EncodeKey(&enc, *schema, schema->KeyOf(r));
        if (group_keys.insert(enc).second) added.push_back(std::move(enc));
      }
    }
    w->status = s;
    if (s.ok()) {
      accepted.push_back(w);
      accepted_rows += w->rows->size();
    } else {
      for (const std::string& enc : added) group_keys.erase(enc);
    }
  }

  if (!accepted.empty()) {
    // One mu_ critical section applies every accepted batch, in queue
    // order — the coalescing that turns many small device batches into
    // amortized work.
    std::lock_guard<std::mutex> lock(mu_);
    const Timestamp now = clock_->Now();
    for (InsertWaiter* w : accepted) {
      for (const Row& r : *w->rows) {
        Timestamp ts = r[schema->ts_index()].AsInt();
        Period p = PeriodFor(ts, now);
        std::shared_ptr<MemTablet> mt;
        auto it = filling_.find(p.start);
        if (it != filling_.end() && it->second->period() == p) {
          mt = it->second;
        } else {
          // Missing, or a stale tablet whose period has since rolled over
          // into a larger bin sharing the same start: seal the stale one.
          if (it != filling_.end()) SealLocked(it->second);
          mt = std::make_shared<MemTablet>(next_memtablet_id_++, schema_, p,
                                           now);
          filling_[p.start] = mt;
        }
        if (!mt->Insert(r)) {
          w->status = Status::Aborted("uniqueness race despite insert lock");
          break;
        }
        // Flush dependency (§3.4.3): switching filling tablets means the
        // previous one holds earlier rows and must flush first (or with
        // us).
        if (last_insert_tablet_ != 0 && last_insert_tablet_ != mt->id()) {
          must_flush_first_[mt->id()].insert(last_insert_tablet_);
        }
        last_insert_tablet_ = mt->id();
        if (!has_rows_ || ts > max_row_ts_) max_row_ts_ = ts;
        has_rows_ = true;
        if (mt->ApproximateBytes() >= opts_.flush_bytes) SealLocked(mt);
      }
      if (w->status.ok()) {
        stats_.insert_batches.fetch_add(1);
        stats_.rows_inserted.fetch_add(w->rows->size());
      }
    }
  }

  // Backpressure: once too many sealed tablets await flushing, the insert
  // path does the flushing itself and becomes disk-bound (§5.1.3) — one
  // pass for the whole group. During a failure backoff window the flush is
  // skipped: the rows are already applied and served from memory;
  // maintenance retries the flush later.
  while (true) {
    uint64_t root = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) break;  // Shutdown's FlushAll will persist these rows.
      if (sealed_.size() <= opts_.max_unflushed_tablets) break;
      if (clock_->Now() < flush_backoff_until_) break;
      root = sealed_.front()->id();
    }
    if (!FlushSet({root}).ok()) break;
  }
}

// ---------------------------------------------------------------------------
// Flushing.

Status Table::FlushSet(std::vector<uint64_t> root_ids) {
  const Timestamp op_start = MonotonicMicros();
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::vector<std::shared_ptr<MemTablet>> victims;
  bool is_retry = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    is_retry = flush_failure_streak_ > 0;
    // Transitive closure over the dependency graph (which may have cycles).
    std::set<uint64_t> want(root_ids.begin(), root_ids.end());
    std::deque<uint64_t> work(root_ids.begin(), root_ids.end());
    while (!work.empty()) {
      uint64_t id = work.front();
      work.pop_front();
      auto it = must_flush_first_.find(id);
      if (it == must_flush_first_.end()) continue;
      for (uint64_t dep : it->second) {
        if (want.insert(dep).second) work.push_back(dep);
      }
    }
    for (auto it = filling_.begin(); it != filling_.end();) {
      if (want.count(it->second->id())) {
        it->second->Seal();
        victims.push_back(it->second);
        it = filling_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = sealed_.begin(); it != sealed_.end();) {
      if (want.count((*it)->id())) {
        victims.push_back(*it);
        it = sealed_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (victims.empty()) return Status::OK();
  if (is_retry) stats_.flush_retries.fetch_add(1);
  std::sort(victims.begin(), victims.end(),
            [](const auto& a, const auto& b) { return a->id() < b->id(); });

  const Timestamp now = clock_->Now();

  // Write one tablet per non-empty victim, in id order. Id order is only a
  // heuristic: InsertBatch adds an edge from the current filling tablet to
  // the previous one, so inserts alternating between period tablets create
  // edges from an OLDER id to a NEWER one (even cycles). On a write failure
  // the candidate prefix is therefore trimmed below — under mu_, against
  // the real edge set — until it is dependency-closed before anything
  // commits; the failed victim and everything dropped by the trim return to
  // the flush queue, sealed and intact, for a backed-off retry. No victim
  // is ever stranded or dropped.
  struct Written {
    size_t vi;  // Index into `victims`.
    TabletMeta meta;
    std::shared_ptr<TabletReader> reader;
  };
  std::vector<Written> written;
  size_t committed_victims = victims.size();  // victims[0..this) commit.
  Status fail;
  for (size_t vi = 0; vi < victims.size(); vi++) {
    const std::shared_ptr<MemTablet>& mt = victims[vi];
    if (mt->empty()) continue;
    std::string fname;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fname = TabletFileName(next_file_seq_++);
    }
    TabletWriterOptions wopts;
    wopts.block_bytes = opts_.block_bytes;
    wopts.bloom_bits_per_key = opts_.bloom_bits_per_key;
    wopts.sync = true;
    wopts.format_version = opts_.format_version;
    wopts.stats = &stats_;
    TabletWriter writer(env_, TabletPath(fname), mt->schema().get(), wopts);
    Status s;
    for (const Row& r : mt->AllRows()) {
      s = writer.Add(r);
      if (!s.ok()) break;
    }
    TabletMeta meta;
    if (s.ok()) s = writer.Finish(&meta);
    if (!s.ok()) {
      writer.Abandon();  // The partial output file is deleted.
      fail = s;
      committed_victims = vi;
      break;
    }
    meta.filename = fname;
    meta.flushed_at = now;
    std::shared_ptr<TabletReader> reader;
    s = TabletReader::Open(env_, TabletPath(fname), &reader,
                           opts_.block_cache, &stats_);
    if (!s.ok()) {
      env_->RemoveFile(TabletPath(fname));
      fail = s;
      committed_victims = vi;
      break;
    }
    written.push_back({vi, std::move(meta), std::move(reader)});
  }

  size_t committed_count = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // commit[vi] — does victims[vi] commit this round? Start from the
    // written prefix, then trim it until it is closed under the real
    // dependency edges: a victim whose must-flush-first set names a
    // requeued victim must itself be requeued, transitively (id order does
    // not imply closure — see the write-loop comment above). Committing a
    // non-closed set would durably persist a tablet whose earlier-inserted
    // dependency is still memory-only, breaking §3.4.3 prefix durability
    // on the next crash.
    std::vector<char> commit(victims.size(), 1);
    for (size_t vi = committed_victims; vi < victims.size(); vi++) {
      commit[vi] = 0;
    }
    if (committed_victims < victims.size()) {
      std::map<uint64_t, size_t> index_of;
      for (size_t vi = 0; vi < victims.size(); vi++) {
        index_of[victims[vi]->id()] = vi;
      }
      bool changed = true;
      while (changed) {
        changed = false;
        for (size_t vi = 0; vi < victims.size(); vi++) {
          if (!commit[vi]) continue;
          auto dep_it = must_flush_first_.find(victims[vi]->id());
          if (dep_it == must_flush_first_.end()) continue;
          for (uint64_t dep : dep_it->second) {
            auto ix = index_of.find(dep);
            if (ix != index_of.end() && !commit[ix->second]) {
              commit[vi] = 0;
              changed = true;
              break;
            }
          }
        }
      }
      // Output already written for trimmed victims must not reach the
      // descriptor: delete it so the retry rewrites it cleanly.
      for (auto it = written.begin(); it != written.end();) {
        if (!commit[it->vi]) {
          env_->RemoveFile(TabletPath(it->meta.filename));
          it = written.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (!written.empty()) {
      // One atomic descriptor update covers the committed set (§3.4.3).
      // Commit durably first, then mutate in-memory state, so a descriptor
      // failure rolls back to exactly the pre-flush picture.
      std::vector<TabletMeta> next_tablets = tablets_;
      for (const Written& w : written) next_tablets.push_back(w.meta);
      SortMetas(&next_tablets);
      Status cs = SaveDescriptorWithLocked(next_tablets);
      if (!cs.ok()) {
        // The old descriptor still rules: delete the unreferenced tablet
        // files and requeue every victim so the retry rewrites cleanly.
        for (const Written& w : written) {
          env_->RemoveFile(TabletPath(w.meta.filename));
        }
        written.clear();
        std::fill(commit.begin(), commit.end(), 0);
        if (fail.ok()) fail = cs;
      } else {
        for (Written& w : written) {
          stats_.flushes.fetch_add(1);
          stats_.bytes_flushed.fetch_add(w.meta.file_bytes);
          readers_[w.meta.filename] = std::move(w.reader);
          tablets_.push_back(std::move(w.meta));
        }
        SortMetas(&tablets_);
      }
    } else if (!fail.ok()) {
      // Nothing reached disk: requeue everything (empty victims included)
      // and leave the dependency graph untouched.
      std::fill(commit.begin(), commit.end(), 0);
    }
    // Committed victims leave the dependency graph entirely — including
    // edges that name them from still-queued tablets, which are satisfied
    // now that the dependency is durable. (Erasing only the victims' own
    // entries leaked those satisfied edges forever.)
    std::set<uint64_t> committed_ids;
    for (size_t vi = 0; vi < victims.size(); vi++) {
      if (commit[vi]) committed_ids.insert(victims[vi]->id());
    }
    for (uint64_t id : committed_ids) must_flush_first_.erase(id);
    for (auto it = must_flush_first_.begin(); it != must_flush_first_.end();) {
      for (uint64_t id : committed_ids) it->second.erase(id);
      it = it->second.empty() ? must_flush_first_.erase(it) : std::next(it);
    }
    // Unflushed victims return to the front of the flush queue (reverse id
    // order keeps the oldest first); their rows stay served from memory.
    for (size_t vi = victims.size(); vi-- > 0;) {
      if (!commit[vi]) sealed_.push_front(victims[vi]);
    }
    committed_count = committed_ids.size();
    if (!fail.ok()) {
      RecordFlushFailureLocked(clock_->Now());
    } else {
      flush_failure_streak_ = 0;
      flush_backoff_until_ = 0;
    }
  }
  if (!fail.ok()) {
    opts_.logger->Warn(
        "flush_failed",
        {{"table", name_},
         {"committed", static_cast<uint64_t>(committed_count)},
         {"requeued",
          static_cast<uint64_t>(victims.size() - committed_count)},
         {"status", fail}});
    return fail;
  }
  LT_CRASH_POINT("flush:after_commit");
  stats_.flush_micros.Record(
      static_cast<uint64_t>(MonotonicMicros() - op_start));
  return Status::OK();
}

Status Table::FlushAll() {
  std::vector<uint64_t> roots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [start, mt] : filling_) roots.push_back(mt->id());
    for (const auto& mt : sealed_) roots.push_back(mt->id());
  }
  if (roots.empty()) return Status::OK();
  return FlushSet(std::move(roots));
}

Status Table::FlushThrough(Timestamp ts) {
  std::vector<uint64_t> roots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [start, mt] : filling_) {
      if (!mt->empty() && mt->min_ts() <= ts) roots.push_back(mt->id());
    }
    for (const auto& mt : sealed_) {
      if (!mt->empty() && mt->min_ts() <= ts) roots.push_back(mt->id());
    }
  }
  if (roots.empty()) return Status::OK();
  return FlushSet(std::move(roots));
}

// ---------------------------------------------------------------------------
// Maintenance: age-based flushing, merging, TTL.

void Table::BeginShutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  closing_ = true;
  // A pending retry backoff must not delay shutdown: the close-time flush
  // is the last chance to persist, so it runs immediately.
  flush_backoff_until_ = 0;
  merge_backoff_until_ = 0;
}

Status Table::MaintainNow() {
  const Timestamp now = clock_->Now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) return Status::OK();  // Shutdown owns the final flush.
    std::vector<std::shared_ptr<MemTablet>> aged;
    for (const auto& [start, mt] : filling_) {
      if (now - mt->created_at() >= opts_.max_memtablet_age) aged.push_back(mt);
    }
    for (const auto& mt : aged) SealLocked(mt);
  }
  Status flush_status;
  while (true) {
    uint64_t root = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closing_) break;
      if (sealed_.empty()) break;
      if (clock_->Now() < flush_backoff_until_) break;  // Retry later.
      root = sealed_.front()->id();
    }
    flush_status = FlushSet({root});
    if (!flush_status.ok()) break;
  }
  // A failed flush must not starve the rest of maintenance: merging and TTL
  // reclamation still run (reclamation in particular frees the disk space a
  // full disk needs before the flush retry can succeed).
  Status merge_status = MaybeMerge(now);
  Status ttl_status;
  if (ttl() > 0) ttl_status = ReclaimExpired(now);
  LT_RETURN_IF_ERROR(flush_status);
  LT_RETURN_IF_ERROR(merge_status);
  return ttl_status;
}

bool Table::HasMaintenanceWork() {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (!sealed_.empty()) return true;
  for (const auto& [start, mt] : filling_) {
    if (now - mt->created_at() >= opts_.max_memtablet_age) return true;
  }
  if (PickMerge(tablets_, now, name_, opts_.merge).valid()) return true;
  if (ttl_ > 0) {
    Timestamp cutoff = ExpiryCutoffLocked(now);
    for (const TabletMeta& m : tablets_) {
      if (m.max_ts < cutoff) return true;
    }
  }
  return false;
}

Status Table::MaybeMerge(Timestamp now) {
  const Timestamp op_start = MonotonicMicros();
  std::lock_guard<std::mutex> merge_lock(merge_mu_);
  std::vector<TabletMeta> inputs;
  std::vector<std::shared_ptr<TabletReader>> input_readers;
  std::shared_ptr<const Schema> schema;
  Timestamp cutoff;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_) return Status::OK();
    if (now < merge_backoff_until_) return Status::OK();  // Retry later.
    MergePick pick = PickMerge(tablets_, now, name_, opts_.merge);
    if (!pick.valid()) return Status::OK();
    for (size_t i = pick.begin; i < pick.end; i++) {
      auto it = readers_.find(tablets_[i].filename);
      if (it == readers_.end()) {
        return Status::Aborted("merge input reader missing");
      }
      inputs.push_back(tablets_[i]);
      input_readers.push_back(it->second);
    }
    schema = schema_;
    cutoff = ExpiryCutoffLocked(now);
  }

  std::string fname;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fname = TabletFileName(next_file_seq_++);
  }
  TabletWriterOptions wopts;
  wopts.block_bytes = opts_.block_bytes;
  wopts.bloom_bits_per_key = opts_.bloom_bits_per_key;
  wopts.sync = true;
  // Merges always rewrite at the latest format: they are the upgrade path
  // that converges a mixed-version table onto columnar blocks over time.
  wopts.format_version = kTabletFormatLatest;
  wopts.stats = &stats_;
  TabletWriter writer(env_, TabletPath(fname), schema.get(), wopts);

  // Single-pass merge-sort of the inputs (§3.4.1). Rows already past the
  // TTL are dropped rather than rewritten.
  std::vector<std::unique_ptr<Cursor>> cursors;
  QueryBounds everything;
  for (size_t i = 0; i < input_readers.size(); i++) {
    std::unique_ptr<Cursor> c;
    Status s = input_readers[i]->NewCursor(everything, schema.get(), nullptr,
                                           &c);
    if (!s.ok()) {
      writer.Abandon();
      if (ShouldQuarantine(s)) {
        // An unreadable input must not wedge maintenance forever: quarantine
        // it and report success; the next pass re-picks without it.
        std::lock_guard<std::mutex> lock(mu_);
        QuarantineTabletLocked(inputs[i].filename, s);
        return Status::OK();
      }
      std::lock_guard<std::mutex> lock(mu_);
      RecordMergeFailureLocked(clock_->Now());
      return s;
    }
    cursors.push_back(std::move(c));
  }
  // Any failure from here on abandons the partial output, backs off, and
  // leaves the inputs untouched: a merge is pure rewrite, so failing it
  // loses nothing — the next attempt re-picks the same inputs.
  MergingCursor merged(schema.get(), std::move(cursors), Direction::kAscending);
  Status ws;
  while (merged.Valid()) {
    const Row& row = merged.row();
    if (row[schema->ts_index()].AsInt() >= cutoff) {
      ws = writer.Add(row);
      if (!ws.ok()) break;
    }
    ws = merged.Next();
    if (!ws.ok()) break;
  }

  TabletMeta out_meta;
  bool have_output = ws.ok() && writer.rows_added() > 0;
  if (have_output) {
    ws = writer.Finish(&out_meta);
    out_meta.filename = fname;
    out_meta.flushed_at = now;
  }
  if (!ws.ok() || !have_output) writer.Abandon();
  if (!ws.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    RecordMergeFailureLocked(clock_->Now());
    return ws;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    // Commit durably before mutating in-memory state: open the output
    // reader and write the descriptor first, so a failure at either step
    // rolls back to exactly the pre-merge picture (inputs still live).
    std::shared_ptr<TabletReader> out_reader;
    if (have_output) {
      Status s = TabletReader::Open(env_, TabletPath(fname), &out_reader,
                                    opts_.block_cache, &stats_);
      if (!s.ok()) {
        env_->RemoveFile(TabletPath(fname));
        RecordMergeFailureLocked(clock_->Now());
        return s;
      }
    }
    std::set<std::string> gone;
    for (const TabletMeta& m : inputs) gone.insert(m.filename);
    std::vector<TabletMeta> next;
    next.reserve(tablets_.size());
    for (const TabletMeta& m : tablets_) {
      if (!gone.count(m.filename)) next.push_back(m);
    }
    if (have_output) next.push_back(out_meta);
    SortMetas(&next);
    Status s = SaveDescriptorWithLocked(next);
    if (!s.ok()) {
      if (have_output) env_->RemoveFile(TabletPath(fname));
      RecordMergeFailureLocked(clock_->Now());
      return s;
    }
    tablets_ = std::move(next);
    if (have_output) readers_[fname] = std::move(out_reader);
    for (const std::string& f : gone) readers_.erase(f);
    stats_.merges.fetch_add(1);
    stats_.tablets_merged.fetch_add(inputs.size());
    if (have_output) stats_.bytes_merge_written.fetch_add(out_meta.file_bytes);
    merge_failure_streak_ = 0;
    merge_backoff_until_ = 0;
  }
  // The descriptor no longer references the inputs; a crash here merely
  // leaves orphaned files that the next Open sweeps away.
  LT_CRASH_POINT("merge:after_commit");
  for (const TabletMeta& m : inputs) env_->RemoveFile(TabletPath(m.filename));
  stats_.merge_micros.Record(
      static_cast<uint64_t>(MonotonicMicros() - op_start));
  return Status::OK();
}

Status Table::ReclaimExpired(Timestamp now) {
  std::vector<std::string> doomed;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Timestamp cutoff = ExpiryCutoffLocked(now);
    for (const TabletMeta& m : tablets_) {
      if (m.max_ts < cutoff) doomed.push_back(m.filename);
    }
    if (doomed.empty()) return Status::OK();
    std::vector<TabletMeta> keep;
    keep.reserve(tablets_.size() - doomed.size());
    for (TabletMeta& m : tablets_) {
      if (m.max_ts >= cutoff) keep.push_back(std::move(m));
    }
    tablets_ = std::move(keep);
    LT_RETURN_IF_ERROR(SaveDescriptorLocked());
    for (const std::string& f : doomed) readers_.erase(f);
    stats_.tablets_expired.fetch_add(doomed.size());
  }
  for (const std::string& f : doomed) env_->RemoveFile(TabletPath(f));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Queries.

Status Table::NewQueryStream(const QueryBounds& user_bounds,
                             std::unique_ptr<QueryStream>* out,
                             QueryTrace* trace) {
  out->reset();
  stats_.queries.fetch_add(1);

  std::unique_ptr<QueryStream> qs(new QueryStream());
  qs->table_ = this;
  // Trace even when the caller doesn't ask for one: the slow-query log
  // needs the counts.
  qs->trace_ = trace != nullptr ? trace : &qs->local_trace_;
  QueryTrace* tr = qs->trace_;
  qs->op_start_ = MonotonicMicros();

  const Timestamp now = clock_->Now();
  QueryBounds bounds = user_bounds;

  std::shared_ptr<const Schema> schema;
  {
    std::lock_guard<std::mutex> lock(mu_);
    schema = schema_;
  }
  for (uint32_t c : bounds.projection) {
    if (c >= schema->num_columns()) {
      return Status::InvalidArgument("projection column index out of range");
    }
  }
  std::vector<std::shared_ptr<TabletReader>> disk;
  std::vector<std::vector<Row>> mem_snapshots;
  {
    std::lock_guard<std::mutex> lock(mu_);
    schema = schema_;
    // TTL is just a tighter lower timestamp bound (§3.3).
    Timestamp cutoff = ExpiryCutoffLocked(now);
    if (cutoff > bounds.min_ts) {
      bounds.min_ts = cutoff;
      bounds.min_ts_inclusive = true;
    }
    std::vector<std::pair<std::string, Status>> doomed;
    for (const TabletMeta& m : tablets_) {
      tr->tablets_considered++;
      if (!bounds.TsOverlaps(m.min_ts, m.max_ts)) {
        tr->tablets_pruned_time++;
        continue;
      }
      auto it = readers_.find(m.filename);
      if (it == readers_.end()) {
        return Status::Aborted("internal: no reader for tablet " + m.filename);
      }
      const auto& reader = it->second;
      Status ls = reader->Load();
      if (!ls.ok()) {
        if (!ShouldQuarantine(ls)) return ls;
        // Unreadable tablet: quarantine it and serve the rest (§2.3.4 —
        // persisted data stays recoverable; one bad file must not take the
        // whole table down).
        doomed.emplace_back(m.filename, std::move(ls));
        continue;
      }
      if (reader->row_count() == 0) continue;
      // Key-range pruning from cached footer min/max keys.
      if (bounds.min_key) {
        int c = schema->CompareKeyToPrefix(reader->max_key(),
                                           bounds.min_key->prefix);
        if (bounds.min_key->inclusive ? c < 0 : c <= 0) {
          tr->tablets_pruned_key++;
          continue;
        }
      }
      if (bounds.max_key) {
        int c = schema->CompareKeyToPrefix(reader->min_key(),
                                           bounds.max_key->prefix);
        if (bounds.max_key->inclusive ? c > 0 : c >= 0) {
          tr->tablets_pruned_key++;
          continue;
        }
      }
      disk.push_back(reader);
    }
    auto snap = [&](const std::shared_ptr<MemTablet>& mt) {
      if (mt->empty()) return;
      if (!bounds.TsOverlaps(mt->min_ts(), mt->max_ts())) return;
      std::vector<Row> rows;
      mt->Snapshot(bounds, &rows);
      if (!rows.empty()) mem_snapshots.push_back(std::move(rows));
    };
    for (const auto& [start, mt] : filling_) snap(mt);
    for (const auto& mt : sealed_) snap(mt);
    for (const auto& [fname, why] : doomed) QuarantineTabletLocked(fname, why);
  }

  uint64_t limit = opts_.server_row_limit > 0
                       ? opts_.server_row_limit
                       : std::numeric_limits<uint64_t>::max();
  if (bounds.limit > 0 && bounds.limit < limit) limit = bounds.limit;

  std::vector<std::unique_ptr<Cursor>> cursors;
  cursors.reserve(disk.size() + mem_snapshots.size());
  for (const auto& reader : disk) {
    std::unique_ptr<Cursor> c;
    LT_RETURN_IF_ERROR(
        reader->NewCursor(bounds, schema.get(), &qs->scanned_, &c, tr));
    cursors.push_back(std::move(c));
  }
  for (auto& rows : mem_snapshots) {
    qs->scanned_.fetch_add(rows.size());
    cursors.push_back(
        std::make_unique<VectorCursor>(std::move(rows), bounds.direction));
  }

  auto merged = std::make_unique<MergingCursor>(
      schema.get(), std::move(cursors), bounds.direction);
  LT_RETURN_IF_ERROR(merged->status());

  qs->schema_ = std::move(schema);
  qs->bounds_ = std::move(bounds);
  qs->limit_ = limit;
  qs->readers_ = std::move(disk);  // Cursors reference them; keep alive.
  qs->merged_ = std::move(merged);
  qs->finished_ = false;  // Fully constructed: Finish now records stats.
  *out = std::move(qs);
  return Status::OK();
}

QueryStream::~QueryStream() { Finish(); }

Status QueryStream::Next(uint64_t max_scan_rows, Row* row, bool* have_row,
                         bool* exhausted) {
  *have_row = false;
  *exhausted = false;
  if (done_) {
    *exhausted = true;
    return Status::OK();
  }
  uint64_t steps = 0;
  while (merged_->Valid()) {
    const Row& r = merged_->row();
    bool match = bounds_.TsInRange(r[schema_->ts_index()].AsInt());
    if (match && returned_ >= limit_) {
      // The limit+1'th matching row proves there is more: stop without
      // consuming it so a continuation query re-finds it.
      more_available_ = true;
      done_ = true;
      *exhausted = true;
      return Status::OK();
    }
    if (match) *row = r;
    LT_RETURN_IF_ERROR(merged_->Next());
    LT_RETURN_IF_ERROR(merged_->status());
    if (match) {
      returned_++;
      *have_row = true;
      return Status::OK();
    }
    if (max_scan_rows > 0 && ++steps >= max_scan_rows) return Status::OK();
  }
  done_ = true;
  *exhausted = true;
  return merged_->status();
}

void QueryStream::Finish() {
  if (finished_) return;
  finished_ = true;
  const uint64_t scanned = scanned_.load();
  Table* t = table_;
  t->stats_.rows_scanned.fetch_add(scanned);
  t->stats_.rows_returned.fetch_add(returned_);

  const int64_t elapsed = MonotonicMicros() - op_start_;
  trace_->rows_scanned += scanned;
  trace_->rows_returned += returned_;
  trace_->elapsed_micros += elapsed;
  t->stats_.query_micros.Record(static_cast<uint64_t>(elapsed));
  if (t->opts_.slow_query_micros > 0 &&
      elapsed >= t->opts_.slow_query_micros) {
    t->opts_.logger->Warn(
        "slow_query",
        {{"table", t->name_},
         {"elapsed_us", elapsed},
         {"rows_scanned", scanned},
         {"rows_returned", returned_},
         {"tablets_considered", trace_->tablets_considered},
         {"tablets_pruned", trace_->TabletsPruned()},
         {"blocks_read", trace_->blocks_read},
         {"cache_hits", trace_->cache_hits}});
  }
}

Status Table::Query(const QueryBounds& user_bounds, QueryResult* result,
                    QueryTrace* trace) {
  result->rows.clear();
  result->more_available = false;
  result->rows_scanned = 0;

  std::unique_ptr<QueryStream> qs;
  LT_RETURN_IF_ERROR(NewQueryStream(user_bounds, &qs, trace));
  Row row;
  bool have_row = false, exhausted = false;
  while (!exhausted) {
    LT_RETURN_IF_ERROR(qs->Next(0, &row, &have_row, &exhausted));
    if (have_row) result->rows.push_back(std::move(row));
  }
  result->more_available = qs->more_available();
  result->rows_scanned = qs->rows_scanned();
  qs->Finish();
  return Status::OK();
}

Status Table::LatestRowForPrefix(const Key& prefix, Row* row, bool* found) {
  *found = false;
  const Timestamp op_start = MonotonicMicros();
  const Timestamp now = clock_->Now();

  struct Source {
    Timestamp min_ts, max_ts;
    std::shared_ptr<TabletReader> reader;  // Null for in-memory snapshots.
    std::vector<Row> rows;
    std::string filename;  // Set for disk sources (quarantine target).
  };
  std::vector<Source> sources;
  std::shared_ptr<const Schema> schema;
  Timestamp cutoff;
  QueryBounds prefix_bounds = QueryBounds::ForPrefix(prefix);
  prefix_bounds.direction = Direction::kDescending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    schema = schema_;
    cutoff = ExpiryCutoffLocked(now);
    for (const TabletMeta& m : tablets_) {
      if (m.row_count == 0 || m.max_ts < cutoff) continue;
      auto it = readers_.find(m.filename);
      if (it == readers_.end()) {
        return Status::Aborted("internal: no reader for tablet " + m.filename);
      }
      sources.push_back(Source{m.min_ts, m.max_ts, it->second, {}, m.filename});
    }
    auto snap = [&](const std::shared_ptr<MemTablet>& mt) {
      if (mt->empty() || mt->max_ts() < cutoff) return;
      std::vector<Row> rows;
      mt->Snapshot(prefix_bounds, &rows);
      if (!rows.empty()) {
        sources.push_back(Source{mt->min_ts(), mt->max_ts(), nullptr,
                                 std::move(rows)});
      }
    };
    for (const auto& [start, mt] : filling_) snap(mt);
    for (const auto& mt : sealed_) snap(mt);
  }
  if (sources.empty()) return Status::OK();

  std::sort(sources.begin(), sources.end(), [](const Source& a, const Source& b) {
    return a.min_ts < b.min_ts;
  });

  // Group sources with overlapping timespans (§3.4.5): groups are disjoint
  // in time, so the first (newest) group containing a match holds the
  // global latest row.
  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end)
  size_t begin = 0;
  Timestamp group_max = sources[0].max_ts;
  for (size_t i = 1; i < sources.size(); i++) {
    if (sources[i].min_ts > group_max) {
      groups.emplace_back(begin, i);
      begin = i;
      group_max = sources[i].max_ts;
    } else {
      group_max = std::max(group_max, sources[i].max_ts);
    }
  }
  groups.emplace_back(begin, sources.size());

  const bool prefix_is_all_but_ts =
      prefix.size() + 1 == schema->num_key_columns();

  for (auto git = groups.rbegin(); git != groups.rend(); ++git) {
    std::vector<std::unique_ptr<Cursor>> cursors;
    for (size_t i = git->first; i < git->second; i++) {
      Source& src = sources[i];
      if (src.reader) {
        Status ls = src.reader->Load();
        if (!ls.ok()) {
          if (!ShouldQuarantine(ls)) return ls;
          // Unreadable tablet: drop it and keep searching the remaining
          // sources; it can no longer contribute a latest row.
          std::lock_guard<std::mutex> lock(mu_);
          QuarantineTabletLocked(src.filename, ls);
          continue;
        }
        stats_.bloom_tablet_probes.fetch_add(1);
        if (!src.reader->MayContainPrefix(prefix)) {
          stats_.bloom_tablet_skips.fetch_add(1);
          continue;
        }
        std::unique_ptr<Cursor> c;
        LT_RETURN_IF_ERROR(src.reader->NewCursor(
            prefix_bounds, schema.get(), &stats_.rows_scanned, &c));
        cursors.push_back(std::move(c));
      } else {
        stats_.rows_scanned.fetch_add(src.rows.size());
        cursors.push_back(std::make_unique<VectorCursor>(
            std::move(src.rows), Direction::kDescending));
      }
    }
    if (cursors.empty()) continue;
    MergingCursor merged(schema.get(), std::move(cursors),
                         Direction::kDescending);
    LT_RETURN_IF_ERROR(merged.status());

    bool have_best = false;
    Row best;
    Timestamp best_ts = 0;
    while (merged.Valid()) {
      const Row& r = merged.row();
      Timestamp ts = r[schema->ts_index()].AsInt();
      if (ts >= cutoff) {
        if (!have_best || ts > best_ts) {
          best = r;
          best_ts = ts;
          have_best = true;
        }
        // With the full key (minus ts) pinned, descending key order is
        // descending timestamp order, so the first hit is the latest.
        if (prefix_is_all_but_ts) break;
      }
      LT_RETURN_IF_ERROR(merged.Next());
    }
    if (have_best) {
      *row = std::move(best);
      *found = true;
      stats_.rows_returned.fetch_add(1);
      break;
    }
  }
  stats_.query_micros.Record(
      static_cast<uint64_t>(MonotonicMicros() - op_start));
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Schema evolution.

Status Table::AppendColumn(const Column& column) {
  std::lock_guard<std::mutex> insert_lock(insert_mu_);
  LT_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lock(mu_);
  Result<Schema> next = schema_->WithAppendedColumn(column);
  if (!next.ok()) return next.status();
  schema_ = std::make_shared<const Schema>(std::move(*next));
  return SaveDescriptorLocked();
}

Status Table::WidenColumn(const std::string& column_name) {
  std::lock_guard<std::mutex> insert_lock(insert_mu_);
  LT_RETURN_IF_ERROR(FlushAll());
  std::lock_guard<std::mutex> lock(mu_);
  Result<Schema> next = schema_->WithWidenedColumn(column_name);
  if (!next.ok()) return next.status();
  schema_ = std::make_shared<const Schema>(std::move(*next));
  return SaveDescriptorLocked();
}

Status Table::SetTtl(Timestamp ttl) {
  if (ttl < 0) return Status::InvalidArgument("negative TTL");
  std::lock_guard<std::mutex> lock(mu_);
  ttl_ = ttl;
  return SaveDescriptorLocked();
}

// ---------------------------------------------------------------------------
// Introspection.

size_t Table::NumDiskTablets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tablets_.size();
}

size_t Table::NumMemTablets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filling_.size() + sealed_.size();
}

uint64_t Table::DiskBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const TabletMeta& m : tablets_) total += m.file_bytes;
  return total;
}

uint64_t Table::ApproxMemBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [start, mt] : filling_) total += mt->ApproximateBytes();
  for (const auto& mt : sealed_) total += mt->ApproximateBytes();
  return total;
}

std::vector<TabletMeta> Table::DiskTablets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tablets_;
}

}  // namespace lt
