// Typed cell values and the column type system (§3.1, §3.5).
//
// LittleTable supports 32- and 64-bit integers, double-precision floats,
// timestamps, variable-length strings, and byte arrays (blobs). There are no
// NULLs: every column has a default, and applications that need a sentinel
// use one explicitly (the paper's example is -1).
#ifndef LITTLETABLE_CORE_VALUE_H_
#define LITTLETABLE_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/clock.h"
#include "util/slice.h"
#include "util/status.h"

namespace lt {

/// Column types. kTimestamp is distinct from kInt64 so schema validation can
/// require the final primary-key column to be a timestamp named "ts".
enum class ColumnType : uint8_t {
  kInt32 = 1,
  kInt64 = 2,
  kDouble = 3,
  kTimestamp = 4,
  kString = 5,
  kBlob = 6,
};

const char* ColumnTypeName(ColumnType t);
Status ColumnTypeFromName(const std::string& name, ColumnType* out);

/// A single typed cell. The stored representation is one of int32, int64,
/// double, or string; timestamps ride in the int64 arm and blobs in the
/// string arm, with the column's declared type disambiguating.
class Value {
 public:
  Value() : v_(int64_t{0}) {}
  static Value Int32(int32_t v) { return Value(v); }
  static Value Int64(int64_t v) { return Value(v); }
  static Value Double(double v) { return Value(v); }
  static Value Ts(Timestamp t) { return Value(static_cast<int64_t>(t)); }
  static Value String(std::string s) { return Value(std::move(s)); }
  static Value Blob(std::string s) { return Value(std::move(s)); }

  bool is_i32() const { return std::holds_alternative<int32_t>(v_); }
  bool is_i64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_bytes() const { return std::holds_alternative<std::string>(v_); }

  int32_t i32() const { return std::get<int32_t>(v_); }
  int64_t i64() const { return std::get<int64_t>(v_); }
  double dbl() const { return std::get<double>(v_); }
  const std::string& bytes() const { return std::get<std::string>(v_); }

  /// The value as an integer regardless of 32/64 storage (for timestamps and
  /// widening reads); requires an integer arm.
  int64_t AsInt() const { return is_i32() ? i32() : i64(); }

  /// True if this runtime representation is valid for a declared type.
  bool MatchesType(ColumnType t) const;

  /// Three-way comparison; both values must match the same column type.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  /// Debug/SQL rendering.
  std::string ToString(ColumnType t) const;

 private:
  explicit Value(int32_t v) : v_(v) {}
  explicit Value(int64_t v) : v_(v) {}
  explicit Value(double v) : v_(v) {}
  explicit Value(std::string v) : v_(std::move(v)) {}

  std::variant<int32_t, int64_t, double, std::string> v_;
};

/// A row is a vector of cells in schema column order; a key is the vector of
/// primary-key cells (a prefix of the row, by construction of the schema).
using Row = std::vector<Value>;
using Key = std::vector<Value>;

/// Appends the encoding of `v` (as type `t`) to `dst`. Integers and
/// timestamps are zigzag varints, doubles are fixed64 bit patterns, strings
/// and blobs are length-prefixed.
void EncodeValue(std::string* dst, const Value& v, ColumnType t);

/// Decodes one value of type `t`, consuming from `input`.
Status DecodeValue(Slice* input, ColumnType t, Value* out);

/// Returns the default value for a column type (0 / 0.0 / epoch / empty).
Value DefaultValueFor(ColumnType t);

}  // namespace lt

#endif  // LITTLETABLE_CORE_VALUE_H_
