// Query bounds: every LittleTable query is an ordered scan of the rows
// inside a two-dimensional bounding box (§3.1) — primary keys or prefixes
// thereof in one dimension, timestamps in the other. Bounds may be inclusive
// or exclusive; results stream in ascending or descending key order with an
// optional row limit.
#ifndef LITTLETABLE_CORE_BOUNDS_H_
#define LITTLETABLE_CORE_BOUNDS_H_

#include <cstdint>
#include <limits>
#include <optional>

#include "core/schema.h"
#include "util/clock.h"

namespace lt {

enum class Direction : uint8_t { kAscending = 0, kDescending = 1 };

/// One end of the key dimension: a (possibly partial) key prefix plus
/// inclusivity. An absent bound is unbounded on that side.
struct KeyBound {
  Key prefix;
  bool inclusive = true;
};

/// The 2-D bounding box plus scan direction and limit.
struct QueryBounds {
  std::optional<KeyBound> min_key;
  std::optional<KeyBound> max_key;
  /// Timestamp range; defaults cover all time. Inclusive flags apply to the
  /// respective endpoint.
  Timestamp min_ts = std::numeric_limits<Timestamp>::min();
  Timestamp max_ts = std::numeric_limits<Timestamp>::max();
  bool min_ts_inclusive = true;
  bool max_ts_inclusive = true;
  Direction direction = Direction::kAscending;
  /// 0 = unlimited (the server still applies its own cap, §3.5).
  uint64_t limit = 0;

  /// Column indexes (into the current schema) the caller will read; empty
  /// means all columns. A decode hint, not a result shape: rows keep every
  /// column, but cells outside the projection may carry the column's
  /// default value instead of the stored one — columnar (format 2) tablets
  /// skip decoding those chunks entirely, which is where wide-row scans win
  /// (rows still in memory, or in row-wise tablets, keep their real
  /// values). Key columns are always materialized regardless.
  std::vector<uint32_t> projection;

  /// Convenience: both key bounds set to the same prefix (rows beginning
  /// with that prefix), i.e. the Figure 1 "rectangle" key range.
  static QueryBounds ForPrefix(Key prefix) {
    QueryBounds b;
    b.min_key = KeyBound{prefix, true};
    b.max_key = KeyBound{std::move(prefix), true};
    return b;
  }

  /// True if `ts` satisfies the timestamp dimension.
  bool TsInRange(Timestamp ts) const {
    if (min_ts_inclusive ? ts < min_ts : ts <= min_ts) return false;
    if (max_ts_inclusive ? ts > max_ts : ts >= max_ts) return false;
    return true;
  }

  /// True if the timespan [lo, hi] could contain matching timestamps
  /// (tablet-selection test, §3.2).
  bool TsOverlaps(Timestamp lo, Timestamp hi) const {
    if (min_ts_inclusive ? hi < min_ts : hi <= min_ts) return false;
    if (max_ts_inclusive ? lo > max_ts : lo >= max_ts) return false;
    return true;
  }

  /// True if a row's key columns satisfy the key dimension.
  bool KeyInRange(const Schema& schema, const Row& row) const {
    if (min_key) {
      int c = schema.CompareKeyToPrefix(row, min_key->prefix);
      if (min_key->inclusive ? c < 0 : c <= 0) return false;
    }
    if (max_key) {
      int c = schema.CompareKeyToPrefix(row, max_key->prefix);
      if (max_key->inclusive ? c > 0 : c >= 0) return false;
    }
    return true;
  }

  /// Full membership test (both dimensions). The timestamp checked is the
  /// row's ts key column.
  bool Matches(const Schema& schema, const Row& row) const {
    return TsInRange(row[schema.ts_index()].AsInt()) &&
           KeyInRange(schema, row);
  }
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_BOUNDS_H_
