// TabletMeta: what the table descriptor records about each on-disk tablet
// (§3.2): its file, its timespan, and enough statistics for the flush,
// merge, and TTL policies to run without touching the file itself.
#ifndef LITTLETABLE_CORE_TABLET_META_H_
#define LITTLETABLE_CORE_TABLET_META_H_

#include <cstdint>
#include <string>

#include "util/clock.h"

namespace lt {

struct TabletMeta {
  /// File name within the table directory (e.g. "000042.tab").
  std::string filename;
  /// Timespan: min and max row timestamps in the tablet (inclusive).
  Timestamp min_ts = 0;
  Timestamp max_ts = 0;
  uint64_t file_bytes = 0;
  uint64_t row_count = 0;
  /// Wall-clock time the tablet was written; drives the pseudorandom merge
  /// delay at period rollover (§3.4.2).
  Timestamp flushed_at = 0;
  /// Schema version the rows were encoded under (§3.5).
  uint32_t schema_version = 1;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_TABLET_META_H_
