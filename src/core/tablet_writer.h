// TabletWriter: serializes a sorted row stream into an on-disk tablet file.
//
// File layout (§3.2, §3.5):
//
//   block 0 … block N-1          (see block.h for the per-block framing)
//   footer                       (compressed; see below)
//   trailer (28 bytes):
//     fixed32 masked-CRC32C of the compressed footer
//     fixed64 footer decompressed size     \  the "final two words"
//     fixed64 footer offset in the file    /  the paper describes
//     fixed64 magic                        (encodes the format version)
//
// The footer payload carries the tablet's schema, the block index (last key,
// offset, sizes, row count, and — since format version 1 — a masked CRC32C
// of each stored block), the tablet timespan, min/max keys, and the optional
// Bloom filter over key prefixes (§3.4.5). On average the index is ~0.5% of
// the tablet, so readers cache it in memory indefinitely.
//
// Format versions (distinguished by the trailer magic):
//   0 ("lttab1v1"): no per-block CRC in the index; blocks carry only their
//     in-frame CRC. Still readable — readers verify what is present.
//   1 ("lttab1v2"): each index entry additionally stores the masked CRC32C
//     of the block's stored (framed, compressed) bytes, so a read verifies
//     the block against the checksummed footer before decompressing.
//   2 ("lttab1v3"): blocks are columnar — per-column chunks with
//     type-specialized encodings, each independently compressed or stored
//     raw (see block.h) — and the footer gains a one-byte store-raw marker
//     (0 = raw, 1 = lzmini) ahead of its payload so incompressible footers
//     skip the expansion too. Index entries keep the v1 CRC; payload_len is
//     the uncompressed image size.
//
// Both flushes (§3.4.1) and merges write tablets through this class, always
// as one long sequential write — that is the core of LittleTable's insert
// efficiency on spinning disks.
#ifndef LITTLETABLE_CORE_TABLET_WRITER_H_
#define LITTLETABLE_CORE_TABLET_WRITER_H_

#include <memory>
#include <string>

#include "core/block.h"
#include "core/stats.h"
#include "core/tablet_meta.h"
#include "env/env.h"
#include "util/bloom.h"

namespace lt {

constexpr uint64_t kTabletMagic = 0x6c74746162317631ull;    // "lttab1v1"
constexpr uint64_t kTabletMagicV2 = 0x6c74746162317632ull;  // "lttab1v2"
constexpr uint64_t kTabletMagicV3 = 0x6c74746162317633ull;  // "lttab1v3"
constexpr size_t kTabletTrailerSize = 4 + 8 + 8 + 8;
/// The newest on-disk format version this build writes.
constexpr uint32_t kTabletFormatLatest = 2;

struct TabletWriterOptions {
  /// Uncompressed row bytes per block.
  size_t block_bytes = 64 * 1024;
  /// Bloom filter over key prefixes; <= 0 disables it.
  int bloom_bits_per_key = 10;
  /// Sync the file before Finish returns (flushes must sync before the
  /// descriptor references the tablet).
  bool sync = true;
  /// On-disk format version to emit. Production flushes honor
  /// TableOptions::format_version and merges always write the latest;
  /// tests pin older versions to exercise backward compatibility.
  uint32_t format_version = kTabletFormatLatest;
  /// Optional per-table counters: receives block_bytes_raw/compressed for
  /// the store-raw fallback accounting. Must outlive the writer.
  TableStats* stats = nullptr;
};

class TabletWriter {
 public:
  /// Creates `fname` for writing. `schema` must outlive the writer.
  TabletWriter(Env* env, std::string fname, const Schema* schema,
               TabletWriterOptions options);

  /// Appends a row. Rows must arrive in strictly ascending key order (the
  /// writer checks and rejects regressions — flushes and merges both
  /// produce sorted, duplicate-free streams).
  Status Add(const Row& row);

  uint64_t rows_added() const { return rows_added_; }

  /// Writes the final block, footer, and trailer; syncs and closes. Fills
  /// `meta` (everything except flushed_at, which the caller stamps).
  Status Finish(TabletMeta* meta);

  /// Abandons the file (best effort removal).
  void Abandon();

 private:
  struct IndexEntry {
    std::string last_key;  // Encoded full key of the block's last row.
    uint64_t offset;
    uint32_t stored_len;
    uint32_t payload_len;
    uint32_t row_count;
    uint32_t crc;  // Masked CRC32C of the stored block bytes (format >= 1).
  };

  Status FlushBlock();

  Env* env_;
  std::string fname_;
  const Schema* schema_;
  TabletWriterOptions opts_;
  std::unique_ptr<WritableFile> file_;
  Status open_status_;

  BlockBuilder block_;
  std::vector<IndexEntry> index_;
  BloomFilterBuilder bloom_;
  uint64_t file_offset_ = 0;
  uint64_t rows_added_ = 0;
  Timestamp min_ts_ = 0, max_ts_ = 0;
  std::string min_key_, max_key_;   // Encoded full keys.
  Row last_row_;                    // For ordering checks.
  std::string pending_last_key_;    // Encoded key of last row in open block.
  bool finished_ = false;
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_TABLET_WRITER_H_
