#include "core/cursor.h"

#include <utility>

namespace lt {

MergingCursor::MergingCursor(const Schema* schema,
                             std::vector<std::unique_ptr<Cursor>> children,
                             Direction direction)
    : schema_(schema), children_(std::move(children)), direction_(direction) {
  for (const auto& c : children_) {
    if (!c->status().ok()) {
      status_ = c->status();
      return;
    }
  }
  heap_.reserve(children_.size());
  for (size_t i = 0; i < children_.size(); i++) {
    if (children_[i]->Valid()) heap_.push_back(i);
  }
  // Floyd build-heap: O(N), vs. O(N log N) for N pushes.
  for (size_t i = heap_.size() / 2; i-- > 0;) SiftDown(i);
}

bool MergingCursor::Before(size_t a, size_t b) const {
  int cmp = schema_->CompareKeys(children_[a]->row(), children_[b]->row());
  if (direction_ == Direction::kDescending) cmp = -cmp;
  return cmp < 0;
}

void MergingCursor::SiftDown(size_t i) {
  const size_t n = heap_.size();
  while (true) {
    size_t best = i;
    size_t left = 2 * i + 1, right = 2 * i + 2;
    if (left < n && Before(heap_[left], heap_[best])) best = left;
    if (right < n && Before(heap_[right], heap_[best])) best = right;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void MergingCursor::Fail(Status s) {
  status_ = std::move(s);
  heap_.clear();
}

Status MergingCursor::Next() {
  if (heap_.empty()) return status_;
  Cursor* top = children_[heap_[0]].get();
  Status s = top->Next();
  if (!s.ok()) {
    Fail(s);
    return status_;
  }
  if (!top->status().ok()) {
    Fail(top->status());
    return status_;
  }
  if (top->Valid()) {
    SiftDown(0);  // Re-place the advanced child by its new row.
  } else {
    heap_[0] = heap_.back();  // Exhausted: drop it from the tournament.
    heap_.pop_back();
    if (!heap_.empty()) SiftDown(0);
  }
  return Status::OK();
}

}  // namespace lt
