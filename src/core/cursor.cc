#include "core/cursor.h"

namespace lt {

MergingCursor::MergingCursor(const Schema* schema,
                             std::vector<std::unique_ptr<Cursor>> children,
                             Direction direction)
    : schema_(schema), children_(std::move(children)), direction_(direction) {
  for (const auto& c : children_) {
    if (!c->status().ok()) {
      status_ = c->status();
      return;
    }
  }
  PickCurrent();
}

void MergingCursor::PickCurrent() {
  // Linear scan over children: tablet counts per query are small (half a
  // dozen per period in practice, §3.4.2), so a heap buys little.
  current_ = -1;
  for (size_t i = 0; i < children_.size(); i++) {
    if (!children_[i]->Valid()) continue;
    if (current_ < 0) {
      current_ = static_cast<int>(i);
      continue;
    }
    int cmp = schema_->CompareKeys(children_[i]->row(),
                                   children_[current_]->row());
    if (direction_ == Direction::kDescending) cmp = -cmp;
    if (cmp < 0) current_ = static_cast<int>(i);
  }
}

Status MergingCursor::Next() {
  if (current_ < 0) return status_;
  Status s = children_[current_]->Next();
  if (!s.ok()) {
    status_ = s;
    current_ = -1;
    return s;
  }
  if (!children_[current_]->status().ok()) {
    status_ = children_[current_]->status();
    current_ = -1;
    return status_;
  }
  PickCurrent();
  return Status::OK();
}

}  // namespace lt
