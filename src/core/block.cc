#include "core/block.h"

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/lzmini.h"

namespace lt {

namespace {

// Defensive caps for directory fields. Real blocks hold ~64 kB of row data,
// so both are far above anything a writer produces; they exist to bound
// allocations when a fuzzer (or a disk) hands ParseColumnar garbage.
constexpr uint32_t kMaxBlockRows = 1u << 22;
constexpr uint32_t kMaxBlockColumns = 1u << 12;
constexpr uint32_t kMaxChunkRawLen = 1u << 26;

}  // namespace

void BlockBuilder::Add(const Row& row) {
  offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
  EncodeRow(&buffer_, *schema_, row);
  num_rows_++;
  if (format_version_ < 2) return;

  if (cols_.empty()) {
    cols_.resize(schema_->num_columns());
    for (size_t c = 0; c < cols_.size(); c++) {
      switch (schema_->columns()[c].type) {
        case ColumnType::kInt32:
        case ColumnType::kInt64:
        case ColumnType::kTimestamp:
          cols_[c].arm = ColumnValues::Arm::kInt;
          break;
        case ColumnType::kDouble:
          cols_[c].arm = ColumnValues::Arm::kDouble;
          break;
        case ColumnType::kString:
        case ColumnType::kBlob:
          cols_[c].arm = ColumnValues::Arm::kBytes;
          break;
      }
    }
  }
  for (size_t c = 0; c < cols_.size(); c++) {
    const Value& v = row[c];
    switch (cols_[c].arm) {
      case ColumnValues::Arm::kInt:
        cols_[c].ints.push_back(v.AsInt());
        break;
      case ColumnValues::Arm::kDouble:
        cols_[c].dbls.push_back(v.dbl());
        break;
      case ColumnValues::Arm::kBytes:
        cols_[c].strs.push_back(v.bytes());
        break;
      case ColumnValues::Arm::kNone:
        break;
    }
  }
}

std::string BlockBuilder::Finish() {
  if (format_version_ >= 2) return FinishColumnar();
  for (uint32_t off : offsets_) PutFixed32(&buffer_, off);
  PutFixed32(&buffer_, static_cast<uint32_t>(offsets_.size()));
  std::string out = std::move(buffer_);
  buffer_.clear();
  offsets_.clear();
  num_rows_ = 0;
  return out;
}

std::string BlockBuilder::FinishColumnar() {
  const size_t ncols = cols_.size();
  std::vector<std::string> stored(ncols);
  std::vector<uint8_t> encodings(ncols), markers(ncols);
  std::vector<uint32_t> raw_lens(ncols);
  for (size_t c = 0; c < ncols; c++) {
    std::string chunk;
    switch (cols_[c].arm) {
      case ColumnValues::Arm::kInt: {
        ChunkEncoding enc = ChooseIntEncoding(cols_[c].ints);
        EncodeIntChunk(cols_[c].ints, enc, &chunk);
        encodings[c] = static_cast<uint8_t>(enc);
        break;
      }
      case ColumnValues::Arm::kDouble:
        EncodeDoubleChunk(cols_[c].dbls, &chunk);
        encodings[c] = static_cast<uint8_t>(ChunkEncoding::kXor);
        break;
      case ColumnValues::Arm::kBytes: {
        ChunkEncoding enc = ChooseBytesEncoding(cols_[c].strs);
        EncodeBytesChunk(cols_[c].strs, enc, &chunk);
        encodings[c] = static_cast<uint8_t>(enc);
        break;
      }
      case ColumnValues::Arm::kNone:
        encodings[c] = static_cast<uint8_t>(ChunkEncoding::kZigZag);
        break;
    }
    raw_lens[c] = static_cast<uint32_t>(chunk.size());
    std::string compressed;
    lzmini::Compress(chunk, &compressed);
    if (compressed.size() < chunk.size()) {
      markers[c] = 1;
      bytes_compressed_ += compressed.size();
      stored[c] = std::move(compressed);
    } else {
      markers[c] = 0;
      bytes_raw_ += chunk.size();
      stored[c] = std::move(chunk);
    }
  }

  std::string image;
  PutVarint32(&image, static_cast<uint32_t>(num_rows_));
  PutVarint32(&image, static_cast<uint32_t>(ncols));
  for (size_t c = 0; c < ncols; c++) {
    image.push_back(static_cast<char>(encodings[c]));
    image.push_back(static_cast<char>(markers[c]));
    PutVarint32(&image, static_cast<uint32_t>(stored[c].size()));
    PutVarint32(&image, raw_lens[c]);
  }
  for (size_t c = 0; c < ncols; c++) image += stored[c];

  buffer_.clear();
  offsets_.clear();
  cols_.clear();
  num_rows_ = 0;
  return image;
}

Status BlockContents::Parse(std::string in, BlockContents* out) {
  if (in.size() < 4) return Status::Corruption("block too small");
  uint32_t count = DecodeFixed32(in.data() + in.size() - 4);
  uint64_t trailer = 4ull + 4ull * count;
  if (trailer > in.size()) {
    return Status::Corruption("block row count exceeds payload");
  }
  out->payload = std::move(in);
  out->data_end = out->payload.size() - trailer;
  out->offsets.resize(count);
  const char* p = out->payload.data() + out->data_end;
  for (uint32_t i = 0; i < count; i++) {
    out->offsets[i] = DecodeFixed32(p + 4ull * i);
    if (out->offsets[i] > out->data_end ||
        (i > 0 && out->offsets[i] < out->offsets[i - 1])) {
      return Status::Corruption("block offsets not monotone");
    }
  }
  return Status::OK();
}

Status BlockContents::ParseColumnar(std::string image, BlockContents* out) {
  Slice in(image);
  uint32_t nrows, ncols;
  if (!GetVarint32(&in, &nrows) || !GetVarint32(&in, &ncols)) {
    return Status::Corruption("columnar block header truncated");
  }
  if (nrows > kMaxBlockRows || ncols > kMaxBlockColumns) {
    return Status::Corruption("columnar block header out of range");
  }
  std::vector<ChunkRef> chunks;
  chunks.reserve(ncols);
  uint64_t total_stored = 0;
  size_t decoded_bound = 0;  // Upper bound on fully materialized columns.
  for (uint32_t c = 0; c < ncols; c++) {
    if (in.size() < 2) return Status::Corruption("chunk directory truncated");
    ChunkRef ref;
    ref.encoding = static_cast<uint8_t>(in[0]);
    ref.compression = static_cast<uint8_t>(in[1]);
    in.remove_prefix(2);
    if (!IsValidChunkEncoding(ref.encoding)) {
      return Status::Corruption("unknown chunk encoding");
    }
    if (ref.compression > 1) {
      return Status::Corruption("unknown chunk compression marker");
    }
    if (!GetVarint32(&in, &ref.stored_len) ||
        !GetVarint32(&in, &ref.raw_len)) {
      return Status::Corruption("chunk directory truncated");
    }
    if (ref.raw_len > kMaxChunkRawLen || ref.stored_len > kMaxChunkRawLen) {
      return Status::Corruption("chunk length out of range");
    }
    if (ref.compression == 0 && ref.stored_len != ref.raw_len) {
      return Status::Corruption("raw chunk length mismatch");
    }
    total_stored += ref.stored_len;
    decoded_bound += ref.raw_len + 8ull * nrows +
                     (ref.encoding >= static_cast<uint8_t>(ChunkEncoding::kDict)
                          ? sizeof(std::string) * static_cast<size_t>(nrows)
                          : 0);
    chunks.push_back(ref);
  }
  if (total_stored != in.size()) {
    return Status::Corruption("chunk bytes do not cover block image");
  }
  // Assign offsets relative to the image start now that the directory size
  // is known.
  uint32_t offset = static_cast<uint32_t>(in.data() - image.data());
  for (ChunkRef& ref : chunks) {
    ref.offset = offset;
    offset += ref.stored_len;
  }
  out->payload = std::move(image);
  out->columnar = true;
  out->columnar_rows = nrows;
  out->chunks = std::move(chunks);
  out->lazy_ = std::make_unique<LazyCol[]>(ncols);
  out->approx_mem_ = sizeof(*out) + out->payload.capacity() +
                     out->chunks.capacity() * sizeof(ChunkRef) +
                     ncols * sizeof(LazyCol) + decoded_bound;
  return Status::OK();
}

Status BlockContents::EnsureColumn(size_t c, bool* did_decode) const {
  if (did_decode) *did_decode = false;
  if (!columnar || c >= chunks.size()) {
    return Status::InvalidArgument("not a columnar block column");
  }
  LazyCol& lc = lazy_[c];
  int state = lc.state.load(std::memory_order_acquire);
  if (state == 1) return Status::OK();
  if (state == 2) return lc.error;

  std::lock_guard<std::mutex> lock(decode_mu_);
  state = lc.state.load(std::memory_order_relaxed);
  if (state == 1) return Status::OK();
  if (state == 2) return lc.error;

  const ChunkRef& ref = chunks[c];
  Slice raw(payload.data() + ref.offset, ref.stored_len);
  std::string scratch;
  Status s;
  if (ref.compression == 1) {
    s = lzmini::Decompress(raw, &scratch);
    if (s.ok() && scratch.size() != ref.raw_len) {
      s = Status::Corruption("chunk raw length mismatch");
    }
    raw = Slice(scratch);
  }
  if (s.ok()) {
    s = DecodeChunk(raw, static_cast<ChunkEncoding>(ref.encoding),
                    columnar_rows, &lc.values);
  }
  if (s.ok()) {
    if (did_decode) *did_decode = true;
    lc.state.store(1, std::memory_order_release);
    return s;
  }
  lc.error = s;
  lc.state.store(2, std::memory_order_release);
  return s;
}

size_t BlockContents::ApproximateMemoryUsage() const {
  if (columnar) return approx_mem_;
  return sizeof(*this) + payload.capacity() +
         offsets.capacity() * sizeof(uint32_t);
}

Status BlockReader::Parse(const Schema* schema, std::string payload,
                          BlockReader* out) {
  auto contents = std::make_shared<BlockContents>();
  LT_RETURN_IF_ERROR(BlockContents::Parse(std::move(payload), contents.get()));
  out->Reset(schema, std::move(contents));
  return Status::OK();
}

Status BlockReader::ParseColumnar(const Schema* schema, std::string image,
                                  BlockReader* out) {
  auto contents = std::make_shared<BlockContents>();
  LT_RETURN_IF_ERROR(
      BlockContents::ParseColumnar(std::move(image), contents.get()));
  out->Reset(schema, std::move(contents));
  return Status::OK();
}

Status BlockReader::EnsureColumn(size_t c) const {
  bool did_decode = false;
  LT_RETURN_IF_ERROR(contents_->EnsureColumn(c, &did_decode));
  if (did_decode && stats_) {
    stats_->column_chunks_decoded.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status BlockReader::MaterializeValue(size_t c, size_t i, Value* out) const {
  const ColumnValues& col = contents_->column(c);
  if (i >= col.size()) return Status::Corruption("chunk row count mismatch");
  ColumnType type = schema_->columns()[c].type;
  switch (col.arm) {
    case ColumnValues::Arm::kInt: {
      int64_t v = col.ints[i];
      if (type == ColumnType::kInt32) {
        if (v < INT32_MIN || v > INT32_MAX) {
          return Status::Corruption("int32 cell out of range");
        }
        *out = Value::Int32(static_cast<int32_t>(v));
        return Status::OK();
      }
      if (type == ColumnType::kInt64) {
        *out = Value::Int64(v);
        return Status::OK();
      }
      if (type == ColumnType::kTimestamp) {
        *out = Value::Ts(v);
        return Status::OK();
      }
      break;
    }
    case ColumnValues::Arm::kDouble:
      if (type == ColumnType::kDouble) {
        *out = Value::Double(col.dbls[i]);
        return Status::OK();
      }
      break;
    case ColumnValues::Arm::kBytes:
      if (type == ColumnType::kString) {
        *out = Value::String(col.strs[i]);
        return Status::OK();
      }
      if (type == ColumnType::kBlob) {
        *out = Value::Blob(col.strs[i]);
        return Status::OK();
      }
      break;
    case ColumnValues::Arm::kNone:
      break;
  }
  return Status::Corruption("chunk encoding does not match column type");
}

Status BlockReader::RowAt(size_t i, Row* out) const {
  if (!contents_ || i >= contents_->num_rows()) {
    return Status::InvalidArgument("row index");
  }
  const BlockContents& c = *contents_;
  if (!c.columnar) {
    size_t end = i + 1 < c.offsets.size() ? c.offsets[i + 1] : c.data_end;
    Slice in(c.payload.data() + c.offsets[i], end - c.offsets[i]);
    return DecodeRow(&in, *schema_, out);
  }
  if (c.num_columns() != schema_->num_columns()) {
    return Status::Corruption("chunk count does not match schema");
  }
  out->clear();
  out->reserve(c.num_columns());
  for (size_t col = 0; col < c.num_columns(); col++) {
    if (needed_ && !(*needed_)[col]) {
      out->push_back(schema_->columns()[col].default_value);
      continue;
    }
    LT_RETURN_IF_ERROR(EnsureColumn(col));
    Value v;
    LT_RETURN_IF_ERROR(MaterializeValue(col, i, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

Status BlockReader::KeyCompareAt(size_t i, const Key& prefix, int* cmp) const {
  const BlockContents& bc = *contents_;
  *cmp = 0;
  if (bc.columnar) {
    if (bc.num_columns() != schema_->num_columns()) {
      return Status::Corruption("chunk count does not match schema");
    }
    // Only the compared key columns are materialized — a binary search
    // touches no value chunks.
    for (size_t c = 0; c < prefix.size() && c < schema_->num_key_columns();
         c++) {
      LT_RETURN_IF_ERROR(EnsureColumn(c));
      Value v;
      LT_RETURN_IF_ERROR(MaterializeValue(c, i, &v));
      int r = v.Compare(prefix[c]);
      if (r != 0) {
        *cmp = r;
        return Status::OK();
      }
    }
    return Status::OK();
  }
  // Key columns lead the row encoding, so we decode only them.
  size_t end = i + 1 < bc.offsets.size() ? bc.offsets[i + 1] : bc.data_end;
  Slice in(bc.payload.data() + bc.offsets[i], end - bc.offsets[i]);
  for (size_t c = 0; c < prefix.size() && c < schema_->num_key_columns(); c++) {
    Value v;
    LT_RETURN_IF_ERROR(DecodeValue(&in, schema_->columns()[c].type, &v));
    int r = v.Compare(prefix[c]);
    if (r != 0) {
      *cmp = r;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status BlockReader::SeekFirst(const Key& prefix, bool or_equal,
                              size_t* index) const {
  size_t lo = 0, hi = num_rows();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int cmp;
    LT_RETURN_IF_ERROR(KeyCompareAt(mid, prefix, &cmp));
    bool before = or_equal ? cmp < 0 : cmp <= 0;
    if (before) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *index = lo;
  return Status::OK();
}

std::string StoreBlock(const std::string& payload) {
  std::string compressed;
  lzmini::Compress(payload, &compressed);
  std::string out;
  PutFixed32(&out,
             crc32c::Mask(crc32c::Value(compressed.data(), compressed.size())));
  out += compressed;
  return out;
}

Status LoadBlock(const Slice& stored, std::string* payload) {
  Slice in = stored;
  uint32_t masked;
  if (!GetFixed32(&in, &masked)) {
    return Status::Corruption("block frame too small");
  }
  uint32_t expect = crc32c::Unmask(masked);
  uint32_t actual = crc32c::Value(in.data(), in.size());
  if (expect != actual) return Status::Corruption("block checksum mismatch");
  payload->clear();
  return lzmini::Decompress(in, payload);
}

std::string StoreBlockV2(const std::string& image) {
  std::string out;
  PutFixed32(&out, crc32c::Mask(crc32c::Value(image.data(), image.size())));
  out += image;
  return out;
}

Status LoadBlockV2(const Slice& stored, std::string* image) {
  Slice in = stored;
  uint32_t masked;
  if (!GetFixed32(&in, &masked)) {
    return Status::Corruption("block frame too small");
  }
  if (crc32c::Unmask(masked) != crc32c::Value(in.data(), in.size())) {
    return Status::Corruption("block checksum mismatch");
  }
  image->assign(in.data(), in.size());
  return Status::OK();
}

}  // namespace lt
