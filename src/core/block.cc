#include "core/block.h"

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/lzmini.h"

namespace lt {

void BlockBuilder::Add(const Row& row) {
  offsets_.push_back(static_cast<uint32_t>(buffer_.size()));
  EncodeRow(&buffer_, *schema_, row);
}

std::string BlockBuilder::Finish() {
  for (uint32_t off : offsets_) PutFixed32(&buffer_, off);
  PutFixed32(&buffer_, static_cast<uint32_t>(offsets_.size()));
  std::string out = std::move(buffer_);
  buffer_.clear();
  offsets_.clear();
  return out;
}

Status BlockContents::Parse(std::string in, BlockContents* out) {
  if (in.size() < 4) return Status::Corruption("block too small");
  uint32_t count = DecodeFixed32(in.data() + in.size() - 4);
  uint64_t trailer = 4ull + 4ull * count;
  if (trailer > in.size()) {
    return Status::Corruption("block row count exceeds payload");
  }
  out->payload = std::move(in);
  out->data_end = out->payload.size() - trailer;
  out->offsets.resize(count);
  const char* p = out->payload.data() + out->data_end;
  for (uint32_t i = 0; i < count; i++) {
    out->offsets[i] = DecodeFixed32(p + 4ull * i);
    if (out->offsets[i] > out->data_end ||
        (i > 0 && out->offsets[i] < out->offsets[i - 1])) {
      return Status::Corruption("block offsets not monotone");
    }
  }
  return Status::OK();
}

Status BlockReader::Parse(const Schema* schema, std::string payload,
                          BlockReader* out) {
  auto contents = std::make_shared<BlockContents>();
  LT_RETURN_IF_ERROR(BlockContents::Parse(std::move(payload), contents.get()));
  out->Reset(schema, std::move(contents));
  return Status::OK();
}

Status BlockReader::RowAt(size_t i, Row* out) const {
  if (!contents_ || i >= contents_->offsets.size()) {
    return Status::InvalidArgument("row index");
  }
  const BlockContents& c = *contents_;
  size_t end = i + 1 < c.offsets.size() ? c.offsets[i + 1] : c.data_end;
  Slice in(c.payload.data() + c.offsets[i], end - c.offsets[i]);
  return DecodeRow(&in, *schema_, out);
}

Status BlockReader::KeyCompareAt(size_t i, const Key& prefix, int* cmp) const {
  // Key columns lead the row encoding, so we decode only them.
  const BlockContents& c = *contents_;
  size_t end = i + 1 < c.offsets.size() ? c.offsets[i + 1] : c.data_end;
  Slice in(c.payload.data() + c.offsets[i], end - c.offsets[i]);
  *cmp = 0;
  for (size_t c = 0; c < prefix.size() && c < schema_->num_key_columns(); c++) {
    Value v;
    LT_RETURN_IF_ERROR(DecodeValue(&in, schema_->columns()[c].type, &v));
    int r = v.Compare(prefix[c]);
    if (r != 0) {
      *cmp = r;
      return Status::OK();
    }
  }
  return Status::OK();
}

Status BlockReader::SeekFirst(const Key& prefix, bool or_equal,
                              size_t* index) const {
  size_t lo = 0, hi = num_rows();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int cmp;
    LT_RETURN_IF_ERROR(KeyCompareAt(mid, prefix, &cmp));
    bool before = or_equal ? cmp < 0 : cmp <= 0;
    if (before) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *index = lo;
  return Status::OK();
}

std::string StoreBlock(const std::string& payload) {
  std::string compressed;
  lzmini::Compress(payload, &compressed);
  std::string out;
  PutFixed32(&out,
             crc32c::Mask(crc32c::Value(compressed.data(), compressed.size())));
  out += compressed;
  return out;
}

Status LoadBlock(const Slice& stored, std::string* payload) {
  Slice in = stored;
  uint32_t masked;
  if (!GetFixed32(&in, &masked)) {
    return Status::Corruption("block frame too small");
  }
  uint32_t expect = crc32c::Unmask(masked);
  uint32_t actual = crc32c::Value(in.data(), in.size());
  if (expect != actual) return Status::Corruption("block checksum mismatch");
  payload->clear();
  return lzmini::Decompress(in, payload);
}

}  // namespace lt
