#include "core/descriptor.h"

#include <algorithm>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/fault.h"

namespace lt {
namespace {

constexpr uint64_t kDescriptorMagic = 0x6c746465736331ull;  // "ltdesc1"

}  // namespace

void TableDescriptor::SortTablets() {
  std::sort(tablets.begin(), tablets.end(),
            [](const TabletMeta& a, const TabletMeta& b) {
              if (a.min_ts != b.min_ts) return a.min_ts < b.min_ts;
              if (a.max_ts != b.max_ts) return a.max_ts < b.max_ts;
              return a.filename < b.filename;
            });
}

std::string TableDescriptor::Encode() const {
  std::string body;
  PutFixed64(&body, kDescriptorMagic);
  PutLengthPrefixedSlice(&body, table_name);
  schema.EncodeTo(&body);
  PutVarint64(&body, static_cast<uint64_t>(ttl));
  PutVarint64(&body, next_file_seq);
  PutVarint64(&body, tablets.size());
  for (const TabletMeta& t : tablets) {
    PutLengthPrefixedSlice(&body, t.filename);
    PutVarint64(&body, ZigZagEncode(t.min_ts));
    PutVarint64(&body, ZigZagEncode(t.max_ts));
    PutVarint64(&body, t.file_bytes);
    PutVarint64(&body, t.row_count);
    PutVarint64(&body, ZigZagEncode(t.flushed_at));
    PutVarint32(&body, t.schema_version);
  }
  std::string out = body;
  PutFixed32(&out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  return out;
}

Status TableDescriptor::Decode(const Slice& data, TableDescriptor* out) {
  if (data.size() < 12) return Status::Corruption("descriptor too small");
  Slice body(data.data(), data.size() - 4);
  uint32_t stored_crc = DecodeFixed32(data.data() + data.size() - 4);
  if (crc32c::Unmask(stored_crc) !=
      crc32c::Value(body.data(), body.size())) {
    return Status::Corruption("descriptor checksum mismatch");
  }
  Slice in = body;
  uint64_t magic;
  if (!GetFixed64(&in, &magic) || magic != kDescriptorMagic) {
    return Status::Corruption("bad descriptor magic");
  }
  Slice name;
  if (!GetLengthPrefixedSlice(&in, &name)) {
    return Status::Corruption("bad descriptor name");
  }
  out->table_name = name.ToString();
  LT_RETURN_IF_ERROR(Schema::DecodeFrom(&in, &out->schema));
  uint64_t ttl, ntablets;
  if (!GetVarint64(&in, &ttl) || !GetVarint64(&in, &out->next_file_seq) ||
      !GetVarint64(&in, &ntablets)) {
    return Status::Corruption("bad descriptor header");
  }
  out->ttl = static_cast<Timestamp>(ttl);
  out->tablets.clear();
  out->tablets.reserve(ntablets);
  for (uint64_t i = 0; i < ntablets; i++) {
    TabletMeta t;
    Slice fname;
    uint64_t zz_min, zz_max, zz_flushed;
    if (!GetLengthPrefixedSlice(&in, &fname) || !GetVarint64(&in, &zz_min) ||
        !GetVarint64(&in, &zz_max) || !GetVarint64(&in, &t.file_bytes) ||
        !GetVarint64(&in, &t.row_count) || !GetVarint64(&in, &zz_flushed) ||
        !GetVarint32(&in, &t.schema_version)) {
      return Status::Corruption("bad descriptor tablet entry");
    }
    t.filename = fname.ToString();
    t.min_ts = ZigZagDecode(zz_min);
    t.max_ts = ZigZagDecode(zz_max);
    t.flushed_at = ZigZagDecode(zz_flushed);
    out->tablets.push_back(std::move(t));
  }
  return Status::OK();
}

Status TableDescriptor::Save(Env* env, const std::string& path) const {
  const std::string tmp = path + ".tmp";
  // Crash points bracket the commit protocol: before the tmp write (nothing
  // durable yet) and before the rename (tmp written but not yet the live
  // descriptor). There is deliberately no point *after* the rename inside
  // Save — once the rename succeeds the new descriptor rules, and callers
  // must not roll back files it references.
  LT_CRASH_POINT("descriptor:tmp_write");
  LT_RETURN_IF_ERROR(WriteStringToFile(env, Encode(), tmp, /*sync=*/true));
  LT_CRASH_POINT("descriptor:rename");
  Status s = env->RenameFile(tmp, path);
  if (!s.ok()) env->RemoveFile(tmp);
  return s;
}

Status TableDescriptor::Load(Env* env, const std::string& path,
                             TableDescriptor* out) {
  std::string data;
  LT_RETURN_IF_ERROR(ReadFileToString(env, path, &data));
  return Decode(data, out);
}

}  // namespace lt
