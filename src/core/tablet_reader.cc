#include "core/tablet_reader.h"

#include "core/row_codec.h"
#include "core/tablet_writer.h"  // kTabletMagic, kTabletTrailerSize
#include "util/clock.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/lzmini.h"

namespace lt {

// Cursor over one tablet. Positions lazily load blocks; iteration order is
// the scan direction. The cursor holds a shared_ptr to its reader so merges
// can drop tablets while queries stream from them.
class TabletCursor final : public Cursor {
 public:
  TabletCursor(std::shared_ptr<const TabletReader> reader,
               const QueryBounds& bounds, const Schema* current_schema,
               std::atomic<uint64_t>* scanned, QueryTrace* trace)
      : reader_(std::move(reader)),
        current_schema_(current_schema),
        scanned_(scanned),
        trace_(trace),
        direction_(bounds.direction),
        min_key_(bounds.min_key),
        max_key_(bounds.max_key) {
    needs_translation_ =
        current_schema_->version() != reader_->tablet_schema().version();
    // Projection pushdown: mark the columns row materialization must decode
    // — key columns (timestamp filters, merge ordering, trailing bounds)
    // plus the projected set, positionally stable across schema versions
    // (§3.5 evolution only appends/widens). Projected indexes beyond this
    // tablet's schema are appended columns; TranslateRow fills their
    // defaults. Only columnar blocks consult the hint.
    const Schema& tablet_schema = reader_->tablet_schema();
    if (!bounds.projection.empty()) {
      needed_.assign(tablet_schema.num_columns(), 0);
      for (size_t c = 0; c < tablet_schema.num_key_columns(); c++) {
        needed_[c] = 1;
      }
      for (uint32_t c : bounds.projection) {
        if (c < needed_.size()) needed_[c] = 1;
      }
      for (char n : needed_) {
        if (!n) skipped_per_block_++;
      }
      if (skipped_per_block_ > 0) block_.set_needed_columns(&needed_);
    }
    Seek();
  }

  bool Valid() const override { return valid_; }
  const Row& row() const override { return row_; }
  Status status() const override { return status_; }

  Status Next() override {
    if (!valid_) return status_;
    Advance();
    return status_;
  }

 private:
  void Fail(Status s) {
    status_ = std::move(s);
    valid_ = false;
  }

  // All block loads funnel through here so the projection's skipped-chunk
  // accounting covers every path (seek, advance, lazy row load).
  Status LoadBlockAt(size_t idx) {
    LT_RETURN_IF_ERROR(reader_->ReadBlock(idx, &block_, trace_));
    block_idx_ = idx;
    block_loaded_ = true;
    if (skipped_per_block_ > 0 && block_.columnar()) {
      if (reader_->stats_) {
        reader_->stats_->column_chunks_skipped.fetch_add(
            skipped_per_block_, std::memory_order_relaxed);
      }
      if (trace_) trace_->column_chunks_skipped += skipped_per_block_;
    }
    return Status::OK();
  }

  // Positions at the first row in scan direction within the key bounds.
  void Seek() {
    const size_t nblocks = reader_->num_blocks();
    if (nblocks == 0) return;
    if (direction_ == Direction::kAscending) {
      block_idx_ = 0;
      row_idx_ = 0;
      if (min_key_) {
        block_idx_ = reader_->SeekBlock(min_key_->prefix, min_key_->inclusive);
        if (block_idx_ >= nblocks) return;
        Status s = LoadBlockAt(block_idx_);
        if (!s.ok()) return Fail(s);
        size_t idx;
        s = block_.SeekFirst(min_key_->prefix, min_key_->inclusive, &idx);
        if (!s.ok()) return Fail(s);
        row_idx_ = idx;
        // The index guarantees the block's *last* key satisfies the bound,
        // so idx < num_rows always; be defensive anyway.
        if (row_idx_ >= block_.num_rows()) return;
      }
    } else {
      // Descending: find the position one past the last qualifying row,
      // then step back.
      size_t end_block, end_row;
      if (max_key_) {
        // First row with compare > 0 (inclusive bound) or >= 0 (exclusive).
        bool or_equal_for_end = !max_key_->inclusive;
        end_block = reader_->SeekBlock(max_key_->prefix, or_equal_for_end);
        if (end_block >= nblocks) {
          end_block = nblocks - 1;
          Status s = LoadBlockAt(end_block);
          if (!s.ok()) return Fail(s);
          end_row = block_.num_rows();
        } else {
          Status s = LoadBlockAt(end_block);
          if (!s.ok()) return Fail(s);
          size_t idx;
          s = block_.SeekFirst(max_key_->prefix, or_equal_for_end, &idx);
          if (!s.ok()) return Fail(s);
          end_row = idx;
        }
      } else {
        end_block = nblocks - 1;
        Status s = LoadBlockAt(end_block);
        if (!s.ok()) return Fail(s);
        end_row = block_.num_rows();
      }
      // Step back one row, possibly into the previous block.
      if (end_row == 0) {
        if (block_idx_ == 0) return;  // Nothing before the bound.
        Status s = LoadBlockAt(block_idx_ - 1);
        if (!s.ok()) return Fail(s);
        if (block_.num_rows() == 0) return Fail(Status::Corruption("empty block"));
        row_idx_ = block_.num_rows() - 1;
      } else {
        row_idx_ = end_row - 1;
      }
    }
    LoadCurrentRow();
  }

  // Decodes the row at (block_idx_, row_idx_), applies the trailing key
  // bound, and translates schemas if needed.
  void LoadCurrentRow() {
    if (!block_loaded_) {
      Status s = LoadBlockAt(block_idx_);
      if (!s.ok()) return Fail(s);
    }
    Row raw;
    Status s = block_.RowAt(row_idx_, &raw);
    if (!s.ok()) return Fail(s);
    if (scanned_) scanned_->fetch_add(1, std::memory_order_relaxed);

    // Trailing bound: max_key when ascending, min_key when descending.
    const Schema& ts_schema = reader_->tablet_schema();
    if (direction_ == Direction::kAscending && max_key_) {
      int c = ts_schema.CompareKeyToPrefix(raw, max_key_->prefix);
      if (max_key_->inclusive ? c > 0 : c >= 0) {
        valid_ = false;
        return;
      }
    }
    if (direction_ == Direction::kDescending && min_key_) {
      int c = ts_schema.CompareKeyToPrefix(raw, min_key_->prefix);
      if (min_key_->inclusive ? c < 0 : c <= 0) {
        valid_ = false;
        return;
      }
    }
    row_ = needs_translation_
               ? current_schema_->TranslateRow(ts_schema, raw)
               : std::move(raw);
    valid_ = true;
  }

  void Advance() {
    if (direction_ == Direction::kAscending) {
      row_idx_++;
      if (row_idx_ >= block_.num_rows()) {
        if (block_idx_ + 1 >= reader_->num_blocks()) {
          valid_ = false;
          return;
        }
        Status s = LoadBlockAt(block_idx_ + 1);
        if (!s.ok()) return Fail(s);
        row_idx_ = 0;
      }
    } else {
      if (row_idx_ == 0) {
        if (block_idx_ == 0) {
          valid_ = false;
          return;
        }
        Status s = LoadBlockAt(block_idx_ - 1);
        if (!s.ok()) return Fail(s);
        if (block_.num_rows() == 0) return Fail(Status::Corruption("empty block"));
        row_idx_ = block_.num_rows() - 1;
      } else {
        row_idx_--;
      }
    }
    LoadCurrentRow();
  }

  std::shared_ptr<const TabletReader> reader_;
  const Schema* current_schema_;
  std::atomic<uint64_t>* scanned_;
  QueryTrace* trace_;
  Direction direction_;
  std::optional<KeyBound> min_key_, max_key_;
  bool needs_translation_ = false;
  // Projection: per-tablet-column decode flags (empty = decode all), and
  // how many chunks each columnar block visit skips.
  std::vector<char> needed_;
  uint64_t skipped_per_block_ = 0;

  BlockReader block_;
  bool block_loaded_ = false;
  size_t block_idx_ = 0;
  size_t row_idx_ = 0;
  Row row_;
  bool valid_ = false;
  Status status_;
};

Status TabletReader::Open(Env* env, const std::string& fname,
                          std::shared_ptr<TabletReader>* out,
                          std::shared_ptr<Cache> block_cache,
                          TableStats* stats) {
  std::shared_ptr<TabletReader> reader(new TabletReader());
  reader->env_ = env;
  reader->fname_ = fname;
  reader->block_cache_ = std::move(block_cache);
  if (reader->block_cache_) reader->cache_id_ = reader->block_cache_->NewId();
  reader->stats_ = stats;
  if (!env->FileExists(fname)) return Status::NotFound(fname);
  *out = std::move(reader);
  return Status::OK();
}

Status TabletReader::Load() const {
  std::lock_guard<std::mutex> lock(load_mu_);
  return LoadLocked();
}

Status TabletReader::LoadLocked() const {
  if (loaded_) return load_status_;
  loaded_ = true;
  TabletReader* self = const_cast<TabletReader*>(this);
  load_status_ = env_->NewRandomAccessFile(fname_, &self->file_);
  if (load_status_.ok()) load_status_ = self->LoadFooter(fname_);
  return load_status_;
}

Status TabletReader::LoadFooter(const std::string& fname) {
  uint64_t file_size;
  LT_RETURN_IF_ERROR(file_->Size(&file_size));
  if (file_size < kTabletTrailerSize) {
    return Status::Corruption(fname + ": too small to be a tablet");
  }

  // Trailer read: one seek on a cold tablet.
  char trailer_buf[kTabletTrailerSize];
  Slice trailer;
  LT_RETURN_IF_ERROR(file_->Read(file_size - kTabletTrailerSize,
                                 kTabletTrailerSize, &trailer, trailer_buf));
  if (trailer.size() != kTabletTrailerSize) {
    return Status::Corruption(fname + ": truncated trailer");
  }
  Slice in = trailer;
  uint32_t footer_crc;
  uint64_t footer_size, footer_offset, magic;
  GetFixed32(&in, &footer_crc);
  GetFixed64(&in, &footer_size);
  GetFixed64(&in, &footer_offset);
  GetFixed64(&in, &magic);
  if (magic == kTabletMagic) {
    format_version_ = 0;
  } else if (magic == kTabletMagicV2) {
    format_version_ = 1;
  } else if (magic == kTabletMagicV3) {
    format_version_ = 2;
  } else {
    return Status::Corruption(fname + ": bad magic");
  }
  uint64_t footer_end = file_size - kTabletTrailerSize;
  if (footer_offset > footer_end) {
    return Status::Corruption(fname + ": bad footer offset");
  }

  // Footer read: the second seek.
  size_t stored_len = static_cast<size_t>(footer_end - footer_offset);
  std::string stored_buf(stored_len, '\0');
  Slice stored;
  LT_RETURN_IF_ERROR(
      file_->Read(footer_offset, stored_len, &stored, stored_buf.data()));
  if (stored.size() != stored_len) {
    return Status::Corruption(fname + ": truncated footer");
  }
  if (crc32c::Unmask(footer_crc) !=
      crc32c::Value(stored.data(), stored.size())) {
    return Status::Corruption(fname + ": footer checksum mismatch");
  }
  std::string footer;
  if (format_version_ >= 2) {
    // Format >= 2: a marker byte says whether the body is lzmini or raw
    // (the store-raw fallback for incompressible footers).
    if (stored.empty()) return Status::Corruption(fname + ": empty footer");
    uint8_t marker = static_cast<uint8_t>(stored[0]);
    Slice body(stored.data() + 1, stored.size() - 1);
    if (marker == 1) {
      LT_RETURN_IF_ERROR(lzmini::Decompress(body, &footer));
    } else if (marker == 0) {
      footer.assign(body.data(), body.size());
    } else {
      return Status::Corruption(fname + ": bad footer marker");
    }
  } else {
    LT_RETURN_IF_ERROR(lzmini::Decompress(stored, &footer));
  }
  if (footer.size() != footer_size) {
    return Status::Corruption(fname + ": footer size mismatch");
  }

  Slice f(footer);
  LT_RETURN_IF_ERROR(Schema::DecodeFrom(&f, &schema_));
  uint64_t nblocks;
  if (!GetVarint64(&f, &nblocks) || nblocks > (1ull << 32)) {
    return Status::Corruption(fname + ": bad block count");
  }
  index_.reserve(nblocks);
  for (uint64_t i = 0; i < nblocks; i++) {
    IndexEntry e;
    uint64_t offset;
    uint32_t stored32, payload32, rows32;
    Slice key_enc;
    if (!GetVarint64(&f, &offset) || !GetVarint32(&f, &stored32) ||
        !GetVarint32(&f, &payload32) || !GetVarint32(&f, &rows32) ||
        !GetLengthPrefixedSlice(&f, &key_enc)) {
      return Status::Corruption(fname + ": bad index entry");
    }
    e.offset = offset;
    e.stored_len = stored32;
    e.payload_len = payload32;
    e.row_count = rows32;
    if (format_version_ >= 1 && !GetFixed32(&f, &e.crc)) {
      return Status::Corruption(fname + ": bad index entry crc");
    }
    Slice key_in = key_enc;
    LT_RETURN_IF_ERROR(DecodeKey(&key_in, schema_, &e.last_key));
    index_.push_back(std::move(e));
  }
  uint64_t zz_min, zz_max;
  if (!GetVarint64(&f, &zz_min) || !GetVarint64(&f, &zz_max) ||
      !GetVarint64(&f, &row_count_)) {
    return Status::Corruption(fname + ": bad footer stats");
  }
  min_ts_ = ZigZagDecode(zz_min);
  max_ts_ = ZigZagDecode(zz_max);
  Slice min_key_enc, max_key_enc, bloom_enc;
  if (!GetLengthPrefixedSlice(&f, &min_key_enc) ||
      !GetLengthPrefixedSlice(&f, &max_key_enc) ||
      !GetLengthPrefixedSlice(&f, &bloom_enc)) {
    return Status::Corruption(fname + ": bad footer keys");
  }
  if (row_count_ > 0) {
    Slice kin = min_key_enc;
    LT_RETURN_IF_ERROR(DecodeKey(&kin, schema_, &min_key_));
    kin = max_key_enc;
    LT_RETURN_IF_ERROR(DecodeKey(&kin, schema_, &max_key_));
  }
  if (!bloom_enc.empty()) {
    LT_RETURN_IF_ERROR(BloomFilter::Parse(bloom_enc, &bloom_));
    has_bloom_ = true;
  }
  return Status::OK();
}

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete static_cast<BlockContents*>(value);
}

// Pins a cache entry for as long as any BlockReader (or copy) references the
// contents: the aliasing shared_ptr's deleter releases the handle, which
// keeps the entry alive even if the LRU evicts it meanwhile.
std::shared_ptr<const BlockContents> PinCached(std::shared_ptr<Cache> cache,
                                               Cache::Handle* handle) {
  auto* contents = static_cast<const BlockContents*>(cache->Value(handle));
  return std::shared_ptr<const BlockContents>(
      contents, [c = std::move(cache), handle](const BlockContents*) {
        c->Release(handle);
      });
}

}  // namespace

Status TabletReader::ReadBlock(size_t i, BlockReader* out,
                               QueryTrace* trace) const {
  if (trace) trace->blocks_read++;
  // Cache key: (per-reader id, block index), both fixed64 so keys from
  // different tablets sharing the DB-wide cache can never collide.
  std::string cache_key;
  if (block_cache_) {
    PutFixed64(&cache_key, cache_id_);
    PutFixed64(&cache_key, static_cast<uint64_t>(i));
    Timestamp lookup_start = stats_ ? MonotonicMicros() : 0;
    Cache::Handle* h = block_cache_->Lookup(cache_key);
    if (stats_) {
      stats_->cache_lookup_micros.Record(
          static_cast<uint64_t>(MonotonicMicros() - lookup_start));
    }
    if (h != nullptr) {
      if (stats_) {
        stats_->block_cache_hits.fetch_add(1, std::memory_order_relaxed);
      }
      if (trace) trace->cache_hits++;
      out->Reset(&schema_, PinCached(block_cache_, h), stats_);
      return Status::OK();
    }
  }
  if (stats_) {
    stats_->block_cache_misses.fetch_add(1, std::memory_order_relaxed);
  }
  Timestamp read_start = stats_ ? MonotonicMicros() : 0;

  const IndexEntry& e = index_[i];
  std::string buf(e.stored_len, '\0');
  Slice stored;
  LT_RETURN_IF_ERROR(file_->Read(e.offset, e.stored_len, &stored, buf.data()));
  if (stored.size() != e.stored_len) {
    return Status::Corruption(fname_ + ": truncated block read");
  }
  // Verify-if-present: format >= 1 carries the expected CRC of the stored
  // bytes in the (itself checksummed) footer index, so a flipped bit is
  // caught before any decompression or row decoding runs.
  if (format_version_ >= 1 &&
      crc32c::Unmask(e.crc) != crc32c::Value(stored.data(), stored.size())) {
    return Status::Corruption(fname_ + ": block checksum mismatch");
  }
  std::string payload;
  auto contents = std::make_unique<BlockContents>();
  if (format_version_ >= 2) {
    LT_RETURN_IF_ERROR(LoadBlockV2(stored, &payload));
    if (payload.size() != e.payload_len) {
      return Status::Corruption(fname_ + ": block payload size mismatch");
    }
    LT_RETURN_IF_ERROR(
        BlockContents::ParseColumnar(std::move(payload), contents.get()));
    // Cross-check the (CRC-protected) chunk directory against the
    // (checksummed) footer index and the tablet schema before any chunk
    // decodes trust its row count.
    if (contents->num_rows() != e.row_count) {
      return Status::Corruption(fname_ + ": block row count mismatch");
    }
    if (contents->num_columns() != schema_.num_columns()) {
      return Status::Corruption(fname_ + ": block chunk count mismatch");
    }
  } else {
    LT_RETURN_IF_ERROR(LoadBlock(stored, &payload));
    if (payload.size() != e.payload_len) {
      return Status::Corruption(fname_ + ": block payload size mismatch");
    }
    LT_RETURN_IF_ERROR(
        BlockContents::Parse(std::move(payload), contents.get()));
  }
  // Only verified, fully parsed blocks reach this point, so a corrupt block
  // is never inserted: every re-read hits the Env and fails the CRC again.
  if (block_cache_) {
    size_t charge = contents->ApproximateMemoryUsage();
    Cache::Handle* h = block_cache_->Insert(cache_key, contents.release(),
                                            charge, &DeleteCachedBlock);
    out->Reset(&schema_, PinCached(block_cache_, h), stats_);
  } else {
    out->Reset(&schema_, std::shared_ptr<const BlockContents>(
                             contents.release()), stats_);
  }
  if (stats_) {
    stats_->block_read_micros.Record(
        static_cast<uint64_t>(MonotonicMicros() - read_start));
  }
  return Status::OK();
}

size_t TabletReader::SeekBlock(const Key& prefix, bool or_equal) const {
  // First block whose last key satisfies compare >= 0 (or > 0): all earlier
  // blocks end before the bound, so the target row cannot be in them.
  size_t lo = 0, hi = index_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    int c = schema_.CompareKeyToPrefix(index_[mid].last_key, prefix);
    bool before = or_equal ? c < 0 : c <= 0;
    if (before) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

bool TabletReader::MayContainPrefix(const Key& prefix) const {
  if (!has_bloom_) return true;
  std::string enc;
  EncodeKey(&enc, schema_, prefix);
  return bloom_.MayContain(enc);
}

Status TabletReader::NewCursor(const QueryBounds& bounds,
                               const Schema* current_schema,
                               std::atomic<uint64_t>* scanned,
                               std::unique_ptr<Cursor>* out,
                               QueryTrace* trace) {
  LT_RETURN_IF_ERROR(Load());
  auto cursor = std::make_unique<TabletCursor>(shared_from_this(), bounds,
                                               current_schema, scanned, trace);
  Status s = cursor->status();
  if (!s.ok()) return s;
  *out = std::move(cursor);
  return Status::OK();
}

}  // namespace lt
