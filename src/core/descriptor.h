// The table descriptor file (§3.2).
//
// LittleTable caches each tablet's timespan and writes the list of on-disk
// tablets — plus the table's current schema and TTL — to a descriptor file
// after every change. The new descriptor is written to a temporary file and
// atomically renamed over the previous version, so a crash at any point
// leaves either the old or the new descriptor intact, never a torn one.
// Flushing a dependency closure (§3.4.3) adds all of its tablets in a single
// descriptor update, which is what makes the multi-tablet flush atomic.
#ifndef LITTLETABLE_CORE_DESCRIPTOR_H_
#define LITTLETABLE_CORE_DESCRIPTOR_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "core/tablet_meta.h"
#include "env/env.h"

namespace lt {

struct TableDescriptor {
  std::string table_name;
  Schema schema;
  /// Time-to-live for rows; 0 means "retain until disk runs out".
  Timestamp ttl = 0;
  /// Next tablet file sequence number.
  uint64_t next_file_seq = 1;
  /// On-disk tablets, kept sorted by (min_ts, max_ts, filename).
  std::vector<TabletMeta> tablets;

  void SortTablets();

  /// Serializes to bytes (with magic and checksum).
  std::string Encode() const;
  static Status Decode(const Slice& data, TableDescriptor* out);

  /// Atomically replaces the descriptor at `path` (writes `path`.tmp, syncs,
  /// renames).
  Status Save(Env* env, const std::string& path) const;
  static Status Load(Env* env, const std::string& path, TableDescriptor* out);
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_DESCRIPTOR_H_
