#include "core/value.h"

#include <cassert>
#include <cstdio>

#include "util/coding.h"

namespace lt {

const char* ColumnTypeName(ColumnType t) {
  switch (t) {
    case ColumnType::kInt32: return "int32";
    case ColumnType::kInt64: return "int64";
    case ColumnType::kDouble: return "double";
    case ColumnType::kTimestamp: return "timestamp";
    case ColumnType::kString: return "string";
    case ColumnType::kBlob: return "blob";
  }
  return "unknown";
}

Status ColumnTypeFromName(const std::string& name, ColumnType* out) {
  if (name == "int32") *out = ColumnType::kInt32;
  else if (name == "int64") *out = ColumnType::kInt64;
  else if (name == "double") *out = ColumnType::kDouble;
  else if (name == "timestamp") *out = ColumnType::kTimestamp;
  else if (name == "string") *out = ColumnType::kString;
  else if (name == "blob") *out = ColumnType::kBlob;
  else return Status::InvalidArgument("unknown column type: " + name);
  return Status::OK();
}

bool Value::MatchesType(ColumnType t) const {
  switch (t) {
    case ColumnType::kInt32: return is_i32();
    case ColumnType::kInt64:
    case ColumnType::kTimestamp: return is_i64();
    case ColumnType::kDouble: return is_double();
    case ColumnType::kString:
    case ColumnType::kBlob: return is_bytes();
  }
  return false;
}

int Value::Compare(const Value& other) const {
  if (is_bytes()) {
    assert(other.is_bytes());
    int r = Slice(bytes()).compare(Slice(other.bytes()));
    return r < 0 ? -1 : (r > 0 ? 1 : 0);
  }
  if (is_double()) {
    assert(other.is_double());
    double a = dbl(), b = other.dbl();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  int64_t a = AsInt(), b = other.AsInt();
  return a < b ? -1 : (a > b ? 1 : 0);
}

std::string Value::ToString(ColumnType t) const {
  char buf[64];
  switch (t) {
    case ColumnType::kInt32:
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(AsInt()));
      return buf;
    case ColumnType::kDouble:
      snprintf(buf, sizeof(buf), "%.17g", dbl());
      return buf;
    case ColumnType::kString:
      return "'" + bytes() + "'";
    case ColumnType::kBlob: {
      std::string out = "x'";
      for (unsigned char c : bytes()) {
        snprintf(buf, sizeof(buf), "%02x", c);
        out += buf;
      }
      out += "'";
      return out;
    }
  }
  return "?";
}

void EncodeValue(std::string* dst, const Value& v, ColumnType t) {
  switch (t) {
    case ColumnType::kInt32:
      PutVarint64(dst, ZigZagEncode(v.i32()));
      break;
    case ColumnType::kInt64:
    case ColumnType::kTimestamp:
      PutVarint64(dst, ZigZagEncode(v.AsInt()));
      break;
    case ColumnType::kDouble: {
      uint64_t bits;
      double d = v.dbl();
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, 8);
      PutFixed64(dst, bits);
      break;
    }
    case ColumnType::kString:
    case ColumnType::kBlob:
      PutLengthPrefixedSlice(dst, v.bytes());
      break;
  }
}

Status DecodeValue(Slice* input, ColumnType t, Value* out) {
  switch (t) {
    case ColumnType::kInt32: {
      uint64_t u;
      if (!GetVarint64(input, &u)) return Status::Corruption("bad int32 cell");
      int64_t v = ZigZagDecode(u);
      if (v < INT32_MIN || v > INT32_MAX) {
        return Status::Corruption("int32 cell out of range");
      }
      *out = Value::Int32(static_cast<int32_t>(v));
      return Status::OK();
    }
    case ColumnType::kInt64:
    case ColumnType::kTimestamp: {
      uint64_t u;
      if (!GetVarint64(input, &u)) return Status::Corruption("bad int64 cell");
      *out = Value::Int64(ZigZagDecode(u));
      return Status::OK();
    }
    case ColumnType::kDouble: {
      uint64_t bits;
      if (!GetFixed64(input, &bits)) return Status::Corruption("bad double cell");
      double d;
      __builtin_memcpy(&d, &bits, 8);
      *out = Value::Double(d);
      return Status::OK();
    }
    case ColumnType::kString:
    case ColumnType::kBlob: {
      Slice s;
      if (!GetLengthPrefixedSlice(input, &s)) {
        return Status::Corruption("bad bytes cell");
      }
      *out = t == ColumnType::kString ? Value::String(s.ToString())
                                      : Value::Blob(s.ToString());
      return Status::OK();
    }
  }
  return Status::Corruption("unknown column type in cell");
}

Value DefaultValueFor(ColumnType t) {
  switch (t) {
    case ColumnType::kInt32: return Value::Int32(0);
    case ColumnType::kInt64: return Value::Int64(0);
    case ColumnType::kTimestamp: return Value::Ts(0);
    case ColumnType::kDouble: return Value::Double(0.0);
    case ColumnType::kString: return Value::String("");
    case ColumnType::kBlob: return Value::Blob("");
  }
  return Value();
}

}  // namespace lt
