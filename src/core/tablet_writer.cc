#include "core/tablet_writer.h"

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/fault.h"
#include "util/lzmini.h"

namespace lt {

TabletWriter::TabletWriter(Env* env, std::string fname, const Schema* schema,
                           TabletWriterOptions options)
    : env_(env),
      fname_(std::move(fname)),
      schema_(schema),
      opts_(options),
      block_(schema, options.format_version),
      bloom_(options.bloom_bits_per_key > 0 ? options.bloom_bits_per_key : 1) {
  if (opts_.format_version > kTabletFormatLatest) {
    open_status_ = Status::InvalidArgument("unknown tablet format version");
    return;
  }
  open_status_ = env_->NewWritableFile(fname_, &file_);
}

Status TabletWriter::Add(const Row& row) {
  LT_RETURN_IF_ERROR(open_status_);
  if (!schema_->RowMatches(row)) {
    return Status::InvalidArgument("row does not match tablet schema");
  }
  if (rows_added_ > 0 && schema_->CompareKeys(last_row_, row) >= 0) {
    return Status::InvalidArgument("rows not in strictly ascending key order");
  }

  std::string key_enc;
  EncodeKey(&key_enc, *schema_, schema_->KeyOf(row));
  if (opts_.bloom_bits_per_key > 0) {
    // Every proper prefix of the key (for §3.4.5 latest-row queries) plus
    // the full key (for §3.4.4 duplicate checks). Prefix encodings are
    // length-delimited per cell, so prefix i is a byte prefix of the key;
    // we still hash each cumulative encoding separately for exact lookups.
    std::string prefix_enc;
    for (size_t i = 0; i + 1 < schema_->num_key_columns(); i++) {
      EncodeValue(&prefix_enc, row[i], schema_->columns()[i].type);
      bloom_.Add(prefix_enc);
    }
    bloom_.Add(key_enc);
  }

  Timestamp ts = row[schema_->ts_index()].AsInt();
  if (rows_added_ == 0) {
    min_ts_ = max_ts_ = ts;
    min_key_ = key_enc;
  } else {
    if (ts < min_ts_) min_ts_ = ts;
    if (ts > max_ts_) max_ts_ = ts;
  }
  max_key_ = key_enc;
  pending_last_key_ = std::move(key_enc);
  last_row_ = row;
  rows_added_++;

  block_.Add(row);
  if (block_.data_bytes() >= opts_.block_bytes) {
    LT_RETURN_IF_ERROR(FlushBlock());
  }
  return Status::OK();
}

Status TabletWriter::FlushBlock() {
  if (block_.empty()) return Status::OK();
  IndexEntry entry;
  entry.last_key = pending_last_key_;
  entry.offset = file_offset_;
  entry.row_count = static_cast<uint32_t>(block_.num_rows());
  std::string payload = block_.Finish();
  entry.payload_len = static_cast<uint32_t>(payload.size());
  // Format >= 2: `payload` is the columnar image, whose chunks are already
  // individually compressed, so the frame skips the whole-block pass.
  std::string stored =
      opts_.format_version >= 2 ? StoreBlockV2(payload) : StoreBlock(payload);
  entry.stored_len = static_cast<uint32_t>(stored.size());
  entry.crc = crc32c::Mask(crc32c::Value(stored.data(), stored.size()));
  LT_CRASH_POINT("tablet_writer:block_append");
  LT_RETURN_IF_ERROR(file_->Append(stored));
  file_offset_ += stored.size();
  index_.push_back(std::move(entry));
  return Status::OK();
}

Status TabletWriter::Finish(TabletMeta* meta) {
  LT_RETURN_IF_ERROR(open_status_);
  if (finished_) return Status::InvalidArgument("Finish called twice");
  finished_ = true;
  LT_RETURN_IF_ERROR(FlushBlock());

  // Assemble the footer payload.
  std::string footer;
  schema_->EncodeTo(&footer);
  PutVarint64(&footer, index_.size());
  for (const IndexEntry& e : index_) {
    PutVarint64(&footer, e.offset);
    PutVarint32(&footer, e.stored_len);
    PutVarint32(&footer, e.payload_len);
    PutVarint32(&footer, e.row_count);
    PutLengthPrefixedSlice(&footer, e.last_key);
    // Format >= 1: the block's masked CRC travels in the (checksummed)
    // footer, so reads verify blocks against the index, not just the
    // block's own frame.
    if (opts_.format_version >= 1) PutFixed32(&footer, e.crc);
  }
  PutVarint64(&footer, ZigZagEncode(min_ts_));
  PutVarint64(&footer, ZigZagEncode(max_ts_));
  PutVarint64(&footer, rows_added_);
  PutLengthPrefixedSlice(&footer, min_key_);
  PutLengthPrefixedSlice(&footer, max_key_);
  if (opts_.bloom_bits_per_key > 0 && rows_added_ > 0) {
    PutLengthPrefixedSlice(&footer, bloom_.Finish());
  } else {
    PutLengthPrefixedSlice(&footer, Slice());
  }

  std::string compressed;
  lzmini::Compress(footer, &compressed);
  std::string stored_footer;
  uint64_t footer_bytes_raw = 0, footer_bytes_compressed = 0;
  if (opts_.format_version >= 2) {
    // Store-raw fallback: a leading marker byte says whether the payload is
    // lzmini (1) or the raw footer (0), so incompressible footers do not
    // pay the compressor's expansion. The trailer CRC covers marker + body.
    if (compressed.size() < footer.size()) {
      stored_footer.push_back('\x01');
      stored_footer += compressed;
      footer_bytes_compressed = compressed.size();
    } else {
      stored_footer.push_back('\x00');
      stored_footer += footer;
      footer_bytes_raw = footer.size();
    }
  } else {
    stored_footer = std::move(compressed);
  }
  const uint64_t footer_offset = file_offset_;
  LT_CRASH_POINT("tablet_writer:footer");
  LT_RETURN_IF_ERROR(file_->Append(stored_footer));
  file_offset_ += stored_footer.size();

  uint64_t magic = kTabletMagic;
  if (opts_.format_version == 1) magic = kTabletMagicV2;
  if (opts_.format_version >= 2) magic = kTabletMagicV3;
  std::string trailer;
  PutFixed32(&trailer, crc32c::Mask(crc32c::Value(stored_footer.data(),
                                                  stored_footer.size())));
  PutFixed64(&trailer, footer.size());
  PutFixed64(&trailer, footer_offset);
  PutFixed64(&trailer, magic);
  LT_CRASH_POINT("tablet_writer:trailer");
  LT_RETURN_IF_ERROR(file_->Append(trailer));
  file_offset_ += trailer.size();

  LT_CRASH_POINT("tablet_writer:sync");
  if (opts_.sync) LT_RETURN_IF_ERROR(file_->Sync());
  LT_CRASH_POINT("tablet_writer:close");
  LT_RETURN_IF_ERROR(file_->Close());

  if (opts_.stats) {
    opts_.stats->block_bytes_raw.fetch_add(
        block_.bytes_raw() + footer_bytes_raw, std::memory_order_relaxed);
    opts_.stats->block_bytes_compressed.fetch_add(
        block_.bytes_compressed() + footer_bytes_compressed,
        std::memory_order_relaxed);
  }

  meta->filename = fname_;
  meta->min_ts = min_ts_;
  meta->max_ts = max_ts_;
  meta->file_bytes = file_offset_;
  meta->row_count = rows_added_;
  meta->schema_version = schema_->version();
  return Status::OK();
}

void TabletWriter::Abandon() {
  file_.reset();
  env_->RemoveFile(fname_);
}

}  // namespace lt
