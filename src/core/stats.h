// Per-table operation counters. These drive the production-metrics figures:
// rows scanned vs. returned is the Figure 9 efficiency ratio, and the flush
// vs. merge byte counters give the §5.1.3 write-amplification factor.
#ifndef LITTLETABLE_CORE_STATS_H_
#define LITTLETABLE_CORE_STATS_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/histogram.h"

namespace lt {

struct TableStats {
  std::atomic<uint64_t> insert_batches{0};
  std::atomic<uint64_t> rows_inserted{0};
  // Group-commit critical sections. Each group coalesces one or more
  // concurrent InsertBatch calls into a single insert_mu_ acquisition, so
  // insert_batches / insert_groups is the coalescing factor (1.0 = no
  // concurrency, higher = amortized ingest).
  std::atomic<uint64_t> insert_groups{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> rows_returned{0};

  // Which uniqueness check (§3.4.4) admitted inserted rows.
  std::atomic<uint64_t> unique_by_newest_ts{0};
  std::atomic<uint64_t> unique_by_max_key{0};
  std::atomic<uint64_t> unique_by_point_query{0};
  std::atomic<uint64_t> duplicates_rejected{0};

  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> bytes_flushed{0};
  std::atomic<uint64_t> merges{0};
  std::atomic<uint64_t> tablets_merged{0};
  std::atomic<uint64_t> bytes_merge_written{0};
  std::atomic<uint64_t> tablets_expired{0};

  // Fault-recovery counters: flush/merge attempts that failed (the sealed
  // tablets stay queued; partial output was deleted), and flush attempts
  // made while retrying after a failure. A healthy table shows zeros; a
  // disk-full incident shows failures accumulating until space frees, then
  // one successful retry.
  std::atomic<uint64_t> flush_failures{0};
  std::atomic<uint64_t> flush_retries{0};
  std::atomic<uint64_t> merge_failures{0};

  // Tablets whose footer could not be read (corrupt or missing file) and
  // were renamed to `<name>.corrupt` and dropped from the descriptor so the
  // rest of the table keeps serving.
  std::atomic<uint64_t> tablets_quarantined{0};

  // §3.4.5 extension: tablets skipped by Bloom filters during
  // latest-row-for-prefix and uniqueness point queries.
  std::atomic<uint64_t> bloom_tablet_skips{0};
  std::atomic<uint64_t> bloom_tablet_probes{0};

  // Columnar (format 2) lazy materialization: chunks actually decoded vs.
  // chunks a projected scan skipped entirely. A projected 2-of-N query over
  // v2 tablets shows skipped >> decoded; a full scan shows skipped == 0.
  std::atomic<uint64_t> column_chunks_decoded{0};
  std::atomic<uint64_t> column_chunks_skipped{0};

  // Store-raw fallback accounting: payload bytes written raw because
  // lzmini would have expanded them, vs. bytes written compressed.
  std::atomic<uint64_t> block_bytes_raw{0};
  std::atomic<uint64_t> block_bytes_compressed{0};

  // Block reads served from / missed by the shared decompressed-block
  // cache (this table's share of the DB-wide cache traffic). Misses count
  // reads that went to the Env; a table running without a cache counts
  // every block read as a miss.
  std::atomic<uint64_t> block_cache_hits{0};
  std::atomic<uint64_t> block_cache_misses{0};

  // Latency distributions (microseconds; lock-free recording). insert/query
  // cover the full user-visible operation; flush/merge cover one maintenance
  // pass each; block_read covers a cache-miss disk read (seek + CRC +
  // decompress, the §3.5 per-access cost); cache_lookup covers the shared
  // cache probe alone.
  LatencyHistogram insert_micros;
  LatencyHistogram query_micros;
  LatencyHistogram flush_micros;
  LatencyHistogram merge_micros;
  LatencyHistogram block_read_micros;
  LatencyHistogram cache_lookup_micros;

  /// Block-cache hit rate so far (0 when the table has read no blocks).
  double BlockCacheHitRate() const {
    uint64_t hits = block_cache_hits.load(std::memory_order_relaxed);
    uint64_t total = hits + block_cache_misses.load(std::memory_order_relaxed);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  /// Write amplification so far: total tablet bytes written / bytes flushed.
  /// A table that has written nothing reports 1.0 (every byte written once).
  /// If merges wrote bytes but no flush has been observed — e.g. the stats
  /// were reset, or the table was reopened with on-disk tablets and then
  /// merged — the ratio's denominator is unknown, so this reports +infinity
  /// rather than silently understating amplification as 0.
  double WriteAmplification() const {
    uint64_t flushed = bytes_flushed.load(std::memory_order_relaxed);
    uint64_t merged = bytes_merge_written.load(std::memory_order_relaxed);
    if (flushed == 0) {
      return merged == 0 ? 1.0 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(flushed + merged) /
           static_cast<double>(flushed);
  }
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_STATS_H_
