// Per-table operation counters. These drive the production-metrics figures:
// rows scanned vs. returned is the Figure 9 efficiency ratio, and the flush
// vs. merge byte counters give the §5.1.3 write-amplification factor.
#ifndef LITTLETABLE_CORE_STATS_H_
#define LITTLETABLE_CORE_STATS_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "util/histogram.h"

namespace lt {

struct TableStats {
  std::atomic<uint64_t> insert_batches{0};
  std::atomic<uint64_t> rows_inserted{0};
  // Group-commit critical sections. Each group coalesces one or more
  // concurrent InsertBatch calls into a single insert_mu_ acquisition, so
  // insert_batches / insert_groups is the coalescing factor (1.0 = no
  // concurrency, higher = amortized ingest).
  std::atomic<uint64_t> insert_groups{0};
  std::atomic<uint64_t> queries{0};
  std::atomic<uint64_t> rows_scanned{0};
  std::atomic<uint64_t> rows_returned{0};

  // Which uniqueness check (§3.4.4) admitted inserted rows.
  std::atomic<uint64_t> unique_by_newest_ts{0};
  std::atomic<uint64_t> unique_by_max_key{0};
  std::atomic<uint64_t> unique_by_point_query{0};
  std::atomic<uint64_t> duplicates_rejected{0};

  std::atomic<uint64_t> flushes{0};
  std::atomic<uint64_t> bytes_flushed{0};
  std::atomic<uint64_t> merges{0};
  std::atomic<uint64_t> tablets_merged{0};
  std::atomic<uint64_t> bytes_merge_written{0};
  std::atomic<uint64_t> tablets_expired{0};

  // Fault-recovery counters: flush/merge attempts that failed (the sealed
  // tablets stay queued; partial output was deleted), and flush attempts
  // made while retrying after a failure. A healthy table shows zeros; a
  // disk-full incident shows failures accumulating until space frees, then
  // one successful retry.
  std::atomic<uint64_t> flush_failures{0};
  std::atomic<uint64_t> flush_retries{0};
  std::atomic<uint64_t> merge_failures{0};

  // Tablets whose footer could not be read (corrupt or missing file) and
  // were renamed to `<name>.corrupt` and dropped from the descriptor so the
  // rest of the table keeps serving.
  std::atomic<uint64_t> tablets_quarantined{0};

  // §3.4.5 extension: tablets skipped by Bloom filters during
  // latest-row-for-prefix and uniqueness point queries.
  std::atomic<uint64_t> bloom_tablet_skips{0};
  std::atomic<uint64_t> bloom_tablet_probes{0};

  // Columnar (format 2) lazy materialization: chunks actually decoded vs.
  // chunks a projected scan skipped entirely. A projected 2-of-N query over
  // v2 tablets shows skipped >> decoded; a full scan shows skipped == 0.
  std::atomic<uint64_t> column_chunks_decoded{0};
  std::atomic<uint64_t> column_chunks_skipped{0};

  // Store-raw fallback accounting: payload bytes written raw because
  // lzmini would have expanded them, vs. bytes written compressed.
  std::atomic<uint64_t> block_bytes_raw{0};
  std::atomic<uint64_t> block_bytes_compressed{0};

  // Block reads served from / missed by the shared decompressed-block
  // cache (this table's share of the DB-wide cache traffic). Misses count
  // reads that went to the Env; a table running without a cache counts
  // every block read as a miss.
  std::atomic<uint64_t> block_cache_hits{0};
  std::atomic<uint64_t> block_cache_misses{0};

  // Latency distributions (microseconds; lock-free recording). insert/query
  // cover the full user-visible operation; flush/merge cover one maintenance
  // pass each; block_read covers a cache-miss disk read (seek + CRC +
  // decompress, the §3.5 per-access cost); cache_lookup covers the shared
  // cache probe alone.
  LatencyHistogram insert_micros;
  LatencyHistogram query_micros;
  LatencyHistogram flush_micros;
  LatencyHistogram merge_micros;
  LatencyHistogram block_read_micros;
  LatencyHistogram cache_lookup_micros;

  // Batches coalesced per group-commit critical section (a value
  // distribution, not a latency): p50 near 1 means little concurrency;
  // a heavy ingest fan-in shows the amortization directly.
  LatencyHistogram insert_group_size;

  /// Visits every exported counter as fn(name, value). This is THE
  /// canonical export list: kStats/kStatsV2 (net/server), Prometheus text,
  /// and the self-monitoring sampler (obs/) all walk it, so a counter added
  /// here automatically appears in every output — and the parity pin test
  /// walks it too, so an output that stops using the visitor fails loudly.
  template <typename Fn>
  void ForEachCounter(Fn&& fn) const {
    auto v = [](const std::atomic<uint64_t>& c) {
      return c.load(std::memory_order_relaxed);
    };
    fn("table.insert_batches", v(insert_batches));
    fn("table.insert_groups", v(insert_groups));
    fn("table.rows_inserted", v(rows_inserted));
    fn("table.queries", v(queries));
    fn("table.rows_scanned", v(rows_scanned));
    fn("table.rows_returned", v(rows_returned));
    fn("table.unique_by_newest_ts", v(unique_by_newest_ts));
    fn("table.unique_by_max_key", v(unique_by_max_key));
    fn("table.unique_by_point_query", v(unique_by_point_query));
    fn("table.duplicates_rejected", v(duplicates_rejected));
    fn("table.flushes", v(flushes));
    fn("table.flush_failures", v(flush_failures));
    fn("table.flush_retries", v(flush_retries));
    fn("table.merge_failures", v(merge_failures));
    fn("table.bytes_flushed", v(bytes_flushed));
    fn("table.merges", v(merges));
    fn("table.tablets_merged", v(tablets_merged));
    fn("table.bytes_merge_written", v(bytes_merge_written));
    fn("table.tablets_expired", v(tablets_expired));
    fn("table.tablets_quarantined", v(tablets_quarantined));
    fn("table.bloom_tablet_skips", v(bloom_tablet_skips));
    fn("table.bloom_tablet_probes", v(bloom_tablet_probes));
    fn("table.block_cache_hits", v(block_cache_hits));
    fn("table.block_cache_misses", v(block_cache_misses));
    fn("table.column_chunks_decoded", v(column_chunks_decoded));
    fn("table.column_chunks_skipped", v(column_chunks_skipped));
    fn("table.block_bytes_raw", v(block_bytes_raw));
    fn("table.block_bytes_compressed", v(block_bytes_compressed));
  }

  /// Visits every exported histogram as fn(name, hist). Same contract as
  /// ForEachCounter: this list IS the export surface.
  template <typename Fn>
  void ForEachHistogram(Fn&& fn) const {
    fn("table.insert_micros", insert_micros);
    fn("table.query_micros", query_micros);
    fn("table.flush_micros", flush_micros);
    fn("table.merge_micros", merge_micros);
    fn("table.block_read_micros", block_read_micros);
    fn("table.cache_lookup_micros", cache_lookup_micros);
    fn("table.insert_group_size", insert_group_size);
  }

  /// Block-cache hit rate so far (0 when the table has read no blocks).
  double BlockCacheHitRate() const {
    uint64_t hits = block_cache_hits.load(std::memory_order_relaxed);
    uint64_t total = hits + block_cache_misses.load(std::memory_order_relaxed);
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  /// Write amplification so far: total tablet bytes written / bytes flushed.
  /// A table that has written nothing reports 1.0 (every byte written once).
  /// If merges wrote bytes but no flush has been observed — e.g. the stats
  /// were reset, or the table was reopened with on-disk tablets and then
  /// merged — the ratio's denominator is unknown, so this reports +infinity
  /// rather than silently understating amplification as 0.
  double WriteAmplification() const {
    uint64_t flushed = bytes_flushed.load(std::memory_order_relaxed);
    uint64_t merged = bytes_merge_written.load(std::memory_order_relaxed);
    if (flushed == 0) {
      return merged == 0 ? 1.0 : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(flushed + merged) /
           static_cast<double>(flushed);
  }
};

}  // namespace lt

#endif  // LITTLETABLE_CORE_STATS_H_
