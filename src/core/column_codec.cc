#include "core/column_codec.h"

#include <map>

#include "util/coding.h"

namespace lt {

namespace {

size_t VarintLength(uint64_t v) {
  size_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    len++;
  }
  return len;
}

// Signed deltas are computed in uint64 space so overflow wraps (lossless:
// the decoder reverses with the same wrapping adds) instead of being UB.
uint64_t WrapDelta(int64_t cur, int64_t prev) {
  return static_cast<uint64_t>(cur) - static_cast<uint64_t>(prev);
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  __builtin_memcpy(&bits, &d, 8);
  return bits;
}

double BitsDouble(uint64_t bits) {
  double d;
  __builtin_memcpy(&d, &bits, 8);
  return d;
}

}  // namespace

bool IsValidChunkEncoding(uint8_t b) {
  return b >= static_cast<uint8_t>(ChunkEncoding::kDeltaDelta) &&
         b <= static_cast<uint8_t>(ChunkEncoding::kPlainBytes);
}

size_t ColumnValues::ApproximateMemoryUsage() const {
  size_t total = ints.capacity() * sizeof(int64_t) +
                 dbls.capacity() * sizeof(double) +
                 strs.capacity() * sizeof(std::string);
  for (const std::string& s : strs) total += s.capacity();
  return total;
}

void EncodeIntChunk(const std::vector<int64_t>& v, ChunkEncoding enc,
                    std::string* out) {
  if (v.empty()) return;
  if (enc == ChunkEncoding::kZigZag) {
    for (int64_t x : v) PutVarint64(out, ZigZagEncode(x));
    return;
  }
  // kDeltaDelta: first value, first delta, then delta-of-deltas.
  PutVarint64(out, ZigZagEncode(v[0]));
  uint64_t prev_delta = 0;
  for (size_t i = 1; i < v.size(); i++) {
    uint64_t delta = WrapDelta(v[i], v[i - 1]);
    uint64_t dod = delta - prev_delta;
    PutVarint64(out, ZigZagEncode(static_cast<int64_t>(dod)));
    prev_delta = delta;
  }
}

void EncodeDoubleChunk(const std::vector<double>& v, std::string* out) {
  if (v.empty()) return;
  PutFixed64(out, DoubleBits(v[0]));
  uint64_t prev = DoubleBits(v[0]);
  for (size_t i = 1; i < v.size(); i++) {
    uint64_t bits = DoubleBits(v[i]);
    PutVarint64(out, bits ^ prev);
    prev = bits;
  }
}

namespace {

// Sorted distinct values -> dense ids, shared by the dict chooser/encoder.
std::map<std::string, uint32_t> BuildDict(const std::vector<std::string>& v) {
  std::map<std::string, uint32_t> dict;
  for (const std::string& s : v) dict.emplace(s, 0);
  uint32_t id = 0;
  for (auto& [key, value] : dict) value = id++;
  return dict;
}

size_t SharedPrefixLen(const std::string& a, const std::string& b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) i++;
  return i;
}

}  // namespace

void EncodeBytesChunk(const std::vector<std::string>& v, ChunkEncoding enc,
                      std::string* out) {
  if (v.empty()) return;
  if (enc == ChunkEncoding::kPlainBytes) {
    for (const std::string& s : v) PutLengthPrefixedSlice(out, s);
    return;
  }
  // kDict: front-coded sorted dictionary, then one index per row.
  std::map<std::string, uint32_t> dict = BuildDict(v);
  PutVarint32(out, static_cast<uint32_t>(dict.size()));
  const std::string* prev = nullptr;
  for (const auto& [entry, id] : dict) {
    size_t shared = prev ? SharedPrefixLen(*prev, entry) : 0;
    PutVarint32(out, static_cast<uint32_t>(shared));
    PutVarint32(out, static_cast<uint32_t>(entry.size() - shared));
    out->append(entry.data() + shared, entry.size() - shared);
    prev = &entry;
  }
  for (const std::string& s : v) PutVarint32(out, dict.find(s)->second);
}

ChunkEncoding ChooseIntEncoding(const std::vector<int64_t>& v) {
  size_t zz = 0, dod = 0;
  uint64_t prev_delta = 0;
  for (size_t i = 0; i < v.size(); i++) {
    zz += VarintLength(ZigZagEncode(v[i]));
    if (i == 0) {
      dod += VarintLength(ZigZagEncode(v[0]));
    } else {
      uint64_t delta = WrapDelta(v[i], v[i - 1]);
      dod += VarintLength(ZigZagEncode(static_cast<int64_t>(delta - prev_delta)));
      prev_delta = delta;
    }
  }
  return dod <= zz ? ChunkEncoding::kDeltaDelta : ChunkEncoding::kZigZag;
}

ChunkEncoding ChooseBytesEncoding(const std::vector<std::string>& v) {
  size_t plain = 0;
  for (const std::string& s : v) plain += VarintLength(s.size()) + s.size();

  std::map<std::string, uint32_t> dict = BuildDict(v);
  size_t dict_cost = VarintLength(dict.size());
  const std::string* prev = nullptr;
  for (const auto& [entry, id] : dict) {
    size_t shared = prev ? SharedPrefixLen(*prev, entry) : 0;
    dict_cost += VarintLength(shared) + VarintLength(entry.size() - shared) +
                 (entry.size() - shared);
    prev = &entry;
  }
  for (const std::string& s : v) dict_cost += VarintLength(dict.find(s)->second);
  return dict_cost < plain ? ChunkEncoding::kDict : ChunkEncoding::kPlainBytes;
}

namespace {

Status DecodeIntChunk(Slice in, ChunkEncoding enc, uint32_t count,
                      ColumnValues* out) {
  out->arm = ColumnValues::Arm::kInt;
  out->ints.reserve(count);
  if (enc == ChunkEncoding::kZigZag) {
    for (uint32_t i = 0; i < count; i++) {
      uint64_t u;
      if (!GetVarint64(&in, &u)) return Status::Corruption("short int chunk");
      out->ints.push_back(ZigZagDecode(u));
    }
  } else {
    uint64_t value = 0, delta = 0;
    for (uint32_t i = 0; i < count; i++) {
      uint64_t u;
      if (!GetVarint64(&in, &u)) return Status::Corruption("short dod chunk");
      if (i == 0) {
        value = static_cast<uint64_t>(ZigZagDecode(u));
      } else {
        delta += static_cast<uint64_t>(ZigZagDecode(u));
        value += delta;
      }
      out->ints.push_back(static_cast<int64_t>(value));
    }
  }
  if (!in.empty()) return Status::Corruption("int chunk trailing bytes");
  return Status::OK();
}

Status DecodeDoubleChunk(Slice in, uint32_t count, ColumnValues* out) {
  out->arm = ColumnValues::Arm::kDouble;
  out->dbls.reserve(count);
  uint64_t prev = 0;
  for (uint32_t i = 0; i < count; i++) {
    if (i == 0) {
      if (!GetFixed64(&in, &prev)) return Status::Corruption("short xor chunk");
    } else {
      uint64_t x;
      if (!GetVarint64(&in, &x)) return Status::Corruption("short xor chunk");
      prev ^= x;
    }
    out->dbls.push_back(BitsDouble(prev));
  }
  if (!in.empty()) return Status::Corruption("xor chunk trailing bytes");
  return Status::OK();
}

Status DecodeDictChunk(Slice in, uint32_t count, ColumnValues* out) {
  out->arm = ColumnValues::Arm::kBytes;
  // The encoder emits nothing at all for an empty chunk — not even the
  // dictionary-size varint.
  if (count == 0) {
    if (!in.empty()) return Status::Corruption("dict chunk trailing bytes");
    return Status::OK();
  }
  uint32_t n;
  if (!GetVarint32(&in, &n)) return Status::Corruption("bad dict size");
  // A dictionary cannot hold more distinct values than the chunk has rows,
  // and a non-empty chunk needs a non-empty dictionary.
  if (n > count || (count > 0 && n == 0)) {
    return Status::Corruption("dict size out of range");
  }
  std::vector<std::string> dict;
  dict.reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    uint32_t shared, suffix_len;
    if (!GetVarint32(&in, &shared) || !GetVarint32(&in, &suffix_len)) {
      return Status::Corruption("bad dict entry header");
    }
    if (i == 0 ? shared != 0 : shared > dict.back().size()) {
      return Status::Corruption("dict shared prefix out of range");
    }
    if (suffix_len > in.size()) {
      return Status::Corruption("dict entry suffix truncated");
    }
    std::string entry;
    entry.reserve(shared + suffix_len);
    if (i > 0) entry.assign(dict.back(), 0, shared);
    entry.append(in.data(), suffix_len);
    in.remove_prefix(suffix_len);
    // Entries must be strictly ascending (the encoder emits a sorted set);
    // anything else is a corrupt or non-canonical dictionary.
    if (i > 0 && entry <= dict.back()) {
      return Status::Corruption("dict entries not ascending");
    }
    dict.push_back(std::move(entry));
  }
  out->strs.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    uint32_t idx;
    if (!GetVarint32(&in, &idx)) return Status::Corruption("short dict index");
    if (idx >= n) return Status::Corruption("dict index out of range");
    out->strs.push_back(dict[idx]);
  }
  if (!in.empty()) return Status::Corruption("dict chunk trailing bytes");
  return Status::OK();
}

Status DecodePlainBytesChunk(Slice in, uint32_t count, ColumnValues* out) {
  out->arm = ColumnValues::Arm::kBytes;
  out->strs.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    Slice s;
    if (!GetLengthPrefixedSlice(&in, &s)) {
      return Status::Corruption("short bytes chunk");
    }
    out->strs.push_back(s.ToString());
  }
  if (!in.empty()) return Status::Corruption("bytes chunk trailing bytes");
  return Status::OK();
}

}  // namespace

Status DecodeChunk(Slice in, ChunkEncoding enc, uint32_t count,
                   ColumnValues* out) {
  out->arm = ColumnValues::Arm::kNone;
  out->ints.clear();
  out->dbls.clear();
  out->strs.clear();
  // Every encoding spends at least one byte per value (kXor spends 8 on the
  // first), so a count beyond the chunk size is corrupt — checked before any
  // reserve() so garbage counts cannot drive huge allocations.
  if (count > in.size()) {
    return Status::Corruption("chunk count exceeds chunk bytes");
  }
  switch (enc) {
    case ChunkEncoding::kDeltaDelta:
    case ChunkEncoding::kZigZag:
      return DecodeIntChunk(in, enc, count, out);
    case ChunkEncoding::kXor:
      return DecodeDoubleChunk(in, count, out);
    case ChunkEncoding::kDict:
      return DecodeDictChunk(in, count, out);
    case ChunkEncoding::kPlainBytes:
      return DecodePlainBytesChunk(in, count, out);
  }
  return Status::Corruption("unknown chunk encoding");
}

}  // namespace lt
