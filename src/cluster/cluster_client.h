// ClusterClient: the routing client for a replicated LittleTable cluster.
//
// Wraps plain Clients with the shard map: it fetches (and caches) the map
// from the coordinator, routes each insert batch to the primary of the
// group owning the row's series hash, fans read queries out to every
// relevant group and merge-sorts the streams through the same tournament
// heap a single node uses, and owns the staleness protocol — a kWrongShard
// answer (or a dead connection) triggers a map refetch and a bounded
// retry with backoff. Inserts are retried too, which the server makes safe:
// LittleTable keys are unique at insert (§3.4.4), so a batch that actually
// landed before the connection died fails its retry with AlreadyExists —
// reported here as success.
//
// Thread safety: like Client, a ClusterClient serializes nothing — use one
// per concurrent stream.
#ifndef LITTLETABLE_CLUSTER_CLUSTER_CLIENT_H_
#define LITTLETABLE_CLUSTER_CLUSTER_CLIENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/shard_map.h"
#include "net/client.h"

namespace lt {
namespace cluster {

struct ClusterClientOptions {
  /// Template for the per-node connections (transport is overridden).
  ClientOptions client;
  /// Transport; null = real TCP.
  net::Transport* transport = nullptr;
  /// Retries per routed request across map refreshes / failovers. Each
  /// retry refetches the shard map, so this bounds how many probe rounds a
  /// request survives waiting for a failover to complete.
  int max_retries = 8;
  /// Backoff between retries (doubling, capped). The sleep goes through
  /// client.backoff_sleep when set — the chaos harness injects a hook that
  /// advances simulated time and pumps the coordinator.
  int backoff_initial_ms = 20;
  int backoff_max_ms = 500;
};

class ClusterClient {
 public:
  /// Connects to the coordinator and fetches the initial shard map.
  static Status Connect(const std::string& coord_host, uint16_t coord_port,
                        const ClusterClientOptions& options,
                        std::unique_ptr<ClusterClient>* out);

  /// Refetches the shard map from the coordinator.
  Status RefreshMap();

  ShardMap map() const { return map_; }
  uint64_t epoch() const { return map_.epoch; }

  /// Creates the table on EVERY shard group (rows of any series must find
  /// their table wherever they hash). AlreadyExists on a group — e.g. a
  /// rerun after a partial failure — counts as success.
  Status CreateTable(const std::string& table, const Schema& schema,
                     Timestamp ttl);

  /// Routes each row to its shard group's primary and inserts per group.
  Status Insert(const std::string& table, const std::vector<Row>& rows);

  /// One logical query: fans out to every group that can hold matching
  /// rows (one group when both key bounds pin the same first key cell),
  /// merges the per-group streams in key order, applies the limit.
  Status Query(const std::string& table, const QueryBounds& bounds,
               QueryResult* result);

  /// Full result across continuations (§3.5), cluster-wide.
  Status QueryAll(const std::string& table, const QueryBounds& bounds,
                  std::vector<Row>* rows);

  /// Latest row under a key prefix. A non-empty prefix routes to exactly
  /// one group; an empty prefix asks every group and keeps the newest.
  Status LatestRow(const std::string& table, const Key& prefix, Row* row,
                   bool* found);

  /// Cached schema for `table`, fetched through the cluster when missing.
  Result<std::shared_ptr<const Schema>> TableSchema(const std::string& table);

 private:
  explicit ClusterClient(const ClusterClientOptions& options);

  Client* ClientFor(const Endpoint& ep);
  void DropClient(const Endpoint& ep);
  void Backoff(int attempt);
  static bool IsConnectionError(const Status& s);
  static bool BodyHasCode(const std::string& body, wire::ErrCode code);

  /// One routed round trip to `group_id`'s primary with the full retry
  /// protocol (connection error or kWrongShard → backoff + map refresh +
  /// retry). On success `*rt`/`*rb` hold the response frame — which may
  /// still be an application-level kError — and `*attempts_out` (optional)
  /// the number of send attempts that preceded it.
  Status RoutedCall(uint32_t group_id, wire::MsgType op,
                    const std::string& inner, wire::MsgType* rt,
                    std::string* rb, int* attempts_out = nullptr);

  /// Query one group (kRoutedQuery + kQuery inner), decoding the chunk
  /// stream; same retry protocol as RoutedCall.
  Status QueryGroup(uint32_t group_id, const std::string& table,
                    const QueryBounds& bounds, QueryResult* result);

  Result<std::shared_ptr<const Schema>> SchemaFor(const std::string& table);

  const ClusterClientOptions opts_;
  std::unique_ptr<Client> coord_;
  ShardMap map_;
  std::map<std::string, std::unique_ptr<Client>> clients_;  // By endpoint.
  std::map<std::string, std::shared_ptr<const Schema>> schema_cache_;
};

}  // namespace cluster
}  // namespace lt

#endif  // LITTLETABLE_CLUSTER_CLUSTER_CLIENT_H_
