#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>

#include "util/coding.h"

namespace lt {
namespace cluster {

using wire::ErrCode;
using wire::MsgType;

Coordinator::Coordinator(const CoordinatorOptions& options) : opts_(options) {
  map_.epoch = 1;
}

Coordinator::~Coordinator() { Stop(); }

void Coordinator::AddGroup(uint32_t id, uint64_t hash_begin,
                           uint64_t hash_end, const Endpoint& primary,
                           const Endpoint& secondary) {
  std::lock_guard<std::mutex> lock(mu_);
  ShardGroupInfo g;
  g.id = id;
  g.hash_begin = hash_begin;
  g.hash_end = hash_end;
  g.primary = primary;
  g.secondary = secondary;
  map_.groups.push_back(std::move(g));
  std::sort(map_.groups.begin(), map_.groups.end(),
            [](const ShardGroupInfo& a, const ShardGroupInfo& b) {
              return a.hash_begin < b.hash_begin;
            });
  map_.epoch++;
}

Status Coordinator::Start() {
  ServerOptions sopts;
  sopts.port = opts_.port;
  sopts.transport = opts_.transport;
  sopts.extension = [this](MsgType type, Slice body, std::string* out) {
    (void)body;
    if (type != MsgType::kGetShardMap) {
      std::string err;
      err.push_back(static_cast<char>(ErrCode::kBadRequest));
      PutLengthPrefixedSlice(&err, "not a shard node");
      *out += wire::Frame(MsgType::kError, err);
      return;
    }
    std::string resp;
    {
      std::lock_guard<std::mutex> lock(mu_);
      map_.Encode(&resp);
    }
    *out += wire::Frame(MsgType::kShardMapResult, resp);
  };
  server_ = std::make_unique<LittleTableServer>(nullptr, sopts);
  LT_RETURN_IF_ERROR(server_->Start());
  if (opts_.background) {
    probe_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(bg_mu_);
      while (!stopping_) {
        lock.unlock();
        ProbeOnce();
        lock.lock();
        bg_cv_.wait_for(lock,
                        std::chrono::milliseconds(opts_.probe_interval_ms),
                        [this] { return stopping_; });
      }
    });
  }
  return Status::OK();
}

void Coordinator::Stop() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    stopping_ = true;
  }
  bg_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
  if (server_) server_->Stop();
  clients_.clear();
}

ShardMap Coordinator::Map() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_;
}

uint64_t Coordinator::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.epoch;
}

Client* Coordinator::ClientFor(const Endpoint& ep) {
  const std::string key = ep.ToString();
  auto it = clients_.find(key);
  if (it != clients_.end()) return it->second.get();
  ClientOptions copts = opts_.client;
  copts.transport = opts_.transport;
  copts.max_retries = 0;  // The probe loop IS the retry policy.
  std::unique_ptr<Client> client;
  // Connect lazily via Ping(deadline); a failed connect is just a failed
  // probe, so construction must not block on an unreachable node.
  Status s = Client::Connect(ep.host, ep.port, copts, &client);
  if (!s.ok()) return nullptr;
  Client* raw = client.get();
  clients_[key] = std::move(client);
  return raw;
}

void Coordinator::ProbeOnce() {
  // Snapshot the groups to probe without holding mu_ across network I/O.
  std::vector<ShardGroupInfo> groups;
  {
    std::lock_guard<std::mutex> lock(mu_);
    groups = map_.groups;
  }
  for (const ShardGroupInfo& g : groups) {
    Client* primary = ClientFor(g.primary);
    Status ping = primary ? primary->Ping(opts_.probe_deadline_ms)
                          : Status::Unavailable("unreachable");
    if (!ping.ok()) {
      // A dead connection should not poison the next round's probe.
      clients_.erase(g.primary.ToString());
    }
    std::lock_guard<std::mutex> lock(mu_);
    ShardGroupInfo* live = nullptr;
    for (ShardGroupInfo& cand : map_.groups) {
      if (cand.id == g.id) live = &cand;
    }
    if (live == nullptr || !(live->primary == g.primary)) {
      continue;  // Group changed under us; re-evaluate next round.
    }
    if (ping.ok()) {
      fail_streak_[g.id] = 0;
      continue;
    }
    if (++fail_streak_[g.id] < opts_.fail_threshold) continue;
    // Promote only when the secondary itself answers: failing over onto a
    // dead (or unreachable) node would lose the whole group for nothing.
    Status sec_ping;
    {
      // Probe outside mu_? The secondary ping is short and ProbeOnce is
      // single-threaded; holding mu_ here only blocks map fetches for the
      // probe deadline, which the deterministic harness tolerates.
      Client* secondary = ClientFor(live->secondary);
      sec_ping = secondary ? secondary->Ping(opts_.probe_deadline_ms)
                           : Status::Unavailable("unreachable");
      if (!sec_ping.ok()) clients_.erase(live->secondary.ToString());
    }
    if (!sec_ping.ok()) continue;
    std::swap(live->primary, live->secondary);
    map_.epoch++;
    fail_streak_[g.id] = 0;
    failovers_.fetch_add(1, std::memory_order_relaxed);
  }
  PushAssignments();
}

void Coordinator::PushAssignments() {
  // Push the current (group, epoch, role, peer) to every node, every
  // round. Agents treat assignments idempotently and reject stale epochs,
  // so re-pushing is safe and is what heals nodes that missed a failover
  // while partitioned or restarting.
  ShardMap snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = map_;
  }
  for (const ShardGroupInfo& g : snapshot.groups) {
    struct Target {
      Endpoint node;
      uint8_t role;
      Endpoint peer;
    };
    const Target targets[2] = {
        {g.primary, 1, g.secondary},
        {g.secondary, 2, g.primary},
    };
    for (const Target& t : targets) {
      Client* client = ClientFor(t.node);
      if (client == nullptr) continue;
      std::string body;
      PutVarint32(&body, g.id);
      PutVarint64(&body, snapshot.epoch);
      body.push_back(static_cast<char>(t.role));
      PutLengthPrefixedSlice(&body, t.peer.host);
      PutVarint32(&body, t.peer.port);
      MsgType resp_type;
      std::string resp_body;
      Status s = client->Call(MsgType::kAssignShard, body, &resp_type,
                              &resp_body);
      if (!s.ok()) clients_.erase(t.node.ToString());
    }
  }
}

}  // namespace cluster
}  // namespace lt
