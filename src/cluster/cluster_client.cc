#include "cluster/cluster_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/cursor.h"
#include "core/db.h"
#include "core/row_codec.h"
#include "util/coding.h"

namespace lt {
namespace cluster {

using wire::ErrCode;
using wire::MsgType;

ClusterClient::ClusterClient(const ClusterClientOptions& options)
    : opts_(options) {}

Status ClusterClient::Connect(const std::string& coord_host,
                              uint16_t coord_port,
                              const ClusterClientOptions& options,
                              std::unique_ptr<ClusterClient>* out) {
  auto cc = std::unique_ptr<ClusterClient>(new ClusterClient(options));
  ClientOptions copts = options.client;
  copts.transport = options.transport;
  LT_RETURN_IF_ERROR(
      Client::Connect(coord_host, coord_port, copts, &cc->coord_));
  LT_RETURN_IF_ERROR(cc->RefreshMap());
  *out = std::move(cc);
  return Status::OK();
}

Status ClusterClient::RefreshMap() {
  MsgType rt;
  std::string rb;
  LT_RETURN_IF_ERROR(coord_->Call(MsgType::kGetShardMap, "", &rt, &rb));
  if (rt != MsgType::kShardMapResult) {
    return Status::NetworkError("coordinator returned no shard map");
  }
  Slice in(rb);
  ShardMap fresh;
  LT_RETURN_IF_ERROR(ShardMap::Decode(&in, &fresh));
  // Never go backwards: a delayed reply must not reinstate a stale map.
  if (fresh.epoch >= map_.epoch) map_ = std::move(fresh);
  return Status::OK();
}

Client* ClusterClient::ClientFor(const Endpoint& ep) {
  const std::string key = ep.ToString();
  auto it = clients_.find(key);
  if (it != clients_.end()) return it->second.get();
  ClientOptions copts = opts_.client;
  copts.transport = opts_.transport;
  copts.max_retries = 0;  // RoutedCall owns retry + map-refresh policy.
  std::unique_ptr<Client> client;
  if (!Client::Connect(ep.host, ep.port, copts, &client).ok()) return nullptr;
  Client* raw = client.get();
  clients_[key] = std::move(client);
  return raw;
}

void ClusterClient::DropClient(const Endpoint& ep) {
  clients_.erase(ep.ToString());
}

void ClusterClient::Backoff(int attempt) {
  int64_t delay = opts_.backoff_initial_ms;
  for (int i = 0; i < attempt && delay < opts_.backoff_max_ms; i++) {
    delay *= 2;
  }
  delay = std::min<int64_t>(delay, opts_.backoff_max_ms);
  if (opts_.client.backoff_sleep) {
    opts_.client.backoff_sleep(delay);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

bool ClusterClient::IsConnectionError(const Status& s) {
  return s.IsNetworkError() || s.IsUnavailable() || s.IsDeadlineExceeded();
}

bool ClusterClient::BodyHasCode(const std::string& body, ErrCode code) {
  return !body.empty() && static_cast<ErrCode>(body[0]) == code;
}

Status ClusterClient::RoutedCall(uint32_t group_id, MsgType op,
                                 const std::string& inner, MsgType* rt,
                                 std::string* rb, int* attempts_out) {
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt <= opts_.max_retries; attempt++) {
    if (attempt > 0) {
      Backoff(attempt - 1);
      RefreshMap();  // Best-effort; stale maps fail fast with kWrongShard.
    }
    const ShardGroupInfo* g = map_.GroupById(group_id);
    if (g == nullptr) {
      return Status::NotFound("no shard group " + std::to_string(group_id));
    }
    const Endpoint primary = g->primary;
    Client* client = ClientFor(primary);
    if (client == nullptr) {
      last = Status::Unavailable("primary unreachable: " + primary.ToString());
      continue;
    }
    std::string body;
    PutVarint32(&body, group_id);
    PutVarint64(&body, map_.epoch);
    body += inner;
    last = client->Call(op, body, rt, rb);
    if (!last.ok()) {
      if (!IsConnectionError(last)) return last;
      DropClient(primary);
      continue;
    }
    if (*rt == MsgType::kError && BodyHasCode(*rb, ErrCode::kWrongShard)) {
      last = Status::Aborted("wrong shard");
      continue;
    }
    if (*rt == MsgType::kError && BodyHasCode(*rb, ErrCode::kServerBusy)) {
      // Replication window full (or draining): give the shipper a chance.
      last = Status::Unavailable("shard busy");
      continue;
    }
    if (attempts_out != nullptr) *attempts_out = attempt;
    return Status::OK();
  }
  return last;
}

Result<std::shared_ptr<const Schema>> ClusterClient::SchemaFor(
    const std::string& table) {
  auto it = schema_cache_.find(table);
  if (it != schema_cache_.end()) return it->second;
  if (map_.groups.empty()) return Status::NotFound("empty shard map");
  std::string inner;
  inner.push_back(static_cast<char>(MsgType::kGetTable));
  PutLengthPrefixedSlice(&inner, table);
  MsgType rt;
  std::string rb;
  LT_RETURN_IF_ERROR(RoutedCall(map_.groups.front().id, MsgType::kRoutedQuery,
                                inner, &rt, &rb));
  if (rt == MsgType::kError) return Client::ErrorFromBody(Slice(rb));
  if (rt != MsgType::kTableInfo) {
    return Status::NetworkError("unexpected response to schema fetch");
  }
  Slice in(rb);
  Schema schema;
  LT_RETURN_IF_ERROR(Schema::DecodeFrom(&in, &schema));
  auto shared = std::make_shared<const Schema>(std::move(schema));
  schema_cache_[table] = shared;
  return shared;
}

Result<std::shared_ptr<const Schema>> ClusterClient::TableSchema(
    const std::string& table) {
  return SchemaFor(table);
}

Status ClusterClient::CreateTable(const std::string& table,
                                  const Schema& schema, Timestamp ttl) {
  if (DB::IsSystemTableName(table)) {
    return Status::InvalidArgument(
        "__sys tables cannot be created through the cluster");
  }
  std::string inner;
  PutLengthPrefixedSlice(&inner, table);
  schema.EncodeTo(&inner);
  PutVarint64(&inner, static_cast<uint64_t>(ttl));
  const ShardMap snapshot = map_;
  for (const ShardGroupInfo& g : snapshot.groups) {
    MsgType rt;
    std::string rb;
    LT_RETURN_IF_ERROR(
        RoutedCall(g.id, MsgType::kRoutedCreate, inner, &rt, &rb));
    if (rt == MsgType::kError) {
      // A rerun after a partial earlier attempt hits AlreadyExists on the
      // groups that got the table; the goal state is reached either way.
      if (BodyHasCode(rb, ErrCode::kAlreadyExists)) continue;
      return Client::ErrorFromBody(Slice(rb));
    }
  }
  return Status::OK();
}

Status ClusterClient::Insert(const std::string& table,
                             const std::vector<Row>& rows) {
  if (DB::IsSystemTableName(table)) {
    return Status::InvalidArgument(
        "__sys tables are not writable through the cluster");
  }
  if (rows.empty()) return Status::OK();
  for (int schema_attempt = 0; schema_attempt < 2; schema_attempt++) {
    LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                        SchemaFor(table));
    // Partition the batch by owning group. Batch atomicity is per group
    // after this point — the cross-group pieces of one caller batch are
    // independent inserts, like the paper's independent shards.
    std::map<uint32_t, std::vector<const Row*>> by_group;
    for (const Row& row : rows) {
      if (!schema->RowMatches(row)) {
        return Status::InvalidArgument("row does not match table schema");
      }
      const ShardGroupInfo* g = map_.GroupForHash(RouteHash(*schema, row));
      if (g == nullptr) return Status::NotFound("shard map coverage gap");
      by_group[g->id].push_back(&row);
    }
    bool schema_changed = false;
    for (const auto& [gid, part] : by_group) {
      std::string inner;
      PutLengthPrefixedSlice(&inner, table);
      PutVarint32(&inner, schema->version());
      PutVarint32(&inner, static_cast<uint32_t>(part.size()));
      for (const Row* row : part) EncodeRow(&inner, *schema, *row);
      MsgType rt;
      std::string rb;
      int attempts = 0;
      LT_RETURN_IF_ERROR(RoutedCall(gid, MsgType::kRoutedInsert, inner, &rt,
                                    &rb, &attempts));
      if (rt == MsgType::kOk) continue;
      if (rt != MsgType::kError) {
        return Status::NetworkError("unexpected response");
      }
      if (BodyHasCode(rb, ErrCode::kSchemaChanged)) {
        schema_changed = true;
        break;
      }
      if (BodyHasCode(rb, ErrCode::kAlreadyExists) && attempts > 0) {
        // The batch landed on an earlier attempt whose connection died
        // before the ack — §3.4.4 key uniqueness turns the blind retry
        // into a duplicate-detection probe.
        continue;
      }
      return Client::ErrorFromBody(Slice(rb));
    }
    if (!schema_changed) return Status::OK();
    schema_cache_.erase(table);
  }
  return Status::Aborted("schema changed repeatedly");
}

Status ClusterClient::QueryGroup(uint32_t group_id, const std::string& table,
                                 const QueryBounds& bounds,
                                 QueryResult* result) {
  result->rows.clear();
  result->more_available = false;
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema, SchemaFor(table));
  std::string inner;
  inner.push_back(static_cast<char>(MsgType::kQuery));
  PutLengthPrefixedSlice(&inner, table);
  PutVarint32(&inner, schema->version());
  wire::EncodeBounds(&inner, *schema, bounds);

  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt <= opts_.max_retries; attempt++) {
    if (attempt > 0) {
      Backoff(attempt - 1);
      RefreshMap();
    }
    const ShardGroupInfo* g = map_.GroupById(group_id);
    if (g == nullptr) {
      return Status::NotFound("no shard group " + std::to_string(group_id));
    }
    const Endpoint primary = g->primary;
    Client* client = ClientFor(primary);
    if (client == nullptr) {
      last = Status::Unavailable("primary unreachable: " + primary.ToString());
      continue;
    }
    std::string body;
    PutVarint32(&body, group_id);
    PutVarint64(&body, map_.epoch);
    body += inner;
    result->rows.clear();
    result->more_available = false;
    bool retry = false;
    Status app_error;
    last = client->CallStream(
        MsgType::kRoutedQuery, body,
        [&](MsgType type, Slice in, bool* done) -> Status {
          if (type == MsgType::kError) {
            const std::string eb = in.ToString();
            if (BodyHasCode(eb, ErrCode::kWrongShard)) {
              retry = true;
            } else {
              app_error = Client::ErrorFromBody(Slice(eb));
            }
            *done = true;
            return Status::OK();
          }
          if (type != MsgType::kQueryChunk) {
            return Status::NetworkError("unexpected response");
          }
          if (in.empty()) return Status::Corruption("bad chunk");
          const uint8_t flags = static_cast<uint8_t>(in[0]);
          in.remove_prefix(1);
          uint32_t version, count;
          if (!GetVarint32(&in, &version) || !GetVarint32(&in, &count)) {
            return Status::Corruption("bad chunk");
          }
          if (version != schema->version()) {
            return Status::Aborted("schema changed mid-query");
          }
          for (uint32_t i = 0; i < count; i++) {
            Row row;
            LT_RETURN_IF_ERROR(DecodeRow(&in, *schema, &row));
            result->rows.push_back(std::move(row));
          }
          if (flags & wire::kChunkFinal) {
            result->more_available = flags & wire::kChunkMoreAvailable;
            *done = true;
          }
          return Status::OK();
        });
    if (!last.ok()) {
      if (!IsConnectionError(last)) return last;
      DropClient(primary);
      continue;
    }
    if (retry) {
      last = Status::Aborted("wrong shard");
      continue;
    }
    if (!app_error.ok()) return app_error;
    return Status::OK();
  }
  return last;
}

Status ClusterClient::Query(const std::string& table,
                            const QueryBounds& bounds, QueryResult* result) {
  result->rows.clear();
  result->more_available = false;
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema, SchemaFor(table));

  // A query whose key bounds pin the same first key cell lives entirely in
  // one group (the routing hash covers only that cell).
  std::vector<uint32_t> group_ids;
  if (bounds.min_key && bounds.max_key && !bounds.min_key->prefix.empty() &&
      !bounds.max_key->prefix.empty()) {
    std::string lo, hi;
    const ColumnType t0 = schema->columns()[0].type;
    EncodeValue(&lo, bounds.min_key->prefix[0], t0);
    EncodeValue(&hi, bounds.max_key->prefix[0], t0);
    if (lo == hi) {
      const ShardGroupInfo* g =
          map_.GroupForHash(RouteHashPrefix(*schema, bounds.min_key->prefix));
      if (g == nullptr) return Status::NotFound("shard map coverage gap");
      group_ids.push_back(g->id);
    }
  }
  if (group_ids.empty()) {
    for (const ShardGroupInfo& g : map_.groups) group_ids.push_back(g.id);
  }

  if (group_ids.size() == 1) {
    return QueryGroup(group_ids[0], table, bounds, result);
  }

  // Fan out, then merge the per-group streams — each is already in key
  // order, and groups partition the key space by series, so the merge heap
  // sees disjoint key sets.
  bool any_more = false;
  std::vector<std::unique_ptr<Cursor>> cursors;
  cursors.reserve(group_ids.size());
  for (uint32_t gid : group_ids) {
    QueryResult part;
    LT_RETURN_IF_ERROR(QueryGroup(gid, table, bounds, &part));
    any_more = any_more || part.more_available;
    if (bounds.direction == Direction::kDescending) {
      // VectorCursor expects ascending storage order; the server streamed
      // rows in scan (descending) order.
      std::reverse(part.rows.begin(), part.rows.end());
    }
    cursors.push_back(std::make_unique<VectorCursor>(std::move(part.rows),
                                                     bounds.direction));
  }
  MergingCursor merge(schema.get(), std::move(cursors), bounds.direction);
  while (merge.Valid()) {
    if (bounds.limit > 0 && result->rows.size() >= bounds.limit) {
      result->more_available = true;
      return Status::OK();
    }
    result->rows.push_back(merge.row());
    LT_RETURN_IF_ERROR(merge.Next());
  }
  LT_RETURN_IF_ERROR(merge.status());
  result->more_available = any_more;
  return Status::OK();
}

Status ClusterClient::QueryAll(const std::string& table,
                               const QueryBounds& bounds,
                               std::vector<Row>* rows) {
  rows->clear();
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema, SchemaFor(table));
  QueryBounds page = bounds;
  const uint64_t want = bounds.limit;  // 0 = all rows.
  while (true) {
    if (want > 0) page.limit = want - rows->size();
    QueryResult result;
    LT_RETURN_IF_ERROR(Query(table, page, &result));
    for (Row& row : result.rows) rows->push_back(std::move(row));
    if (!result.more_available) return Status::OK();
    if (want > 0 && rows->size() >= want) return Status::OK();
    if (rows->empty()) return Status::OK();  // Defensive: no progress.
    Key last_key = schema->KeyOf(rows->back());
    if (page.direction == Direction::kAscending) {
      page.min_key = KeyBound{std::move(last_key), /*inclusive=*/false};
    } else {
      page.max_key = KeyBound{std::move(last_key), /*inclusive=*/false};
    }
  }
}

Status ClusterClient::LatestRow(const std::string& table, const Key& prefix,
                                Row* row, bool* found) {
  *found = false;
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema, SchemaFor(table));
  std::string inner;
  inner.push_back(static_cast<char>(MsgType::kLatestRow));
  PutLengthPrefixedSlice(&inner, table);
  PutVarint32(&inner, schema->version());
  wire::EncodeKeyPrefix(&inner, *schema, prefix);

  std::vector<uint32_t> group_ids;
  if (!prefix.empty()) {
    const ShardGroupInfo* g =
        map_.GroupForHash(RouteHashPrefix(*schema, prefix));
    if (g == nullptr) return Status::NotFound("shard map coverage gap");
    group_ids.push_back(g->id);
  } else {
    for (const ShardGroupInfo& g : map_.groups) group_ids.push_back(g.id);
  }

  Timestamp best_ts = 0;
  for (uint32_t gid : group_ids) {
    MsgType rt;
    std::string rb;
    LT_RETURN_IF_ERROR(
        RoutedCall(gid, MsgType::kRoutedQuery, inner, &rt, &rb));
    if (rt == MsgType::kError) return Client::ErrorFromBody(Slice(rb));
    if (rt != MsgType::kRowResult) {
      return Status::NetworkError("unexpected response");
    }
    Slice in(rb);
    if (in.empty()) return Status::Corruption("bad row result");
    const bool has_row = in[0] != 0;
    in.remove_prefix(1);
    uint32_t version;
    if (!GetVarint32(&in, &version)) {
      return Status::Corruption("bad row result");
    }
    if (version != schema->version()) {
      return Status::Aborted("schema changed mid-request");
    }
    if (!has_row) continue;
    Row cand;
    LT_RETURN_IF_ERROR(DecodeRow(&in, *schema, &cand));
    const Timestamp ts = cand[schema->ts_index()].AsInt();
    if (!*found || ts > best_ts) {
      best_ts = ts;
      *row = std::move(cand);
      *found = true;
    }
  }
  return Status::OK();
}

}  // namespace cluster
}  // namespace lt
