// ReplicaAgent: one cluster node — a DB plus its server, wearing a role.
//
// A node is unassigned until the coordinator pushes a kAssignShard; it then
// serves one shard group as primary or secondary. The primary takes routed
// client traffic (inserts, queries, creates) and replicates to its peer in
// two complementary streams:
//
//   - Whole tablets: flushed tablets are immutable files, so replication is
//     a byte copy — CRC-verified on receipt, loaded and validated, then
//     committed through the same atomic descriptor update a local flush
//     uses (Table::InstallTablet). A periodic kTabletSetSync makes the
//     primary's on-disk set authoritative on the secondary (pruning tablets
//     merged away on the primary) and returns the secondary's actual file
//     lists so the primary's picture self-heals after a secondary restart.
//   - A redo window: acknowledged-but-unflushed rows, shipped as the exact
//     canonicalized insert bodies the primary applied (server-assigned
//     timestamps already substituted), sequence-numbered per stream. The
//     secondary buffers them and replays on promotion, so the §3.1 loss
//     window after a primary crash is only what was acked after the last
//     completed ship round.
//
// The secondary's durable state is therefore always a valid §3.1 prefix of
// the primary's history: tablet installs commit in flush order (ShipOnce
// flushes before shipping, and prunes only after every ship in the round
// landed), and redo replay preserves batch atomicity because each entry is
// one InsertBatch. Streams are identified by a stamp taken at role
// adoption: a primary that restarts (same epoch) starts a new stream, and
// the secondary discards buffered entries from the old one instead of
// misreading the new sequence numbers as duplicates.
#ifndef LITTLETABLE_CLUSTER_AGENT_H_
#define LITTLETABLE_CLUSTER_AGENT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/shard_map.h"
#include "core/db.h"
#include "net/client.h"
#include "net/server.h"

namespace lt {
namespace cluster {

/// Wire codec for a TabletMeta inside replication messages (kShipTablet,
/// kTabletSetSync). Exposed for tests that craft ship frames by hand.
void EncodeTabletMeta(std::string* dst, const TabletMeta& m);
bool DecodeTabletMeta(Slice* in, TabletMeta* m);

struct AgentOptions {
  /// Port to serve on (0 = ephemeral).
  uint16_t port = 0;
  /// Transport for the server and the shipper's peer connection.
  net::Transport* transport = nullptr;
  /// Base server options (port/transport/extension are overridden).
  ServerOptions server;
  /// Template for the shipper's connection to the peer.
  ClientOptions client;
  /// Maximum buffered redo entries on the primary. When the window is
  /// full, routed inserts are rejected with kServerBusy — bounding how
  /// much acknowledged data can sit outside both replicas' disks.
  size_t redo_window = 4096;
  /// Background ship cadence; used only when `background_ship` is set.
  /// Deterministic harnesses drive ShipOnce() themselves.
  bool background_ship = false;
  int ship_interval_ms = 500;
};

class ReplicaAgent {
 public:
  enum class Role : uint8_t { kUnassigned = 0, kPrimary = 1, kSecondary = 2 };

  /// `db` is not owned and must outlive the agent.
  ReplicaAgent(DB* db, const AgentOptions& options);
  ~ReplicaAgent();

  Status Start();
  void Stop();

  uint16_t port() const { return server_ ? server_->port() : 0; }
  LittleTableServer* server() { return server_.get(); }
  DB* db() { return db_; }

  Role role() const;
  uint64_t epoch() const;
  uint32_t group() const;

  /// One replication round (primary only): redo entries → local FlushAll →
  /// missing tablets → set-sync (prune + floor advance). Returns OK only
  /// when every step landed, in which case everything acknowledged before
  /// the call is durable on BOTH nodes. Any failure leaves state
  /// consistent and retryable.
  Status ShipOnce();

  /// Redo entries currently buffered (primary) or pending replay
  /// (secondary) — tests and the chaos oracle.
  size_t redo_size() const;
  uint64_t redo_floor() const;

 private:
  struct RedoEntry {
    uint64_t seq = 0;
    uint8_t kind = 0;  // 1 = insert body, 2 = create-table body.
    std::string body;
  };

  void Handle(wire::MsgType type, Slice body, std::string* out);
  void HandleAssign(Slice body, std::string* out);
  void HandleRoutedInsert(Slice body, std::string* out);
  void HandleRoutedQuery(Slice body, std::string* out);
  void HandleRoutedCreate(Slice body, std::string* out);
  void HandleReplicateRows(Slice body, std::string* out);
  void HandleShipTablet(Slice body, std::string* out);
  void HandleTabletSetSync(Slice body, std::string* out);

  /// Checks the (group, epoch) header of a routed request against the
  /// node's current role. On mismatch writes kWrongShard and returns
  /// false. `need` is the role the request requires.
  bool CheckRouted(Slice* body, Role need, std::string* out);

  /// Rewrites an insert body with server-assigned timestamps substituted,
  /// so the redo copy replays byte-identically. Returns false on any
  /// parse problem (the request is then forwarded untouched — it will
  /// fail dispatch the same way, and nothing gets acked or buffered).
  bool CanonicalizeInsert(Slice body, std::string* canonical);

  void ReplyErr(std::string* out, wire::ErrCode code, const std::string& msg);
  static bool FirstFrameIsOk(const std::string& frames);
  static bool FirstFrameIsErr(const std::string& frames, wire::ErrCode code);

  /// Promotion: replay buffered redo inserts in sequence order, then adopt
  /// the primary role with a fresh stream. mu_ held by caller; released
  /// around the replay.
  void PromoteLocked(std::unique_lock<std::mutex>& lock);

  Client* PeerClientLocked();

  DB* const db_;
  const AgentOptions opts_;
  std::unique_ptr<LittleTableServer> server_;

  mutable std::mutex mu_;
  Role role_ = Role::kUnassigned;
  uint32_t group_ = 0;
  uint64_t epoch_ = 0;
  Endpoint peer_;
  std::unique_ptr<Client> peer_client_;

  // ---- Primary state (guarded by mu_). ----
  uint64_t stream_ = 0;       // Stamped at role adoption.
  uint64_t redo_head_ = 0;    // Last appended sequence number.
  uint64_t redo_floor_ = 0;   // Entries <= floor are durable on the peer.
  uint64_t peer_acked_ = 0;   // Peer's contiguously-stored head.
  std::deque<RedoEntry> redo_;
  // What we believe the peer holds on disk, per table (self-healed from
  // every set-sync reply).
  std::map<std::string, std::vector<TabletMeta>> peer_files_;

  // ---- Secondary state (guarded by mu_). ----
  uint64_t in_stream_ = 0;       // Stream currently being received.
  uint64_t next_expected_ = 1;   // Next sequence number to accept.
  std::deque<RedoEntry> pending_;  // Buffered inserts awaiting promotion.

  std::thread ship_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool stopping_ = false;
};

}  // namespace cluster
}  // namespace lt

#endif  // LITTLETABLE_CLUSTER_AGENT_H_
