// ShardMap: the cluster's versioned routing table (ROADMAP item 1).
//
// The paper's production deployment runs ~400 independent LittleTable
// shards whose placement and failover live outside the database (Fig. 7,
// §5). This header makes that arrangement first-class: the key space is
// split into shard groups by a hash of the first primary-key column (so
// every row of one device/series lands in one group and per-prefix scans
// touch one node), each group has a primary and a secondary endpoint, and
// the whole assignment carries an epoch that bumps on every failover. A
// client routing with a stale epoch is told kWrongShard and refetches.
#ifndef LITTLETABLE_CLUSTER_SHARD_MAP_H_
#define LITTLETABLE_CLUSTER_SHARD_MAP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"
#include "util/slice.h"
#include "util/status.h"

namespace lt {
namespace cluster {

struct Endpoint {
  std::string host;
  uint16_t port = 0;

  bool operator==(const Endpoint& o) const {
    return host == o.host && port == o.port;
  }
  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
};

/// One shard group: a slice of the hash space plus its replica pair.
struct ShardGroupInfo {
  uint32_t id = 0;
  /// Inclusive hash range [hash_begin, hash_end] this group owns.
  uint64_t hash_begin = 0;
  uint64_t hash_end = 0;
  Endpoint primary;
  Endpoint secondary;
};

/// The versioned shard map the coordinator serves (kGetShardMap) and the
/// ClusterClient caches. Groups are kept sorted by hash_begin and must
/// cover the full 64-bit hash space without overlap.
struct ShardMap {
  uint64_t epoch = 0;
  std::vector<ShardGroupInfo> groups;

  void Encode(std::string* dst) const;
  static Status Decode(Slice* in, ShardMap* out);

  /// The group owning `hash`; null if the map has a coverage gap.
  const ShardGroupInfo* GroupForHash(uint64_t hash) const;
  const ShardGroupInfo* GroupById(uint32_t id) const;
};

/// Routing hash: FNV-1a over the value encoding of the row's FIRST primary
/// key column only — all rows of one series share a group, so single-prefix
/// queries (the common §3.1 shape) route to exactly one node.
uint64_t RouteHash(const Schema& schema, const Row& row);
/// Same hash from a key prefix (requires at least one cell).
uint64_t RouteHashPrefix(const Schema& schema, const Key& prefix);

/// Splits the hash space into `n` equal inclusive ranges (helper for tests
/// and the demo; ids are 0..n-1, endpoints left empty).
std::vector<ShardGroupInfo> EvenGroups(uint32_t n);

}  // namespace cluster
}  // namespace lt

#endif  // LITTLETABLE_CLUSTER_SHARD_MAP_H_
