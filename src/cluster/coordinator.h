// Coordinator: holds the cluster's shard map, probes primaries, promotes
// secondaries, and pushes role assignments.
//
// The coordinator is a pure-extension LittleTableServer (no DB attached):
// it answers kGetShardMap with the current map and otherwise only probes.
// Each ProbeOnce round pings every group's primary under a hard deadline
// (answered inline from the server event loop, so a busy worker pool on a
// healthy node cannot fail the probe). A primary that misses
// `fail_threshold` consecutive probes while its secondary is reachable is
// failed over: the epoch bumps, the pair swaps, and the new assignment is
// pushed to every reachable node. Assignments are re-pushed every round —
// idempotent on the receiving agent — so a node that missed its demotion
// while partitioned is demoted as soon as it is reachable again
// (split-brain lasts at most one reachable probe round).
#ifndef LITTLETABLE_CLUSTER_COORDINATOR_H_
#define LITTLETABLE_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "cluster/shard_map.h"
#include "net/client.h"
#include "net/server.h"

namespace lt {
namespace cluster {

struct CoordinatorOptions {
  /// Port for the map-serving endpoint (0 = ephemeral).
  uint16_t port = 0;
  /// Transport for both the server and the probe clients; null = real TCP.
  net::Transport* transport = nullptr;
  /// Per-probe deadline (connect + ping round trip).
  int probe_deadline_ms = 200;
  /// Consecutive failed probes before a primary is failed over.
  int fail_threshold = 3;
  /// Background probe cadence; used only when `background` is set.
  int probe_interval_ms = 500;
  /// Start a background probe thread. Deterministic harnesses leave this
  /// off and drive ProbeOnce() themselves.
  bool background = false;
  /// Template for the probe/assignment clients (transport is overridden).
  ClientOptions client;
};

class Coordinator {
 public:
  explicit Coordinator(const CoordinatorOptions& options);
  ~Coordinator();

  /// Registers a shard group before (or after) Start. Bumps the epoch.
  void AddGroup(uint32_t id, uint64_t hash_begin, uint64_t hash_end,
                const Endpoint& primary, const Endpoint& secondary);

  /// Starts the map server (and the probe thread when configured).
  Status Start();
  void Stop();

  uint16_t port() const { return server_ ? server_->port() : 0; }

  ShardMap Map() const;
  uint64_t epoch() const;

  /// One probe round: ping primaries, promote on threshold (only when the
  /// secondary is itself reachable), push current assignments to every
  /// reachable node. Deterministic: no sleeps, no internal randomness.
  void ProbeOnce();

  /// Total promotions performed (tests/monitoring).
  uint64_t failovers() const {
    return failovers_.load(std::memory_order_relaxed);
  }

 private:
  Client* ClientFor(const Endpoint& ep);
  void PushAssignments();

  const CoordinatorOptions opts_;
  std::unique_ptr<LittleTableServer> server_;

  mutable std::mutex mu_;
  ShardMap map_;
  std::map<uint32_t, int> fail_streak_;  // Consecutive probe misses by group.
  std::atomic<uint64_t> failovers_{0};

  // Probe/assignment connections, keyed by endpoint. Only the probe path
  // (ProbeOnce, one thread at a time) touches these.
  std::map<std::string, std::unique_ptr<Client>> clients_;

  std::thread probe_thread_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool stopping_ = false;
};

}  // namespace cluster
}  // namespace lt

#endif  // LITTLETABLE_CLUSTER_COORDINATOR_H_
