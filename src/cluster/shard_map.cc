#include "cluster/shard_map.h"

#include <algorithm>

#include "util/coding.h"

namespace lt {
namespace cluster {

namespace {
uint64_t Fnv1a(const std::string& data) {
  uint64_t h = 1469598103934665603ull;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void EncodeEndpoint(std::string* dst, const Endpoint& ep) {
  PutLengthPrefixedSlice(dst, ep.host);
  PutVarint32(dst, ep.port);
}

bool DecodeEndpoint(Slice* in, Endpoint* out) {
  Slice host;
  uint32_t port;
  if (!GetLengthPrefixedSlice(in, &host) || !GetVarint32(in, &port) ||
      port > 65535) {
    return false;
  }
  out->host = host.ToString();
  out->port = static_cast<uint16_t>(port);
  return true;
}
}  // namespace

void ShardMap::Encode(std::string* dst) const {
  PutVarint64(dst, epoch);
  PutVarint32(dst, static_cast<uint32_t>(groups.size()));
  for (const ShardGroupInfo& g : groups) {
    PutVarint32(dst, g.id);
    PutFixed64(dst, g.hash_begin);
    PutFixed64(dst, g.hash_end);
    EncodeEndpoint(dst, g.primary);
    EncodeEndpoint(dst, g.secondary);
  }
}

Status ShardMap::Decode(Slice* in, ShardMap* out) {
  uint32_t count;
  if (!GetVarint64(in, &out->epoch) || !GetVarint32(in, &count) ||
      count > 1u << 20) {
    return Status::Corruption("bad shard map");
  }
  out->groups.clear();
  out->groups.reserve(count);
  for (uint32_t i = 0; i < count; i++) {
    ShardGroupInfo g;
    if (!GetVarint32(in, &g.id) || !GetFixed64(in, &g.hash_begin) ||
        !GetFixed64(in, &g.hash_end) || !DecodeEndpoint(in, &g.primary) ||
        !DecodeEndpoint(in, &g.secondary)) {
      return Status::Corruption("bad shard map");
    }
    out->groups.push_back(std::move(g));
  }
  std::sort(out->groups.begin(), out->groups.end(),
            [](const ShardGroupInfo& a, const ShardGroupInfo& b) {
              return a.hash_begin < b.hash_begin;
            });
  return Status::OK();
}

const ShardGroupInfo* ShardMap::GroupForHash(uint64_t hash) const {
  for (const ShardGroupInfo& g : groups) {
    if (hash >= g.hash_begin && hash <= g.hash_end) return &g;
  }
  return nullptr;
}

const ShardGroupInfo* ShardMap::GroupById(uint32_t id) const {
  for (const ShardGroupInfo& g : groups) {
    if (g.id == id) return &g;
  }
  return nullptr;
}

uint64_t RouteHash(const Schema& schema, const Row& row) {
  std::string cell;
  EncodeValue(&cell, row[0], schema.columns()[0].type);
  return Fnv1a(cell);
}

uint64_t RouteHashPrefix(const Schema& schema, const Key& prefix) {
  std::string cell;
  EncodeValue(&cell, prefix[0], schema.columns()[0].type);
  return Fnv1a(cell);
}

std::vector<ShardGroupInfo> EvenGroups(uint32_t n) {
  std::vector<ShardGroupInfo> out;
  if (n == 0) return out;
  const uint64_t width = ~0ull / n;
  uint64_t begin = 0;
  for (uint32_t i = 0; i < n; i++) {
    ShardGroupInfo g;
    g.id = i;
    g.hash_begin = begin;
    g.hash_end = (i + 1 == n) ? ~0ull : begin + width;
    begin = g.hash_end + 1;
    out.push_back(g);
  }
  return out;
}

}  // namespace cluster
}  // namespace lt
