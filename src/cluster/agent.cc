#include "cluster/agent.h"

#include <algorithm>
#include <chrono>

#include "core/row_codec.h"
#include "util/coding.h"
#include "util/crc32c.h"

namespace lt {
namespace cluster {

using wire::ErrCode;
using wire::MsgType;

void EncodeTabletMeta(std::string* dst, const TabletMeta& m) {
  PutLengthPrefixedSlice(dst, m.filename);
  PutVarint64(dst, ZigZagEncode(m.min_ts));
  PutVarint64(dst, ZigZagEncode(m.max_ts));
  PutVarint64(dst, m.file_bytes);
  PutVarint64(dst, m.row_count);
  PutVarint64(dst, ZigZagEncode(m.flushed_at));
  PutVarint32(dst, m.schema_version);
}

bool DecodeTabletMeta(Slice* in, TabletMeta* m) {
  Slice fname;
  uint64_t zz_min, zz_max, zz_flushed;
  if (!GetLengthPrefixedSlice(in, &fname) || !GetVarint64(in, &zz_min) ||
      !GetVarint64(in, &zz_max) || !GetVarint64(in, &m->file_bytes) ||
      !GetVarint64(in, &m->row_count) || !GetVarint64(in, &zz_flushed) ||
      !GetVarint32(in, &m->schema_version)) {
    return false;
  }
  m->filename = fname.ToString();
  m->min_ts = ZigZagDecode(zz_min);
  m->max_ts = ZigZagDecode(zz_max);
  m->flushed_at = ZigZagDecode(zz_flushed);
  return true;
}

namespace {

// The identity triple used for "does the peer hold this tablet": name
// alone is not enough across divergent histories, so size and row count
// ride along everywhere a tablet is referenced without its bytes.
void EncodeTabletRef(std::string* dst, const TabletMeta& m) {
  PutLengthPrefixedSlice(dst, m.filename);
  PutVarint64(dst, m.file_bytes);
  PutVarint64(dst, m.row_count);
}

bool DecodeTabletRef(Slice* in, TabletMeta* m) {
  Slice fname;
  if (!GetLengthPrefixedSlice(in, &fname) ||
      !GetVarint64(in, &m->file_bytes) || !GetVarint64(in, &m->row_count)) {
    return false;
  }
  m->filename = fname.ToString();
  return true;
}

bool SameRef(const TabletMeta& a, const TabletMeta& b) {
  return a.filename == b.filename && a.file_bytes == b.file_bytes &&
         a.row_count == b.row_count;
}

}  // namespace

ReplicaAgent::ReplicaAgent(DB* db, const AgentOptions& options)
    : db_(db), opts_(options) {}

ReplicaAgent::~ReplicaAgent() { Stop(); }

Status ReplicaAgent::Start() {
  ServerOptions sopts = opts_.server;
  sopts.port = opts_.port;
  sopts.transport = opts_.transport;
  sopts.extension = [this](MsgType type, Slice body, std::string* out) {
    Handle(type, body, out);
  };
  server_ = std::make_unique<LittleTableServer>(db_, sopts);
  LT_RETURN_IF_ERROR(server_->Start());
  if (opts_.background_ship) {
    ship_thread_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(bg_mu_);
      while (!stopping_) {
        lock.unlock();
        if (role() == Role::kPrimary) ShipOnce();
        lock.lock();
        bg_cv_.wait_for(lock,
                        std::chrono::milliseconds(opts_.ship_interval_ms),
                        [this] { return stopping_; });
      }
    });
  }
  return Status::OK();
}

void ReplicaAgent::Stop() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    stopping_ = true;
  }
  bg_cv_.notify_all();
  if (ship_thread_.joinable()) ship_thread_.join();
  if (server_) server_->Stop();
  std::lock_guard<std::mutex> lock(mu_);
  peer_client_.reset();
}

ReplicaAgent::Role ReplicaAgent::role() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_;
}

uint64_t ReplicaAgent::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

uint32_t ReplicaAgent::group() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_;
}

size_t ReplicaAgent::redo_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_ == Role::kPrimary ? redo_.size() : pending_.size();
}

uint64_t ReplicaAgent::redo_floor() const {
  std::lock_guard<std::mutex> lock(mu_);
  return redo_floor_;
}

void ReplicaAgent::ReplyErr(std::string* out, ErrCode code,
                            const std::string& msg) {
  std::string body;
  body.push_back(static_cast<char>(code));
  PutLengthPrefixedSlice(&body, msg);
  *out += wire::Frame(MsgType::kError, body);
}

bool ReplicaAgent::FirstFrameIsOk(const std::string& frames) {
  return frames.size() >= 5 &&
         static_cast<MsgType>(frames[4]) == MsgType::kOk;
}

bool ReplicaAgent::FirstFrameIsErr(const std::string& frames, ErrCode code) {
  return frames.size() >= 6 &&
         static_cast<MsgType>(frames[4]) == MsgType::kError &&
         static_cast<ErrCode>(frames[5]) == code;
}

void ReplicaAgent::Handle(MsgType type, Slice body, std::string* out) {
  switch (type) {
    case MsgType::kGetShardMap:
      return ReplyErr(out, ErrCode::kBadRequest, "not a coordinator");
    case MsgType::kAssignShard: return HandleAssign(body, out);
    case MsgType::kRoutedInsert: return HandleRoutedInsert(body, out);
    case MsgType::kRoutedQuery: return HandleRoutedQuery(body, out);
    case MsgType::kRoutedCreate: return HandleRoutedCreate(body, out);
    case MsgType::kReplicateRows: return HandleReplicateRows(body, out);
    case MsgType::kShipTablet: return HandleShipTablet(body, out);
    case MsgType::kTabletSetSync: return HandleTabletSetSync(body, out);
    default:
      return ReplyErr(out, ErrCode::kBadRequest, "unknown cluster opcode");
  }
}

bool ReplicaAgent::CheckRouted(Slice* body, Role need, std::string* out) {
  uint32_t group;
  uint64_t epoch;
  if (!GetVarint32(body, &group) || !GetVarint64(body, &epoch)) {
    ReplyErr(out, ErrCode::kInvalidArgument, "bad routed header");
    return false;
  }
  if (role_ != need || group != group_ || epoch != epoch_) {
    ReplyErr(out, ErrCode::kWrongShard,
             "not serving group " + std::to_string(group) + " at epoch " +
                 std::to_string(epoch));
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Role assignment.

void ReplicaAgent::HandleAssign(Slice body, std::string* out) {
  uint32_t group;
  uint64_t epoch;
  Slice host;
  uint32_t port;
  if (!GetVarint32(&body, &group) || !GetVarint64(&body, &epoch) ||
      body.empty()) {
    return ReplyErr(out, ErrCode::kInvalidArgument, "bad assignment");
  }
  const uint8_t role_byte = static_cast<uint8_t>(body[0]);
  body.remove_prefix(1);
  if ((role_byte != 1 && role_byte != 2) ||
      !GetLengthPrefixedSlice(&body, &host) || !GetVarint32(&body, &port) ||
      port > 65535) {
    return ReplyErr(out, ErrCode::kInvalidArgument, "bad assignment");
  }
  const Role new_role = role_byte == 1 ? Role::kPrimary : Role::kSecondary;

  std::unique_lock<std::mutex> lock(mu_);
  if (epoch < epoch_) {
    return ReplyErr(out, ErrCode::kWrongShard, "stale assignment epoch");
  }
  const Endpoint new_peer{host.ToString(), static_cast<uint16_t>(port)};
  const bool role_change = new_role != role_ || group != group_;
  epoch_ = epoch;
  group_ = group;
  if (!(peer_ == new_peer)) {
    peer_ = new_peer;
    peer_client_.reset();
  }
  if (!role_change) {
    // Same role at a newer epoch (e.g. another group failed over, or a
    // re-push): history is continuous, so replication state survives.
    *out += wire::Frame(MsgType::kOk, "");
    return;
  }
  if (new_role == Role::kPrimary) {
    PromoteLocked(lock);
  } else {
    // Demotion (or fresh join as secondary): unflushed local rows may not
    // be part of the new primary's history — drop them so the on-disk
    // prefix is this node's replication starting point. Tablet divergence
    // is healed by shipping (install-replace) + set-sync pruning.
    role_ = Role::kSecondary;
    for (const std::string& name : db_->ListTables()) {
      if (DB::IsSystemTableName(name)) continue;
      if (std::shared_ptr<Table> t = db_->GetTable(name)) t->DiscardMem();
    }
    pending_.clear();
    in_stream_ = 0;
    next_expected_ = 1;
    redo_.clear();
    redo_head_ = redo_floor_ = peer_acked_ = 0;
    peer_files_.clear();
  }
  *out += wire::Frame(MsgType::kOk, "");
}

void ReplicaAgent::PromoteLocked(std::unique_lock<std::mutex>& lock) {
  // Replay buffered redo entries in sequence order before taking client
  // traffic: each entry is one canonicalized InsertBatch body, so replay
  // preserves batch atomicity and is byte-identical to what the old
  // primary served. A batch whose rows already arrived via a shipped
  // tablet fails AlreadyExists wholesale — the rows are present, so that
  // is success, not conflict.
  std::deque<RedoEntry> replay;
  replay.swap(pending_);
  in_stream_ = 0;
  next_expected_ = 1;
  lock.unlock();
  for (const RedoEntry& e : replay) {
    std::string resp;
    server_->Handle(e.kind == 2 ? MsgType::kCreateTable : MsgType::kInsert,
                    Slice(e.body), &resp);
  }
  lock.lock();
  role_ = Role::kPrimary;
  // A fresh stream id, strictly increasing across this node's primary
  // terms, so a peer that buffered entries from an earlier term (same
  // epoch after a quick crash-restart) can tell the difference.
  const uint64_t now = static_cast<uint64_t>(db_->clock()->Now());
  stream_ = std::max<uint64_t>(now, stream_ + 1);
  redo_.clear();
  redo_head_ = 0;
  redo_floor_ = 0;
  peer_acked_ = 0;
  peer_files_.clear();
}

// ---------------------------------------------------------------------------
// Routed client traffic (primary).

bool ReplicaAgent::CanonicalizeInsert(Slice body, std::string* canonical) {
  Slice in = body;
  Slice name;
  uint32_t version, count;
  if (!GetLengthPrefixedSlice(&in, &name)) return false;
  std::shared_ptr<Table> table = db_->GetTable(name.ToString());
  if (!table) return false;
  std::shared_ptr<const Schema> schema = table->schema();
  if (!GetVarint32(&in, &version) || version != schema->version()) {
    return false;
  }
  if (!GetVarint32(&in, &count) || count > 10u * 1000 * 1000) return false;
  std::string outb;
  PutLengthPrefixedSlice(&outb, name);
  PutVarint32(&outb, version);
  PutVarint32(&outb, count);
  const Timestamp now = db_->clock()->Now();
  for (uint32_t i = 0; i < count; i++) {
    Row row;
    if (!DecodeRow(&in, *schema, &row).ok()) return false;
    if (row[schema->ts_index()].AsInt() == wire::kOmittedTimestamp) {
      row[schema->ts_index()] = Value::Ts(now);
    }
    EncodeRow(&outb, *schema, row);
  }
  *canonical = std::move(outb);
  return true;
}

void ReplicaAgent::HandleRoutedInsert(Slice body, std::string* out) {
  // mu_ held across apply + redo append: redo order must equal the
  // table-apply order or replay could resolve a cross-batch duplicate
  // differently than the primary did.
  std::unique_lock<std::mutex> lock(mu_);
  if (!CheckRouted(&body, Role::kPrimary, out)) return;
  Slice peek = body;
  Slice name;
  if (GetLengthPrefixedSlice(&peek, &name) &&
      DB::IsSystemTableName(name.ToString())) {
    return ReplyErr(out, ErrCode::kInvalidArgument,
                    "__sys tables are not writable through the cluster");
  }
  if (redo_.size() >= opts_.redo_window) {
    // Bounding the window bounds the documented §3.1 loss surface: an
    // insert we cannot buffer for the peer is an insert we refuse to ack.
    return ReplyErr(out, ErrCode::kServerBusy, "replication window full");
  }
  std::string canonical;
  if (!CanonicalizeInsert(body, &canonical)) {
    // Unparseable against the current schema: forward untouched. Dispatch
    // produces the proper error and nothing is acked, so nothing needs
    // buffering.
    server_->Handle(MsgType::kInsert, body, out);
    return;
  }
  std::string resp;
  server_->Handle(MsgType::kInsert, Slice(canonical), &resp);
  if (FirstFrameIsOk(resp)) {
    redo_.push_back(RedoEntry{++redo_head_, 1, canonical});
  }
  *out += resp;
}

void ReplicaAgent::HandleRoutedCreate(Slice body, std::string* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!CheckRouted(&body, Role::kPrimary, out)) return;
  Slice peek = body;
  Slice name;
  if (GetLengthPrefixedSlice(&peek, &name) &&
      DB::IsSystemTableName(name.ToString())) {
    return ReplyErr(out, ErrCode::kInvalidArgument,
                    "__sys tables cannot be created through the cluster");
  }
  if (redo_.size() >= opts_.redo_window) {
    return ReplyErr(out, ErrCode::kServerBusy, "replication window full");
  }
  std::string resp;
  server_->Handle(MsgType::kCreateTable, body, &resp);
  if (FirstFrameIsOk(resp)) {
    redo_.push_back(RedoEntry{++redo_head_, 2, body.ToString()});
  }
  *out += resp;
}

void ReplicaAgent::HandleRoutedQuery(Slice body, std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slice header = body;
    if (!CheckRouted(&header, Role::kPrimary, out)) return;
    body = header;
  }
  if (body.empty()) {
    return ReplyErr(out, ErrCode::kInvalidArgument, "empty routed payload");
  }
  const MsgType inner = static_cast<MsgType>(body[0]);
  body.remove_prefix(1);
  switch (inner) {
    case MsgType::kQuery:
    case MsgType::kLatestRow:
    case MsgType::kGetTable:
    case MsgType::kFlushThrough:
      // Read-only (or idempotent-flush) inner ops execute outside mu_:
      // they never touch replication state, and queries can be slow.
      server_->Handle(inner, body, out);
      return;
    default:
      return ReplyErr(out, ErrCode::kBadRequest,
                      "op not allowed through kRoutedQuery");
  }
}

// ---------------------------------------------------------------------------
// Replication receive path (secondary).

void ReplicaAgent::HandleReplicateRows(Slice body, std::string* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!CheckRouted(&body, Role::kSecondary, out)) return;
  uint64_t stream, floor, first_seq;
  uint32_t count;
  if (!GetVarint64(&body, &stream) || !GetVarint64(&body, &floor) ||
      !GetVarint64(&body, &first_seq) || !GetVarint32(&body, &count)) {
    return ReplyErr(out, ErrCode::kInvalidArgument, "bad replicate body");
  }
  if (stream != in_stream_) {
    // A new primary term: buffered entries from the old stream describe a
    // history that no longer continues — drop them and resynchronize at
    // the sender's floor (everything at or below it reaches us as shipped
    // tablets instead).
    pending_.clear();
    in_stream_ = stream;
    next_expected_ = floor + 1;
  }
  while (!pending_.empty() && pending_.front().seq <= floor) {
    pending_.pop_front();
  }
  if (next_expected_ <= floor) next_expected_ = floor + 1;
  for (uint32_t i = 0; i < count; i++) {
    if (body.empty()) {
      return ReplyErr(out, ErrCode::kInvalidArgument, "bad replicate body");
    }
    const uint8_t kind = static_cast<uint8_t>(body[0]);
    body.remove_prefix(1);
    Slice entry;
    if (!GetLengthPrefixedSlice(&body, &entry)) {
      return ReplyErr(out, ErrCode::kInvalidArgument, "bad replicate body");
    }
    const uint64_t seq = first_seq + i;
    if (seq < next_expected_) continue;  // Duplicate resend.
    if (seq > next_expected_) break;     // Gap; ack below triggers resend.
    Slice peek = entry;
    Slice name;
    if (GetLengthPrefixedSlice(&peek, &name) &&
        DB::IsSystemTableName(name.ToString())) {
      // Never let replicated traffic cross into the reserved namespace.
      return ReplyErr(out, ErrCode::kInvalidArgument,
                      "__sys entry in replication stream");
    }
    if (kind == 2) {
      // Creates apply immediately so shipped tablets always find their
      // table; AlreadyExists (re-replay after a torn round) is fine.
      std::string resp;
      server_->Handle(MsgType::kCreateTable, entry, &resp);
      if (!FirstFrameIsOk(resp) &&
          !FirstFrameIsErr(resp, ErrCode::kAlreadyExists)) {
        break;  // Don't advance past a failed apply; ack forces a resend.
      }
    } else {
      pending_.push_back(RedoEntry{seq, kind, entry.ToString()});
    }
    next_expected_ = seq + 1;
  }
  std::string ack;
  PutVarint64(&ack, next_expected_ - 1);
  *out += wire::Frame(MsgType::kRedoAck, ack);
}

void ReplicaAgent::HandleShipTablet(Slice body, std::string* out) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Slice header = body;
    if (!CheckRouted(&header, Role::kSecondary, out)) return;
    body = header;
  }
  Slice name_s;
  Schema schema;
  uint64_t ttl_u;
  TabletMeta meta;
  uint32_t masked_crc;
  if (!GetLengthPrefixedSlice(&body, &name_s) ||
      !Schema::DecodeFrom(&body, &schema).ok() ||
      !GetVarint64(&body, &ttl_u) || !DecodeTabletMeta(&body, &meta) ||
      !GetFixed32(&body, &masked_crc)) {
    return ReplyErr(out, ErrCode::kInvalidArgument, "bad ship body");
  }
  const std::string name = name_s.ToString();
  if (DB::IsSystemTableName(name)) {
    return ReplyErr(out, ErrCode::kInvalidArgument,
                    "__sys tablets cannot be shipped");
  }
  // The payload is the rest of the body; verify before any disk I/O so a
  // torn or corrupted transfer is rejected whole (the install itself
  // validates again by loading the tablet).
  if (crc32c::Unmask(masked_crc) != crc32c::Value(body.data(), body.size())) {
    return ReplyErr(out, ErrCode::kCorruption, "shipped tablet crc mismatch");
  }
  std::shared_ptr<Table> table = db_->GetTable(name);
  if (!table) {
    TableOptions topts = db_->options().table_defaults;
    topts.ttl = static_cast<Timestamp>(ttl_u);
    Status cs = db_->CreateTable(name, schema, &topts);
    if (!cs.ok() && !cs.IsAlreadyExists()) {
      ReplyErr(out, wire::CodeForStatus(cs), cs.message());
      return;
    }
    table = db_->GetTable(name);
    if (!table) {
      return ReplyErr(out, ErrCode::kNotFound, "table vanished mid-ship");
    }
  }
  Status s = table->InstallTablet(meta, body);
  if (s.ok()) {
    *out += wire::Frame(MsgType::kOk, "");
  } else {
    ReplyErr(out, wire::CodeForStatus(s), s.message());
  }
}

void ReplicaAgent::HandleTabletSetSync(Slice body, std::string* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (!CheckRouted(&body, Role::kSecondary, out)) return;
  uint64_t stream, floor;
  uint32_t ntables;
  if (!GetVarint64(&body, &stream) || !GetVarint64(&body, &floor) ||
      !GetVarint32(&body, &ntables) || ntables > 1u << 20) {
    return ReplyErr(out, ErrCode::kInvalidArgument, "bad set-sync body");
  }
  for (uint32_t t = 0; t < ntables; t++) {
    Slice name_s;
    uint32_t nfiles;
    if (!GetLengthPrefixedSlice(&body, &name_s) ||
        !GetVarint32(&body, &nfiles) || nfiles > 1u << 20) {
      return ReplyErr(out, ErrCode::kInvalidArgument, "bad set-sync body");
    }
    std::vector<TabletMeta> keep;
    keep.reserve(nfiles);
    for (uint32_t f = 0; f < nfiles; f++) {
      TabletMeta m;
      if (!DecodeTabletRef(&body, &m)) {
        return ReplyErr(out, ErrCode::kInvalidArgument, "bad set-sync body");
      }
      keep.push_back(std::move(m));
    }
    const std::string name = name_s.ToString();
    if (DB::IsSystemTableName(name)) continue;
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) continue;  // Nothing local to prune.
    Status s = table->RetainOnlyTablets(keep);
    if (!s.ok()) {
      ReplyErr(out, wire::CodeForStatus(s), s.message());
      return;
    }
  }
  // Adopt the floor: everything at or below it is on our disk now (the
  // sender prunes only after every ship in the round landed), so buffered
  // duplicates can go, and a post-restart stream resumes from here.
  if (stream != in_stream_) {
    pending_.clear();
    in_stream_ = stream;
    next_expected_ = floor + 1;
  } else {
    while (!pending_.empty() && pending_.front().seq <= floor) {
      pending_.pop_front();
    }
    if (next_expected_ <= floor) next_expected_ = floor + 1;
  }
  // Reply with the authoritative local picture so the sender's peer-state
  // self-heals after our restarts: ack head first (same leading field as
  // kRedoAck everywhere), then per-table file lists.
  std::string ack;
  PutVarint64(&ack, next_expected_ - 1);
  std::vector<std::string> names = db_->ListTables();
  std::string tables_body;
  uint32_t ntables_out = 0;
  for (const std::string& name : names) {
    if (DB::IsSystemTableName(name)) continue;
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) continue;
    PutLengthPrefixedSlice(&tables_body, name);
    std::vector<TabletMeta> metas = table->DiskTablets();
    PutVarint32(&tables_body, static_cast<uint32_t>(metas.size()));
    for (const TabletMeta& m : metas) EncodeTabletRef(&tables_body, m);
    ntables_out++;
  }
  PutVarint32(&ack, ntables_out);
  ack += tables_body;
  *out += wire::Frame(MsgType::kRedoAck, ack);
}

// ---------------------------------------------------------------------------
// Ship path (primary).

Client* ReplicaAgent::PeerClientLocked() {
  if (peer_client_) return peer_client_.get();
  if (peer_.host.empty()) return nullptr;
  ClientOptions copts = opts_.client;
  copts.transport = opts_.transport;
  copts.max_retries = 0;  // ShipOnce rounds are the retry policy.
  std::unique_ptr<Client> client;
  if (!Client::Connect(peer_.host, peer_.port, copts, &client).ok()) {
    return nullptr;
  }
  peer_client_ = std::move(client);
  return peer_client_.get();
}

Status ReplicaAgent::ShipOnce() {
  std::unique_lock<std::mutex> lock(mu_);
  if (role_ != Role::kPrimary) {
    return Status::InvalidArgument("not a primary");
  }
  const uint32_t my_group = group_;
  const uint64_t my_epoch = epoch_;
  const uint64_t my_stream = stream_;
  Client* peer = PeerClientLocked();
  if (peer == nullptr) {
    return Status::Unavailable("peer unreachable");
  }
  auto header = [&](std::string* dst) {
    PutVarint32(dst, my_group);
    PutVarint64(dst, my_epoch);
  };
  auto check_still_primary = [&]() {
    return role_ == Role::kPrimary && epoch_ == my_epoch &&
           stream_ == my_stream;
  };
  auto drop_peer = [&](const Status& s) {
    peer_client_.reset();
    return s;
  };

  // Step 1: replicate the redo tail (always sent, even empty — it carries
  // the stream id and floor, which is how a restarted secondary resyncs,
  // and its ack tells us where the peer really is).
  std::string rep;
  header(&rep);
  PutVarint64(&rep, my_stream);
  PutVarint64(&rep, redo_floor_);
  const uint64_t send_from = std::max(peer_acked_, redo_floor_) + 1;
  uint32_t nsend = 0;
  std::string entries;
  for (const RedoEntry& e : redo_) {
    if (e.seq < send_from) continue;
    entries.push_back(static_cast<char>(e.kind));
    PutLengthPrefixedSlice(&entries, e.body);
    nsend++;
  }
  PutVarint64(&rep, send_from);
  PutVarint32(&rep, nsend);
  rep += entries;
  const uint64_t cover = redo_head_;  // Flushed below; shipped as tablets.
  lock.unlock();

  MsgType rt;
  std::string rb;
  Status s = peer->Call(MsgType::kReplicateRows, rep, &rt, &rb);
  lock.lock();
  if (!s.ok()) return drop_peer(s);
  if (rt != MsgType::kRedoAck) {
    return Status::Aborted("peer rejected replication");
  }
  {
    Slice in(rb);
    uint64_t ack;
    if (!GetVarint64(&in, &ack)) {
      return drop_peer(Status::Corruption("bad redo ack"));
    }
    if (!check_still_primary()) return Status::Aborted("role changed");
    // Adopt the peer's answer verbatim — with one request in flight it IS
    // the peer's state, and taking max would mask a peer restart.
    peer_acked_ = ack;
  }
  lock.unlock();

  // Step 2: flush, so the tablet snapshot below covers every redo entry
  // up to `cover`.
  LT_RETURN_IF_ERROR(db_->FlushAll());

  // Step 3: snapshot the target tablet set per table, then ship whatever
  // the peer lacks. The snapshot (one descriptor read per table) is the
  // consistent state the peer converges to this round; tablets merged
  // away mid-round make ExportTablet fail and abort the round, which just
  // retries against a fresh snapshot later.
  struct Target {
    std::string name;
    std::shared_ptr<const Schema> schema;
    Timestamp ttl = 0;
    std::vector<TabletMeta> metas;
  };
  std::vector<Target> targets;
  for (const std::string& name : db_->ListTables()) {
    if (DB::IsSystemTableName(name)) continue;
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) continue;
    Target t;
    t.name = name;
    t.schema = table->schema();
    t.ttl = table->ttl();
    t.metas = table->DiskTablets();
    targets.push_back(std::move(t));
  }
  for (const Target& t : targets) {
    std::shared_ptr<Table> table = db_->GetTable(t.name);
    if (!table) return Status::Aborted("table dropped mid-ship");
    for (const TabletMeta& m : t.metas) {
      bool peer_has = false;
      {
        std::lock_guard<std::mutex> plock(mu_);
        for (const TabletMeta& pm : peer_files_[t.name]) {
          if (SameRef(pm, m)) {
            peer_has = true;
            break;
          }
        }
      }
      if (peer_has) continue;
      TabletMeta meta;
      std::string bytes;
      LT_RETURN_IF_ERROR(table->ExportTablet(m.filename, &meta, &bytes));
      std::string ship;
      header(&ship);
      PutLengthPrefixedSlice(&ship, t.name);
      t.schema->EncodeTo(&ship);
      PutVarint64(&ship, static_cast<uint64_t>(t.ttl));
      EncodeTabletMeta(&ship, meta);
      PutFixed32(&ship,
                 crc32c::Mask(crc32c::Value(bytes.data(), bytes.size())));
      ship += bytes;
      MsgType ship_rt;
      std::string ship_rb;
      s = peer->Call(MsgType::kShipTablet, ship, &ship_rt, &ship_rb);
      if (!s.ok()) {
        std::lock_guard<std::mutex> plock(mu_);
        return drop_peer(s);
      }
      if (ship_rt != MsgType::kOk) {
        return Status::Aborted("peer rejected tablet " + m.filename);
      }
    }
  }

  // Step 4: set-sync — every ship landed, so the snapshot is now a subset
  // of the peer's disk; pruning extras and advancing the floor is safe.
  lock.lock();
  if (!check_still_primary()) return Status::Aborted("role changed");
  const uint64_t new_floor = std::min(cover, peer_acked_);
  std::string sync;
  header(&sync);
  PutVarint64(&sync, my_stream);
  PutVarint64(&sync, new_floor);
  PutVarint32(&sync, static_cast<uint32_t>(targets.size()));
  for (const Target& t : targets) {
    PutLengthPrefixedSlice(&sync, t.name);
    PutVarint32(&sync, static_cast<uint32_t>(t.metas.size()));
    for (const TabletMeta& m : t.metas) EncodeTabletRef(&sync, m);
  }
  lock.unlock();

  s = peer->Call(MsgType::kTabletSetSync, sync, &rt, &rb);
  lock.lock();
  if (!s.ok()) return drop_peer(s);
  if (rt != MsgType::kRedoAck) {
    return Status::Aborted("peer rejected set-sync");
  }
  if (!check_still_primary()) return Status::Aborted("role changed");
  Slice in(rb);
  uint64_t ack;
  uint32_t ntables;
  if (!GetVarint64(&in, &ack) || !GetVarint32(&in, &ntables) ||
      ntables > 1u << 20) {
    return drop_peer(Status::Corruption("bad set-sync reply"));
  }
  std::map<std::string, std::vector<TabletMeta>> fresh;
  for (uint32_t t = 0; t < ntables; t++) {
    Slice name_s;
    uint32_t nfiles;
    if (!GetLengthPrefixedSlice(&in, &name_s) ||
        !GetVarint32(&in, &nfiles) || nfiles > 1u << 20) {
      return drop_peer(Status::Corruption("bad set-sync reply"));
    }
    std::vector<TabletMeta>& files = fresh[name_s.ToString()];
    files.reserve(nfiles);
    for (uint32_t f = 0; f < nfiles; f++) {
      TabletMeta m;
      if (!DecodeTabletRef(&in, &m)) {
        return drop_peer(Status::Corruption("bad set-sync reply"));
      }
      files.push_back(std::move(m));
    }
  }
  // The reply is the peer's real disk state — adopt it wholesale so a
  // secondary restart (losing nothing durable, but possibly installs we
  // recorded optimistically) heals within one round.
  peer_files_ = std::move(fresh);
  peer_acked_ = std::max(peer_acked_, ack);
  if (new_floor > redo_floor_) {
    redo_floor_ = new_floor;
    while (!redo_.empty() && redo_.front().seq <= redo_floor_) {
      redo_.pop_front();
    }
  }
  return Status::OK();
}

}  // namespace cluster
}  // namespace lt
