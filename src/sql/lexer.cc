#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

namespace lt {
namespace sql {

bool Token::Is(const char* word) const {
  if (type != TokenType::kIdentifier) return false;
  size_t i = 0;
  for (; word[i] != '\0' && i < text.size(); i++) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return word[i] == '\0' && i == text.size();
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Status Tokenize(const std::string& input, std::vector<Token>* tokens) {
  tokens->clear();
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    Token tok;
    tok.offset = i;

    // Comments: -- to end of line.
    if (c == '-' && i + 1 < n && input[i + 1] == '-') {
      while (i < n && input[i] != '\n') i++;
      continue;
    }

    // Blob literal x'0afb'.
    if ((c == 'x' || c == 'X') && i + 1 < n && input[i + 1] == '\'') {
      i += 2;
      std::string bytes;
      while (i + 1 < n && input[i] != '\'') {
        int hi = HexDigit(input[i]), lo = HexDigit(input[i + 1]);
        if (hi < 0 || lo < 0) {
          return Status::InvalidArgument("bad blob literal at offset " +
                                         std::to_string(tok.offset));
        }
        bytes.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      }
      if (i >= n || input[i] != '\'') {
        return Status::InvalidArgument("unterminated blob literal");
      }
      i++;
      tok.type = TokenType::kBlob;
      tok.text = std::move(bytes);
      tokens->push_back(std::move(tok));
      continue;
    }

    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) i++;
      tok.type = TokenType::kIdentifier;
      tok.text = input.substr(start, i - start);
      tokens->push_back(std::move(tok));
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(input[i])) ||
                       input[i] == '.' || input[i] == 'e' || input[i] == 'E' ||
                       ((input[i] == '+' || input[i] == '-') && i > start &&
                        (input[i - 1] == 'e' || input[i - 1] == 'E')))) {
        if (input[i] == '.' || input[i] == 'e' || input[i] == 'E') {
          is_float = true;
        }
        i++;
      }
      std::string num = input.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_value = strtod(num.c_str(), nullptr);
      } else {
        tok.type = TokenType::kInteger;
        tok.int_value = strtoll(num.c_str(), nullptr, 10);
      }
      tok.text = std::move(num);
      tokens->push_back(std::move(tok));
      continue;
    }

    if (c == '\'') {
      i++;
      std::string text;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {  // Escaped quote.
            text.push_back('\'');
            i += 2;
            continue;
          }
          break;
        }
        text.push_back(input[i++]);
      }
      if (i >= n) return Status::InvalidArgument("unterminated string literal");
      i++;  // Closing quote.
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens->push_back(std::move(tok));
      continue;
    }

    // Two-character operators.
    if (i + 1 < n) {
      std::string two = input.substr(i, 2);
      if (two == "<=" || two == ">=" || two == "!=" || two == "<>") {
        tok.type = TokenType::kSymbol;
        tok.text = two == "<>" ? "!=" : two;
        tokens->push_back(std::move(tok));
        i += 2;
        continue;
      }
    }

    static const char kSingles[] = "(),;*=<>+-";
    bool matched = false;
    for (char s : kSingles) {
      if (c == s && s != '\0') {
        tok.type = TokenType::kSymbol;
        tok.text = std::string(1, c);
        tokens->push_back(std::move(tok));
        i++;
        matched = true;
        break;
      }
    }
    if (matched) continue;

    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens->push_back(std::move(end));
  return Status::OK();
}

}  // namespace sql
}  // namespace lt
