// SqlBackend: the storage interface the SQL executor runs against. Two
// implementations: embedded (directly on a DB, as the server's own tools
// use) and remote (through a Client, the way the paper's SQLite adaptor
// fronts the TCP protocol).
#ifndef LITTLETABLE_SQL_BACKEND_H_
#define LITTLETABLE_SQL_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "core/db.h"
#include "net/client.h"

namespace lt {
namespace sql {

class SqlBackend {
 public:
  virtual ~SqlBackend() = default;

  virtual Result<std::shared_ptr<const Schema>> GetSchema(
      const std::string& table) = 0;
  virtual Status CreateTable(const std::string& table, const Schema& schema,
                             Timestamp ttl) = 0;
  virtual Status DropTable(const std::string& table) = 0;
  virtual Status Insert(const std::string& table,
                        const std::vector<Row>& rows) = 0;
  /// Complete result for the bounds (paginating past server limits).
  /// `trace` (optional) accumulates the query's execution trace when the
  /// backend can observe it (embedded DB; the wire protocol does not carry
  /// traces, so the remote backend leaves it untouched).
  virtual Status QueryAll(const std::string& table, const QueryBounds& bounds,
                          std::vector<Row>* rows,
                          QueryTrace* trace = nullptr) = 0;
  /// Latest row whose key begins with `prefix` (§3.4.5).
  virtual Status LatestRow(const std::string& table, const Key& prefix,
                           Row* row, bool* found) = 0;
  /// Flushes tablets holding rows at or before ts (§4.1.2 extension).
  virtual Status FlushThrough(const std::string& table, Timestamp ts) = 0;
  /// The time NOW() binds to.
  virtual Timestamp Now() = 0;
};

/// Runs statements directly against an embedded DB.
class DbBackend final : public SqlBackend {
 public:
  explicit DbBackend(DB* db) : db_(db) {}

  Result<std::shared_ptr<const Schema>> GetSchema(
      const std::string& table) override;
  Status CreateTable(const std::string& table, const Schema& schema,
                     Timestamp ttl) override;
  Status DropTable(const std::string& table) override;
  Status Insert(const std::string& table, const std::vector<Row>& rows) override;
  Status QueryAll(const std::string& table, const QueryBounds& bounds,
                  std::vector<Row>* rows, QueryTrace* trace = nullptr) override;
  Status LatestRow(const std::string& table, const Key& prefix, Row* row,
                   bool* found) override;
  Status FlushThrough(const std::string& table, Timestamp ts) override;
  Timestamp Now() override { return db_->clock()->Now(); }

 private:
  DB* const db_;
};

/// Runs statements through a network Client.
class ClientBackend final : public SqlBackend {
 public:
  ClientBackend(Client* client, std::shared_ptr<Clock> clock)
      : client_(client), clock_(std::move(clock)) {}

  Result<std::shared_ptr<const Schema>> GetSchema(
      const std::string& table) override {
    return client_->TableSchema(table);
  }
  Status CreateTable(const std::string& table, const Schema& schema,
                     Timestamp ttl) override {
    return client_->CreateTable(table, schema, ttl);
  }
  Status DropTable(const std::string& table) override {
    return client_->DropTable(table);
  }
  Status Insert(const std::string& table,
                const std::vector<Row>& rows) override {
    return client_->Insert(table, rows);
  }
  Status QueryAll(const std::string& table, const QueryBounds& bounds,
                  std::vector<Row>* rows,
                  QueryTrace* trace = nullptr) override {
    (void)trace;  // The wire protocol does not carry traces.
    return client_->QueryAll(table, bounds, rows);
  }
  Status LatestRow(const std::string& table, const Key& prefix, Row* row,
                   bool* found) override {
    return client_->LatestRow(table, prefix, row, found);
  }
  Status FlushThrough(const std::string& table, Timestamp ts) override {
    return client_->FlushThrough(table, ts);
  }
  Timestamp Now() override { return clock_->Now(); }

 private:
  Client* const client_;
  std::shared_ptr<Clock> clock_;
};

}  // namespace sql
}  // namespace lt

#endif  // LITTLETABLE_SQL_BACKEND_H_
