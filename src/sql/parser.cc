#include <cstdlib>

#include "sql/ast.h"
#include "sql/lexer.h"

namespace lt {
namespace sql {
namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (Accept("CREATE")) return ParseCreate();
    if (Accept("DROP")) return ParseDrop();
    if (Accept("INSERT")) return ParseInsert();
    if (Accept("SELECT")) return ParseSelect();
    return Error("expected CREATE, DROP, INSERT, or SELECT");
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool Accept(const char* word) {
    if (Peek().Is(word)) {
      pos_++;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (Peek().IsSymbol(sym)) {
      pos_++;
      return true;
    }
    return false;
  }

  Status Expect(const char* word) {
    if (Accept(word)) return Status::OK();
    return Error("expected " + std::string(word)).status();
  }
  Status ExpectSymbol(const char* sym) {
    if (AcceptSymbol(sym)) return Status::OK();
    return Error("expected '" + std::string(sym) + "'").status();
  }

  Result<Statement> Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " near offset " + std::to_string(Peek().offset) +
        (Peek().text.empty() ? "" : " (at \"" + Peek().text + "\")"));
  }

  Result<std::string> Identifier(const char* what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error(std::string("expected ") + what).status();
    }
    return Next().text;
  }

  // Literal := [-] number | 'string' | x'blob' | NOW() [(+|-) integer]
  //            | DEFAULT
  Result<Literal> ParseLiteral() {
    Literal lit;
    if (Accept("NOW")) {
      LT_RETURN_IF_ERROR(ExpectSymbol("("));
      LT_RETURN_IF_ERROR(ExpectSymbol(")"));
      lit.kind = Literal::Kind::kNow;
      // Offsets: NOW() + n or NOW() - n (microseconds).
      if (Peek().IsSymbol("+") || Peek().IsSymbol("-")) {
        bool negative = Next().text == "-";
        if (Peek().type != TokenType::kInteger) {
          return Error("expected integer after NOW() +/-").status();
        }
        int64_t n = Next().int_value;
        lit.now_offset = negative ? -n : n;
      }
      return lit;
    }
    if (Accept("DEFAULT")) {
      lit.kind = Literal::Kind::kDefault;
      return lit;
    }
    bool negative = false;
    if (Peek().IsSymbol("-")) {
      negative = true;
      pos_++;
    }
    const Token& tok = Next();
    switch (tok.type) {
      case TokenType::kInteger:
        lit.kind = Literal::Kind::kInteger;
        lit.int_value = negative ? -tok.int_value : tok.int_value;
        return lit;
      case TokenType::kFloat:
        lit.kind = Literal::Kind::kFloat;
        lit.float_value = negative ? -tok.float_value : tok.float_value;
        return lit;
      case TokenType::kString:
        if (negative) return Error("cannot negate a string").status();
        lit.kind = Literal::Kind::kString;
        lit.text = tok.text;
        return lit;
      case TokenType::kBlob:
        if (negative) return Error("cannot negate a blob").status();
        lit.kind = Literal::Kind::kBlob;
        lit.text = tok.text;
        return lit;
      default:
        pos_--;
        return Error("expected literal").status();
    }
  }

  Result<ColumnType> ParseColumnType() {
    LT_ASSIGN_OR_RETURN(std::string name, Identifier("column type"));
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    ColumnType type;
    LT_RETURN_IF_ERROR(ColumnTypeFromName(name, &type));
    return type;
  }

  // Duration := integer [us|s|m|h|d|w]  (bare integers are microseconds)
  Result<Timestamp> ParseDuration() {
    if (Peek().type != TokenType::kInteger) {
      return Error("expected duration").status();
    }
    int64_t n = Next().int_value;
    if (Peek().type == TokenType::kIdentifier) {
      const Token& unit = Next();
      if (unit.Is("us")) {
      } else if (unit.Is("s")) {
        n *= kMicrosPerSecond;
      } else if (unit.Is("m")) {
        n *= kMicrosPerMinute;
      } else if (unit.Is("h")) {
        n *= kMicrosPerHour;
      } else if (unit.Is("d")) {
        n *= kMicrosPerDay;
      } else if (unit.Is("w")) {
        n *= kMicrosPerWeek;
      } else {
        return Error("unknown duration unit \"" + unit.text + "\"").status();
      }
    }
    return static_cast<Timestamp>(n);
  }

  Result<Statement> ParseCreate() {
    LT_RETURN_IF_ERROR(Expect("TABLE"));
    CreateTableStmt stmt;
    LT_ASSIGN_OR_RETURN(stmt.table, Identifier("table name"));
    LT_RETURN_IF_ERROR(ExpectSymbol("("));
    bool saw_primary_key = false;
    while (true) {
      if (Accept("PRIMARY")) {
        LT_RETURN_IF_ERROR(Expect("KEY"));
        LT_RETURN_IF_ERROR(ExpectSymbol("("));
        do {
          LT_ASSIGN_OR_RETURN(std::string key, Identifier("key column"));
          stmt.key_names.push_back(std::move(key));
        } while (AcceptSymbol(","));
        LT_RETURN_IF_ERROR(ExpectSymbol(")"));
        saw_primary_key = true;
      } else {
        Column col;
        LT_ASSIGN_OR_RETURN(col.name, Identifier("column name"));
        LT_ASSIGN_OR_RETURN(col.type, ParseColumnType());
        col.default_value = DefaultValueFor(col.type);
        if (Accept("DEFAULT")) {
          LT_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
          LT_ASSIGN_OR_RETURN(col.default_value,
                              lit.Bind(col.type, 0, DefaultValueFor(col.type)));
        }
        stmt.columns.push_back(std::move(col));
      }
      if (AcceptSymbol(",")) continue;
      LT_RETURN_IF_ERROR(ExpectSymbol(")"));
      break;
    }
    if (!saw_primary_key) {
      return Error("CREATE TABLE requires a PRIMARY KEY clause").status();
    }
    if (Accept("WITH")) {
      LT_RETURN_IF_ERROR(Expect("TTL"));
      LT_ASSIGN_OR_RETURN(stmt.ttl, ParseDuration());
    }
    LT_RETURN_IF_ERROR(End());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDrop() {
    LT_RETURN_IF_ERROR(Expect("TABLE"));
    DropTableStmt stmt;
    LT_ASSIGN_OR_RETURN(stmt.table, Identifier("table name"));
    LT_RETURN_IF_ERROR(End());
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    LT_RETURN_IF_ERROR(Expect("INTO"));
    InsertStmt stmt;
    LT_ASSIGN_OR_RETURN(stmt.table, Identifier("table name"));
    if (AcceptSymbol("(")) {
      do {
        LT_ASSIGN_OR_RETURN(std::string col, Identifier("column name"));
        stmt.columns.push_back(std::move(col));
      } while (AcceptSymbol(","));
      LT_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    LT_RETURN_IF_ERROR(Expect("VALUES"));
    do {
      LT_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<Literal> row;
      do {
        LT_ASSIGN_OR_RETURN(Literal lit, ParseLiteral());
        row.push_back(std::move(lit));
      } while (AcceptSymbol(","));
      LT_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));
    LT_RETURN_IF_ERROR(End());
    return Statement(std::move(stmt));
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.star = true;
      return item;
    }
    struct AggName {
      const char* word;
      AggFunc func;
    };
    static const AggName kAggs[] = {{"COUNT", AggFunc::kCount},
                                    {"SUM", AggFunc::kSum},
                                    {"MIN", AggFunc::kMin},
                                    {"MAX", AggFunc::kMax},
                                    {"AVG", AggFunc::kAvg}};
    for (const AggName& agg : kAggs) {
      if (Peek().Is(agg.word) && tokens_[pos_ + 1].IsSymbol("(")) {
        pos_ += 2;
        item.func = agg.func;
        if (AcceptSymbol("*")) {
          if (agg.func != AggFunc::kCount) {
            return Error("only COUNT accepts *").status();
          }
          item.star = true;
        } else {
          LT_ASSIGN_OR_RETURN(item.column, Identifier("aggregate column"));
        }
        LT_RETURN_IF_ERROR(ExpectSymbol(")"));
        return item;
      }
    }
    LT_ASSIGN_OR_RETURN(item.column, Identifier("column name"));
    return item;
  }

  Result<Statement> ParseSelect() {
    SelectStmt stmt;
    do {
      LT_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      stmt.items.push_back(std::move(item));
    } while (AcceptSymbol(","));
    LT_RETURN_IF_ERROR(Expect("FROM"));
    LT_ASSIGN_OR_RETURN(stmt.table, Identifier("table name"));

    if (Accept("WHERE")) {
      do {
        Condition cond;
        LT_ASSIGN_OR_RETURN(cond.column, Identifier("column name"));
        if (AcceptSymbol("=")) cond.op = CompareOp::kEq;
        else if (AcceptSymbol("!=")) cond.op = CompareOp::kNe;
        else if (AcceptSymbol("<=")) cond.op = CompareOp::kLe;
        else if (AcceptSymbol("<")) cond.op = CompareOp::kLt;
        else if (AcceptSymbol(">=")) cond.op = CompareOp::kGe;
        else if (AcceptSymbol(">")) cond.op = CompareOp::kGt;
        else return Error("expected comparison operator");
        LT_ASSIGN_OR_RETURN(cond.value, ParseLiteral());
        stmt.where.push_back(std::move(cond));
      } while (Accept("AND"));
    }

    if (Accept("GROUP")) {
      LT_RETURN_IF_ERROR(Expect("BY"));
      do {
        LT_ASSIGN_OR_RETURN(std::string col, Identifier("group-by column"));
        stmt.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }

    if (Accept("ORDER")) {
      LT_RETURN_IF_ERROR(Expect("BY"));
      // Results are always in primary-key order (§3.1); ORDER BY KEY picks
      // the direction.
      LT_RETURN_IF_ERROR(Expect("KEY"));
      if (Accept("DESC")) stmt.order_descending = true;
      else Accept("ASC");
    }

    if (Accept("LIMIT")) {
      if (Peek().type != TokenType::kInteger || Peek().int_value < 0) {
        return Error("expected non-negative LIMIT");
      }
      stmt.limit = static_cast<uint64_t>(Next().int_value);
    }
    LT_RETURN_IF_ERROR(End());
    return Statement(std::move(stmt));
  }

  Status End() {
    AcceptSymbol(";");
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input").status();
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Literal::Bind(ColumnType type, Timestamp now,
                            const Value& dflt) const {
  switch (kind) {
    case Kind::kDefault:
      return dflt;
    case Kind::kNow:
      if (type != ColumnType::kTimestamp) {
        return Status::InvalidArgument("NOW() only binds to timestamps");
      }
      return Value::Ts(now + now_offset);
    case Kind::kInteger:
      switch (type) {
        case ColumnType::kInt32:
          if (int_value < INT32_MIN || int_value > INT32_MAX) {
            return Status::InvalidArgument("integer out of int32 range");
          }
          return Value::Int32(static_cast<int32_t>(int_value));
        case ColumnType::kInt64:
          return Value::Int64(int_value);
        case ColumnType::kTimestamp:
          return Value::Ts(int_value);
        case ColumnType::kDouble:
          return Value::Double(static_cast<double>(int_value));
        default:
          return Status::InvalidArgument("integer literal for non-numeric column");
      }
    case Kind::kFloat:
      if (type != ColumnType::kDouble) {
        return Status::InvalidArgument("float literal for non-double column");
      }
      return Value::Double(float_value);
    case Kind::kString:
      if (type == ColumnType::kString) return Value::String(text);
      if (type == ColumnType::kBlob) return Value::Blob(text);
      return Status::InvalidArgument("string literal for non-text column");
    case Kind::kBlob:
      if (type != ColumnType::kBlob) {
        return Status::InvalidArgument("blob literal for non-blob column");
      }
      return Value::Blob(text);
  }
  return Status::InvalidArgument("bad literal");
}

std::string SelectItem::DisplayName() const {
  switch (func) {
    case AggFunc::kNone:
      return star ? "*" : column;
    case AggFunc::kCount:
      return star ? "count(*)" : "count(" + column + ")";
    case AggFunc::kSum:
      return "sum(" + column + ")";
    case AggFunc::kMin:
      return "min(" + column + ")";
    case AggFunc::kMax:
      return "max(" + column + ")";
    case AggFunc::kAvg:
      return "avg(" + column + ")";
  }
  return column;
}

Result<Statement> Parse(const std::string& sql) {
  std::vector<Token> tokens;
  LT_RETURN_IF_ERROR(Tokenize(sql, &tokens));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

}  // namespace sql
}  // namespace lt
