// SqlSession: parses and executes LittleTable SQL.
//
// The planner converts a SELECT's WHERE conjunction into the engine's native
// query shape — the two-dimensional bounding box of §3.1:
//   - equality conditions on a leading run of primary-key columns become the
//     shared key prefix of both bounds;
//   - range conditions on the next key column extend one bound each;
//   - conditions on the ts column become the timestamp dimension;
//   - everything else is applied as a row filter.
// Because the engine streams rows sorted by primary key, GROUP BY on a
// key-column prefix aggregates without re-sorting — exactly how the paper's
// adaptor computes per-device sums from a (network, device, ts) table
// (§3.1's example).
#ifndef LITTLETABLE_SQL_EXECUTOR_H_
#define LITTLETABLE_SQL_EXECUTOR_H_

#include <string>
#include <vector>

#include "core/query_trace.h"
#include "sql/ast.h"
#include "sql/backend.h"

namespace lt {
namespace sql {

/// Result of executing one statement.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<ColumnType> types;
  std::vector<Row> rows;
  /// Rows inserted (INSERT statements).
  uint64_t rows_affected = 0;
  /// Execution trace (SELECT statements against an embedded backend;
  /// rows_returned and elapsed_micros are filled for every SELECT).
  QueryTrace trace;

  /// Renders an ASCII table for CLIs and examples.
  std::string ToString() const;
};

class SqlSession {
 public:
  /// `backend` must outlive the session.
  explicit SqlSession(SqlBackend* backend) : backend_(backend) {}

  /// Parses and executes one statement.
  Result<ResultSet> Execute(const std::string& statement);

 private:
  Result<ResultSet> ExecuteCreate(const CreateTableStmt& stmt);
  Result<ResultSet> ExecuteDrop(const DropTableStmt& stmt);
  Result<ResultSet> ExecuteInsert(const InsertStmt& stmt);
  Result<ResultSet> ExecuteSelect(const SelectStmt& stmt);

  SqlBackend* const backend_;
};

}  // namespace sql
}  // namespace lt

#endif  // LITTLETABLE_SQL_EXECUTOR_H_
