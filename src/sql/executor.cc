#include "sql/executor.h"

#include <algorithm>

#include "net/wire.h"  // kOmittedTimestamp
#include "util/clock.h"

namespace lt {
namespace sql {
namespace {

bool EvalCompare(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kEq: return cmp == 0;
    case CompareOp::kNe: return cmp != 0;
    case CompareOp::kLt: return cmp < 0;
    case CompareOp::kLe: return cmp <= 0;
    case CompareOp::kGt: return cmp > 0;
    case CompareOp::kGe: return cmp >= 0;
  }
  return false;
}

/// A WHERE condition bound to a column index and typed value.
struct BoundCondition {
  size_t column_index;
  CompareOp op;
  Value value;
};

bool RowPasses(const Row& row, const std::vector<BoundCondition>& conds) {
  for (const BoundCondition& c : conds) {
    if (!EvalCompare(c.op, row[c.column_index].Compare(c.value))) return false;
  }
  return true;
}

/// Streaming aggregate state for one select item within one group.
struct AggState {
  uint64_t count = 0;
  int64_t int_sum = 0;
  double dbl_sum = 0;
  Value min, max;
  bool has_minmax = false;

  void Add(const Value& v, bool is_double) {
    count++;
    if (!v.is_bytes()) {  // MIN/MAX apply to strings; sums never do.
      if (is_double) dbl_sum += v.dbl();
      else int_sum += v.AsInt();
    }
    if (!has_minmax || v.Compare(min) < 0) min = v;
    if (!has_minmax || v.Compare(max) > 0) max = v;
    has_minmax = true;
  }
};

}  // namespace

std::string ResultSet::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns.size(); i++) {
    if (i) out += " | ";
    out += columns[i];
  }
  if (!columns.empty()) out += "\n";
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size(); i++) {
      if (i) out += " | ";
      out += row[i].ToString(types[i]);
    }
    out += "\n";
  }
  if (rows_affected > 0) {
    out += "(" + std::to_string(rows_affected) + " rows affected)\n";
  }
  return out;
}

Result<ResultSet> SqlSession::Execute(const std::string& statement) {
  LT_ASSIGN_OR_RETURN(Statement stmt, Parse(statement));
  if (auto* create = std::get_if<CreateTableStmt>(&stmt)) {
    return ExecuteCreate(*create);
  }
  if (auto* drop = std::get_if<DropTableStmt>(&stmt)) {
    return ExecuteDrop(*drop);
  }
  if (auto* insert = std::get_if<InsertStmt>(&stmt)) {
    return ExecuteInsert(*insert);
  }
  return ExecuteSelect(std::get<SelectStmt>(stmt));
}

Result<ResultSet> SqlSession::ExecuteCreate(const CreateTableStmt& stmt) {
  // Reorder columns so the primary key leads, in declared key order — the
  // schema's physical layout is the clustering developers chose (§3.1).
  std::vector<Column> ordered;
  std::vector<Column> rest = stmt.columns;
  for (const std::string& key : stmt.key_names) {
    auto it = std::find_if(rest.begin(), rest.end(),
                           [&](const Column& c) { return c.name == key; });
    if (it == rest.end()) {
      return Status::InvalidArgument("PRIMARY KEY names unknown column: " + key);
    }
    ordered.push_back(*it);
    rest.erase(it);
  }
  size_t num_key = ordered.size();
  for (Column& c : rest) ordered.push_back(std::move(c));
  Schema schema(std::move(ordered), num_key);
  LT_RETURN_IF_ERROR(schema.Validate());
  LT_RETURN_IF_ERROR(backend_->CreateTable(stmt.table, schema, stmt.ttl));
  return ResultSet{};
}

Result<ResultSet> SqlSession::ExecuteDrop(const DropTableStmt& stmt) {
  LT_RETURN_IF_ERROR(backend_->DropTable(stmt.table));
  return ResultSet{};
}

Result<ResultSet> SqlSession::ExecuteInsert(const InsertStmt& stmt) {
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                      backend_->GetSchema(stmt.table));
  const Timestamp now = backend_->Now();

  // Map the statement's column list to schema indexes.
  std::vector<int> targets;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < schema->num_columns(); i++) {
      targets.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt.columns) {
      int idx = schema->FindColumn(name);
      if (idx < 0) return Status::InvalidArgument("unknown column: " + name);
      targets.push_back(idx);
    }
  }

  std::vector<Row> rows;
  rows.reserve(stmt.rows.size());
  for (const std::vector<Literal>& lits : stmt.rows) {
    if (lits.size() != targets.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    // Start from defaults; an unlisted ts column means "server assigns"
    // (§3.1), which the engine path resolves to now.
    Row row;
    std::vector<bool> provided(schema->num_columns(), false);
    for (size_t i = 0; i < schema->num_columns(); i++) {
      row.push_back(schema->columns()[i].default_value);
    }
    for (size_t i = 0; i < targets.size(); i++) {
      const Column& col = schema->columns()[targets[i]];
      LT_ASSIGN_OR_RETURN(Value v,
                          lits[i].Bind(col.type, now, col.default_value));
      row[targets[i]] = std::move(v);
      provided[targets[i]] = true;
    }
    // Unprovided key columns other than ts are an error; unprovided ts
    // means current time.
    for (size_t i = 0; i + 1 < schema->num_key_columns(); i++) {
      if (!provided[i]) {
        return Status::InvalidArgument("key column not provided: " +
                                       schema->columns()[i].name);
      }
    }
    if (!provided[schema->ts_index()] ||
        row[schema->ts_index()].AsInt() == wire::kOmittedTimestamp) {
      row[schema->ts_index()] = Value::Ts(now);
    }
    rows.push_back(std::move(row));
  }
  LT_RETURN_IF_ERROR(backend_->Insert(stmt.table, rows));
  ResultSet rs;
  rs.rows_affected = rows.size();
  return rs;
}

Result<ResultSet> SqlSession::ExecuteSelect(const SelectStmt& stmt) {
  const Timestamp select_start = MonotonicMicros();
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                      backend_->GetSchema(stmt.table));
  const Timestamp now = backend_->Now();

  // ---- Bind WHERE conditions. ----
  std::vector<BoundCondition> conds;
  for (const Condition& c : stmt.where) {
    int idx = schema->FindColumn(c.column);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + c.column);
    const Column& col = schema->columns()[idx];
    LT_ASSIGN_OR_RETURN(Value v, c.value.Bind(col.type, now, col.default_value));
    conds.push_back(BoundCondition{static_cast<size_t>(idx), c.op, std::move(v)});
  }

  // ---- Plan the 2-D bounding box. ----
  QueryBounds bounds;
  bounds.direction =
      stmt.order_descending ? Direction::kDescending : Direction::kAscending;

  // Timestamp dimension: every ts condition narrows the box.
  const size_t ts_idx = schema->ts_index();
  for (const BoundCondition& c : conds) {
    if (c.column_index != ts_idx) continue;
    Timestamp v = c.value.AsInt();
    switch (c.op) {
      case CompareOp::kEq:
        bounds.min_ts = std::max(bounds.min_ts, v);
        bounds.max_ts = std::min(bounds.max_ts, v);
        break;
      case CompareOp::kGe:
        bounds.min_ts = std::max(bounds.min_ts, v);
        break;
      case CompareOp::kGt:
        if (v >= bounds.min_ts) {
          bounds.min_ts = v;
          bounds.min_ts_inclusive = false;
        }
        break;
      case CompareOp::kLe:
        bounds.max_ts = std::min(bounds.max_ts, v);
        break;
      case CompareOp::kLt:
        if (v <= bounds.max_ts) {
          bounds.max_ts = v;
          bounds.max_ts_inclusive = false;
        }
        break;
      case CompareOp::kNe:
        break;  // Row filter only.
    }
  }

  // Key dimension: equality run over leading key columns, then one range
  // column.
  Key prefix;
  size_t key_col = 0;
  while (key_col + 1 < schema->num_key_columns()) {  // ts handled above.
    const BoundCondition* eq = nullptr;
    for (const BoundCondition& c : conds) {
      if (c.column_index == key_col && c.op == CompareOp::kEq) {
        eq = &c;
        break;
      }
    }
    if (!eq) break;
    prefix.push_back(eq->value);
    key_col++;
  }
  KeyBound min_kb{prefix, true}, max_kb{prefix, true};
  bool has_min = !prefix.empty(), has_max = !prefix.empty();
  // Range conditions on the first non-equality key column.
  if (key_col + 1 < schema->num_key_columns()) {
    for (const BoundCondition& c : conds) {
      if (c.column_index != key_col) continue;
      switch (c.op) {
        case CompareOp::kGe:
        case CompareOp::kGt:
          if (min_kb.prefix.size() == prefix.size()) {
            min_kb.prefix.push_back(c.value);
            min_kb.inclusive = c.op == CompareOp::kGe;
            has_min = true;
          }
          break;
        case CompareOp::kLe:
        case CompareOp::kLt:
          if (max_kb.prefix.size() == prefix.size()) {
            max_kb.prefix.push_back(c.value);
            max_kb.inclusive = c.op == CompareOp::kLe;
            has_max = true;
          }
          break;
        case CompareOp::kEq:
          if (min_kb.prefix.size() == prefix.size() &&
              max_kb.prefix.size() == prefix.size()) {
            min_kb.prefix.push_back(c.value);
            max_kb.prefix.push_back(c.value);
            has_min = has_max = true;
          }
          break;
        case CompareOp::kNe:
          break;
      }
    }
  }
  if (has_min) bounds.min_key = min_kb;
  if (has_max) bounds.max_key = max_kb;

  const bool has_aggregates =
      std::any_of(stmt.items.begin(), stmt.items.end(),
                  [](const SelectItem& i) { return i.func != AggFunc::kNone; });

  // Limit pushdown is only safe when no row filter can drop rows and no
  // aggregation consumes them.
  if (stmt.limit > 0 && conds.empty() && !has_aggregates) {
    bounds.limit = stmt.limit;
  }

  // ---- Validate the projection. ----
  if (!has_aggregates && !stmt.group_by.empty()) {
    return Status::InvalidArgument("GROUP BY requires aggregate functions");
  }
  std::vector<int> group_cols;
  for (const std::string& g : stmt.group_by) {
    int idx = schema->FindColumn(g);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + g);
    // Streaming GROUP BY relies on key order: the group columns must be a
    // leading run of the primary key.
    if (static_cast<size_t>(idx) != group_cols.size() ||
        static_cast<size_t>(idx) >= schema->num_key_columns()) {
      return Status::NotSupported(
          "GROUP BY columns must be a prefix of the primary key");
    }
    group_cols.push_back(idx);
  }
  if (has_aggregates) {
    for (const SelectItem& item : stmt.items) {
      if (item.func != AggFunc::kNone) continue;
      int idx = schema->FindColumn(item.column);
      if (item.star || idx < 0 ||
          std::find(group_cols.begin(), group_cols.end(), idx) ==
              group_cols.end()) {
        return Status::InvalidArgument(
            "non-aggregate select items must appear in GROUP BY");
      }
    }
  }

  // ---- Projection pushdown. ----
  // Unless some item is a plain `*`, the statement only reads the selected
  // columns plus every WHERE and GROUP BY column — hand the engine that set
  // so columnar tablets skip decoding everything else. COUNT(*) consumes no
  // value columns at all; key columns always materialize (the engine needs
  // them for bounds and ordering), so they anchor the otherwise-empty set.
  bool needs_all_columns = false;
  std::vector<uint32_t> referenced;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      if (item.func == AggFunc::kNone) needs_all_columns = true;
      continue;
    }
    int idx = schema->FindColumn(item.column);
    if (idx >= 0) referenced.push_back(static_cast<uint32_t>(idx));
  }
  for (const BoundCondition& c : conds) {
    referenced.push_back(static_cast<uint32_t>(c.column_index));
  }
  for (int g : group_cols) referenced.push_back(static_cast<uint32_t>(g));
  if (!needs_all_columns) {
    if (referenced.empty()) {
      referenced.push_back(static_cast<uint32_t>(ts_idx));
    }
    std::sort(referenced.begin(), referenced.end());
    referenced.erase(std::unique(referenced.begin(), referenced.end()),
                     referenced.end());
    bounds.projection = std::move(referenced);
  }

  // ---- Fetch and post-process. ----
  ResultSet rs;
  std::vector<Row> raw;
  LT_RETURN_IF_ERROR(backend_->QueryAll(stmt.table, bounds, &raw, &rs.trace));

  // Statement-level trace fields: the engine reports what it scanned; the
  // executor reports what the statement actually produced after filtering,
  // projection, and aggregation.
  auto finish_trace = [&]() {
    rs.trace.rows_returned = rs.rows.size();
    rs.trace.elapsed_micros = MonotonicMicros() - select_start;
  };
  if (!has_aggregates) {
    // Plain projection.
    std::vector<int> proj;
    for (const SelectItem& item : stmt.items) {
      if (item.star) {
        for (size_t i = 0; i < schema->num_columns(); i++) {
          proj.push_back(static_cast<int>(i));
          rs.columns.push_back(schema->columns()[i].name);
          rs.types.push_back(schema->columns()[i].type);
        }
      } else {
        int idx = schema->FindColumn(item.column);
        if (idx < 0) {
          return Status::InvalidArgument("unknown column: " + item.column);
        }
        proj.push_back(idx);
        rs.columns.push_back(item.column);
        rs.types.push_back(schema->columns()[idx].type);
      }
    }
    for (const Row& row : raw) {
      if (!RowPasses(row, conds)) continue;
      Row out;
      out.reserve(proj.size());
      for (int idx : proj) out.push_back(row[idx]);
      rs.rows.push_back(std::move(out));
      if (stmt.limit > 0 && rs.rows.size() >= stmt.limit) break;
    }
    finish_trace();
    return rs;
  }

  // ---- Aggregation (streaming over the key-sorted rows). ----
  struct ItemPlan {
    AggFunc func;
    int column = -1;  // -1 for COUNT(*) / group column position.
    bool is_double = false;
  };
  std::vector<ItemPlan> plans;
  for (const SelectItem& item : stmt.items) {
    ItemPlan plan;
    plan.func = item.func;
    rs.columns.push_back(item.DisplayName());
    if (item.func == AggFunc::kNone) {
      plan.column = schema->FindColumn(item.column);
      rs.types.push_back(schema->columns()[plan.column].type);
    } else if (item.star) {
      rs.types.push_back(ColumnType::kInt64);  // COUNT(*).
    } else {
      plan.column = schema->FindColumn(item.column);
      if (plan.column < 0) {
        return Status::InvalidArgument("unknown column: " + item.column);
      }
      ColumnType ct = schema->columns()[plan.column].type;
      plan.is_double = ct == ColumnType::kDouble;
      if ((item.func == AggFunc::kSum || item.func == AggFunc::kAvg) &&
          (ct == ColumnType::kString || ct == ColumnType::kBlob)) {
        return Status::InvalidArgument("SUM/AVG require a numeric column");
      }
      switch (item.func) {
        case AggFunc::kCount:
          rs.types.push_back(ColumnType::kInt64);
          break;
        case AggFunc::kAvg:
          rs.types.push_back(ColumnType::kDouble);
          break;
        case AggFunc::kSum:
          rs.types.push_back(plan.is_double ? ColumnType::kDouble
                                            : ColumnType::kInt64);
          break;
        default:
          rs.types.push_back(ct);
      }
    }
    plans.push_back(plan);
  }

  std::vector<AggState> states(plans.size());
  Row current_group;
  bool in_group = false;
  uint64_t group_rows = 0;

  auto emit_group = [&]() {
    Row out;
    for (size_t i = 0; i < plans.size(); i++) {
      const ItemPlan& plan = plans[i];
      const AggState& st = states[i];
      switch (plan.func) {
        case AggFunc::kNone: {
          // Group column: position within group_cols == its column index.
          size_t pos = std::find(group_cols.begin(), group_cols.end(),
                                 plan.column) -
                       group_cols.begin();
          out.push_back(current_group[pos]);
          break;
        }
        case AggFunc::kCount:
          out.push_back(Value::Int64(
              plan.column < 0 ? static_cast<int64_t>(group_rows)
                              : static_cast<int64_t>(st.count)));
          break;
        case AggFunc::kSum:
          out.push_back(plan.is_double ? Value::Double(st.dbl_sum)
                                       : Value::Int64(st.int_sum));
          break;
        case AggFunc::kMin:
          out.push_back(st.has_minmax ? st.min : Value::Int64(0));
          break;
        case AggFunc::kMax:
          out.push_back(st.has_minmax ? st.max : Value::Int64(0));
          break;
        case AggFunc::kAvg: {
          double total = plan.is_double ? st.dbl_sum
                                        : static_cast<double>(st.int_sum);
          out.push_back(
              Value::Double(st.count == 0 ? 0.0 : total / st.count));
          break;
        }
      }
    }
    rs.rows.push_back(std::move(out));
    states.assign(plans.size(), AggState());
    group_rows = 0;
  };

  for (const Row& row : raw) {
    if (!RowPasses(row, conds)) continue;
    // Group key for this row.
    Row group;
    group.reserve(group_cols.size());
    for (int idx : group_cols) group.push_back(row[idx]);
    bool same = in_group && group.size() == current_group.size();
    if (same) {
      for (size_t i = 0; i < group.size(); i++) {
        if (group[i].Compare(current_group[i]) != 0) {
          same = false;
          break;
        }
      }
    }
    if (in_group && !same) emit_group();
    if (!in_group || !same) {
      current_group = std::move(group);
      in_group = true;
    }
    group_rows++;
    for (size_t i = 0; i < plans.size(); i++) {
      if (plans[i].func == AggFunc::kNone || plans[i].column < 0) continue;
      const Value& v = row[plans[i].column];
      if (plans[i].func == AggFunc::kCount) {
        states[i].count++;
      } else {
        states[i].Add(v, plans[i].is_double);
      }
    }
    if (stmt.limit > 0 && rs.rows.size() >= stmt.limit) {
      in_group = false;  // Drop the partial group past the limit.
      break;
    }
  }
  if (in_group) {
    // Global aggregates (no GROUP BY) emit a row even for empty input;
    // grouped aggregates emit one row per observed group.
    emit_group();
  } else if (group_cols.empty() && rs.rows.empty()) {
    group_rows = 0;
    current_group.clear();
    emit_group();
  }
  if (stmt.limit > 0 && rs.rows.size() > stmt.limit) rs.rows.resize(stmt.limit);
  finish_trace();
  return rs;
}

}  // namespace sql
}  // namespace lt
