// Statement AST for the LittleTable SQL dialect.
//
// The dialect covers what Dashboard uses LittleTable for (§3.1, §4):
//   CREATE TABLE t (col TYPE [DEFAULT lit], ..., PRIMARY KEY (a, b, ts))
//       [WITH TTL <duration>]
//   DROP TABLE t
//   INSERT INTO t [(cols)] VALUES (lit, ...), ...
//   SELECT cols-or-aggregates FROM t [WHERE conj] [GROUP BY cols]
//       [ORDER BY KEY [ASC|DESC]] [LIMIT n]
// WHERE clauses are conjunctions of <column> <op> <literal>; the planner
// turns primary-key-prefix conditions into the 2-D bounding box and applies
// the rest as row filters.
#ifndef LITTLETABLE_SQL_AST_H_
#define LITTLETABLE_SQL_AST_H_

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "core/schema.h"

namespace lt {
namespace sql {

/// An untyped literal; coerced to a column type at planning time.
struct Literal {
  enum class Kind { kInteger, kFloat, kString, kBlob, kNow, kDefault };
  Kind kind = Kind::kInteger;
  int64_t int_value = 0;
  double float_value = 0;
  std::string text;
  /// For kNow: microsecond offset, so `NOW() - 3600000000` is one literal.
  int64_t now_offset = 0;

  /// Coerces to a typed Value; `now` resolves NOW(), `dflt` resolves
  /// DEFAULT.
  Result<Value> Bind(ColumnType type, Timestamp now, const Value& dflt) const;
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

struct Condition {
  std::string column;
  CompareOp op = CompareOp::kEq;
  Literal value;
};

enum class AggFunc { kNone, kCount, kSum, kMin, kMax, kAvg };

struct SelectItem {
  AggFunc func = AggFunc::kNone;
  std::string column;  // Empty for COUNT(*).
  bool star = false;   // SELECT * (func == kNone) or COUNT(*).
  std::string DisplayName() const;
};

struct CreateTableStmt {
  std::string table;
  std::vector<Column> columns;         // Default values already bound.
  std::vector<std::string> key_names;  // PRIMARY KEY column order.
  Timestamp ttl = 0;
};

struct DropTableStmt {
  std::string table;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // Empty = all columns in schema order.
  std::vector<std::vector<Literal>> rows;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::string table;
  std::vector<Condition> where;
  std::vector<std::string> group_by;
  bool order_descending = false;
  uint64_t limit = 0;  // 0 = unlimited.
};

using Statement =
    std::variant<CreateTableStmt, DropTableStmt, InsertStmt, SelectStmt>;

/// Parses exactly one statement (trailing ';' optional).
Result<Statement> Parse(const std::string& sql);

}  // namespace sql
}  // namespace lt

#endif  // LITTLETABLE_SQL_AST_H_
