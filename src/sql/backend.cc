#include "sql/backend.h"

namespace lt {
namespace sql {

Result<std::shared_ptr<const Schema>> DbBackend::GetSchema(
    const std::string& table) {
  std::shared_ptr<Table> t = db_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  return std::shared_ptr<const Schema>(t->schema());
}

Status DbBackend::CreateTable(const std::string& table, const Schema& schema,
                              Timestamp ttl) {
  TableOptions opts = db_->options().table_defaults;
  opts.ttl = ttl;
  return db_->CreateTable(table, schema, &opts);
}

Status DbBackend::DropTable(const std::string& table) {
  return db_->DropTable(table);
}

Status DbBackend::Insert(const std::string& table,
                         const std::vector<Row>& rows) {
  std::shared_ptr<Table> t = db_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  return t->InsertBatch(rows);
}

Status DbBackend::QueryAll(const std::string& table, const QueryBounds& bounds,
                           std::vector<Row>* rows, QueryTrace* trace) {
  rows->clear();
  std::shared_ptr<Table> t = db_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  std::shared_ptr<const Schema> schema = t->schema();
  QueryBounds page = bounds;
  const uint64_t want = bounds.limit;
  while (true) {
    if (want > 0) page.limit = want - rows->size();
    QueryResult result;
    // Each continuation page accumulates into the same statement trace.
    LT_RETURN_IF_ERROR(t->Query(page, &result, trace));
    for (Row& row : result.rows) rows->push_back(std::move(row));
    if (!result.more_available) return Status::OK();
    if (want > 0 && rows->size() >= want) return Status::OK();
    if (rows->empty()) return Status::OK();
    Key last_key = schema->KeyOf(rows->back());
    if (page.direction == Direction::kAscending) {
      page.min_key = KeyBound{std::move(last_key), /*inclusive=*/false};
    } else {
      page.max_key = KeyBound{std::move(last_key), /*inclusive=*/false};
    }
  }
}

Status DbBackend::LatestRow(const std::string& table, const Key& prefix,
                            Row* row, bool* found) {
  std::shared_ptr<Table> t = db_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  return t->LatestRowForPrefix(prefix, row, found);
}

Status DbBackend::FlushThrough(const std::string& table, Timestamp ts) {
  std::shared_ptr<Table> t = db_->GetTable(table);
  if (!t) return Status::NotFound("no such table: " + table);
  return t->FlushThrough(ts);
}

}  // namespace sql
}  // namespace lt
