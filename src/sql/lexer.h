// SQL tokenizer. §2.3.2: LittleTable's first query language was XML-based
// and "developer uptake was sluggish until a subsequent version added SQL
// support" — the SQL surface is part of the system being reproduced.
#ifndef LITTLETABLE_SQL_LEXER_H_
#define LITTLETABLE_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lt {
namespace sql {

enum class TokenType {
  kIdentifier,   // table1, network (also keywords; matched case-insensitively)
  kInteger,      // 42, -7
  kFloat,        // 3.25, -1e9
  kString,       // 'text' (single quotes, '' escapes a quote)
  kBlob,         // x'0afb'
  kSymbol,       // ( ) , ; * = < > <= >= != + -
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;    // Identifier/symbol text, or decoded string/blob.
  int64_t int_value = 0;
  double float_value = 0;
  size_t offset = 0;   // Byte offset in the input, for error messages.

  /// Case-insensitive keyword/identifier match.
  bool Is(const char* word) const;
  bool IsSymbol(const char* sym) const {
    return type == TokenType::kSymbol && text == sym;
  }
};

/// Tokenizes `input`; the result always ends with a kEnd token.
Status Tokenize(const std::string& input, std::vector<Token>* tokens);

}  // namespace sql
}  // namespace lt

#endif  // LITTLETABLE_SQL_LEXER_H_
