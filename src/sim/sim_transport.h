// SimTransport: an in-process network for deterministic whole-system
// simulation — no real sockets, and (almost) no real time.
//
// Server and Client run unchanged over the net::Transport interface; the
// simulated network gives the chaos harness (sim/chaos.h) a fault surface
// real TCP cannot offer deterministically:
//   - connection resets (RST): every open connection errors at once,
//     modeling a machine crash severing all of a server's connections;
//   - partitions: written bytes are blackholed and new connects fail, so a
//     client's reads time out exactly as on a silently dropping network;
//   - frame truncation: the next server-side write delivers only a prefix
//     and then resets, producing the torn frames a crash mid-write leaves;
//   - delayed delivery: a write becomes readable only at a later SimClock
//     time; a blocked reader leaps the clock forward instead of sleeping;
//   - reordered accepts: a pending connect jumps the accept queue,
//     shuffling the order connection threads are born in.
//
// Connect uses TCP backlog semantics: it succeeds as soon as a listener is
// bound, before Accept runs, so a hung server (listener that never accepts)
// is expressible. Read deadlines on partitioned connections are charged to
// SimClock and fail immediately in real time, which keeps thousand-seed
// chaos sweeps fast.
#ifndef LITTLETABLE_SIM_SIM_TRANSPORT_H_
#define LITTLETABLE_SIM_SIM_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/clock.h"

namespace lt {
namespace sim {

struct SimTransportOptions {
  /// Clock delayed deliveries and partitioned-read deadlines are measured
  /// on. Null: the transport creates its own SimClock starting at 0.
  std::shared_ptr<SimClock> clock;
  /// When a reader finds only not-yet-deliverable (delayed) data, advance
  /// the clock to the earliest delivery time instead of waiting — the
  /// simulation "time leap". Also charges partitioned-read deadlines to the
  /// clock. Disable to exercise real waiting.
  bool auto_advance_clock = true;
  /// Per-direction in-flight byte cap modeling a bounded kernel send
  /// buffer, honored by Connection::WriteSome only: once a connection
  /// direction holds this many unread bytes, WriteSome accepts nothing
  /// until the reader drains some (the poller reports writability then).
  /// WriteAll is exempt — it models the blocking path and legacy tests
  /// assume unbounded pipes. 0 = unbounded. This is what makes a simulated
  /// slow reader exert real backpressure on the server's streaming writes.
  size_t conn_buffer_bytes = 0;
};

/// Counters for assertions and the chaos log.
struct SimTransportStats {
  uint64_t connects = 0;          // Attempts, including failed ones.
  uint64_t connects_failed = 0;
  uint64_t accepts = 0;
  uint64_t resets_injected = 0;   // Connections killed by ResetAllConnections.
  uint64_t writes_truncated = 0;
  uint64_t writes_delayed = 0;
  uint64_t bytes_blackholed = 0;  // Written during a partition, never seen.
};

class SimTransport final : public net::Transport {
 public:
  explicit SimTransport(const SimTransportOptions& options = {});
  ~SimTransport() override;

  Status Listen(uint16_t port,
                std::unique_ptr<net::Listener>* listener) override;
  Status Connect(const std::string& host, uint16_t port, int timeout_ms,
                 std::unique_ptr<net::Connection>* conn) override;
  /// Readiness multiplexer over simulated connections. When every watched
  /// connection's pending data is delayed delivery, Wait leaps SimClock to
  /// the earliest delivery time (under auto_advance_clock) instead of
  /// sleeping — the same time-leap WaitReadable performs.
  Status NewPoller(std::unique_ptr<net::Poller>* poller) override;

  // --- Fault injection (thread-safe) ------------------------------------

  /// The next `n` connects fail with Unavailable("connection refused");
  /// 0 clears.
  void FailNextConnects(int n);

  /// While partitioned: connects fail, written bytes are blackholed, and
  /// reads see silence (DeadlineExceeded once their deadline passes).
  /// Already-delivered bytes remain readable.
  void SetPartitioned(bool on);
  bool partitioned() const;

  /// Severs every open connection: both ends get
  /// NetworkError("connection reset by peer") once pending deliverable data
  /// is drained. Models the server machine dying mid-conversation.
  void ResetAllConnections();

  /// The next write by an accepted (server-side) connection delivers only
  /// its first `keep_bytes` bytes, then the connection resets — a torn
  /// response frame.
  void TruncateNextServerWrite(size_t keep_bytes);

  /// The next write (either side) becomes readable only `delay_micros` of
  /// SimClock time later.
  void DelayNextWrite(Timestamp delay_micros);

  /// The next connect is pushed to the FRONT of its listener's accept
  /// queue, overtaking earlier pending connections.
  void ReorderNextAccept();

  // --- Multi-node simulation --------------------------------------------

  /// A Transport facade representing one named machine on this simulated
  /// network. Listeners bound and connections initiated through the facade
  /// are attributed to `node`, so individual machine pairs can be
  /// partitioned (SetLinkPartitioned) or crashed (ResetNodeConnections)
  /// while the rest of the cluster keeps talking. The facade shares this
  /// transport's clock, port space, and global fault state; it stays valid
  /// for the SimTransport's lifetime. Calling with the same name returns
  /// the same facade.
  net::Transport* ForNode(const std::string& node);

  /// Severs the (bidirectional) link between two named nodes: connects
  /// between them time out (charged to SimClock), written bytes are
  /// blackholed, and pending reads see silence until their deadline — the
  /// same observable behavior as a global SetPartitioned, scoped to one
  /// machine pair. Already-delivered bytes remain readable.
  void SetLinkPartitioned(const std::string& a, const std::string& b,
                          bool on);
  void ClearLinkPartitions();

  /// Severs every open connection with an endpoint attributed to `node`
  /// (both ends see a reset once deliverable data drains) — a single
  /// machine dying without touching the rest of the cluster.
  void ResetNodeConnections(const std::string& node);

  SimTransportStats stats() const;
  const std::shared_ptr<SimClock>& clock() const { return clock_; }

  /// Shared transport state; opaque outside sim_transport.cc (public only
  /// so the connection/listener implementations there can name it).
  struct Inner;

 private:
  friend class NodeTransport;

  /// Node-attributed Listen/Connect, used by the base interface (empty
  /// node) and the ForNode facades.
  Status ListenAs(const std::string& node, uint16_t port,
                  std::unique_ptr<net::Listener>* listener);
  Status ConnectFrom(const std::string& node, const std::string& host,
                     uint16_t port, int timeout_ms,
                     std::unique_ptr<net::Connection>* conn);

  std::shared_ptr<Inner> inner_;
  std::shared_ptr<SimClock> clock_;
  // ForNode facades, by node name; guarded by inner_->mu.
  std::map<std::string, std::unique_ptr<net::Transport>> facades_;
};

}  // namespace sim
}  // namespace lt

#endif  // LITTLETABLE_SIM_SIM_TRANSPORT_H_
