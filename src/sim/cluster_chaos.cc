#include "sim/cluster_chaos.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "apps/device_sim.h"
#include "cluster/agent.h"
#include "cluster/cluster_client.h"
#include "cluster/coordinator.h"
#include "cluster/shard_map.h"
#include "core/db.h"
#include "core/tablet_writer.h"  // kTabletFormatLatest
#include "env/mem_env.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/sim_transport.h"
#include "util/fault.h"
#include "util/random.h"

namespace lt {
namespace sim {
namespace {

// Fixed simulated epoch (no real time may leak into the simulation).
constexpr Timestamp kEpoch = Timestamp{1700000000} * 1000000;
constexpr uint16_t kCoordPort = 7790;
constexpr char kTable[] = "events";
constexpr char kRoot[] = "node";

Schema EventsSchema() {
  return Schema({Column("device", ColumnType::kInt64),
                 Column("id", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("kind", ColumnType::kString),
                 Column("detail", ColumnType::kString)},
                /*num_key_columns=*/3);
}

/// One routed ClusterClient::Insert call and what the model knows about it.
struct InsertRecord {
  enum State {
    kCertain,     // Acknowledged (or a later read confirmed it applied).
    kUnresolved,  // Outcome unknown: the RPC failed, or the acking primary
                  // died and the batch was outside the last ship round.
    kDropped,     // Confirmed never-applied or wholly lost.
  };
  int64_t device = 0;
  uint32_t group = 0;                  // Shard group the series hashes to.
  std::vector<apps::SimEvent> events;  // Ascending ids, ascending ts.
  State state = kCertain;
  /// Covered by a completed ship round: on disk on BOTH replicas. Losing
  /// any row of a durable batch, in any schedule, is an oracle violation.
  bool durable = false;
};

struct DeviceCursor {
  int64_t last_id = 0;
  bool dirty = false;  // Outcome unknown; resync via LatestRow first.
};

/// One cluster machine: its own simulated disk, DB, and agent.
struct NodeState {
  std::string name;
  uint16_t port = 0;
  std::unique_ptr<MemEnv> env;
  std::unique_ptr<DB> db;
  std::unique_ptr<cluster::ReplicaAgent> agent;
  uint32_t open_count = 0;  // DB opens; rotates the flush format.
};

struct GroupState {
  uint32_t id = 0;
  NodeState a, b;
  int partition_ops_left = 0;  // a<->b link partition countdown.
  /// Primary endpoint the model last saw; a change means a failover the
  /// model must account for (non-durable acks become unresolved).
  cluster::Endpoint known_primary;
};

class ClusterChaosRun {
 public:
  ClusterChaosRun(const ClusterChaosOptions& opts, ClusterChaosReport* report)
      : opts_(opts), report_(report), rng_(opts.seed ^ 0xa24baed4963ee407ull) {}

  Status Run();

 private:
  void Log(const std::string& line) {
    report_->event_log.push_back("t=" + std::to_string(clock_->Now() - kEpoch) +
                                 " " + line);
  }
  void Count(const std::string& key) { report_->counters[key]++; }
  void Violation(const std::string& what) {
    if (!report_->ok) return;
    report_->ok = false;
    report_->failure = what;
    Log("ORACLE VIOLATION: " + what);
  }

  Status Setup();
  Status OpenNodeDb(NodeState& n);
  Status StartAgent(NodeState& n);
  Status ConnectClient();

  void MaybeInjectFault();
  void DoOneOp();
  void DoInsert();
  void DoQuery();
  void DoLatestRow();
  void DoShip();
  void DoFullScan();
  void DoProbe();
  void FinalVerdict();

  // ---- Cluster plumbing. ----
  cluster::Endpoint CurrentPrimary(uint32_t g);
  NodeState* NodeForEndpoint(const cluster::Endpoint& ep);
  cluster::ReplicaAgent* PrimaryAgent(uint32_t g);
  void KillNode(NodeState& n);
  Status RestartNode(NodeState& n);
  void HealGroupPartition(GroupState& grp, const char* why);
  /// Crashes the group's current primary. With quick_restart the node is
  /// back before the coordinator's fail threshold and resumes the primary
  /// role on a fresh stream; otherwise probe rounds are driven until the
  /// secondary is promoted and the old primary rejoins as secondary.
  void CrashPrimary(uint32_t g, bool quick_restart);
  void CrashSecondary(uint32_t g);
  /// Drives probe + ship rounds until the group has a serving primary and
  /// a completed replication round; flags a violation if it cannot.
  bool Settle(uint32_t g);
  /// Advances simulated time and pumps the coordinator/shipper — installed
  /// as the ClusterClient's backoff hook, so a routed request waiting out a
  /// retry is what drives failovers forward.
  void Pump(int64_t ms);
  /// Compares the coordinator's map against the model's last view; on a
  /// primary change, demotes that group's non-durable acks to unresolved.
  void NoteClusterView();
  void MarkGroupDurable(uint32_t g);
  void MarkGroupUnresolved(uint32_t g);

  // ---- Model checks. ----
  bool VerifyDeviceRows(int64_t device, const std::vector<Row>& rows);
  void VerifyGroupDevices(uint32_t g);
  bool ResolveFromLatest(int64_t device, int64_t latest);
  bool CheckRowContent(const Row& row);
  const apps::SimEvent* FindEvent(int64_t device, int64_t id) const;
  int64_t MaxCertainId(int64_t device) const;

  const ClusterChaosOptions opts_;
  ClusterChaosReport* const report_;
  Random rng_;

  std::shared_ptr<SimClock> clock_;
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<cluster::Coordinator> coordinator_;
  std::vector<GroupState> groups_;
  std::unique_ptr<cluster::ClusterClient> client_;
  std::unique_ptr<apps::DeviceFleet> fleet_;

  std::vector<InsertRecord> records_;  // Global insert order.
  std::map<int64_t, DeviceCursor> cursors_;
  std::map<int64_t, uint32_t> device_group_;
  bool pumping_ = false;  // Reentrancy guard for Pump.
};

Status ClusterChaosRun::Setup() {
  clock_ = std::make_shared<SimClock>();
  clock_->Set(kEpoch);

  SimTransportOptions topts;
  topts.clock = clock_;
  transport_ = std::make_unique<SimTransport>(topts);

  const std::vector<cluster::ShardGroupInfo> ranges =
      cluster::EvenGroups(static_cast<uint32_t>(opts_.groups));
  groups_.resize(opts_.groups);
  for (int g = 0; g < opts_.groups; g++) {
    GroupState& grp = groups_[g];
    grp.id = static_cast<uint32_t>(g);
    grp.a.name = "g" + std::to_string(g) + "a";
    grp.a.port = static_cast<uint16_t>(7801 + g * 10);
    grp.b.name = "g" + std::to_string(g) + "b";
    grp.b.port = static_cast<uint16_t>(7802 + g * 10);
    for (NodeState* n : {&grp.a, &grp.b}) {
      n->env = std::make_unique<MemEnv>();
      LT_RETURN_IF_ERROR(OpenNodeDb(*n));
      LT_RETURN_IF_ERROR(StartAgent(*n));
    }
  }

  cluster::CoordinatorOptions copts;
  copts.port = kCoordPort;
  copts.transport = transport_->ForNode("coord");
  copts.probe_deadline_ms = 200;
  copts.fail_threshold = 3;
  copts.client.clock = clock_;
  copts.client.connect_timeout_ms = 500;
  copts.client.read_timeout_ms = 500;
  copts.client.write_timeout_ms = 500;
  coordinator_ = std::make_unique<cluster::Coordinator>(copts);
  for (int g = 0; g < opts_.groups; g++) {
    coordinator_->AddGroup(groups_[g].id, ranges[g].hash_begin,
                           ranges[g].hash_end,
                           {groups_[g].a.name, groups_[g].a.port},
                           {groups_[g].b.name, groups_[g].b.port});
  }
  LT_RETURN_IF_ERROR(coordinator_->Start());
  coordinator_->ProbeOnce();  // Push the initial role assignments.
  const cluster::ShardMap m = coordinator_->Map();
  for (GroupState& grp : groups_) {
    const cluster::ShardGroupInfo* info = m.GroupById(grp.id);
    if (info == nullptr) return Status::InvalidArgument("group missing from map");
    grp.known_primary = info->primary;
  }
  Log("setup groups=" + std::to_string(opts_.groups) +
      " epoch=" + std::to_string(coordinator_->epoch()));

  LT_RETURN_IF_ERROR(ConnectClient());
  LT_RETURN_IF_ERROR(client_->CreateTable(kTable, EventsSchema(), 0));
  // One completed ship round per group before chaos starts: the create is
  // then on both replicas, so even an immediate primary crash leaves a
  // secondary that can serve the (empty) table.
  for (int g = 0; g < opts_.groups; g++) {
    cluster::ReplicaAgent* p = PrimaryAgent(static_cast<uint32_t>(g));
    if (p == nullptr) return Status::InvalidArgument("no primary at setup");
    LT_RETURN_IF_ERROR(p->ShipOnce());
  }

  apps::DeviceSimOptions fopts;
  fopts.seed = opts_.seed;
  fopts.birth = kEpoch;
  fopts.event_interval_sec = 20;
  fopts.unreachable_hour_prob = 0;
  fleet_ = std::make_unique<apps::DeviceFleet>(fopts);
  const Schema schema = EventsSchema();
  for (int d = 1; d <= opts_.devices; d++) {
    fleet_->AddDevice(static_cast<apps::DeviceId>(d));
    cursors_[d] = DeviceCursor{};
    const uint64_t h =
        cluster::RouteHashPrefix(schema, Key{Value::Int64(d)});
    const cluster::ShardGroupInfo* gi = m.GroupForHash(h);
    if (gi == nullptr) return Status::InvalidArgument("hash space gap in map");
    device_group_[d] = gi->id;
  }
  return Status::OK();
}

Status ClusterChaosRun::OpenNodeDb(NodeState& n) {
  DbOptions dopts;
  dopts.background_maintenance = false;  // The schedule drives everything.
  dopts.block_cache_bytes = 4ull << 20;
  // Fault-injected flush/ship failures are routine; keep them out of stderr
  // and out of the deterministic event log.
  dopts.logger = std::make_shared<Logger>(LogLevel::kError,
                                          std::make_shared<CaptureLogSink>());
  dopts.table_defaults.flush_bytes = 16 * 1024;
  dopts.table_defaults.max_memtablet_age = 60 * kMicrosPerSecond;
  dopts.table_defaults.flush_retry_backoff = 1 * kMicrosPerSecond;
  dopts.table_defaults.flush_retry_max_backoff = 30 * kMicrosPerSecond;
  // Rotate the flush format per open, like the single-node schedule, so
  // tablet shipping moves mixed-version files between nodes.
  dopts.table_defaults.format_version = static_cast<uint32_t>(
      (opts_.seed + n.open_count) % (kTabletFormatLatest + 1));
  n.open_count++;
  return DB::Open(n.env.get(), clock_, kRoot, dopts, &n.db);
}

Status ClusterChaosRun::StartAgent(NodeState& n) {
  cluster::AgentOptions aopts;
  aopts.port = n.port;
  aopts.transport = transport_->ForNode(n.name);
  aopts.server.poll_interval_ms = 5;
  aopts.server.io_timeout_ms = 2000;
  aopts.server.drain_timeout_ms = 200;
  aopts.client.clock = clock_;
  aopts.client.connect_timeout_ms = 500;
  aopts.client.read_timeout_ms = 1000;
  aopts.client.write_timeout_ms = 1000;
  // Small on purpose: a partition that outlives the window turns routed
  // inserts into kServerBusy, exercising the router's backoff path.
  aopts.redo_window = 8;
  n.agent = std::make_unique<cluster::ReplicaAgent>(n.db.get(), aopts);
  return n.agent->Start();
}

Status ClusterChaosRun::ConnectClient() {
  cluster::ClusterClientOptions ccopts;
  ccopts.transport = transport_->ForNode("client");
  ccopts.max_retries = 10;
  ccopts.backoff_initial_ms = 20;
  ccopts.backoff_max_ms = 500;
  ccopts.client.clock = clock_;
  ccopts.client.connect_timeout_ms = 500;
  ccopts.client.read_timeout_ms = 1000;
  ccopts.client.write_timeout_ms = 1000;
  ccopts.client.max_retries = 0;  // The router owns the retry protocol.
  ccopts.client.backoff_seed = opts_.seed;
  ccopts.client.backoff_sleep = [this](int64_t ms) { Pump(ms); };
  return cluster::ClusterClient::Connect("coord", kCoordPort, ccopts,
                                         &client_);
}

// ---- Cluster plumbing. ----

cluster::Endpoint ClusterChaosRun::CurrentPrimary(uint32_t g) {
  const cluster::ShardMap m = coordinator_->Map();
  const cluster::ShardGroupInfo* info = m.GroupById(g);
  return info != nullptr ? info->primary : cluster::Endpoint{};
}

NodeState* ClusterChaosRun::NodeForEndpoint(const cluster::Endpoint& ep) {
  for (GroupState& grp : groups_) {
    for (NodeState* n : {&grp.a, &grp.b}) {
      if (n->port == ep.port) return n;
    }
  }
  return nullptr;
}

cluster::ReplicaAgent* ClusterChaosRun::PrimaryAgent(uint32_t g) {
  NodeState* n = NodeForEndpoint(CurrentPrimary(g));
  return n != nullptr ? n->agent.get() : nullptr;
}

void ClusterChaosRun::KillNode(NodeState& n) {
  // Order matters: sever connections first (peers see resets, not hangs),
  // then abandon the DB — only synced bytes survive on the node's disk.
  transport_->ResetNodeConnections(n.name);
  if (n.agent) n.agent->Stop();
  n.agent.reset();
  if (n.db) n.db->Abandon();
  n.db.reset();
  n.env->DropUnsynced();
  // Crash points model the dying process; they die with it.
  fault::DisarmCrashPoints();
  Count("node_crashes");
}

Status ClusterChaosRun::RestartNode(NodeState& n) {
  LT_RETURN_IF_ERROR(OpenNodeDb(n));
  return StartAgent(n);
}

void ClusterChaosRun::HealGroupPartition(GroupState& grp, const char* why) {
  if (grp.partition_ops_left <= 0) return;
  grp.partition_ops_left = 0;
  transport_->SetLinkPartitioned(grp.a.name, grp.b.name, false);
  Log("partition heal (" + std::string(why) + ") g=" +
      std::to_string(grp.id));
}

void ClusterChaosRun::MarkGroupDurable(uint32_t g) {
  // A completed ship round covers everything acknowledged before it; the
  // harness is single-threaded, so that is every record in the model.
  for (InsertRecord& rec : records_) {
    if (rec.group == g && rec.state == InsertRecord::kCertain) {
      rec.durable = true;
    }
  }
}

void ClusterChaosRun::MarkGroupUnresolved(uint32_t g) {
  // A primary died (or was deposed): acknowledged batches outside the last
  // completed ship round may or may not survive — via the secondary's
  // buffered redo entries — so their fate is unknown until read back.
  for (InsertRecord& rec : records_) {
    if (rec.group == g && rec.state == InsertRecord::kCertain &&
        !rec.durable) {
      rec.state = InsertRecord::kUnresolved;
    }
  }
  for (auto& [device, cur] : cursors_) {
    if (device_group_[device] == g) cur.dirty = true;
  }
}

void ClusterChaosRun::NoteClusterView() {
  const cluster::ShardMap m = coordinator_->Map();
  for (GroupState& grp : groups_) {
    const cluster::ShardGroupInfo* info = m.GroupById(grp.id);
    if (info == nullptr || info->primary == grp.known_primary) continue;
    Log("observe failover g=" + std::to_string(grp.id) + " primary=" +
        info->primary.ToString() + " epoch=" + std::to_string(m.epoch));
    MarkGroupUnresolved(grp.id);
    grp.known_primary = info->primary;
  }
}

void ClusterChaosRun::Pump(int64_t ms) {
  clock_->Advance(ms * 1000);  // Backoff burns simulated, not real, time.
  if (pumping_) return;
  pumping_ = true;
  // A client waiting out a retry is exactly when the cluster makes
  // progress: probes detect the dead primary, and the shipper drains the
  // redo window that made the primary answer kServerBusy.
  coordinator_->ProbeOnce();
  NoteClusterView();
  for (GroupState& grp : groups_) {
    cluster::ReplicaAgent* p = PrimaryAgent(grp.id);
    if (p != nullptr && p->role() == cluster::ReplicaAgent::Role::kPrimary) {
      if (p->ShipOnce().ok()) {
        MarkGroupDurable(grp.id);
        Count("ships_ok");
      }
    }
  }
  pumping_ = false;
}

bool ClusterChaosRun::Settle(uint32_t g) {
  for (int round = 0; round < 50; round++) {
    clock_->Advance(kMicrosPerSecond);
    coordinator_->ProbeOnce();
    NoteClusterView();
    cluster::ReplicaAgent* p = PrimaryAgent(g);
    if (p == nullptr) continue;
    if (p->ShipOnce().ok()) {
      MarkGroupDurable(g);
      Count("ships_ok");
      return true;
    }
  }
  Violation("group " + std::to_string(g) +
            " failed to settle after a crash: no completed ship round");
  return false;
}

void ClusterChaosRun::CrashPrimary(uint32_t g, bool quick_restart) {
  GroupState& grp = groups_[g];
  HealGroupPartition(grp, "crash");
  NodeState* prim = NodeForEndpoint(CurrentPrimary(g));
  if (prim == nullptr || !prim->agent) return;
  Log(std::string("fault crash_primary g=") + std::to_string(g) + " node=" +
      prim->name + (quick_restart ? " quick_restart" : " failover"));
  Count(quick_restart ? "primary_quick_restarts" : "primary_failovers");
  KillNode(*prim);
  MarkGroupUnresolved(g);
  if (!quick_restart) {
    // Drive probe rounds until the coordinator promotes the secondary.
    const uint64_t before = coordinator_->failovers();
    for (int i = 0; i < 20 && coordinator_->failovers() == before; i++) {
      clock_->Advance(kMicrosPerSecond);
      coordinator_->ProbeOnce();
    }
    if (coordinator_->failovers() == before) {
      Violation("coordinator did not fail over group " + std::to_string(g) +
                " with its primary down and secondary reachable");
      return;
    }
    NoteClusterView();
  }
  Status s = RestartNode(*prim);
  if (!s.ok()) {
    Violation("node restart failed: " + s.ToString());
    return;
  }
  if (!Settle(g)) return;
  VerifyGroupDevices(g);
}

void ClusterChaosRun::CrashSecondary(uint32_t g) {
  GroupState& grp = groups_[g];
  HealGroupPartition(grp, "crash");
  const cluster::ShardMap m = coordinator_->Map();
  const cluster::ShardGroupInfo* info = m.GroupById(g);
  if (info == nullptr) return;
  NodeState* sec = NodeForEndpoint(info->secondary);
  if (sec == nullptr || !sec->agent) return;
  Log("fault crash_secondary g=" + std::to_string(g) + " node=" + sec->name);
  Count("secondary_crashes");
  KillNode(*sec);
  // The primary keeps serving; no acknowledged data is at risk. Bring the
  // secondary back and require replication to converge again.
  clock_->Advance(kMicrosPerSecond);
  coordinator_->ProbeOnce();
  Status s = RestartNode(*sec);
  if (!s.ok()) {
    Violation("node restart failed: " + s.ToString());
    return;
  }
  Settle(g);
}

// ---- Model checks. ----

const apps::SimEvent* ClusterChaosRun::FindEvent(int64_t device,
                                                 int64_t id) const {
  for (const InsertRecord& rec : records_) {
    if (rec.device != device || rec.state == InsertRecord::kDropped) continue;
    for (const apps::SimEvent& ev : rec.events) {
      if (ev.id == id) return &ev;
    }
  }
  return nullptr;
}

int64_t ClusterChaosRun::MaxCertainId(int64_t device) const {
  int64_t max_id = 0;
  for (const InsertRecord& rec : records_) {
    if (rec.device != device || rec.state != InsertRecord::kCertain) continue;
    if (!rec.events.empty()) {
      max_id = std::max(max_id, rec.events.back().id);
    }
  }
  return max_id;
}

bool ClusterChaosRun::CheckRowContent(const Row& row) {
  if (row.size() != 5) {
    Violation("row has " + std::to_string(row.size()) + " columns");
    return false;
  }
  const int64_t device = row[0].AsInt();
  const int64_t id = row[1].AsInt();
  const apps::SimEvent* ev = FindEvent(device, id);
  if (ev == nullptr) {
    Violation("phantom row: device=" + std::to_string(device) +
              " id=" + std::to_string(id) +
              " was never (or never certainly) inserted");
    return false;
  }
  if (row[2].AsInt() != ev->ts || row[3].bytes() != ev->kind ||
      row[4].bytes() != ev->detail) {
    Violation("row content mismatch: device=" + std::to_string(device) +
              " id=" + std::to_string(id));
    return false;
  }
  return true;
}

bool ClusterChaosRun::ResolveFromLatest(int64_t device, int64_t latest) {
  for (InsertRecord& rec : records_) {
    if (rec.device != device) continue;
    if (rec.state == InsertRecord::kDropped || rec.events.empty()) continue;
    const int64_t first = rec.events.front().id;
    const int64_t last = rec.events.back().id;
    if (rec.state == InsertRecord::kUnresolved) {
      if (latest >= last) {
        rec.state = InsertRecord::kCertain;
      } else if (latest < first) {
        rec.state = InsertRecord::kDropped;
      } else {
        Violation("partial batch application: device=" +
                  std::to_string(device) + " latest=" +
                  std::to_string(latest) + " inside batch [" +
                  std::to_string(first) + "," + std::to_string(last) + "]");
        return false;
      }
    } else if (latest < last) {  // kCertain
      Violation("latest row id " + std::to_string(latest) +
                " behind acknowledged insert through " + std::to_string(last) +
                " for device " + std::to_string(device));
      return false;
    }
  }
  const int64_t expect = MaxCertainId(device);
  if (latest != expect) {
    Violation("latest row mismatch for device " + std::to_string(device) +
              ": got " + std::to_string(latest) + " want " +
              std::to_string(expect));
    return false;
  }
  cursors_[device].last_id = latest;
  cursors_[device].dirty = false;
  return true;
}

bool ClusterChaosRun::VerifyDeviceRows(int64_t device,
                                       const std::vector<Row>& rows) {
  std::set<int64_t> returned;
  for (const Row& row : rows) {
    if (!CheckRowContent(row)) return false;
    if (row[0].AsInt() != device) {
      Violation("query for device " + std::to_string(device) +
                " returned device " + std::to_string(row[0].AsInt()));
      return false;
    }
    if (!returned.insert(row[1].AsInt()).second) {
      Violation("duplicate row id " + std::to_string(row[1].AsInt()) +
                " for device " + std::to_string(device));
      return false;
    }
  }
  // The query is a settled snapshot of the serving primary (the harness is
  // single-threaded): acknowledged batches must be fully present, and
  // unknown-outcome batches resolve to fully-present or fully-absent.
  for (InsertRecord& rec : records_) {
    if (rec.device != device || rec.state == InsertRecord::kDropped) continue;
    size_t present = 0;
    for (const apps::SimEvent& ev : rec.events) {
      present += returned.count(ev.id);
    }
    if (rec.state == InsertRecord::kCertain) {
      if (present != rec.events.size()) {
        Violation(std::string(rec.durable
                      ? "ship-durable batch lost"
                      : "query missing acknowledged rows") +
                  ": device=" + std::to_string(device) + " batch through id " +
                  std::to_string(rec.events.back().id));
        return false;
      }
    } else if (present == rec.events.size()) {
      rec.state = InsertRecord::kCertain;
    } else if (present == 0) {
      rec.state = InsertRecord::kDropped;
    } else {
      Violation("partial batch visible: device=" + std::to_string(device));
      return false;
    }
  }
  // Prefix durability per series: surviving ids are exactly 1..k.
  if (!returned.empty() &&
      *returned.rbegin() != static_cast<int64_t>(returned.size())) {
    Violation("event ids not contiguous for device " + std::to_string(device) +
              ": max=" + std::to_string(*returned.rbegin()) +
              " count=" + std::to_string(returned.size()));
    return false;
  }
  cursors_[device].last_id = MaxCertainId(device);
  cursors_[device].dirty = false;
  return true;
}

void ClusterChaosRun::VerifyGroupDevices(uint32_t g) {
  for (int64_t d = 1; d <= opts_.devices; d++) {
    if (device_group_[d] != g) continue;
    std::vector<Row> rows;
    Status s = client_->QueryAll(
        kTable, QueryBounds::ForPrefix(Key{Value::Int64(d)}), &rows);
    if (!s.ok()) {
      Violation("post-crash verify query failed for device " +
                std::to_string(d) + ": " + s.ToString());
      return;
    }
    if (!VerifyDeviceRows(d, rows)) return;
  }
  Count("crash_verifies");
}

// ---- Workload. ----

void ClusterChaosRun::DoInsert() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  DeviceCursor& cur = cursors_[device];
  if (cur.dirty) {
    // Unknown outcome pending: ask the cluster where this series got to
    // before resending (§3.1 grabber recovery, now routed).
    Row row;
    bool found = false;
    Status s = client_->LatestRow(kTable, Key{Value::Int64(device)}, &row,
                                  &found);
    Log("resync dev=" + std::to_string(device) + " status=" + s.ToString());
    if (!s.ok()) return;  // Still dirty; retry on a later insert.
    Count("resyncs");
    if (found && !CheckRowContent(row)) return;
    if (!ResolveFromLatest(device, found ? row[1].AsInt() : 0)) return;
  }
  const size_t batch = 1 + rng_.Uniform(4);
  std::vector<apps::SimEvent> events =
      fleet_->Get(static_cast<apps::DeviceId>(device))
          ->EventsAfter(cur.last_id, clock_->Now(), batch);
  if (events.empty()) {
    Log("insert dev=" + std::to_string(device) + " no_events");
    return;
  }
  std::vector<Row> rows;
  rows.reserve(events.size());
  for (const apps::SimEvent& ev : events) {
    rows.push_back({Value::Int64(device), Value::Int64(ev.id),
                    Value::Ts(ev.ts), Value::String(ev.kind),
                    Value::String(ev.detail)});
  }
  Status s = client_->Insert(kTable, rows);
  InsertRecord rec;
  rec.device = device;
  rec.group = device_group_[device];
  rec.events = std::move(events);
  Log("insert dev=" + std::to_string(device) + " ids=[" +
      std::to_string(rec.events.front().id) + "," +
      std::to_string(rec.events.back().id) + "] status=" + s.ToString());
  if (s.ok()) {
    rec.state = InsertRecord::kCertain;
    cur.last_id = rec.events.back().id;
    Count("inserts_ok");
  } else {
    rec.state = InsertRecord::kUnresolved;
    cur.dirty = true;
    Count("inserts_unresolved");
  }
  records_.push_back(std::move(rec));
}

void ClusterChaosRun::DoQuery() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  std::vector<Row> rows;
  Status s = client_->QueryAll(
      kTable, QueryBounds::ForPrefix(Key{Value::Int64(device)}), &rows);
  Log("query dev=" + std::to_string(device) + " rows=" +
      std::to_string(rows.size()) + " status=" + s.ToString());
  if (!s.ok()) return;
  Count("queries_ok");
  VerifyDeviceRows(device, rows);
}

void ClusterChaosRun::DoLatestRow() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  Row row;
  bool found = false;
  Status s =
      client_->LatestRow(kTable, Key{Value::Int64(device)}, &row, &found);
  Log("latest dev=" + std::to_string(device) + " found=" +
      std::to_string(found ? 1 : 0) + " status=" + s.ToString());
  if (!s.ok()) return;
  Count("latest_ok");
  if (found && !CheckRowContent(row)) return;
  ResolveFromLatest(device, found ? row[1].AsInt() : 0);
}

void ClusterChaosRun::DoShip() {
  const uint32_t g = static_cast<uint32_t>(rng_.Uniform(opts_.groups));
  cluster::ReplicaAgent* p = PrimaryAgent(g);
  if (p == nullptr || p->role() != cluster::ReplicaAgent::Role::kPrimary) {
    Log("ship g=" + std::to_string(g) + " no_primary");
    return;
  }
  Status s = p->ShipOnce();
  Log("ship g=" + std::to_string(g) + " status=" + s.ToString());
  if (s.ok()) {
    MarkGroupDurable(g);
    Count("ships_ok");
  }
}

void ClusterChaosRun::DoFullScan() {
  std::vector<Row> rows;
  QueryBounds all;
  Status s = client_->QueryAll(kTable, all, &rows);
  Log("scan rows=" + std::to_string(rows.size()) + " status=" + s.ToString());
  if (!s.ok()) return;
  Count("scans_ok");
  for (const Row& row : rows) {
    if (row.size() != 5) {
      Violation("scan row has wrong arity");
      return;
    }
  }
  // The fan-out merge must deliver one globally key-ordered stream even
  // when the rows come from different shard groups.
  for (size_t i = 1; i < rows.size(); i++) {
    const auto prev = std::make_pair(rows[i - 1][0].AsInt(),
                                     rows[i - 1][1].AsInt());
    const auto here = std::make_pair(rows[i][0].AsInt(), rows[i][1].AsInt());
    if (!(prev < here)) {
      Violation("fan-out scan not in key order at row " + std::to_string(i));
      return;
    }
  }
  std::map<int64_t, std::vector<Row>> by_dev;
  for (const Row& row : rows) by_dev[row[0].AsInt()].push_back(row);
  for (int64_t d = 1; d <= opts_.devices; d++) {
    if (!VerifyDeviceRows(d, by_dev[d])) return;
  }
}

void ClusterChaosRun::DoProbe() {
  coordinator_->ProbeOnce();
  NoteClusterView();
  Log("probe epoch=" + std::to_string(coordinator_->epoch()));
}

void ClusterChaosRun::MaybeInjectFault() {
  for (GroupState& grp : groups_) {
    if (grp.partition_ops_left > 0 && --grp.partition_ops_left == 0) {
      transport_->SetLinkPartitioned(grp.a.name, grp.b.name, false);
      Log("partition heal g=" + std::to_string(grp.id));
    }
  }
  if (!rng_.Bernoulli(opts_.fault_rate)) return;
  Count("faults");
  const uint32_t g = static_cast<uint32_t>(rng_.Uniform(opts_.groups));
  switch (rng_.Uniform(8)) {
    case 0:
      CrashPrimary(g, /*quick_restart=*/rng_.Bernoulli(0.5));
      break;
    case 1:
      CrashSecondary(g);
      break;
    case 2:
      if (groups_[g].partition_ops_left == 0) {
        groups_[g].partition_ops_left = 1 + static_cast<int>(rng_.Uniform(4));
        transport_->SetLinkPartitioned(groups_[g].a.name, groups_[g].b.name,
                                       true);
        Log("fault partition g=" + std::to_string(g) +
            " ops=" + std::to_string(groups_[g].partition_ops_left));
      }
      break;
    case 3: {
      const size_t keep = rng_.Uniform(17);
      transport_->TruncateNextServerWrite(keep);
      Log("fault truncate keep=" + std::to_string(keep));
      break;
    }
    case 4: {
      const Timestamp delay = (1 + rng_.Uniform(1000)) * 1000;  // 1ms..1s.
      transport_->DelayNextWrite(delay);
      Log("fault delay micros=" + std::to_string(delay));
      break;
    }
    case 5: {
      // Sever one machine's connections without killing it.
      std::vector<std::string> names;
      for (const GroupState& grp : groups_) {
        names.push_back(grp.a.name);
        names.push_back(grp.b.name);
      }
      names.push_back("client");
      const std::string& victim = names[rng_.Uniform(names.size())];
      transport_->ResetNodeConnections(victim);
      Log("fault reset_node node=" + victim);
      break;
    }
    case 6: {
      const int n = 1 + static_cast<int>(rng_.Uniform(8));
      fault::ArmNthCrashPoint(n);
      Log("fault crash_point n=" + std::to_string(n));
      break;
    }
    case 7:
      Log("fault reset_all");
      transport_->ResetAllConnections();
      break;
  }
}

void ClusterChaosRun::DoOneOp() {
  const uint64_t pick = rng_.Uniform(100);
  if (pick < 45) {
    DoInsert();
  } else if (pick < 60) {
    DoQuery();
  } else if (pick < 70) {
    DoLatestRow();
  } else if (pick < 82) {
    DoShip();
  } else if (pick < 90) {
    DoFullScan();
  } else {
    DoProbe();
  }
}

void ClusterChaosRun::FinalVerdict() {
  // Every run ends the same way: kill each group's primary, require the
  // coordinator to promote, and verify the promoted node serves the full
  // surviving history — durability judged on the failed-over cluster.
  for (uint32_t g = 0; g < static_cast<uint32_t>(opts_.groups) && report_->ok;
       g++) {
    Log("final failover g=" + std::to_string(g));
    CrashPrimary(g, /*quick_restart=*/false);
  }
  if (!report_->ok) return;
  uint64_t durable_rows = 0;
  for (const InsertRecord& rec : records_) {
    if (rec.state == InsertRecord::kCertain) durable_rows += rec.events.size();
  }
  report_->counters["durable_rows"] = durable_rows;
  report_->counters["failovers"] = coordinator_->failovers();
  const SimTransportStats ts = transport_->stats();
  report_->counters["transport_connects"] = ts.connects;
  report_->counters["transport_resets"] = ts.resets_injected;
  Log("done durable_rows=" + std::to_string(durable_rows) +
      " failovers=" + std::to_string(coordinator_->failovers()));
}

Status ClusterChaosRun::Run() {
  fault::DisarmCrashPoints();  // Global state; start from a clean slate.
  LT_RETURN_IF_ERROR(Setup());
  for (int i = 0; i < opts_.ops && report_->ok; i++) {
    clock_->Advance((1 + rng_.Uniform(30)) * kMicrosPerSecond);
    MaybeInjectFault();
    if (!report_->ok) break;
    DoOneOp();
  }
  if (report_->ok) FinalVerdict();
  // Tear down in dependency order before the envs go away.
  client_.reset();
  if (coordinator_) coordinator_->Stop();
  for (GroupState& grp : groups_) {
    for (NodeState* n : {&grp.a, &grp.b}) {
      if (n->agent) n->agent->Stop();
      n->agent.reset();
      if (n->db) n->db->Abandon();
      n->db.reset();
    }
  }
  coordinator_.reset();
  fault::DisarmCrashPoints();
  return Status::OK();
}

}  // namespace

Status RunClusterChaos(const ClusterChaosOptions& options,
                       ClusterChaosReport* report) {
  *report = ClusterChaosReport();
  if (options.ops < 0 || options.devices < 1) {
    return Status::InvalidArgument("ops must be >= 0 and devices >= 1");
  }
  if (options.groups < 1 || options.groups > 4) {
    return Status::InvalidArgument("groups must be in [1, 4]");
  }
  if (options.fault_rate < 0.0 || options.fault_rate > 1.0) {
    return Status::InvalidArgument("fault_rate must be in [0, 1]");
  }
  ClusterChaosRun run(options, report);
  return run.Run();
}

}  // namespace sim
}  // namespace lt
