// Seeded overload chaos: firehose queries, slow readers, cancels, and
// concurrent ingest against one server, with an oracle for graceful
// degradation instead of durability.
//
// RunOverloadChaos stands up a DB + server on SimTransport with tight
// overload knobs — a small per-query byte budget, a couple of concurrent
// scan slots with a short queue-wait deadline, per-tenant token-bucket
// quotas, and a bounded simulated kernel send buffer (the slow-reader
// backpressure surface) — then drives a seeded schedule of:
//
//   - firehose queries issued on raw connections and left undrained (each
//     undrained connection IS a slow reader: the server streams until the
//     send buffer and its outbound budget fill, then the scan parks);
//   - draining those connections to completion in FIFO order (admission is
//     FIFO, so the front of the pending list always owns a slot or has
//     been shed — the drain can never deadlock behind itself);
//   - kCancel frames racing in-flight scans, and outright disconnects of
//     connections mid-stream (connection-close cancellation);
//   - inserts interleaved through a normal client (ingest must keep
//     flowing while scans are parked and queued).
//
// The oracle asserts the PR-10 contract: zero crashes; every issued query
// terminates with either rows or an explicit error reply whose code is one
// of the shed/cancel codes (never a hang, never a silent drop, never a
// surprise code); after the storm a plain query succeeds (service
// restored); and the server's accounted per-query peak
// (server.query_stream_peak_bytes) never exceeded the configured budget.
//
// Unlike sim/chaos.h this harness makes no event-log determinism promise:
// the server's worker threads race the schedule by design (whether a
// cancel beats its scan is real concurrency). The seed fixes the workload;
// the oracle properties must hold on every interleaving.
#ifndef LITTLETABLE_SIM_OVERLOAD_CHAOS_H_
#define LITTLETABLE_SIM_OVERLOAD_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace lt {
namespace sim {

struct OverloadChaosOptions {
  uint64_t seed = 1;
  /// Schedule steps (query issues, drains, cancels, disconnects, inserts).
  int ops = 300;
  /// Devices keyed into the events table (query fan-out axis).
  int devices = 4;
  /// Rows preloaded before the storm so scans dwarf the byte budget.
  int preload_rows = 2000;
  /// Server-side per-query streaming byte budget (the oracle's bound).
  size_t query_budget_bytes = 8 * 1024;
  /// Server-side default row cap (0 = uncapped); exercises the
  /// more-available truncation path under load when set.
  uint64_t default_query_row_cap = 0;
  /// Admission knobs.
  size_t max_concurrent_scans = 2;
  size_t max_queued_scans = 3;
  int queue_wait_timeout_ms = 200;
  /// Default per-tenant quota applied to bound tenants (0 = no quota on
  /// that axis). Firehose connections bind tenants 1..3. The default is
  /// deliberately below the schedule's per-tenant arrival rate so quota
  /// sheds actually occur.
  double tenant_queries_per_sec = 2;
  double tenant_rows_per_sec = 0;
  /// Simulated kernel send-buffer cap per connection direction — what makes
  /// an undrained connection exert real backpressure.
  size_t conn_buffer_bytes = 4 * 1024;
  /// Most firehose queries left in flight at once.
  size_t max_pending = 8;
};

struct OverloadChaosReport {
  bool ok = true;
  std::string failure;
  /// One line per schedule action with the observed outcome. Seeded but
  /// NOT deterministic across runs (real worker-thread races); the nightly
  /// batch uploads it as the repro log for failed seeds.
  std::vector<std::string> event_log;
  /// queries_issued, queries_rows, shed_busy, shed_exhausted, cancelled,
  /// disconnects, inserts_ok, peak_bytes_max, ...
  std::map<std::string, uint64_t> counters;
};

/// Runs one seeded overload schedule. Non-OK only for harness-level
/// failures; oracle violations come back as report->ok == false.
Status RunOverloadChaos(const OverloadChaosOptions& options,
                        OverloadChaosReport* report);

}  // namespace sim
}  // namespace lt

#endif  // LITTLETABLE_SIM_OVERLOAD_CHAOS_H_
