// Seeded multi-node chaos simulation for the replicated cluster layer.
//
// RunClusterChaos builds a whole replicated deployment in one process — a
// coordinator plus `groups` two-node shard groups, each node with its own
// DB on its own simulated disk, all speaking the real wire protocol over
// one SimTransport with per-machine attribution — and drives a routed
// ClusterClient workload while a seeded scheduler injects the cluster's
// fault surface:
//
//   - primary crashes (connections severed, DB abandoned, unsynced bytes
//     dropped), with both outcomes exercised: a quick restart that resumes
//     the primary role on a fresh replication stream, and a full failover
//     where the coordinator promotes the secondary and the old primary
//     rejoins as a strict-prefix secondary;
//   - secondary crashes and rejoins (the shipper's peer picture self-heals
//     from the set-sync reply);
//   - primary<->secondary link partitions (replication stalls while client
//     traffic keeps flowing), torn replication frames, delayed delivery,
//     connection resets, and armed crash points in the flush/ship path.
//
// The oracle models every routed insert and checks, after each crash and
// at the end (which always forces one last failover per group):
//   - acknowledged inserts covered by a completed ship round (ShipOnce
//     returning OK means everything acked before the call is durable on
//     BOTH replicas) are NEVER lost, across any schedule;
//   - inserts acked after the last completed round may die with a crashed
//     primary — the documented §3.1 redo-window loss — but only as whole
//     batches, and only such that each device's surviving ids stay
//     contiguous from 1 (prefix durability on the promoted primary);
//   - query results contain exactly the modeled rows: no phantoms, no
//     duplicates, no partial batches, content byte-equal to the generator.
//
// Everything is a pure function of the seed: two runs with the same seed
// produce byte-identical event logs (`lt_sim --cluster --verify-seed`).
#ifndef LITTLETABLE_SIM_CLUSTER_CHAOS_H_
#define LITTLETABLE_SIM_CLUSTER_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace lt {
namespace sim {

struct ClusterChaosOptions {
  uint64_t seed = 1;
  /// Workload operations (routed inserts, queries, latest-row probes).
  int ops = 200;
  /// Probability that a fault is injected before an operation.
  double fault_rate = 0.25;
  /// Simulated devices feeding the events table (spread across groups by
  /// the routing hash).
  int devices = 4;
  /// Two-node shard groups behind the coordinator.
  int groups = 1;
};

struct ClusterChaosReport {
  bool ok = true;
  /// First oracle violation ("" when ok).
  std::string failure;
  /// One line per simulated action; byte-identical across same-seed runs.
  std::vector<std::string> event_log;
  /// Deterministic counters (ops by kind, faults, failovers, ship rounds).
  std::map<std::string, uint64_t> counters;
};

/// Runs one seeded multi-node chaos schedule. Non-OK only for harness
/// failures; oracle violations come back as report->ok == false. Uses
/// process-global crash-point state: one run at a time per process.
Status RunClusterChaos(const ClusterChaosOptions& options,
                       ClusterChaosReport* report);

}  // namespace sim
}  // namespace lt

#endif  // LITTLETABLE_SIM_CLUSTER_CHAOS_H_
