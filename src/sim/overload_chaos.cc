#include "sim/overload_chaos.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/db.h"
#include "env/mem_env.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "sim/sim_transport.h"
#include "util/coding.h"
#include "util/random.h"

namespace lt {
namespace sim {
namespace {

using wire::ErrCode;
using wire::MsgType;

constexpr Timestamp kEpoch = Timestamp{1700000000} * 1000000;
constexpr uint16_t kPort = 7713;
constexpr char kTable[] = "events";
constexpr char kRoot[] = "overload";

Schema EventsSchema() {
  return Schema({Column("device", ColumnType::kInt64),
                 Column("id", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("kind", ColumnType::kString),
                 Column("detail", ColumnType::kString)},
                /*num_key_columns=*/3);
}

/// One firehose query in flight on its own raw connection. Until its drain
/// op comes it is a slow reader: the server can only push as much as the
/// simulated send buffer plus its own budget allow.
struct Pending {
  uint64_t qid = 0;
  std::unique_ptr<net::Connection> conn;
  std::string inbuf;       // Frame reassembly buffer.
  int pre_oks = 0;         // kSetTenant acks due before the stream.
  int cancel_acks = 0;     // kCancel acks due after the terminal frame.
  bool terminal_seen = false;
  bool more_available = false;
  uint64_t rows = 0;
  std::string outcome;     // "rows" / "shed_busy" / "shed_exhausted" /
                           // "cancelled" once terminal_seen.
};

class OverloadRun {
 public:
  OverloadRun(const OverloadChaosOptions& opts, OverloadChaosReport* report)
      : opts_(opts),
        report_(report),
        rng_(opts.seed ^ 0xda3e39cb94b95bdbull) {}

  Status Run();

 private:
  void Log(const std::string& line) {
    report_->event_log.push_back("t=" + std::to_string(clock_->Now() - kEpoch) +
                                 " " + line);
  }
  void Count(const std::string& key, uint64_t n = 1) {
    report_->counters[key] += n;
  }
  void Violation(const std::string& what) {
    if (!report_->ok) return;
    report_->ok = false;
    report_->failure = what;
    Log("ORACLE VIOLATION: " + what);
  }

  Status Setup();
  Status Preload();

  void DoIssueQuery();
  void DoDrainOldest();
  void DoCancel();
  void DoDisconnect();
  void DoInsert();

  /// Non-blocking: reads whatever every pending connection has, parses
  /// complete frames, retires finished queries. Returns true if any byte
  /// or retirement happened.
  bool PumpAll();
  /// Parses frames out of p's inbuf; returns false on an oracle violation.
  bool ParseFrames(Pending* p);
  /// Blocks (bounded) until the oldest pending query retires.
  void DrainOldestBlocking();
  void Retire(size_t idx);

  void FinalChecks();

  const OverloadChaosOptions opts_;
  OverloadChaosReport* const report_;
  Random rng_;

  std::shared_ptr<SimClock> clock_;
  std::unique_ptr<MemEnv> env_;
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<LittleTableServer> server_;
  std::unique_ptr<Client> client_;

  Schema schema_{EventsSchema()};
  std::deque<Pending> pending_;
  std::map<int64_t, int64_t> next_id_;
  uint64_t next_qid_ = 1;
};

Status OverloadRun::Setup() {
  clock_ = std::make_shared<SimClock>();
  clock_->Set(kEpoch);
  env_ = std::make_unique<MemEnv>();

  SimTransportOptions topts;
  topts.clock = clock_;
  topts.conn_buffer_bytes = opts_.conn_buffer_bytes;
  transport_ = std::make_unique<SimTransport>(topts);

  DbOptions dopts;
  dopts.background_maintenance = false;
  dopts.block_cache_bytes = 4ull << 20;
  dopts.logger = std::make_shared<Logger>(LogLevel::kError,
                                          std::make_shared<CaptureLogSink>());
  LT_RETURN_IF_ERROR(DB::Open(env_.get(), clock_, kRoot, dopts, &db_));
  LT_RETURN_IF_ERROR(db_->CreateTable(kTable, schema_, /*options=*/nullptr));

  ServerOptions sopts;
  sopts.port = kPort;
  sopts.transport = transport_.get();
  sopts.clock = clock_;
  sopts.poll_interval_ms = 5;
  // Write-stall kills are deliberately out of scope: every undrained
  // connection here is a "slow reader" the schedule will eventually drain,
  // and a server-side kill would make "query never answered" ambiguous.
  sopts.io_timeout_ms = 10 * 60 * 1000;
  sopts.drain_timeout_ms = 200;
  sopts.query_budget_bytes = opts_.query_budget_bytes;
  sopts.default_query_row_cap = opts_.default_query_row_cap;
  sopts.admission.max_concurrent_scans = opts_.max_concurrent_scans;
  sopts.admission.max_queued_scans = opts_.max_queued_scans;
  sopts.admission.queue_wait_timeout_ms = opts_.queue_wait_timeout_ms;
  sopts.admission.default_quota.queries_per_sec = opts_.tenant_queries_per_sec;
  sopts.admission.default_quota.scanned_rows_per_sec = opts_.tenant_rows_per_sec;
  server_ = std::make_unique<LittleTableServer>(db_.get(), sopts);
  LT_RETURN_IF_ERROR(server_->Start());

  ClientOptions copts;
  copts.transport = transport_.get();
  copts.clock = clock_;
  copts.connect_timeout_ms = 1000;
  copts.read_timeout_ms = 5000;
  copts.write_timeout_ms = 5000;
  copts.max_retries = 3;
  copts.backoff_seed = opts_.seed;
  copts.backoff_sleep = [clock = clock_](int64_t ms) {
    clock->Advance(ms * 1000);
  };
  LT_RETURN_IF_ERROR(Client::Connect("sim", kPort, copts, &client_));
  Timestamp ttl = 0;
  return client_->GetTableInfo(kTable, &schema_, &ttl);
}

Status OverloadRun::Preload() {
  const std::string detail(64, 'x');
  std::vector<Row> batch;
  int inserted = 0;
  while (inserted < opts_.preload_rows) {
    batch.clear();
    for (int i = 0; i < 50 && inserted < opts_.preload_rows; i++, inserted++) {
      const int64_t device = 1 + inserted % opts_.devices;
      const int64_t id = ++next_id_[device];
      batch.push_back({Value::Int64(device), Value::Int64(id),
                       Value::Ts(clock_->Now()), Value::String("preload"),
                       Value::String(detail)});
    }
    LT_RETURN_IF_ERROR(client_->Insert(kTable, batch));
    clock_->Advance(kMicrosPerSecond);
  }
  Log("preload rows=" + std::to_string(inserted));
  return Status::OK();
}

void OverloadRun::DoIssueQuery() {
  if (pending_.size() >= opts_.max_pending) {
    DoDrainOldest();
    return;
  }
  Pending p;
  p.qid = next_qid_++;
  Status s = transport_->Connect("sim", kPort, 1000, &p.conn);
  if (!s.ok()) {
    Violation("firehose connect failed: " + s.ToString());
    return;
  }
  p.conn->set_read_timeout_ms(1000);
  p.conn->set_write_timeout_ms(1000);
  // Half the connections bind a tenant (1..3, sharing the default quota);
  // the rest stay anonymous, exempt from quotas but not from admission.
  int64_t tenant = 0;
  if (rng_.Bernoulli(0.5)) {
    tenant = 1 + static_cast<int64_t>(rng_.Uniform(3));
    std::string body;
    PutVarint64(&body, static_cast<uint64_t>(tenant));
    const std::string f = wire::Frame(MsgType::kSetTenant, body);
    if (!p.conn->WriteAll(f.data(), f.size()).ok()) {
      Violation("kSetTenant write failed");
      return;
    }
    p.pre_oks = 1;
  }
  QueryBounds bounds;
  std::string what = "all";
  if (rng_.Bernoulli(0.5)) {
    const int64_t device =
        1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
    bounds = QueryBounds::ForPrefix(Key{Value::Int64(device)});
    what = "dev=" + std::to_string(device);
  }
  std::string req;
  PutLengthPrefixedSlice(&req, kTable);
  PutVarint32(&req, schema_.version());
  wire::EncodeBounds(&req, schema_, bounds);
  const std::string f = wire::Frame(MsgType::kQuery, req);
  if (!p.conn->WriteAll(f.data(), f.size()).ok()) {
    Violation("kQuery write failed");
    return;
  }
  Log("issue qid=" + std::to_string(p.qid) + " " + what +
      " tenant=" + std::to_string(tenant));
  Count("queries_issued");
  pending_.push_back(std::move(p));
}

bool OverloadRun::ParseFrames(Pending* p) {
  while (true) {
    if (p->inbuf.size() < 4) return true;
    const uint32_t len = DecodeFixed32(p->inbuf.data());
    if (len == 0 || len > wire::kMaxFrameBytes) {
      Violation("bad frame length from server");
      return false;
    }
    if (p->inbuf.size() < 4 + len) return true;
    const MsgType type = static_cast<MsgType>(p->inbuf[4]);
    Slice body(p->inbuf.data() + 5, len - 1);
    switch (type) {
      case MsgType::kOk:
        if (!p->terminal_seen && p->pre_oks > 0) {
          p->pre_oks--;
        } else if (p->terminal_seen && p->cancel_acks > 0) {
          p->cancel_acks--;
        } else {
          Violation("unexpected kOk on query connection");
          return false;
        }
        break;
      case MsgType::kQueryChunk: {
        if (p->terminal_seen) {
          Violation("chunk after terminal frame");
          return false;
        }
        if (body.empty()) {
          Violation("empty chunk");
          return false;
        }
        const uint8_t flags = static_cast<uint8_t>(body[0]);
        body.remove_prefix(1);
        uint32_t version = 0, count = 0;
        if (!GetVarint32(&body, &version) || !GetVarint32(&body, &count)) {
          Violation("bad chunk header");
          return false;
        }
        p->rows += count;
        if (flags & wire::kChunkFinal) {
          p->terminal_seen = true;
          p->more_available = (flags & wire::kChunkMoreAvailable) != 0;
          p->outcome = "rows";
        }
        break;
      }
      case MsgType::kError: {
        if (p->terminal_seen || body.empty()) {
          Violation("unexpected kError placement");
          return false;
        }
        p->terminal_seen = true;
        switch (static_cast<ErrCode>(body[0])) {
          case ErrCode::kResourceExhausted:
            p->outcome = "shed_exhausted";
            break;
          case ErrCode::kServerBusy:
            p->outcome = "shed_busy";
            break;
          case ErrCode::kCancelled:
            p->outcome = "cancelled";
            break;
          default:
            Violation("query qid=" + std::to_string(p->qid) +
                      " shed with unexpected error code " +
                      std::to_string(static_cast<int>(body[0])));
            return false;
        }
        break;
      }
      default:
        Violation("unexpected frame type " +
                  std::to_string(static_cast<int>(type)));
        return false;
    }
    p->inbuf.erase(0, 4 + len);
  }
}

void OverloadRun::Retire(size_t idx) {
  Pending& p = pending_[idx];
  Log("done qid=" + std::to_string(p.qid) + " outcome=" + p.outcome +
      " rows=" + std::to_string(p.rows) +
      (p.more_available ? " more_available" : ""));
  Count(p.outcome);
  if (p.outcome == "rows") Count("queries_rows", p.rows);
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(idx));
}

bool OverloadRun::PumpAll() {
  bool progress = false;
  for (size_t i = 0; i < pending_.size();) {
    Pending& p = pending_[i];
    char buf[4096];
    while (true) {
      size_t got = 0;
      Status s = p.conn->ReadSome(buf, sizeof(buf), &got);
      if (!s.ok()) {
        Violation("query qid=" + std::to_string(p.qid) +
                  " connection died before terminal: " + s.ToString());
        return false;
      }
      if (got == 0) break;
      progress = true;
      p.inbuf.append(buf, got);
    }
    if (!ParseFrames(&p)) return false;
    if (p.terminal_seen && p.pre_oks == 0 && p.cancel_acks == 0) {
      Retire(i);
      progress = true;
      continue;  // Same index now holds the next pending entry.
    }
    i++;
  }
  return true;
}

void OverloadRun::DrainOldestBlocking() {
  // Drain-to-completion cannot deadlock: admission is FIFO and queries
  // were issued in qid order, so the oldest pending query either already
  // holds a scan slot (it resumes as we consume its bytes) or has been
  // shed — either way its terminal frame is coming. Everything else gets
  // pumped too, so slot holders other than the oldest also make progress.
  const uint64_t target = pending_.empty() ? 0 : pending_.front().qid;
  int idle_rounds = 0;
  while (report_->ok && !pending_.empty() &&
         pending_.front().qid == target) {
    if (!PumpAll()) return;
    if (pending_.empty() || pending_.front().qid != target) break;
    bool ready = false;
    Status s = pending_.front().conn->WaitReadable(100, &ready);
    if (!s.ok()) {
      Violation("wait on qid=" + std::to_string(target) + " failed: " +
                s.ToString());
      return;
    }
    if (!ready && ++idle_rounds > 100) {
      Violation("query qid=" + std::to_string(target) +
                " never answered (hang)");
      return;
    }
    if (ready) idle_rounds = 0;
  }
}

void OverloadRun::DoDrainOldest() {
  if (pending_.empty()) return;
  Log("drain qid=" + std::to_string(pending_.front().qid));
  DrainOldestBlocking();
}

void OverloadRun::DoCancel() {
  if (pending_.empty()) return;
  const size_t idx = rng_.Uniform(pending_.size());
  Pending& p = pending_[idx];
  const std::string f = wire::Frame(MsgType::kCancel, "");
  if (!p.conn->WriteAll(f.data(), f.size()).ok()) {
    Violation("kCancel write failed");
    return;
  }
  p.cancel_acks++;
  Log("cancel qid=" + std::to_string(p.qid));
  Count("cancels_sent");
}

void OverloadRun::DoDisconnect() {
  if (pending_.empty()) return;
  const size_t idx = rng_.Uniform(pending_.size());
  Log("disconnect qid=" + std::to_string(pending_[idx].qid));
  pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(idx));
  Count("disconnects");
}

void OverloadRun::DoInsert() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  std::vector<Row> rows;
  const std::string detail(64, 'y');
  const size_t n = 1 + rng_.Uniform(4);
  for (size_t i = 0; i < n; i++) {
    rows.push_back({Value::Int64(device), Value::Int64(++next_id_[device]),
                    Value::Ts(clock_->Now()), Value::String("storm"),
                    Value::String(detail)});
  }
  Status s = client_->Insert(kTable, rows);
  Log("insert dev=" + std::to_string(device) + " n=" + std::to_string(n) +
      " status=" + s.ToString());
  if (s.ok()) {
    Count("inserts_ok");
  } else {
    // Ingest runs on its own connection and its own worker task; overload
    // on the scan path must not fail it.
    Violation("insert failed under overload: " + s.ToString());
  }
}

void OverloadRun::FinalChecks() {
  // Every issued query must terminate explicitly.
  while (report_->ok && !pending_.empty()) DrainOldestBlocking();
  if (!report_->ok) return;

  // Service restored: a plain query after the storm succeeds.
  std::vector<Row> rows;
  Status s = client_->QueryAll(
      kTable, QueryBounds::ForPrefix(Key{Value::Int64(1)}), &rows);
  if (!s.ok()) {
    Violation("post-storm query failed: " + s.ToString());
    return;
  }
  const uint64_t expect =
      static_cast<uint64_t>(next_id_.count(1) ? next_id_[1] : 0);
  if (rows.size() != expect) {
    Violation("post-storm query returned " + std::to_string(rows.size()) +
              " rows, want " + std::to_string(expect));
    return;
  }
  Log("post_storm_query rows=" + std::to_string(rows.size()));

  // The accounted per-query peak respected the budget.
  ServerStats stats;
  s = client_->Stats("", &stats);
  if (!s.ok()) {
    Violation("stats fetch failed: " + s.ToString());
    return;
  }
  const auto it = stats.histograms.find("server.query_stream_peak_bytes");
  if (it != stats.histograms.end()) {
    Count("peak_bytes_max", it->second.max);
    if (opts_.query_budget_bytes > 0 &&
        it->second.max > opts_.query_budget_bytes) {
      Violation("accounted peak " + std::to_string(it->second.max) +
                " exceeded budget " +
                std::to_string(opts_.query_budget_bytes));
      return;
    }
  }
  for (const char* key :
       {"server.query_shed", "server.query_shed.quota",
        "server.query_shed.queue_full", "server.query_shed.wait_timeout",
        "server.query_cancelled", "server.stream_pauses"}) {
    const auto c = stats.counters.find(key);
    if (c != stats.counters.end()) Count(std::string("srv.") + key, c->second);
  }
  // Sheds the harness observed as explicit replies cannot exceed what the
  // server says it shed (the server also sheds into dead connections).
  const uint64_t observed = report_->counters["shed_busy"] +
                            report_->counters["shed_exhausted"];
  const auto shed = stats.counters.find("server.query_shed");
  if (shed != stats.counters.end() && observed > shed->second) {
    Violation("observed " + std::to_string(observed) +
              " shed replies but server counted only " +
              std::to_string(shed->second));
  }
}

Status OverloadRun::Run() {
  LT_RETURN_IF_ERROR(Setup());
  LT_RETURN_IF_ERROR(Preload());
  for (int i = 0; i < opts_.ops && report_->ok; i++) {
    clock_->Advance((5 + rng_.Uniform(46)) * 1000);  // 5..50 ms.
    const uint64_t pick = rng_.Uniform(100);
    if (pick < 35) {
      DoIssueQuery();
    } else if (pick < 60) {
      DoDrainOldest();
    } else if (pick < 72) {
      DoCancel();
    } else if (pick < 80) {
      DoDisconnect();
    } else {
      DoInsert();
    }
  }
  if (report_->ok) FinalChecks();
  pending_.clear();
  client_.reset();
  if (server_) server_->Stop();
  server_.reset();
  if (db_) db_->Abandon();
  db_.reset();
  return Status::OK();
}

}  // namespace

Status RunOverloadChaos(const OverloadChaosOptions& options,
                        OverloadChaosReport* report) {
  *report = OverloadChaosReport();
  if (options.ops < 0 || options.devices < 1 || options.max_pending < 1) {
    return Status::InvalidArgument("bad overload options");
  }
  OverloadRun run(options, report);
  return run.Run();
}

}  // namespace sim
}  // namespace lt
