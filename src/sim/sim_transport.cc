#include "sim/sim_transport.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <utility>
#include <vector>

namespace lt {
namespace sim {

namespace {
std::string Where(uint16_t port) {
  return "127.0.0.1:" + std::to_string(port);
}
}  // namespace

// One direction of a connection. Bytes travel as chunks stamped with the
// SimClock time they become readable.
struct HalfPipe {
  struct Chunk {
    std::string data;
    Timestamp deliver_at = 0;
  };
  std::deque<Chunk> chunks;
  size_t offset = 0;    // Consumed prefix of chunks.front().
  size_t pending = 0;   // Unread bytes across chunks (offset excluded).
  bool closed = false;  // Writer closed: EOF once chunks drain.

  bool empty() const { return chunks.empty(); }
};

struct Pipe {
  HalfPipe to_server;  // Written by the connecting (client) end.
  HalfPipe to_client;
  bool reset = false;  // RST: both ends error once deliverable data drains.
  bool client_gone = false;
  bool server_gone = false;
  // Which simulated machines own each end ("" = the anonymous base node);
  // per-link partitions and node crashes match on these.
  std::string client_node;
  std::string server_node;
};

// All transport state shares one mutex + condition variable: the simulated
// network is small (a handful of connections) and a single monitor keeps
// every wake-up path trivially correct.
struct SimTransport::Inner {
  std::mutex mu;
  std::condition_variable cv;
  std::shared_ptr<SimClock> clock;
  bool auto_advance = true;
  size_t conn_buffer_bytes = 0;  // WriteSome cap per direction; 0 = none.

  struct ListenerState {
    uint16_t port = 0;
    std::string node;  // Machine the listener is bound on.
    std::deque<std::shared_ptr<Pipe>> backlog;
    bool closed = false;
  };
  std::map<uint16_t, std::shared_ptr<ListenerState>> listeners;
  uint16_t next_ephemeral = 40000;
  std::vector<std::weak_ptr<Pipe>> pipes;

  // Fault state.
  int fail_next_connects = 0;
  bool partitioned = false;
  bool truncate_armed = false;
  size_t truncate_keep = 0;
  Timestamp delay_next_write = 0;
  int reorder_next_accepts = 0;
  // Severed node pairs, normalized (smaller name first).
  std::set<std::pair<std::string, std::string>> severed_links;

  SimTransportStats stats;

  bool LinkDownLocked(const std::string& a, const std::string& b) const {
    if (severed_links.empty() || a == b) return false;
    return severed_links.count(a < b ? std::make_pair(a, b)
                                     : std::make_pair(b, a)) > 0;
  }

  /// Moves the clock to `t` if it is behind (callers hold mu, so leaps are
  /// serialized and deterministic).
  void LeapTo(Timestamp t) {
    Timestamp now = clock->Now();
    if (t > now) clock->Advance(t - now);
  }
};

namespace {

class SimConnection final : public net::Connection {
 public:
  SimConnection(std::shared_ptr<SimTransport::Inner> inner,
                std::shared_ptr<Pipe> pipe, bool is_server)
      : inner_(std::move(inner)), pipe_(std::move(pipe)),
        is_server_(is_server) {}

  ~SimConnection() override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    ShutdownLocked();
  }

  void set_read_timeout_ms(int ms) override { read_timeout_ms_ = ms; }
  void set_write_timeout_ms(int ms) override { write_timeout_ms_ = ms; }

  Status WaitReadable(int timeout_ms, bool* ready) override {
    *ready = false;
    std::unique_lock<std::mutex> lock(inner_->mu);
    const auto deadline = timeout_ms >= 0
                              ? std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(timeout_ms)
                              : std::chrono::steady_clock::time_point::max();
    while (true) {
      if (shut_) return Status::NetworkError("connection shut down");
      HalfPipe& in = incoming();
      if (!in.empty()) {
        Timestamp at = in.chunks.front().deliver_at;
        if (at <= inner_->clock->Now()) {
          *ready = true;
          return Status::OK();
        }
        if (inner_->auto_advance) {
          inner_->LeapTo(at);
          inner_->cv.notify_all();
          *ready = true;
          return Status::OK();
        }
      } else if (pipe_->reset || in.closed) {
        // The next read reports the reset/EOF; poll(2) flags these ready.
        *ready = true;
        return Status::OK();
      }
      if (timeout_ms >= 0) {
        if (inner_->cv.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
          return Status::OK();  // *ready stays false.
        }
      } else {
        inner_->cv.wait(lock);
      }
    }
  }

  Status WriteAll(const char* data, size_t n) override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    if (shut_) return Status::NetworkError("connection shut down");
    if (pipe_->reset) {
      return Status::NetworkError("connection reset by peer");
    }
    if (peer_gone()) {
      // TCP semantics: the first write after the peer's close is accepted
      // locally (the bytes go nowhere; the peer answers with a reset);
      // only writes after that reset fail. This matters for inline reject
      // frames — a client that races a ping write against the server's
      // reject-and-close must still be able to read the buffered reject.
      if (pipe_->reset) return Status::NetworkError("broken pipe");
      pipe_->reset = true;
      inner_->stats.bytes_blackholed += n;
      inner_->cv.notify_all();
      return Status::OK();
    }
    if (inner_->partitioned ||
        inner_->LinkDownLocked(pipe_->client_node, pipe_->server_node)) {
      // A partition silently eats the bytes; like TCP buffering, the
      // writer cannot tell. The reader's deadline discovers the loss.
      inner_->stats.bytes_blackholed += n;
      return Status::OK();
    }
    Timestamp at = inner_->clock->Now();
    if (inner_->delay_next_write > 0) {
      at += inner_->delay_next_write;
      inner_->delay_next_write = 0;
      inner_->stats.writes_delayed++;
    }
    HalfPipe& out = outgoing();
    if (is_server_ && inner_->truncate_armed) {
      inner_->truncate_armed = false;
      inner_->stats.writes_truncated++;
      size_t keep = std::min(inner_->truncate_keep, n);
      if (keep > 0) {
        out.chunks.push_back({std::string(data, keep), at});
        out.pending += keep;
      }
      pipe_->reset = true;  // The connection dies after the partial frame.
      inner_->cv.notify_all();
      return Status::OK();  // The writer believes the write succeeded.
    }
    out.chunks.push_back({std::string(data, n), at});
    out.pending += n;
    inner_->cv.notify_all();
    return Status::OK();
  }

  Status WriteSome(const char* data, size_t n, size_t* written) override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    *written = 0;
    if (shut_) return Status::NetworkError("connection shut down");
    if (pipe_->reset) return Status::NetworkError("connection reset by peer");
    if (peer_gone()) {
      // Same TCP first-write-after-close semantics as WriteAll: accepted
      // locally, answered with a reset.
      pipe_->reset = true;
      inner_->stats.bytes_blackholed += n;
      inner_->cv.notify_all();
      *written = n;
      return Status::OK();
    }
    if (inner_->partitioned ||
        inner_->LinkDownLocked(pipe_->client_node, pipe_->server_node)) {
      // The partition eats the bytes; the writer cannot tell (so no
      // backpressure either — exactly like bytes vanishing past the NIC).
      inner_->stats.bytes_blackholed += n;
      *written = n;
      return Status::OK();
    }
    HalfPipe& out = outgoing();
    size_t take = n;
    if (inner_->conn_buffer_bytes > 0) {
      if (out.pending >= inner_->conn_buffer_bytes) {
        return Status::OK();  // Buffer full; *written stays 0.
      }
      take = std::min(n, inner_->conn_buffer_bytes - out.pending);
    }
    Timestamp at = inner_->clock->Now();
    if (inner_->delay_next_write > 0) {
      at += inner_->delay_next_write;
      inner_->delay_next_write = 0;
      inner_->stats.writes_delayed++;
    }
    if (is_server_ && inner_->truncate_armed) {
      inner_->truncate_armed = false;
      inner_->stats.writes_truncated++;
      size_t keep = std::min(inner_->truncate_keep, take);
      if (keep > 0) {
        out.chunks.push_back({std::string(data, keep), at});
        out.pending += keep;
      }
      pipe_->reset = true;
      inner_->cv.notify_all();
      *written = take;  // The writer believes the write succeeded.
      return Status::OK();
    }
    out.chunks.push_back({std::string(data, take), at});
    out.pending += take;
    inner_->cv.notify_all();
    *written = take;
    return Status::OK();
  }

  Status ReadAll(char* data, size_t n) override {
    const size_t want = n;
    size_t got = 0;
    std::unique_lock<std::mutex> lock(inner_->mu);
    // Two deadlines for one timeout: the real one bounds waiting for a
    // peer that is genuinely computing; the SimClock one is charged when a
    // partition guarantees no data will ever arrive (the time leap that
    // keeps chaos sweeps fast and deterministic).
    const Timestamp sim_deadline =
        read_timeout_ms_ > 0
            ? inner_->clock->Now() + Timestamp{read_timeout_ms_} * 1000
            : 0;
    const auto real_deadline =
        read_timeout_ms_ > 0 ? std::chrono::steady_clock::now() +
                                   std::chrono::milliseconds(read_timeout_ms_)
                             : std::chrono::steady_clock::time_point::max();
    while (got < want) {
      if (shut_) return Status::NetworkError("connection shut down");
      HalfPipe& in = incoming();
      if (!in.empty()) {
        HalfPipe::Chunk& front = in.chunks.front();
        if (front.deliver_at <= inner_->clock->Now()) {
          size_t take = std::min(front.data.size() - in.offset, want - got);
          std::memcpy(data + got, front.data.data() + in.offset, take);
          got += take;
          in.offset += take;
          in.pending -= take;
          if (in.offset == front.data.size()) {
            in.chunks.pop_front();
            in.offset = 0;
          }
          inner_->cv.notify_all();  // Freed buffer space: writers unblock.
          continue;
        }
        if (inner_->auto_advance) {
          inner_->LeapTo(front.deliver_at);
          inner_->cv.notify_all();
          continue;
        }
      } else {
        // Deliverable data always wins over error reporting, so a torn
        // write delivers its prefix before the reset surfaces.
        if (pipe_->reset) {
          return Status::NetworkError("connection reset by peer");
        }
        if (in.closed) {
          if (got == 0) {
            return Status::Unavailable("connection closed by peer");
          }
          return Status::NetworkError(
              "connection closed mid-read (" + std::to_string(got) + "/" +
              std::to_string(want) + " bytes)");
        }
        if ((inner_->partitioned ||
             inner_->LinkDownLocked(pipe_->client_node,
                                    pipe_->server_node)) &&
            inner_->auto_advance && read_timeout_ms_ > 0) {
          inner_->LeapTo(sim_deadline);
          inner_->cv.notify_all();
          return Status::DeadlineExceeded(
              "read timed out after " + std::to_string(read_timeout_ms_) +
              " ms (" + std::to_string(got) + "/" + std::to_string(want) +
              " bytes)");
        }
      }
      if (read_timeout_ms_ > 0) {
        if (inner_->cv.wait_until(lock, real_deadline) ==
            std::cv_status::timeout) {
          return Status::DeadlineExceeded(
              "read timed out after " + std::to_string(read_timeout_ms_) +
              " ms (" + std::to_string(got) + "/" + std::to_string(want) +
              " bytes)");
        }
      } else {
        inner_->cv.wait(lock);
      }
    }
    return Status::OK();
  }

  Status ReadSome(char* data, size_t n, size_t* got) override {
    *got = 0;
    std::lock_guard<std::mutex> lock(inner_->mu);
    if (shut_) return Status::NetworkError("connection shut down");
    HalfPipe& in = incoming();
    while (*got < n && !in.empty() &&
           in.chunks.front().deliver_at <= inner_->clock->Now()) {
      HalfPipe::Chunk& front = in.chunks.front();
      size_t take = std::min(front.data.size() - in.offset, n - *got);
      std::memcpy(data + *got, front.data.data() + in.offset, take);
      *got += take;
      in.offset += take;
      in.pending -= take;
      if (in.offset == front.data.size()) {
        in.chunks.pop_front();
        in.offset = 0;
      }
    }
    if (*got > 0) {
      inner_->cv.notify_all();  // Freed buffer space: writers unblock.
      return Status::OK();
    }
    if (in.empty()) {
      // Deliverable data always wins over error reporting (matches
      // ReadAll): the reset/EOF surfaces only once the pipe is drained.
      if (pipe_->reset) {
        return Status::NetworkError("connection reset by peer");
      }
      if (in.closed) return Status::Unavailable("connection closed by peer");
    }
    return Status::OK();  // Nothing deliverable yet (delayed or empty).
  }

  void Shutdown() override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    ShutdownLocked();
  }

  /// Poller-side readiness probe; inner_->mu held. True when the next
  /// ReadSome would make progress (data, EOF, reset, or shutdown). When the
  /// only pending data is delayed delivery, lowers *earliest to its
  /// delivery time so the poller can leap the clock.
  bool PollReadyLocked(Timestamp now, Timestamp* earliest) {
    if (shut_) return true;
    HalfPipe& in = incoming();
    if (!in.empty()) {
      Timestamp at = in.chunks.front().deliver_at;
      if (at <= now) return true;
      if (at < *earliest) *earliest = at;
      return false;
    }
    return pipe_->reset || in.closed;
  }

  /// Poller-side writability probe; inner_->mu held. True when the next
  /// WriteSome would make progress — accept bytes, blackhole them, or
  /// surface an error — i.e. everything except "buffer full".
  bool PollWritableLocked() {
    if (shut_ || pipe_->reset || peer_gone()) return true;
    if (inner_->partitioned ||
        inner_->LinkDownLocked(pipe_->client_node, pipe_->server_node)) {
      return true;  // Blackholed writes "succeed".
    }
    return inner_->conn_buffer_bytes == 0 ||
           outgoing().pending < inner_->conn_buffer_bytes;
  }

 private:
  HalfPipe& incoming() {
    return is_server_ ? pipe_->to_server : pipe_->to_client;
  }
  HalfPipe& outgoing() {
    return is_server_ ? pipe_->to_client : pipe_->to_server;
  }
  bool peer_gone() const {
    return is_server_ ? pipe_->client_gone : pipe_->server_gone;
  }

  void ShutdownLocked() {
    if (shut_) return;
    shut_ = true;
    (is_server_ ? pipe_->server_gone : pipe_->client_gone) = true;
    outgoing().closed = true;  // Peer sees EOF after draining.
    inner_->cv.notify_all();
  }

  std::shared_ptr<SimTransport::Inner> inner_;
  std::shared_ptr<Pipe> pipe_;
  const bool is_server_;
  // Guarded by inner_->mu (I/O and Shutdown may race across threads).
  bool shut_ = false;
  int read_timeout_ms_ = 0;
  int write_timeout_ms_ = 0;
};

// Scans the registered connections under the shared monitor. When nothing
// is ready but some connection holds delayed-delivery data, leaps SimClock
// to the earliest delivery time (mirroring WaitReadable) so delayed writes
// never cost real time.
class SimPoller final : public net::Poller {
 public:
  explicit SimPoller(std::shared_ptr<SimTransport::Inner> inner)
      : inner_(std::move(inner)) {}

  void Add(net::Connection* conn, uint64_t tag) override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    entries_.push_back({static_cast<SimConnection*>(conn), tag, false});
  }

  void Remove(net::Connection* conn) override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    for (size_t i = 0; i < entries_.size(); i++) {
      if (entries_[i].conn == conn) {
        entries_[i] = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

  void SetWritable(net::Connection* conn, bool want) override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    for (Entry& e : entries_) {
      if (e.conn == conn) {
        e.want_write = want;
        return;
      }
    }
  }

  Status Wait(int timeout_ms, std::vector<uint64_t>* ready) override {
    ready->clear();
    std::unique_lock<std::mutex> lock(inner_->mu);
    const auto deadline = timeout_ms >= 0
                              ? std::chrono::steady_clock::now() +
                                    std::chrono::milliseconds(timeout_ms)
                              : std::chrono::steady_clock::time_point::max();
    while (true) {
      if (wakeup_) {
        wakeup_ = false;
        return Status::OK();
      }
      Timestamp earliest = std::numeric_limits<Timestamp>::max();
      const Timestamp now = inner_->clock->Now();
      for (const Entry& e : entries_) {
        if (e.conn->PollReadyLocked(now, &earliest) ||
            (e.want_write && e.conn->PollWritableLocked())) {
          ready->push_back(e.tag);
        }
      }
      if (!ready->empty()) return Status::OK();
      if (earliest != std::numeric_limits<Timestamp>::max() &&
          inner_->auto_advance) {
        inner_->LeapTo(earliest);
        inner_->cv.notify_all();
        continue;  // Re-scan: the leap made that data deliverable.
      }
      if (timeout_ms >= 0) {
        if (inner_->cv.wait_until(lock, deadline) == std::cv_status::timeout) {
          return Status::OK();  // *ready stays empty.
        }
      } else {
        inner_->cv.wait(lock);
      }
    }
  }

  void Wakeup() override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    wakeup_ = true;
    inner_->cv.notify_all();
  }

 private:
  struct Entry {
    SimConnection* conn;
    uint64_t tag;
    bool want_write;
  };
  std::shared_ptr<SimTransport::Inner> inner_;
  std::vector<Entry> entries_;  // Guarded by inner_->mu.
  bool wakeup_ = false;         // Guarded by inner_->mu; sticky until Wait.
};

class SimListener final : public net::Listener {
 public:
  SimListener(std::shared_ptr<SimTransport::Inner> inner,
              std::shared_ptr<SimTransport::Inner::ListenerState> state)
      : inner_(std::move(inner)), state_(std::move(state)) {}

  ~SimListener() override { Close(); }

  Status Accept(std::unique_ptr<net::Connection>* conn) override {
    std::unique_lock<std::mutex> lock(inner_->mu);
    while (state_->backlog.empty() && !state_->closed) {
      inner_->cv.wait(lock);
    }
    if (state_->closed) return Status::Aborted("listener closed");
    std::shared_ptr<Pipe> pipe = std::move(state_->backlog.front());
    state_->backlog.pop_front();
    inner_->stats.accepts++;
    *conn = std::make_unique<SimConnection>(inner_, std::move(pipe),
                                            /*is_server=*/true);
    return Status::OK();
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(inner_->mu);
    if (state_->closed) return;
    state_->closed = true;
    // Pending never-accepted connections get reset, as a closing TCP
    // listener does to its backlog.
    for (const std::shared_ptr<Pipe>& pipe : state_->backlog) {
      pipe->reset = true;
    }
    state_->backlog.clear();
    auto it = inner_->listeners.find(state_->port);
    if (it != inner_->listeners.end() && it->second == state_) {
      inner_->listeners.erase(it);  // The port is free to rebind.
    }
    inner_->cv.notify_all();
  }

  uint16_t port() const override { return state_->port; }

 private:
  std::shared_ptr<SimTransport::Inner> inner_;
  std::shared_ptr<SimTransport::Inner::ListenerState> state_;
};

}  // namespace

SimTransport::SimTransport(const SimTransportOptions& options)
    : inner_(std::make_shared<Inner>()) {
  clock_ = options.clock ? options.clock : std::make_shared<SimClock>();
  inner_->clock = clock_;
  inner_->auto_advance = options.auto_advance_clock;
  inner_->conn_buffer_bytes = options.conn_buffer_bytes;
}

SimTransport::~SimTransport() = default;

Status SimTransport::Listen(uint16_t port,
                            std::unique_ptr<net::Listener>* listener) {
  return ListenAs("", port, listener);
}

Status SimTransport::ListenAs(const std::string& node, uint16_t port,
                              std::unique_ptr<net::Listener>* listener) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  if (port == 0) {
    while (inner_->listeners.count(inner_->next_ephemeral)) {
      inner_->next_ephemeral++;
    }
    port = inner_->next_ephemeral++;
  } else if (inner_->listeners.count(port)) {
    return Status::NetworkError("bind " + Where(port) +
                                ": address already in use");
  }
  auto state = std::make_shared<Inner::ListenerState>();
  state->port = port;
  state->node = node;
  inner_->listeners[port] = state;
  *listener = std::make_unique<SimListener>(inner_, std::move(state));
  return Status::OK();
}

Status SimTransport::Connect(const std::string& host, uint16_t port,
                             int timeout_ms,
                             std::unique_ptr<net::Connection>* conn) {
  return ConnectFrom("", host, port, timeout_ms, conn);
}

Status SimTransport::ConnectFrom(const std::string& node,
                                 const std::string& host, uint16_t port,
                                 int timeout_ms,
                                 std::unique_ptr<net::Connection>* conn) {
  (void)host;  // Addressing is by port; node attribution is by facade.
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->stats.connects++;
  if (inner_->fail_next_connects > 0) {
    inner_->fail_next_connects--;
    inner_->stats.connects_failed++;
    return Status::Unavailable("connect " + Where(port) +
                               ": connection refused (injected)");
  }
  auto timeout_like_partition = [&]() -> Status {
    inner_->stats.connects_failed++;
    // SYNs vanish into the partition; charge the handshake deadline to
    // SimClock instead of really waiting it out.
    if (timeout_ms > 0) {
      if (inner_->auto_advance) {
        inner_->LeapTo(inner_->clock->Now() + Timestamp{timeout_ms} * 1000);
      }
      return Status::DeadlineExceeded("connect " + Where(port) +
                                      " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    return Status::NetworkError("connect " + Where(port) +
                                ": network unreachable");
  };
  if (inner_->partitioned) return timeout_like_partition();
  auto it = inner_->listeners.find(port);
  if (it == inner_->listeners.end() || it->second->closed) {
    inner_->stats.connects_failed++;
    return Status::NetworkError("connect " + Where(port) +
                                ": connection refused");
  }
  // A severed machine pair looks like a partition (timeout), not a dead
  // process (refused): the listener is alive, its SYN-ACKs just never
  // arrive.
  if (inner_->LinkDownLocked(node, it->second->node)) {
    return timeout_like_partition();
  }
  auto pipe = std::make_shared<Pipe>();
  pipe->client_node = node;
  pipe->server_node = it->second->node;
  inner_->pipes.push_back(pipe);
  if (inner_->reorder_next_accepts > 0) {
    inner_->reorder_next_accepts--;
    it->second->backlog.push_front(pipe);
  } else {
    it->second->backlog.push_back(pipe);
  }
  inner_->cv.notify_all();
  // TCP backlog semantics: the connect completes now; Accept may lag (or
  // never come — the hung-server scenario).
  *conn = std::make_unique<SimConnection>(inner_, std::move(pipe),
                                          /*is_server=*/false);
  return Status::OK();
}

Status SimTransport::NewPoller(std::unique_ptr<net::Poller>* poller) {
  *poller = std::make_unique<SimPoller>(inner_);
  return Status::OK();
}

void SimTransport::FailNextConnects(int n) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->fail_next_connects = n < 0 ? 0 : n;
}

void SimTransport::SetPartitioned(bool on) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->partitioned = on;
  inner_->cv.notify_all();
}

bool SimTransport::partitioned() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->partitioned;
}

void SimTransport::ResetAllConnections() {
  std::lock_guard<std::mutex> lock(inner_->mu);
  std::vector<std::weak_ptr<Pipe>> live;
  for (std::weak_ptr<Pipe>& weak : inner_->pipes) {
    if (std::shared_ptr<Pipe> pipe = weak.lock()) {
      if (!pipe->reset) {
        pipe->reset = true;
        inner_->stats.resets_injected++;
      }
      live.push_back(std::move(weak));
    }
  }
  inner_->pipes.swap(live);  // Drop expired entries while we are here.
  inner_->cv.notify_all();
}

void SimTransport::TruncateNextServerWrite(size_t keep_bytes) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->truncate_armed = true;
  inner_->truncate_keep = keep_bytes;
}

void SimTransport::DelayNextWrite(Timestamp delay_micros) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->delay_next_write = delay_micros < 0 ? 0 : delay_micros;
}

void SimTransport::ReorderNextAccept() {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->reorder_next_accepts++;
}

// A named machine on the simulated network: pure delegation with node
// attribution. Defined here (not in the anonymous namespace) because the
// header declares it a friend.
class NodeTransport final : public net::Transport {
 public:
  NodeTransport(SimTransport* owner, std::string node)
      : owner_(owner), node_(std::move(node)) {}

  Status Listen(uint16_t port,
                std::unique_ptr<net::Listener>* listener) override {
    return owner_->ListenAs(node_, port, listener);
  }
  Status Connect(const std::string& host, uint16_t port, int timeout_ms,
                 std::unique_ptr<net::Connection>* conn) override {
    return owner_->ConnectFrom(node_, host, port, timeout_ms, conn);
  }
  Status NewPoller(std::unique_ptr<net::Poller>* poller) override {
    return owner_->NewPoller(poller);
  }

 private:
  SimTransport* const owner_;
  const std::string node_;
};

net::Transport* SimTransport::ForNode(const std::string& node) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  std::unique_ptr<net::Transport>& slot = facades_[node];
  if (!slot) slot = std::make_unique<NodeTransport>(this, node);
  return slot.get();
}

void SimTransport::SetLinkPartitioned(const std::string& a,
                                      const std::string& b, bool on) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (on) {
    inner_->severed_links.insert(std::move(key));
  } else {
    inner_->severed_links.erase(key);
  }
  inner_->cv.notify_all();
}

void SimTransport::ClearLinkPartitions() {
  std::lock_guard<std::mutex> lock(inner_->mu);
  inner_->severed_links.clear();
  inner_->cv.notify_all();
}

void SimTransport::ResetNodeConnections(const std::string& node) {
  std::lock_guard<std::mutex> lock(inner_->mu);
  std::vector<std::weak_ptr<Pipe>> live;
  for (std::weak_ptr<Pipe>& weak : inner_->pipes) {
    if (std::shared_ptr<Pipe> pipe = weak.lock()) {
      if (!pipe->reset &&
          (pipe->client_node == node || pipe->server_node == node)) {
        pipe->reset = true;
        inner_->stats.resets_injected++;
      }
      live.push_back(std::move(weak));
    }
  }
  inner_->pipes.swap(live);
  inner_->cv.notify_all();
}

SimTransportStats SimTransport::stats() const {
  std::lock_guard<std::mutex> lock(inner_->mu);
  return inner_->stats;
}

}  // namespace sim
}  // namespace lt
