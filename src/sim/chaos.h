// Seeded whole-system chaos simulation with an oracle-checked model.
//
// RunChaos builds a complete LittleTable deployment in one process — a DB
// on a simulated disk, a server, and a client speaking the real wire
// protocol over SimTransport — and drives a DeviceSim-style events workload
// while a seeded scheduler composes every fault surface the codebase has:
//
//   - process crashes: connections reset, server stopped, DB abandoned
//     without flushing, unsynced file bytes dropped (MemEnv::DropUnsynced /
//     SimDiskEnv::PowerCut), then reopen + restart on the same port;
//   - storage faults: ENOSPC budgets, failed reads/writes, armed
//     LT_CRASH_POINT countdowns in the flush/merge/descriptor protocol;
//   - network faults: partitions (blackholed writes, timed-out reads),
//     connection resets, truncated (torn) response frames, delayed
//     delivery, refused and reordered connects.
//
// After every simulated crash + reopen an in-memory oracle checks the
// paper's §3.1 contract against a model of what was inserted:
//   - prefix durability: walking every inserted row in insert order, the
//     surviving set is a prefix — once one row is lost, no later row
//     survives (the flush dependency closure at row granularity);
//   - FlushThrough (§4.1.2): rows at or before a successfully flushed-
//     through timestamp always survive;
//   - per-device event ids stay contiguous from 1, and every surviving
//     row's content equals what the deterministic device generated;
//   - no orphan files: the table directory holds exactly the descriptor
//     plus the tablets the descriptor names.
//
// Queries double as oracle probes: a successful query must return exactly
// the model's rows for that device, and in doing so resolves
// unknown-outcome inserts (a failed insert RPC whose batch may or may not
// have applied) to applied or not-applied.
//
// Everything — workload, faults, clock — is a pure function of the seed:
// two runs with the same seed produce byte-identical event logs, so any
// oracle failure is reproducible with `lt_sim --seed=N`.
#ifndef LITTLETABLE_SIM_CHAOS_H_
#define LITTLETABLE_SIM_CHAOS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace lt {
namespace sim {

struct ChaosOptions {
  uint64_t seed = 1;
  /// Workload operations to run (inserts, queries, flushes, maintenance).
  int ops = 200;
  /// Probability that a fault is injected before an operation.
  double fault_rate = 0.25;
  /// Simulated devices feeding the events table.
  int devices = 3;
  /// When > 0, run the self-monitoring sampler in deterministic mode and
  /// take one __sys_metrics_1s sample every N workload ops (driven at op
  /// boundaries on the harness thread, stamped with simulated time). The
  /// oracle then also checks §3.1 prefix durability of the system tables
  /// across every crash, and the report carries the sampled-metrics dump.
  int sample_every_ops = 0;
};

struct ChaosReport {
  /// False if the oracle detected a contract violation.
  bool ok = true;
  /// Human-readable description of the first violation ("" when ok).
  std::string failure;
  /// One line per simulated action, deterministic from the seed. Two runs
  /// with the same seed must produce identical logs (lt_sim --verify-seed
  /// and sim_test assert exactly that).
  std::vector<std::string> event_log;
  /// Deterministic counters: ops by kind, faults injected, crashes
  /// survived, rows confirmed durable.
  std::map<std::string, uint64_t> counters;
  /// With sample_every_ops > 0: one line per system-table row that
  /// survived to the end of the run ("<table> <metric> ts=<t> v=<value>"),
  /// in key order. A pure function of the seed — two same-seed runs must
  /// produce byte-identical dumps (sim_test pins this), and the nightly
  /// sweep uploads them as its sampled-metrics artifact.
  std::vector<std::string> sys_metrics;
};

/// Runs one seeded chaos schedule. Returns a non-OK status only for
/// harness-level failures (e.g. the initial server refusing to start);
/// oracle violations come back as report->ok == false with the log
/// preserved. Uses process-global crash-point state: not reentrant, one
/// run at a time per process.
Status RunChaos(const ChaosOptions& options, ChaosReport* report);

}  // namespace sim
}  // namespace lt

#endif  // LITTLETABLE_SIM_CHAOS_H_
