#include "sim/chaos.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "apps/device_sim.h"
#include "core/db.h"
#include "core/tablet_writer.h"  // kTabletFormatLatest
#include "env/mem_env.h"
#include "env/sim_disk_env.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics_sampler.h"
#include "sim/sim_transport.h"
#include "util/fault.h"
#include "util/random.h"

namespace lt {
namespace sim {
namespace {

// Fixed simulated epoch (no real time may leak into the simulation).
constexpr Timestamp kEpoch = Timestamp{1700000000} * 1000000;
constexpr uint16_t kPort = 7711;
constexpr char kTable[] = "events";
constexpr char kRoot[] = "chaos";

Schema EventsSchema() {
  return Schema({Column("device", ColumnType::kInt64),
                 Column("id", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("kind", ColumnType::kString),
                 Column("detail", ColumnType::kString)},
                /*num_key_columns=*/3);
}

/// One client->Insert call and what the model knows about its outcome.
struct InsertRecord {
  enum State {
    kCertain,     // The server acknowledged (or a probe later confirmed).
    kUnresolved,  // The RPC failed; the batch may or may not have applied.
    kDropped,     // Confirmed never-applied (or fully lost in a crash).
  };
  int64_t device = 0;
  std::vector<apps::SimEvent> events;  // Ascending ids, ascending ts.
  State state = kCertain;
  /// Leading events guaranteed durable: covered by a successful
  /// FlushThrough, or already read back from disk after a crash. A later
  /// crash losing any of them is an oracle violation.
  size_t durable = 0;
};

struct DeviceCursor {
  int64_t last_id = 0;  // Highest event id the model believes is inserted.
  /// A failed insert leaves the outcome unknown; the next insert for this
  /// device must first resolve it with a LatestRow probe.
  bool dirty = false;
};

class ChaosRun {
 public:
  ChaosRun(const ChaosOptions& opts, ChaosReport* report)
      : opts_(opts), report_(report), rng_(opts.seed ^ 0x9e3779b97f4a7c15ull) {}

  Status Run();

 private:
  void Log(const std::string& line) {
    report_->event_log.push_back("t=" + std::to_string(clock_->Now() - kEpoch) +
                                 " " + line);
  }
  void Count(const std::string& key) { report_->counters[key]++; }
  /// Records the first oracle violation and stops the run.
  void Violation(const std::string& what) {
    if (!report_->ok) return;
    report_->ok = false;
    report_->failure = what;
    Log("ORACLE VIOLATION: " + what);
  }

  Status Setup();
  Status OpenDb();
  Status StartServer();
  Status ConnectClient();
  Status StartSampler();
  void DriveSampler();

  void MaybeInjectFault();
  void DoOneOp();
  void DoInsert();
  void DoQuery();
  void DoLatestRow();
  void DoFlushThrough();
  void DoMaintain();
  void DoStats();
  void CrashAndRestart();

  /// Resolves `device`'s unknown-outcome inserts against the id the server
  /// reports as its latest. Returns false on an oracle violation.
  bool ResolveFromLatest(int64_t device, int64_t latest);
  /// True if `row` matches the model's event with its (device, id); flags a
  /// violation otherwise.
  bool CheckRowContent(const Row& row);
  /// Finds the model event for (device, id) among non-dropped records.
  const apps::SimEvent* FindEvent(int64_t device, int64_t id) const;
  int64_t MaxCertainId(int64_t device) const;
  /// The post-crash model check; returns false on violation.
  bool OracleCheckAfterCrash();
  /// Checks one system table's §3.1 prefix durability against the
  /// observer-fed model and adopts the surviving prefix, like the events
  /// check does for insert batches. Returns false on violation.
  bool CheckSysTableAfterCrash(const std::string& table_name);
  /// Renders the model's surviving system-table rows into report->sys_metrics.
  void DumpSysMetrics();

  const ChaosOptions opts_;
  ChaosReport* const report_;
  Random rng_;

  std::shared_ptr<SimClock> clock_;
  std::unique_ptr<MemEnv> mem_env_;
  std::unique_ptr<SimDiskEnv> sim_disk_;  // Null for plain-MemEnv runs.
  Env* env_ = nullptr;                    // The env the DB runs on.
  std::unique_ptr<SimTransport> transport_;
  std::unique_ptr<DB> db_;
  std::unique_ptr<LittleTableServer> server_;
  std::unique_ptr<Client> client_;
  std::unique_ptr<apps::DeviceFleet> fleet_;
  std::unique_ptr<obs::MetricsSampler> sampler_;

  std::vector<InsertRecord> records_;  // Global insert order.
  /// Rows the sampler inserted into each system table, in insert order —
  /// the model for the system tables' own prefix-durability check.
  std::map<std::string, std::vector<Row>> sys_model_;
  /// Leading sys_model_ rows known durable (read back after a crash).
  std::map<std::string, size_t> sys_durable_;
  int ops_since_sample_ = 0;
  std::map<int64_t, DeviceCursor> cursors_;
  int partition_ops_left_ = 0;
  int disk_full_ops_left_ = 0;
  uint32_t open_count_ = 0;  // DB opens so far; rotates the flush format.
};

Status ChaosRun::Setup() {
  clock_ = std::make_shared<SimClock>();
  clock_->Set(kEpoch);

  mem_env_ = std::make_unique<MemEnv>();
  const bool use_sim_disk = rng_.Bernoulli(0.5);
  if (use_sim_disk) {
    SimDiskOptions dopts;
    dopts.page_cache_bytes = 8ull << 20;
    sim_disk_ = std::make_unique<SimDiskEnv>(mem_env_.get(), dopts);
    env_ = sim_disk_.get();
  } else {
    env_ = mem_env_.get();
  }
  Log(std::string("setup env=") + (use_sim_disk ? "sim_disk" : "mem"));

  SimTransportOptions topts;
  topts.clock = clock_;
  transport_ = std::make_unique<SimTransport>(topts);

  LT_RETURN_IF_ERROR(OpenDb());
  LT_RETURN_IF_ERROR(
      db_->CreateTable(kTable, EventsSchema(), /*options=*/nullptr));

  apps::DeviceSimOptions fopts;
  fopts.seed = opts_.seed;
  fopts.birth = kEpoch;
  fopts.event_interval_sec = 20;
  fopts.unreachable_hour_prob = 0;  // Reachability is the grabber's problem.
  fleet_ = std::make_unique<apps::DeviceFleet>(fopts);
  for (int d = 1; d <= opts_.devices; d++) {
    fleet_->AddDevice(static_cast<apps::DeviceId>(d));
    cursors_[d] = DeviceCursor{};
  }

  if (opts_.sample_every_ops > 0) LT_RETURN_IF_ERROR(StartSampler());
  LT_RETURN_IF_ERROR(StartServer());
  return ConnectClient();
}

Status ChaosRun::OpenDb() {
  DbOptions dopts;
  dopts.background_maintenance = false;  // The schedule drives maintenance.
  dopts.block_cache_bytes = 4ull << 20;
  // Injected faults make flush failures routine; swallow the log chatter
  // (stderr output would also differ run-to-run and is not part of the
  // deterministic event log).
  dopts.logger = std::make_shared<Logger>(LogLevel::kError,
                                          std::make_shared<CaptureLogSink>());
  dopts.table_defaults.flush_bytes = 16 * 1024;  // Seal often: more commits.
  dopts.table_defaults.max_memtablet_age = 60 * kMicrosPerSecond;
  dopts.table_defaults.flush_retry_backoff = 1 * kMicrosPerSecond;
  dopts.table_defaults.flush_retry_max_backoff = 30 * kMicrosPerSecond;
  // Mixed-format coverage: each open (initial + every crash/restart)
  // deterministically rotates the flush format across every supported
  // version, so a single run exercises v0/v1/v2 tablets side by side, the
  // new writer's crash points, and merges that converge them to the latest
  // format. Seed-dependent so the sweep varies the starting version.
  dopts.table_defaults.format_version = static_cast<uint32_t>(
      (opts_.seed + open_count_) % (kTabletFormatLatest + 1));
  open_count_++;
  Log("open_db format_version=" +
      std::to_string(dopts.table_defaults.format_version));
  return DB::Open(env_, clock_, kRoot, dopts, &db_);
}

Status ChaosRun::StartServer() {
  ServerOptions sopts;
  sopts.port = kPort;
  sopts.transport = transport_.get();
  sopts.poll_interval_ms = 5;
  sopts.io_timeout_ms = 2000;
  sopts.drain_timeout_ms = 200;
  server_ = std::make_unique<LittleTableServer>(db_.get(), sopts);
  return server_->Start();
}

Status ChaosRun::ConnectClient() {
  ClientOptions copts;
  copts.transport = transport_.get();
  copts.clock = clock_;
  copts.connect_timeout_ms = 1000;
  copts.read_timeout_ms = 1000;
  copts.write_timeout_ms = 1000;
  copts.max_retries = 3;
  copts.backoff_seed = opts_.seed;
  copts.backoff_sleep = [clock = clock_](int64_t ms) {
    clock->Advance(ms * 1000);  // Backoff burns simulated, not real, time.
  };
  return Client::Connect("sim", kPort, copts, &client_);
}

Status ChaosRun::StartSampler() {
  obs::SamplerOptions sopts;
  // The deterministic contract: sample only op-sequence-pure per-table
  // counters, driven manually at op boundaries in simulated time. TTLs are
  // off so the prefix-durability oracle below stays exact (retention is
  // exercised by obs_test, not the chaos schedule).
  sopts.deterministic = true;
  sopts.background = false;
  sopts.ttl_1s = 0;
  sopts.ttl_1m = 0;
  sopts.observer = [this](const std::string& table,
                          const std::vector<Row>& rows) {
    std::vector<Row>& model = sys_model_[table];
    model.insert(model.end(), rows.begin(), rows.end());
  };
  sampler_ = std::make_unique<obs::MetricsSampler>(db_.get(), sopts);
  return sampler_->Start();
}

void ChaosRun::DriveSampler() {
  if (!sampler_ || ++ops_since_sample_ < opts_.sample_every_ops) return;
  ops_since_sample_ = 0;
  Status s = sampler_->SampleOnce(clock_->Now());
  Log("sample status=" + s.ToString());
  if (s.ok()) Count("samples_ok");
}

const apps::SimEvent* ChaosRun::FindEvent(int64_t device, int64_t id) const {
  for (const InsertRecord& rec : records_) {
    if (rec.device != device || rec.state == InsertRecord::kDropped) continue;
    for (const apps::SimEvent& ev : rec.events) {
      if (ev.id == id) return &ev;
    }
  }
  return nullptr;
}

int64_t ChaosRun::MaxCertainId(int64_t device) const {
  int64_t max_id = 0;
  for (const InsertRecord& rec : records_) {
    if (rec.device != device || rec.state != InsertRecord::kCertain) continue;
    if (!rec.events.empty()) {
      max_id = std::max(max_id, rec.events.back().id);
    }
  }
  return max_id;
}

bool ChaosRun::CheckRowContent(const Row& row) {
  if (row.size() != 5) {
    Violation("row has " + std::to_string(row.size()) + " columns");
    return false;
  }
  const int64_t device = row[0].AsInt();
  const int64_t id = row[1].AsInt();
  const apps::SimEvent* ev = FindEvent(device, id);
  if (ev == nullptr) {
    Violation("phantom row: device=" + std::to_string(device) +
              " id=" + std::to_string(id) + " was never (or never certainly) "
              "inserted");
    return false;
  }
  if (row[2].AsInt() != ev->ts || row[3].bytes() != ev->kind ||
      row[4].bytes() != ev->detail) {
    Violation("row content mismatch: device=" + std::to_string(device) +
              " id=" + std::to_string(id));
    return false;
  }
  return true;
}

bool ChaosRun::ResolveFromLatest(int64_t device, int64_t latest) {
  for (InsertRecord& rec : records_) {
    if (rec.device != device) continue;
    if (rec.state == InsertRecord::kDropped || rec.events.empty()) continue;
    const int64_t first = rec.events.front().id;
    const int64_t last = rec.events.back().id;
    if (rec.state == InsertRecord::kUnresolved) {
      if (latest >= last) {
        rec.state = InsertRecord::kCertain;
      } else if (latest < first) {
        rec.state = InsertRecord::kDropped;
      } else {
        Violation("partial batch application: device=" +
                  std::to_string(device) + " latest=" + std::to_string(latest) +
                  " inside batch [" + std::to_string(first) + "," +
                  std::to_string(last) + "]");
        return false;
      }
    } else if (latest < last) {  // kCertain
      Violation("latest row id " + std::to_string(latest) +
                " behind acknowledged insert through " + std::to_string(last) +
                " for device " + std::to_string(device));
      return false;
    }
  }
  const int64_t expect = MaxCertainId(device);
  if (latest != expect) {
    Violation("latest row mismatch for device " + std::to_string(device) +
              ": got " + std::to_string(latest) + " want " +
              std::to_string(expect));
    return false;
  }
  cursors_[device].last_id = latest;
  cursors_[device].dirty = false;
  return true;
}

void ChaosRun::DoInsert() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  DeviceCursor& cur = cursors_[device];
  if (cur.dirty) {
    // Unknown outcome pending: the grabber's crash-recovery move is to ask
    // the server where it got to before resending (§3.1).
    Row row;
    bool found = false;
    Status s = client_->LatestRow(kTable, Key{Value::Int64(device)}, &row,
                                 &found);
    Log("resync dev=" + std::to_string(device) + " status=" + s.ToString());
    if (!s.ok()) return;  // Still dirty; retry on a later insert.
    Count("resyncs");
    if (found && !CheckRowContent(row)) return;
    if (!ResolveFromLatest(device, found ? row[1].AsInt() : 0)) return;
  }
  const size_t batch = 1 + rng_.Uniform(4);
  std::vector<apps::SimEvent> events =
      fleet_->Get(static_cast<apps::DeviceId>(device))
          ->EventsAfter(cur.last_id, clock_->Now(), batch);
  if (events.empty()) {
    Log("insert dev=" + std::to_string(device) + " no_events");
    return;
  }
  std::vector<Row> rows;
  rows.reserve(events.size());
  for (const apps::SimEvent& ev : events) {
    rows.push_back({Value::Int64(device), Value::Int64(ev.id),
                    Value::Ts(ev.ts), Value::String(ev.kind),
                    Value::String(ev.detail)});
  }
  Status s = client_->Insert(kTable, rows);
  InsertRecord rec;
  rec.device = device;
  rec.events = std::move(events);
  Log("insert dev=" + std::to_string(device) + " ids=[" +
      std::to_string(rec.events.front().id) + "," +
      std::to_string(rec.events.back().id) + "] status=" + s.ToString());
  if (s.ok()) {
    rec.state = InsertRecord::kCertain;
    cur.last_id = rec.events.back().id;
    Count("inserts_ok");
  } else {
    // The batch may have applied before the connection died. Record the
    // uncertainty; a later probe or crash-scan resolves it.
    rec.state = InsertRecord::kUnresolved;
    cur.dirty = true;
    Count("inserts_unresolved");
  }
  records_.push_back(std::move(rec));
}

void ChaosRun::DoQuery() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  std::vector<Row> rows;
  Status s = client_->QueryAll(
      kTable, QueryBounds::ForPrefix(Key{Value::Int64(device)}), &rows);
  Log("query dev=" + std::to_string(device) + " rows=" +
      std::to_string(rows.size()) + " status=" + s.ToString());
  if (!s.ok()) return;
  Count("queries_ok");
  std::set<int64_t> returned;
  for (const Row& row : rows) {
    if (!CheckRowContent(row)) return;
    if (row[0].AsInt() != device) {
      Violation("query for device " + std::to_string(device) +
                " returned device " + std::to_string(row[0].AsInt()));
      return;
    }
    if (!returned.insert(row[1].AsInt()).second) {
      Violation("duplicate row id " + std::to_string(row[1].AsInt()) +
                " for device " + std::to_string(device));
      return;
    }
  }
  // The query is a complete, settled snapshot (the harness is
  // single-threaded): acknowledged batches must be fully present, and
  // unknown-outcome batches resolve to fully-present or fully-absent.
  for (InsertRecord& rec : records_) {
    if (rec.device != device || rec.state == InsertRecord::kDropped) continue;
    size_t present = 0;
    for (const apps::SimEvent& ev : rec.events) present += returned.count(ev.id);
    if (rec.state == InsertRecord::kCertain) {
      if (present != rec.events.size()) {
        Violation("query missing acknowledged rows: device=" +
                  std::to_string(device) + " batch through id " +
                  std::to_string(rec.events.back().id));
        return;
      }
    } else if (present == rec.events.size()) {
      rec.state = InsertRecord::kCertain;
    } else if (present == 0) {
      rec.state = InsertRecord::kDropped;
    } else {
      Violation("partial batch visible: device=" + std::to_string(device));
      return;
    }
  }
  cursors_[device].last_id = MaxCertainId(device);
  cursors_[device].dirty = false;
}

void ChaosRun::DoLatestRow() {
  const int64_t device = 1 + static_cast<int64_t>(rng_.Uniform(opts_.devices));
  Row row;
  bool found = false;
  Status s =
      client_->LatestRow(kTable, Key{Value::Int64(device)}, &row, &found);
  Log("latest dev=" + std::to_string(device) + " found=" +
      std::to_string(found ? 1 : 0) + " status=" + s.ToString());
  if (!s.ok()) return;
  Count("latest_ok");
  if (found && !CheckRowContent(row)) return;
  ResolveFromLatest(device, found ? row[1].AsInt() : 0);
}

void ChaosRun::DoFlushThrough() {
  const Timestamp t = clock_->Now();
  Status s = client_->FlushThrough(kTable, t);
  Log("flush_through status=" + s.ToString());
  if (!s.ok()) return;
  Count("flush_through_ok");
  // §4.1.2: everything acknowledged with ts <= t is now guaranteed to
  // survive any crash. Batches with unknown outcomes get no guarantee.
  for (InsertRecord& rec : records_) {
    if (rec.state != InsertRecord::kCertain) continue;
    size_t durable = 0;
    while (durable < rec.events.size() && rec.events[durable].ts <= t) {
      durable++;
    }
    rec.durable = std::max(rec.durable, durable);
  }
}

void ChaosRun::DoMaintain() {
  Status s = db_->MaintainNow();
  Log("maintain status=" + s.ToString());
  if (s.ok()) Count("maintain_ok");
}

void ChaosRun::DoStats() {
  std::map<std::string, uint64_t> stats;
  Status s = client_->Stats(kTable, &stats);
  Log("stats status=" + s.ToString());
}

bool ChaosRun::OracleCheckAfterCrash() {
  std::shared_ptr<Table> table = db_->GetTable(kTable);
  if (!table) {
    Violation("table missing after reopen");
    return false;
  }
  QueryBounds all;
  QueryResult res;
  Status s = table->Query(all, &res);
  if (!s.ok()) {
    Violation("post-crash scan failed: " + s.ToString());
    return false;
  }
  if (res.more_available) {
    Violation("post-crash scan truncated by row limit");
    return false;
  }
  std::map<std::pair<int64_t, int64_t>, const Row*> present;
  for (const Row& row : res.rows) {
    if (row.size() != 5) {
      Violation("post-crash row has wrong arity");
      return false;
    }
    auto key = std::make_pair(row[0].AsInt(), row[1].AsInt());
    if (!present.emplace(key, &row).second) {
      Violation("duplicate surviving row: device=" +
                std::to_string(key.first) + " id=" +
                std::to_string(key.second));
      return false;
    }
  }

  // Resolve unknown-outcome batches by presence. A batch that applied and
  // was then entirely lost in the crash is indistinguishable from one that
  // never applied; both are treated as never-applied, which is sound for
  // every check below (absent rows cannot break prefix monotonicity).
  for (InsertRecord& rec : records_) {
    if (rec.state != InsertRecord::kUnresolved) continue;
    size_t n = 0;
    for (const apps::SimEvent& ev : rec.events) {
      n += present.count({rec.device, ev.id});
    }
    rec.state = n > 0 ? InsertRecord::kCertain : InsertRecord::kDropped;
  }

  // Prefix durability (§3.1): in global insert order, the surviving rows
  // form a prefix — once one row is lost, every later row is lost too.
  bool lost_one = false;
  for (const InsertRecord& rec : records_) {
    if (rec.state == InsertRecord::kDropped) continue;
    for (const apps::SimEvent& ev : rec.events) {
      const bool here = present.count({rec.device, ev.id}) != 0;
      if (here && lost_one) {
        Violation("prefix durability violated: device=" +
                  std::to_string(rec.device) + " id=" + std::to_string(ev.id) +
                  " survived although an earlier row was lost");
        return false;
      }
      if (!here) lost_one = true;
    }
  }

  // FlushThrough guarantees and re-read durability from earlier crashes.
  for (const InsertRecord& rec : records_) {
    if (rec.state == InsertRecord::kDropped) continue;
    for (size_t i = 0; i < rec.durable; i++) {
      if (!present.count({rec.device, rec.events[i].id})) {
        Violation("durable row lost: device=" + std::to_string(rec.device) +
                  " id=" + std::to_string(rec.events[i].id) +
                  " was flushed through (or previously recovered)");
        return false;
      }
    }
  }

  // Content equality and phantom detection for every surviving row.
  for (const auto& [key, row] : present) {
    if (!CheckRowContent(*row)) return false;
  }

  // Per-device contiguity: surviving ids are exactly 1..k.
  std::map<int64_t, std::pair<int64_t, int64_t>> by_dev;  // max id, count.
  for (const auto& [key, row] : present) {
    auto& [max_id, n] = by_dev[key.first];
    max_id = std::max(max_id, key.second);
    n++;
  }
  for (const auto& [device, mc] : by_dev) {
    if (mc.first != mc.second) {
      Violation("event ids not contiguous for device " +
                std::to_string(device) + ": max=" + std::to_string(mc.first) +
                " count=" + std::to_string(mc.second));
      return false;
    }
  }

  // No orphan files: the table directory holds exactly the descriptor,
  // the tablets the descriptor names, and quarantined (.corrupt) tablets.
  std::set<std::string> allowed = {"DESC"};
  for (const TabletMeta& m : table->DiskTablets()) allowed.insert(m.filename);
  std::vector<std::string> children;
  s = env_->GetChildren(std::string(kRoot) + "/" + kTable, &children);
  if (!s.ok()) {
    Violation("listing table dir failed: " + s.ToString());
    return false;
  }
  for (const std::string& child : children) {
    if (allowed.count(child) || child.ends_with(".corrupt")) continue;
    Violation("orphan file after recovery: " + child);
    return false;
  }

  // The model adopts the post-crash truth: trim each batch to its
  // surviving prefix (rows beyond it are gone for good), and everything
  // that survived is on disk now — durable against the next crash too.
  for (InsertRecord& rec : records_) {
    if (rec.state == InsertRecord::kDropped) continue;
    size_t n = 0;
    while (n < rec.events.size() &&
           present.count({rec.device, rec.events[n].id})) {
      n++;
    }
    rec.events.resize(n);
    rec.durable = n;
    if (n == 0) rec.state = InsertRecord::kDropped;
  }
  for (auto& [device, cur] : cursors_) {
    cur.last_id = by_dev.count(device) ? by_dev[device].first : 0;
    cur.dirty = false;
  }
  Count("crashes_survived");
  return true;
}

bool ChaosRun::CheckSysTableAfterCrash(const std::string& table_name) {
  std::vector<Row>& model = sys_model_[table_name];
  size_t& durable = sys_durable_[table_name];
  std::shared_ptr<Table> table = db_->GetTable(table_name);
  if (!table) {
    // The whole table vanished (its descriptor was never synced). Legal
    // only if no row of it was ever read back from disk.
    if (durable > 0) {
      Violation("system table " + table_name + " lost after being durable");
      return false;
    }
    model.clear();
    return true;
  }
  QueryBounds all;
  QueryResult res;
  Status s = table->Query(all, &res);
  if (!s.ok()) {
    Violation("post-crash scan of " + table_name + " failed: " + s.ToString());
    return false;
  }
  if (res.more_available) {
    Violation("post-crash scan of " + table_name + " truncated by row limit");
    return false;
  }
  // Surviving rows keyed (metric, ts) for phantom/content checks.
  std::map<std::pair<std::string, Timestamp>, const Row*> present;
  for (const Row& row : res.rows) {
    if (row.size() < 3) {
      Violation("system row in " + table_name + " has wrong arity");
      return false;
    }
    auto key = std::make_pair(row[0].bytes(), Timestamp{row[1].AsInt()});
    if (!present.emplace(key, &row).second) {
      Violation("duplicate system row in " + table_name + ": " + key.first +
                " ts=" + std::to_string(key.second));
      return false;
    }
  }
  // §3.1 prefix durability holds for the system tables exactly as for user
  // tables: in insert order, the surviving rows form a prefix.
  size_t prefix = 0;
  bool lost_one = false;
  for (const Row& row : model) {
    auto it = present.find(
        std::make_pair(row[0].bytes(), Timestamp{row[1].AsInt()}));
    if (it != present.end()) {
      if (lost_one) {
        Violation("prefix durability violated in " + table_name +
                  ": metric " + row[0].bytes() + " ts=" +
                  std::to_string(row[1].AsInt()) +
                  " survived although an earlier row was lost");
        return false;
      }
      if (!(*it->second == row)) {
        Violation("system row content mismatch in " + table_name +
                  ": metric " + row[0].bytes() +
                  " ts=" + std::to_string(row[1].AsInt()));
        return false;
      }
      prefix++;
    } else {
      lost_one = true;
    }
  }
  if (prefix < durable) {
    Violation("durable system row lost in " + table_name + ": only " +
              std::to_string(prefix) + " of " + std::to_string(durable) +
              " recovered rows survived");
    return false;
  }
  if (present.size() > prefix) {
    Violation("phantom system row in " + table_name + ": " +
              std::to_string(present.size()) + " rows present, model has " +
              std::to_string(prefix) + " surviving");
    return false;
  }
  // Adopt the post-crash truth: the surviving prefix is on disk now.
  model.resize(prefix);
  durable = prefix;
  return true;
}

namespace {
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}
}  // namespace

void ChaosRun::DumpSysMetrics() {
  for (const auto& [table_name, rows] : sys_model_) {
    for (const Row& row : rows) {
      std::string line = table_name + " " + row[0].bytes() +
                         " ts=" + std::to_string(row[1].AsInt());
      if (row.size() == 3) {  // 1s: value.
        line += " v=" + FormatDouble(row[2].dbl());
      } else if (row.size() == 6) {  // 1m: avg/min/max/n.
        line += " avg=" + FormatDouble(row[2].dbl()) +
                " min=" + FormatDouble(row[3].dbl()) +
                " max=" + FormatDouble(row[4].dbl()) +
                " n=" + std::to_string(row[5].AsInt());
      }
      report_->sys_metrics.push_back(std::move(line));
    }
  }
}

void ChaosRun::CrashAndRestart() {
  Log("crash");
  Count("crashes");
  if (partition_ops_left_ > 0) {
    partition_ops_left_ = 0;
    transport_->SetPartitioned(false);
    Log("partition heal (crash)");
  }
  // Order matters: sever connections (client sees resets, not hangs), drop
  // the client, stop the server, then abandon the DB without flushing —
  // the process is "gone"; only synced bytes survive.
  transport_->ResetAllConnections();
  client_.reset();
  server_->Stop();
  server_.reset();
  // The sampler dies with the "process": no final sample (Stop never
  // samples), so whatever was unflushed is simply lost, like any insert.
  sampler_.reset();
  db_->Abandon();
  db_.reset();
  if (sim_disk_) {
    sim_disk_->PowerCut();
    sim_disk_->ClearDiskFull();
    sim_disk_->FailNthRead(0);
    sim_disk_->FailNthWrite(0);
  } else {
    mem_env_->DropUnsynced();
    mem_env_->FailNthRead(0);
    mem_env_->FailNthWrite(0);
  }
  disk_full_ops_left_ = 0;
  fault::DisarmCrashPoints();

  Status s = OpenDb();
  if (!s.ok()) {
    Violation("reopen after crash failed: " + s.ToString());
    return;
  }
  if (!OracleCheckAfterCrash()) return;
  if (opts_.sample_every_ops > 0) {
    if (!CheckSysTableAfterCrash(obs::kMetricsTable1s)) return;
    if (!CheckSysTableAfterCrash(obs::kMetricsTable1m)) return;
    Status ss = StartSampler();
    if (!ss.ok()) {
      Violation("sampler restart failed: " + ss.ToString());
      return;
    }
  }
  s = StartServer();
  if (!s.ok()) {
    Violation("server restart failed: " + s.ToString());
    return;
  }
  s = ConnectClient();
  Log("restart status=" + s.ToString());
  if (!s.ok()) Violation("client reconnect after restart failed");
}

void ChaosRun::MaybeInjectFault() {
  if (partition_ops_left_ > 0 && --partition_ops_left_ == 0) {
    transport_->SetPartitioned(false);
    Log("partition heal");
  }
  if (disk_full_ops_left_ > 0 && --disk_full_ops_left_ == 0 && sim_disk_) {
    sim_disk_->ClearDiskFull();
    Log("disk full heal");
  }
  if (!rng_.Bernoulli(opts_.fault_rate)) return;
  Count("faults");
  switch (rng_.Uniform(8)) {
    case 0:
      CrashAndRestart();
      break;
    case 1:
      Log("fault reset_all");
      transport_->ResetAllConnections();
      break;
    case 2:
      if (partition_ops_left_ == 0) {
        partition_ops_left_ = 1 + static_cast<int>(rng_.Uniform(4));
        transport_->SetPartitioned(true);
        Log("fault partition ops=" + std::to_string(partition_ops_left_));
      }
      break;
    case 3: {
      const size_t keep = rng_.Uniform(17);
      transport_->TruncateNextServerWrite(keep);
      Log("fault truncate keep=" + std::to_string(keep));
      break;
    }
    case 4: {
      const Timestamp delay = (1 + rng_.Uniform(1000)) * 1000;  // 1ms..1s.
      transport_->DelayNextWrite(delay);
      Log("fault delay micros=" + std::to_string(delay));
      break;
    }
    case 5:
      if (sim_disk_) {
        const int64_t budget = 4096 + rng_.Uniform(128 * 1024);
        sim_disk_->SetDiskFullAfter(budget);
        disk_full_ops_left_ = 2 + static_cast<int>(rng_.Uniform(6));
        Log("fault disk_full budget=" + std::to_string(budget) +
            " ops=" + std::to_string(disk_full_ops_left_));
      } else {
        const int n = 1 + static_cast<int>(rng_.Uniform(5));
        mem_env_->FailNthWrite(n);
        Log("fault fail_write n=" + std::to_string(n));
      }
      break;
    case 6: {
      const int n = 1 + static_cast<int>(rng_.Uniform(8));
      fault::ArmNthCrashPoint(n);
      Log("fault crash_point n=" + std::to_string(n));
      break;
    }
    case 7: {
      const int n = 1 + static_cast<int>(rng_.Uniform(4));
      if (sim_disk_) {
        sim_disk_->FailNthRead(n);
      } else {
        mem_env_->FailNthRead(n);
      }
      Log("fault fail_read n=" + std::to_string(n));
      break;
    }
  }
}

void ChaosRun::DoOneOp() {
  const uint64_t pick = rng_.Uniform(100);
  if (pick < 50) {
    DoInsert();
  } else if (pick < 70) {
    DoQuery();
  } else if (pick < 80) {
    DoLatestRow();
  } else if (pick < 88) {
    DoFlushThrough();
  } else if (pick < 98) {
    DoMaintain();
  } else {
    DoStats();
  }
}

Status ChaosRun::Run() {
  fault::DisarmCrashPoints();  // Global state; start from a clean slate.
  LT_RETURN_IF_ERROR(Setup());
  for (int i = 0; i < opts_.ops && report_->ok; i++) {
    clock_->Advance((1 + rng_.Uniform(30)) * kMicrosPerSecond);
    MaybeInjectFault();
    if (!report_->ok) break;
    DoOneOp();
    if (report_->ok) DriveSampler();
  }
  // Final verdict: crash once more and run the full oracle, so every run
  // ends with a durability check even if the schedule drew no crash.
  if (report_->ok) CrashAndRestart();
  if (report_->ok) {
    uint64_t durable_rows = 0;
    for (const InsertRecord& rec : records_) {
      if (rec.state == InsertRecord::kCertain) durable_rows += rec.events.size();
    }
    report_->counters["durable_rows"] = durable_rows;
    const SimTransportStats ts = transport_->stats();
    report_->counters["transport_connects"] = ts.connects;
    report_->counters["transport_resets"] = ts.resets_injected;
    if (opts_.sample_every_ops > 0) {
      uint64_t sys_rows = 0;
      for (const auto& [tname, rows] : sys_model_) sys_rows += rows.size();
      report_->counters["sys_rows_durable"] = sys_rows;
      DumpSysMetrics();
    }
    Log("done durable_rows=" + std::to_string(durable_rows));
  }
  // Tear down in dependency order before the envs go away.
  client_.reset();
  if (server_) server_->Stop();
  server_.reset();
  sampler_.reset();
  if (db_) db_->Abandon();
  db_.reset();
  fault::DisarmCrashPoints();
  return Status::OK();
}

}  // namespace

Status RunChaos(const ChaosOptions& options, ChaosReport* report) {
  *report = ChaosReport();
  if (options.ops < 0 || options.devices < 1) {
    return Status::InvalidArgument("ops must be >= 0 and devices >= 1");
  }
  if (options.fault_rate < 0.0 || options.fault_rate > 1.0) {
    return Status::InvalidArgument("fault_rate must be in [0, 1]");
  }
  ChaosRun run(options, report);
  return run.Run();
}

}  // namespace sim
}  // namespace lt
