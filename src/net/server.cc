#include "net/server.h"

#include <chrono>

#include "core/row_codec.h"
#include "util/clock.h"
#include "util/coding.h"

namespace lt {

using wire::ErrCode;
using wire::MsgType;

namespace {

// Rows per kQueryChunk frame.
constexpr size_t kChunkRows = 512;

bool GetName(Slice* in, std::string* name) {
  Slice s;
  if (!GetLengthPrefixedSlice(in, &s)) return false;
  *name = s.ToString();
  return true;
}

// Metric-name suffix for each request opcode ("server.op.<name>.micros").
const char* OpName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kListTables: return "list_tables";
    case MsgType::kGetTable: return "get_table";
    case MsgType::kCreateTable: return "create_table";
    case MsgType::kDropTable: return "drop_table";
    case MsgType::kInsert: return "insert";
    case MsgType::kQuery: return "query";
    case MsgType::kLatestRow: return "latest_row";
    case MsgType::kFlushThrough: return "flush_through";
    case MsgType::kAppendColumn: return "append_column";
    case MsgType::kWidenColumn: return "widen_column";
    case MsgType::kSetTtl: return "set_ttl";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsV2: return "stats_v2";
    default: return nullptr;
  }
}

}  // namespace

LittleTableServer::LittleTableServer(DB* db, uint16_t port)
    : LittleTableServer(db, [port] {
        ServerOptions o;
        o.port = port;
        return o;
      }()) {}

LittleTableServer::LittleTableServer(DB* db, const ServerOptions& options)
    : db_(db),
      opts_(options),
      port_(options.port),
      transport_(options.transport ? options.transport
                                   : net::Transport::Tcp()) {
  // Resolve every instrument up front: the serve loop then records into
  // stable pointers with no registry lookups.
  for (int op = 0; op < 256; op++) {
    if (const char* name = OpName(static_cast<MsgType>(op))) {
      op_micros_[op] = metrics_.GetHistogram(std::string("server.op.") + name +
                                             ".micros");
    }
  }
  connections_ = metrics_.GetCounter("server.connections");
  active_connections_ = metrics_.GetCounter("server.active_connections");
  requests_ = metrics_.GetCounter("server.requests");
  errors_ = metrics_.GetCounter("server.errors");
  idle_disconnects_ = metrics_.GetCounter("server.idle_disconnects");
  busy_rejects_ = metrics_.GetCounter("server.busy_rejects");
  shutdown_rejects_ = metrics_.GetCounter("server.shutdown_rejects");
}

LittleTableServer::~LittleTableServer() { Stop(); }

Status LittleTableServer::Start() {
  LT_RETURN_IF_ERROR(transport_->Listen(port_, &listener_));
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LittleTableServer::Stop() {
  if (stop_called_.exchange(true)) return;
  // Phase 1 — drain: requests already being served run to completion (the
  // response is written before the request is counted done); any frame
  // arriving meanwhile, including on brand-new connections, is answered
  // with kShuttingDown. Bounded by drain_timeout_ms.
  {
    // The flag is set under drain_mu_, and connection threads check it and
    // register the request in one drain_mu_ critical section — so every
    // request either observes draining_ and is rejected, or is already
    // counted in active_requests_ before the wait below reads it. Without
    // that pairing a request could slip between the check and the count
    // and have its socket shut down mid-dispatch.
    std::unique_lock<std::mutex> lock(drain_mu_);
    draining_.store(true);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(opts_.drain_timeout_ms),
                       [this] { return active_requests_ == 0; });
  }
  // Phase 2 — stop: close the listener and force remaining connections
  // shut.
  stopping_.store(true);
  // Closing the listener wakes a blocked Accept, which then returns non-OK
  // and ends the accept loop.
  if (listener_) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();  // Releases the port.
  std::map<uint64_t, std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads.swap(conn_threads_);
    finished_ids_.clear();
    // Connection threads may be blocked reading idle-but-live client
    // connections; shut those down so the threads observe EOF.
    for (auto& [id, conn] : live_conns_) conn->Shutdown();
  }
  for (auto& [id, t] : threads) {
    if (t.joinable()) t.join();
  }
}

size_t LittleTableServer::NumConnThreads() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  return conn_threads_.size();
}

void LittleTableServer::ReapFinished() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (uint64_t id : finished_ids_) {
      auto it = conn_threads_.find(id);
      if (it == conn_threads_.end()) continue;
      done.push_back(std::move(it->second));
      conn_threads_.erase(it);
    }
    finished_ids_.clear();
  }
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void LittleTableServer::AcceptLoop() {
  while (!stopping_.load()) {
    std::unique_ptr<net::Connection> conn;
    if (!listener_->Accept(&conn).ok()) break;
    if (stopping_.load()) break;
    // Reap threads whose connections have closed; without this a
    // long-lived server leaks one zombie thread per connection ever
    // accepted.
    ReapFinished();
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (opts_.max_connections > 0 &&
        conn_threads_.size() >= opts_.max_connections) {
      // Over the cap: tell the client to back off, then close. Written
      // inline from the accept thread — no thread is spawned for a
      // rejected connection.
      busy_rejects_->Increment();
      std::string reject;
      ReplyError(&reject, ErrCode::kServerBusy, "server busy: connection cap");
      conn->set_write_timeout_ms(opts_.poll_interval_ms);
      conn->WriteAll(reject.data(), reject.size());
      continue;
    }
    uint64_t id = next_conn_id_++;
    conn_threads_.emplace(id, std::thread([this, id, c = std::move(conn)]() mutable {
      ServeConnection(id, std::move(c));
    }));
  }
}

void LittleTableServer::ServeConnection(uint64_t id,
                                        std::unique_ptr<net::Connection> conn) {
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    live_conns_[id] = conn.get();
  }
  connections_->Increment();
  active_connections_->Add(1);
  // Once a frame has started arriving, bound how long a stalled peer can
  // pin this thread; responses get the same write deadline.
  conn->set_read_timeout_ms(opts_.io_timeout_ms);
  conn->set_write_timeout_ms(opts_.io_timeout_ms);
  std::string payload;
  int64_t idle_ms = 0;
  while (!stopping_.load()) {
    // Wait for the next frame in short poll slices so the thread notices
    // stop/drain promptly even on an idle connection.
    bool ready = false;
    if (!conn->WaitReadable(opts_.poll_interval_ms, &ready).ok()) break;
    if (!ready) {
      idle_ms += opts_.poll_interval_ms;
      if (opts_.idle_timeout_ms > 0 && idle_ms >= opts_.idle_timeout_ms) {
        idle_disconnects_->Increment();
        break;
      }
      continue;
    }
    idle_ms = 0;
    char len_buf[4];
    if (!conn->ReadAll(len_buf, 4).ok()) break;  // Client disconnected.
    uint32_t len = DecodeFixed32(len_buf);
    if (len == 0 || len > wire::kMaxFrameBytes) break;
    payload.resize(len);
    if (!conn->ReadAll(payload.data(), len).ok()) break;

    // Reject-or-register, atomically with the drain flag: either this
    // request registers in active_requests_ before Stop() starts waiting
    // (so the drain waits for its response), or it observes draining_ and
    // is rejected — never a half-dispatched request whose socket the
    // "finished" drain shuts down.
    bool draining;
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      draining = draining_.load();
      if (!draining) active_requests_++;
    }
    if (draining) {
      // Shutting down: this frame arrived after the drain began, so it is
      // rejected rather than served — the client should reconnect to a
      // healthy server.
      shutdown_rejects_->Increment();
      std::string response;
      ReplyError(&response, ErrCode::kShuttingDown, "server shutting down");
      conn->WriteAll(response.data(), response.size());
      break;
    }

    MsgType type = static_cast<MsgType>(payload[0]);
    Slice body(payload.data() + 1, payload.size() - 1);
    std::string response;
    requests_->Increment();
    const Timestamp start = MonotonicMicros();
    Dispatch(type, body, &response);
    if (LatencyHistogram* h = op_micros_[static_cast<uint8_t>(type)]) {
      h->Record(static_cast<uint64_t>(MonotonicMicros() - start));
    }
    // The response write is part of the in-flight request: a drain waits
    // until the client has its answer.
    bool write_ok = conn->WriteAll(response.data(), response.size()).ok();
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      active_requests_--;
    }
    drain_cv_.notify_all();
    if (!write_ok) break;
  }
  active_connections_->Add(-1);
  // Last use of threads_mu_: after this the thread only returns, so the
  // accept loop (or Stop) can join it without deadlock. Deregistering here
  // (before `conn` is destroyed at return) keeps Stop()'s Shutdown calls
  // off freed connections.
  std::lock_guard<std::mutex> lock(threads_mu_);
  live_conns_.erase(id);
  finished_ids_.push_back(id);
}

void LittleTableServer::ReplyError(std::string* out, ErrCode code,
                                   const std::string& message) {
  errors_->Increment();
  std::string body;
  body.push_back(static_cast<char>(code));
  PutLengthPrefixedSlice(&body, message);
  *out += wire::Frame(MsgType::kError, body);
}

void LittleTableServer::ReplyStatus(std::string* out, const Status& s) {
  if (s.ok()) {
    *out += wire::Frame(MsgType::kOk, "");
  } else {
    ReplyError(out, wire::CodeForStatus(s), s.message());
  }
}

Status LittleTableServer::CollectCounters(
    const std::string& name,
    std::vector<std::pair<std::string, uint64_t>>* out) {
  if (const std::shared_ptr<Cache>& cache = db_->block_cache()) {
    Cache::Stats cs = cache->GetStats();
    out->emplace_back("cache.hits", cs.hits);
    out->emplace_back("cache.misses", cs.misses);
    out->emplace_back("cache.inserts", cs.inserts);
    out->emplace_back("cache.evictions", cs.evictions);
    out->emplace_back("cache.charge_bytes", cs.charge);
    out->emplace_back("cache.capacity_bytes", cs.capacity);
  }
  if (!name.empty()) {
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) return Status::NotFound("no such table: " + name);
    const TableStats& ts = table->stats();
    auto add = [&](const char* key, const std::atomic<uint64_t>& v) {
      out->emplace_back(key, v.load(std::memory_order_relaxed));
    };
    add("table.insert_batches", ts.insert_batches);
    add("table.rows_inserted", ts.rows_inserted);
    add("table.queries", ts.queries);
    add("table.rows_scanned", ts.rows_scanned);
    add("table.rows_returned", ts.rows_returned);
    add("table.flushes", ts.flushes);
    add("table.flush_failures", ts.flush_failures);
    add("table.flush_retries", ts.flush_retries);
    add("table.merge_failures", ts.merge_failures);
    add("table.bytes_flushed", ts.bytes_flushed);
    add("table.merges", ts.merges);
    add("table.tablets_merged", ts.tablets_merged);
    add("table.bytes_merge_written", ts.bytes_merge_written);
    add("table.tablets_expired", ts.tablets_expired);
    add("table.tablets_quarantined", ts.tablets_quarantined);
    add("table.bloom_tablet_skips", ts.bloom_tablet_skips);
    add("table.bloom_tablet_probes", ts.bloom_tablet_probes);
    add("table.block_cache_hits", ts.block_cache_hits);
    add("table.block_cache_misses", ts.block_cache_misses);
  }
  return Status::OK();
}

void LittleTableServer::Dispatch(MsgType type, Slice body, std::string* out) {
  switch (type) {
    case MsgType::kPing:
      *out += wire::Frame(MsgType::kOk, "");
      return;

    case MsgType::kListTables: {
      std::string resp;
      std::vector<std::string> names = db_->ListTables();
      PutVarint32(&resp, static_cast<uint32_t>(names.size()));
      for (const std::string& n : names) PutLengthPrefixedSlice(&resp, n);
      *out += wire::Frame(MsgType::kTableList, resp);
      return;
    }

    case MsgType::kGetTable: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::shared_ptr<Table> table = db_->GetTable(name);
      if (!table) {
        return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
      }
      std::string resp;
      table->schema()->EncodeTo(&resp);
      PutVarint64(&resp, static_cast<uint64_t>(table->ttl()));
      *out += wire::Frame(MsgType::kTableInfo, resp);
      return;
    }

    case MsgType::kCreateTable: {
      std::string name;
      Schema schema;
      uint64_t ttl;
      if (!GetName(&body, &name) ||
          !Schema::DecodeFrom(&body, &schema).ok() ||
          !GetVarint64(&body, &ttl)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      TableOptions opts = db_->options().table_defaults;
      opts.ttl = static_cast<Timestamp>(ttl);
      return ReplyStatus(out, db_->CreateTable(name, schema, &opts));
    }

    case MsgType::kDropTable: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, db_->DropTable(name));
    }

    // Handled here rather than with the table-addressed requests below
    // because an empty name is legal: it asks for server-wide counters
    // (today, the shared block cache) without any table's.
    case MsgType::kStats: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::vector<std::pair<std::string, uint64_t>> entries;
      Status s = CollectCounters(name, &entries);
      if (!s.ok()) return ReplyStatus(out, s);
      std::string resp;
      PutVarint32(&resp, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, value] : entries) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, value);
      }
      *out += wire::Frame(MsgType::kStatsResult, resp);
      return;
    }

    case MsgType::kStatsV2: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::vector<std::pair<std::string, uint64_t>> entries;
      Status s = CollectCounters(name, &entries);
      if (!s.ok()) return ReplyStatus(out, s);
      for (const auto& [key, value] : metrics_.CounterValues()) {
        entries.emplace_back(key, static_cast<uint64_t>(value));
      }

      // Histograms: the server's per-opcode distributions, plus the
      // table's operation latencies when a table was named. Never-recorded
      // histograms are omitted so the reply stays proportional to actual
      // traffic.
      std::vector<std::pair<std::string, HistogramSnapshot>> hists;
      for (auto& [key, snap] : metrics_.HistogramSnapshots()) {
        if (snap.count > 0) hists.emplace_back(key, std::move(snap));
      }
      if (!name.empty()) {
        std::shared_ptr<Table> table = db_->GetTable(name);
        if (!table) {
          return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
        }
        TableStats& ts = table->stats();
        auto add_hist = [&](const char* key, const LatencyHistogram& h) {
          HistogramSnapshot snap = h.Snapshot();
          if (snap.count > 0) hists.emplace_back(key, std::move(snap));
        };
        add_hist("table.insert_micros", ts.insert_micros);
        add_hist("table.query_micros", ts.query_micros);
        add_hist("table.flush_micros", ts.flush_micros);
        add_hist("table.merge_micros", ts.merge_micros);
        add_hist("table.block_read_micros", ts.block_read_micros);
        add_hist("table.cache_lookup_micros", ts.cache_lookup_micros);
      }

      std::string resp;
      PutVarint32(&resp, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, value] : entries) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, value);
      }
      PutVarint32(&resp, static_cast<uint32_t>(hists.size()));
      for (const auto& [key, snap] : hists) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, snap.count);
        PutVarint64(&resp, snap.P50());
        PutVarint64(&resp, snap.P90());
        PutVarint64(&resp, snap.P99());
        PutVarint64(&resp, snap.P999());
        PutVarint64(&resp, snap.max);
      }
      *out += wire::Frame(MsgType::kStatsV2Result, resp);
      return;
    }

    default:
      break;
  }

  // All remaining requests address a table and carry its name first.
  std::string name;
  if (!GetName(&body, &name)) {
    return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
  }
  std::shared_ptr<Table> table = db_->GetTable(name);
  if (!table) {
    return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
  }
  std::shared_ptr<const Schema> schema = table->schema();

  // Requests encoded against a schema check the version (§3.5 evolutions
  // can land between a client's schema fetch and its next request).
  auto check_version = [&](Slice* in) -> bool {
    uint32_t version;
    if (!GetVarint32(in, &version)) return false;
    return version == schema->version();
  };

  switch (type) {
    case MsgType::kInsert: {
      uint32_t version;
      if (!GetVarint32(&body, &version)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      if (version != schema->version()) {
        return ReplyError(out, ErrCode::kSchemaChanged, "schema changed");
      }
      uint32_t count;
      if (!GetVarint32(&body, &count) || count > 10u * 1000 * 1000) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad row count");
      }
      std::vector<Row> rows;
      rows.reserve(count);
      const Timestamp now = db_->clock()->Now();
      for (uint32_t i = 0; i < count; i++) {
        Row row;
        if (!DecodeRow(&body, *schema, &row).ok()) {
          return ReplyError(out, ErrCode::kInvalidArgument, "bad row");
        }
        // A client may omit a row's timestamp entirely, in which case the
        // server sets it to the current time (§3.1).
        if (row[schema->ts_index()].AsInt() == wire::kOmittedTimestamp) {
          row[schema->ts_index()] = Value::Ts(now);
        }
        rows.push_back(std::move(row));
      }
      return ReplyStatus(out, table->InsertBatch(rows));
    }

    case MsgType::kQuery: {
      QueryBounds bounds;
      if (!check_version(&body) ||
          !wire::DecodeBounds(&body, *schema, &bounds).ok()) {
        return ReplyError(out, ErrCode::kSchemaChanged,
                          "schema changed or bad bounds");
      }
      QueryResult result;
      Status s = table->Query(bounds, &result);
      if (!s.ok()) return ReplyStatus(out, s);
      // Stream rows in chunks; the last chunk carries the flags.
      size_t sent = 0;
      do {
        size_t n = std::min(kChunkRows, result.rows.size() - sent);
        bool final = sent + n == result.rows.size();
        std::string chunk;
        uint8_t flags = 0;
        if (final) flags |= wire::kChunkFinal;
        if (final && result.more_available) flags |= wire::kChunkMoreAvailable;
        chunk.push_back(static_cast<char>(flags));
        PutVarint32(&chunk, schema->version());
        PutVarint32(&chunk, static_cast<uint32_t>(n));
        for (size_t i = 0; i < n; i++) {
          EncodeRow(&chunk, *schema, result.rows[sent + i]);
        }
        *out += wire::Frame(MsgType::kQueryChunk, chunk);
        sent += n;
      } while (sent < result.rows.size());
      return;
    }

    case MsgType::kLatestRow: {
      Key prefix;
      if (!check_version(&body) ||
          !wire::DecodeKeyPrefix(&body, *schema, &prefix).ok()) {
        return ReplyError(out, ErrCode::kSchemaChanged,
                          "schema changed or bad prefix");
      }
      Row row;
      bool found = false;
      Status s = table->LatestRowForPrefix(prefix, &row, &found);
      if (!s.ok()) return ReplyStatus(out, s);
      std::string resp;
      resp.push_back(found ? 1 : 0);
      PutVarint32(&resp, schema->version());
      if (found) EncodeRow(&resp, *schema, row);
      *out += wire::Frame(MsgType::kRowResult, resp);
      return;
    }

    case MsgType::kFlushThrough: {
      uint64_t zz_ts;
      if (!GetVarint64(&body, &zz_ts)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->FlushThrough(ZigZagDecode(zz_ts)));
    }

    case MsgType::kAppendColumn: {
      // Column encoded as a length-prefixed name + type byte + default.
      Slice cname;
      if (!GetLengthPrefixedSlice(&body, &cname) || body.empty()) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      uint8_t type_byte = static_cast<uint8_t>(body[0]);
      body.remove_prefix(1);
      if (type_byte < 1 || type_byte > 6) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad column type");
      }
      Column column;
      column.name = cname.ToString();
      column.type = static_cast<ColumnType>(type_byte);
      if (!DecodeValue(&body, column.type, &column.default_value).ok()) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad default");
      }
      return ReplyStatus(out, table->AppendColumn(column));
    }

    case MsgType::kWidenColumn: {
      std::string cname;
      if (!GetName(&body, &cname)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->WidenColumn(cname));
    }

    case MsgType::kSetTtl: {
      uint64_t ttl;
      if (!GetVarint64(&body, &ttl)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->SetTtl(static_cast<Timestamp>(ttl)));
    }

    default:
      return ReplyError(out, ErrCode::kInvalidArgument, "unknown message type");
  }
}

}  // namespace lt
