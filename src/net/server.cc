#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/row_codec.h"
#include "util/coding.h"

namespace lt {

using wire::ErrCode;
using wire::MsgType;

namespace {

// Rows per kQueryChunk frame.
constexpr size_t kChunkRows = 512;

// Bytes one PumpConnection call will read before yielding back to the
// event loop, so a firehosing client cannot starve the other connections.
// Unconsumed bytes stay queued in the transport; the next Wait reports the
// connection ready again immediately.
constexpr size_t kMaxPumpBytes = 256 * 1024;

bool GetName(Slice* in, std::string* name) {
  Slice s;
  if (!GetLengthPrefixedSlice(in, &s)) return false;
  *name = s.ToString();
  return true;
}

// Metric-name suffix for each request opcode ("server.op.<name>.micros").
// Also the registry of known request opcodes: a frame whose (normalized)
// type byte has no name here is rejected with kBadRequest, never
// dispatched.
const char* OpName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kListTables: return "list_tables";
    case MsgType::kGetTable: return "get_table";
    case MsgType::kCreateTable: return "create_table";
    case MsgType::kDropTable: return "drop_table";
    case MsgType::kInsert: return "insert";
    case MsgType::kQuery: return "query";
    case MsgType::kLatestRow: return "latest_row";
    case MsgType::kFlushThrough: return "flush_through";
    case MsgType::kAppendColumn: return "append_column";
    case MsgType::kWidenColumn: return "widen_column";
    case MsgType::kSetTtl: return "set_ttl";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsV2: return "stats_v2";
    case MsgType::kGetShardMap: return "get_shard_map";
    case MsgType::kAssignShard: return "assign_shard";
    case MsgType::kRoutedInsert: return "routed_insert";
    case MsgType::kRoutedQuery: return "routed_query";
    case MsgType::kRoutedCreate: return "routed_create";
    case MsgType::kReplicateRows: return "replicate_rows";
    case MsgType::kShipTablet: return "ship_tablet";
    case MsgType::kTabletSetSync: return "tablet_set_sync";
    default: return nullptr;
  }
}

// Opcodes handled by ServerOptions::extension rather than the core switch.
bool IsClusterOp(MsgType type) {
  switch (type) {
    case MsgType::kGetShardMap:
    case MsgType::kAssignShard:
    case MsgType::kRoutedInsert:
    case MsgType::kRoutedQuery:
    case MsgType::kRoutedCreate:
    case MsgType::kReplicateRows:
    case MsgType::kShipTablet:
    case MsgType::kTabletSetSync:
      return true;
    default:
      return false;
  }
}

}  // namespace

LittleTableServer::LittleTableServer(DB* db, uint16_t port)
    : LittleTableServer(db, [port] {
        ServerOptions o;
        o.port = port;
        return o;
      }()) {}

LittleTableServer::LittleTableServer(DB* db, const ServerOptions& options)
    : db_(db),
      opts_(options),
      idle_clock_(options.clock ? options.clock : SystemClock::Instance()),
      port_(options.port),
      transport_(options.transport ? options.transport
                                   : net::Transport::Tcp()) {
  // Resolve every instrument up front: the serve loop then records into
  // stable pointers with no registry lookups.
  for (int op = 0; op < 256; op++) {
    if (const char* name = OpName(static_cast<MsgType>(op))) {
      op_micros_[op] = metrics_.GetHistogram(std::string("server.op.") + name +
                                             ".micros");
    }
  }
  event_loop_lag_ = metrics_.GetHistogram("server.event_loop.lag_micros");
  run_queue_depth_ = metrics_.GetGauge("server.run_queue_depth");
  workers_busy_ = metrics_.GetGauge("server.workers_busy");
  worker_busy_micros_ = metrics_.GetCounter("server.worker_busy_micros");
  pending_frames_ = metrics_.GetGauge("server.pending_frames");
  connections_ = metrics_.GetCounter("server.connections");
  active_connections_ = metrics_.GetCounter("server.active_connections");
  requests_ = metrics_.GetCounter("server.requests");
  errors_ = metrics_.GetCounter("server.errors");
  idle_disconnects_ = metrics_.GetCounter("server.idle_disconnects");
  busy_rejects_ = metrics_.GetCounter("server.busy_rejects");
  shutdown_rejects_ = metrics_.GetCounter("server.shutdown_rejects");
  inline_pings_ = metrics_.GetCounter("server.inline_pings");
}

LittleTableServer::~LittleTableServer() { Stop(); }

Status LittleTableServer::Start() {
  LT_RETURN_IF_ERROR(transport_->Listen(port_, &listener_));
  port_ = listener_->port();
  LT_RETURN_IF_ERROR(transport_->NewPoller(&poller_));
  size_t n = opts_.worker_threads > 0 ? opts_.worker_threads : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LittleTableServer::Stop() {
  if (stop_called_.exchange(true)) return;
  // Phase 1 — drain: requests already received run to completion (the
  // response is written before the request is counted done); any frame
  // arriving meanwhile, including on brand-new connections, is answered
  // with kShuttingDown. Bounded by drain_timeout_ms.
  {
    // The flag is set under drain_mu_, and the event loop checks it and
    // registers each request in one drain_mu_ critical section — so every
    // request either observes draining_ and is rejected, or is already
    // counted in active_requests_ before the wait below reads it. Without
    // that pairing a request could slip between the check and the count
    // and have its connection shut down mid-dispatch.
    std::unique_lock<std::mutex> lock(drain_mu_);
    draining_.store(true);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(opts_.drain_timeout_ms),
                       [this] { return active_requests_ == 0; });
  }
  // Phase 2 — stop: close the listener, stop the event loop, force
  // remaining connections shut, and join the worker pool.
  stopping_.store(true);
  // Closing the listener wakes a blocked Accept, which then returns non-OK
  // and ends the accept loop.
  if (listener_) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();  // Releases the port.
  if (poller_) poller_->Wakeup();
  if (event_thread_.joinable()) event_thread_.join();
  // The event loop is gone, so conns_ is safe to walk from this thread.
  // Workers may be mid-write on a stalled peer; Shutdown unblocks them
  // (Connection::Shutdown is safe concurrent with in-flight I/O).
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    workers_stop_ = true;
    run_queue_.clear();
    run_queue_depth_->Set(0);
  }
  sched_cv_.notify_all();
  for (auto& [id, cs] : conns_) cs->conn->Shutdown();
  {
    std::lock_guard<std::mutex> lock(accepted_mu_);
    for (auto& c : accepted_) c->Shutdown();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  for (auto& [id, cs] : conns_) active_connections_->Add(-1);
  conns_.clear();  // Destroys the connections (closes them).
  {
    std::lock_guard<std::mutex> lock(accepted_mu_);
    accepted_.clear();
  }
  conn_count_.store(0);
  pending_frames_->Set(0);  // Any still-queued frames died with conns_.
  poller_.reset();
}

void LittleTableServer::AcceptLoop() {
  while (!stopping_.load()) {
    std::unique_ptr<net::Connection> conn;
    if (!listener_->Accept(&conn).ok()) break;
    if (stopping_.load()) break;
    if (opts_.max_connections > 0 &&
        conn_count_.load(std::memory_order_relaxed) >= opts_.max_connections) {
      // Over the cap: tell the client to back off, then close. Written
      // inline from the accept thread — no state is created for a rejected
      // connection. The write deadline is the I/O timeout: a
      // slow-but-healthy client still deserves the full reject frame.
      busy_rejects_->Increment();
      std::string reject;
      ReplyError(&reject, ErrCode::kServerBusy, "server busy: connection cap");
      conn->set_write_timeout_ms(opts_.io_timeout_ms);
      conn->WriteAll(reject.data(), reject.size());
      continue;
    }
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(accepted_mu_);
      accepted_.push_back(std::move(conn));
    }
    poller_->Wakeup();  // The event loop registers it.
  }
}

void LittleTableServer::EventLoop() {
  std::vector<uint64_t> ready;
  while (!stopping_.load()) {
    const Timestamp wait_start = MonotonicMicros();
    Status ws = poller_->Wait(opts_.poll_interval_ms, &ready);
    if (ws.ok() && ready.empty()) {
      // A pure timeout wakeup was *scheduled* for poll_interval_ms from
      // wait_start; anything beyond that is event-loop lag (kernel
      // scheduling delay, or the loop itself running behind). Early
      // returns (I/O ready, Wakeup) are on time by definition and clamp
      // to zero.
      const Timestamp scheduled =
          Timestamp{opts_.poll_interval_ms} * 1000;
      const Timestamp elapsed = MonotonicMicros() - wait_start;
      event_loop_lag_->Record(
          static_cast<uint64_t>(std::max<Timestamp>(0, elapsed - scheduled)));
    }
    if (stopping_.load()) break;
    if (!ws.ok()) {
      // Poll failures are transient (resource pressure); don't spin.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_interval_ms));
      continue;
    }
    // Register connections handed off by the accept thread.
    std::deque<std::unique_ptr<net::Connection>> fresh;
    {
      std::lock_guard<std::mutex> lock(accepted_mu_);
      fresh.swap(accepted_);
    }
    for (std::unique_ptr<net::Connection>& c : fresh) {
      auto cs = std::make_shared<ConnState>();
      cs->id = next_conn_id_++;
      cs->conn = std::move(c);
      // Response writes get the I/O deadline so a stalled peer cannot pin
      // a worker forever. Reads are non-blocking (ReadSome) and need none.
      cs->conn->set_write_timeout_ms(opts_.io_timeout_ms);
      cs->last_activity = idle_clock_->Now();
      poller_->Add(cs->conn.get(), cs->id);
      conns_[cs->id] = cs;
      connections_->Increment();
      active_connections_->Add(1);
    }
    // Pump ready connections: read, reassemble frames, enqueue requests.
    for (uint64_t tag : ready) {
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;
      const std::shared_ptr<ConnState>& cs = it->second;
      {
        std::lock_guard<std::mutex> lock(sched_mu_);
        if (cs->dead) continue;
      }
      if (!PumpConnection(cs)) {
        {
          std::lock_guard<std::mutex> lock(sched_mu_);
          cs->dead = true;
        }
        // Stop watching; queued responses still flush, then IdleTick (or
        // the finishing worker's wakeup) reaps the connection.
        poller_->Remove(cs->conn.get());
      }
    }
    IdleTick();
  }
}

bool LittleTableServer::PumpConnection(const std::shared_ptr<ConnState>& cs) {
  char buf[16384];
  size_t pumped = 0;
  while (pumped < kMaxPumpBytes) {
    size_t got = 0;
    if (!cs->conn->ReadSome(buf, sizeof(buf), &got).ok()) {
      return false;  // EOF or reset; any partial frame in inbuf is dropped.
    }
    if (got == 0) break;  // Drained for now.
    pumped += got;
    // Idle time is measured from the clock at the last received byte —
    // never inferred from poll-slice counts.
    cs->last_activity = idle_clock_->Now();
    cs->inbuf.append(buf, got);
    // Reassemble and hand off every complete frame.
    size_t off = 0;
    bool keep = true;
    while (cs->inbuf.size() - off >= 4) {
      uint32_t len = DecodeFixed32(cs->inbuf.data() + off);
      if (len == 0 || len > wire::kMaxFrameBytes) {
        keep = false;  // Unframeable garbage; drop the connection.
        break;
      }
      if (cs->inbuf.size() - off < 4 + static_cast<size_t>(len)) break;
      std::string payload = cs->inbuf.substr(off + 4, len);
      off += 4 + len;
      if (!HandleFrame(cs, std::move(payload))) {
        keep = false;
        break;
      }
    }
    if (off > 0) cs->inbuf.erase(0, off);
    if (!keep) return false;
  }
  return true;
}

bool LittleTableServer::HandleFrame(const std::shared_ptr<ConnState>& cs,
                                    std::string payload) {
  if (payload.empty()) return false;  // Unreachable: frames have len >= 1.
  // Normalize the opcode byte exactly once. payload[0] is a (possibly
  // signed) char: a frame byte >= 0x80 must become 128..255, not a
  // negative enum value.
  const uint8_t op = static_cast<uint8_t>(payload[0]);
  const bool known = OpName(static_cast<MsgType>(op)) != nullptr;

  Task task;
  bool draining;
  {
    // Reject-or-register, atomically with the drain flag: either this
    // request registers in active_requests_ before Stop() starts waiting
    // (so the drain waits for its response), or it observes draining_ and
    // is rejected — never a half-dispatched request whose connection the
    // "finished" drain shuts down.
    std::lock_guard<std::mutex> lock(drain_mu_);
    draining = draining_.load();
    if (!draining && known) {
      active_requests_++;
      task.registered = true;
    }
  }
  if (draining) {
    // Shutting down: this frame arrived after the drain began, so it is
    // rejected rather than served — the client should reconnect to a
    // healthy server. The reject rides the ordered response path (behind
    // any in-flight responses), then the connection closes.
    shutdown_rejects_->Increment();
    ReplyError(&task.canned, ErrCode::kShuttingDown, "server shutting down");
    EnqueueTask(cs, std::move(task));
    return false;
  }
  requests_->Increment();
  if (!known) {
    // Unknown opcode: answer with kBadRequest instead of dispatching. The
    // framing is intact, so the connection stays usable.
    char hex[8];
    snprintf(hex, sizeof(hex), "0x%02x", op);
    ReplyError(&task.canned, ErrCode::kBadRequest,
               std::string("unknown message type ") + hex);
    EnqueueTask(cs, std::move(task));
    return true;
  }
  if (op == static_cast<uint8_t>(MsgType::kPing)) {
    // Health probes are answered inline from the event loop when the
    // connection has no queued work: a saturated worker pool (or a deep
    // run queue) must not make a healthy node look dead to the
    // coordinator's prober. Writing from here is safe because the FIFO
    // invariant (one worker per connection, front task only) means
    // !running && tasks.empty() ⇒ no worker can be writing to this
    // connection. Pings arriving behind pipelined work still ride the
    // ordered task path so responses stay in request order.
    bool idle;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      idle = !cs->running && cs->tasks.empty();
    }
    if (idle) {
      const Timestamp start = MonotonicMicros();
      const std::string resp = wire::Frame(MsgType::kOk, "");
      const bool write_ok =
          cs->conn->WriteAll(resp.data(), resp.size()).ok();
      inline_pings_->Increment();
      if (LatencyHistogram* h = op_micros_[op]) {
        h->Record(static_cast<uint64_t>(MonotonicMicros() - start));
      }
      if (task.registered) {
        {
          std::lock_guard<std::mutex> lock(drain_mu_);
          active_requests_--;
        }
        drain_cv_.notify_all();
      }
      return write_ok;
    }
  }
  task.payload = std::move(payload);
  EnqueueTask(cs, std::move(task));
  return true;
}

void LittleTableServer::EnqueueTask(const std::shared_ptr<ConnState>& cs,
                                    Task task) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    cs->tasks.push_back(std::move(task));
    pending_frames_->Increment();
    // Invariant: a connection with runnable work (front task, no worker on
    // it) sits in run_queue_ exactly once. It enters here on the
    // empty→nonempty transition and re-enters when a worker finishes with
    // tasks left.
    if (!cs->running && cs->tasks.size() == 1 && !workers_stop_) {
      run_queue_.push_back(cs);
      run_queue_depth_->Set(static_cast<int64_t>(run_queue_.size()));
      schedule = true;
    }
  }
  if (schedule) sched_cv_.notify_one();
}

void LittleTableServer::IdleTick() {
  const Timestamp now = idle_clock_->Now();
  for (auto it = conns_.begin(); it != conns_.end();) {
    const std::shared_ptr<ConnState>& cs = it->second;
    bool reap = false;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      const bool busy = cs->running || !cs->tasks.empty();
      if (cs->dead) {
        reap = !busy;  // Responses flushed; safe to destroy.
      } else if (opts_.idle_timeout_ms > 0 && !busy &&
                 now - cs->last_activity >=
                     Timestamp{opts_.idle_timeout_ms} * 1000) {
        idle_disconnects_->Increment();
        cs->dead = true;
        reap = true;
      }
    }
    if (reap) {
      poller_->Remove(cs->conn.get());
      active_connections_->Add(-1);
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
      it = conns_.erase(it);  // Last owner (bar a worker) closes the conn.
    } else {
      ++it;
    }
  }
}

void LittleTableServer::WorkerLoop() {
  while (true) {
    std::shared_ptr<ConnState> cs;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock,
                     [this] { return workers_stop_ || !run_queue_.empty(); });
      if (workers_stop_) return;
      cs = std::move(run_queue_.front());
      run_queue_.pop_front();
      run_queue_depth_->Set(static_cast<int64_t>(run_queue_.size()));
      cs->running = true;
      workers_busy_->Increment();
    }
    const Timestamp busy_start = MonotonicMicros();
    // Only this worker touches the front task while running is set, and
    // the event loop only push_backs (which never invalidates deque
    // references), so the pointer is stable without the lock.
    Task& task = cs->tasks.front();
    std::string response;
    if (!task.canned.empty()) {
      response = std::move(task.canned);
    } else {
      const uint8_t op = static_cast<uint8_t>(task.payload[0]);
      Slice body(task.payload.data() + 1, task.payload.size() - 1);
      const Timestamp start = MonotonicMicros();
      Dispatch(static_cast<MsgType>(op), body, &response);
      if (LatencyHistogram* h = op_micros_[op]) {
        h->Record(static_cast<uint64_t>(MonotonicMicros() - start));
      }
    }
    // The response write is part of the in-flight request: a drain waits
    // until the client has its answer. One worker per connection at a
    // time, executing the FIFO front, is what keeps pipelined responses in
    // request order.
    const bool write_ok =
        cs->conn->WriteAll(response.data(), response.size()).ok();
    const bool was_registered = task.registered;
    int dropped_registered = 0;
    bool conn_finished = false;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      cs->tasks.pop_front();
      pending_frames_->Decrement();
      cs->running = false;
      workers_busy_->Decrement();
      if (!write_ok) {
        // The peer can't receive responses; abandon the rest of the
        // pipeline but give the drain back their registrations.
        cs->dead = true;
        for (const Task& t : cs->tasks) {
          if (t.registered) dropped_registered++;
        }
        pending_frames_->Add(-static_cast<int64_t>(cs->tasks.size()));
        cs->tasks.clear();
      }
      if (!cs->tasks.empty() && !workers_stop_) {
        run_queue_.push_back(cs);
        run_queue_depth_->Set(static_cast<int64_t>(run_queue_.size()));
        sched_cv_.notify_one();
      }
      conn_finished = cs->dead && cs->tasks.empty();
    }
    worker_busy_micros_->Add(
        static_cast<int64_t>(MonotonicMicros() - busy_start));
    if (was_registered || dropped_registered > 0) {
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
        active_requests_ -= (was_registered ? 1 : 0) + dropped_registered;
      }
      drain_cv_.notify_all();
    }
    // A dead connection with a drained pipeline is ready to reap; poke the
    // event loop rather than waiting out its poll slice.
    if (conn_finished && !stopping_.load()) poller_->Wakeup();
  }
}

void LittleTableServer::ReplyError(std::string* out, ErrCode code,
                                   const std::string& message) {
  errors_->Increment();
  std::string body;
  body.push_back(static_cast<char>(code));
  PutLengthPrefixedSlice(&body, message);
  *out += wire::Frame(MsgType::kError, body);
}

void LittleTableServer::ReplyStatus(std::string* out, const Status& s) {
  if (s.ok()) {
    *out += wire::Frame(MsgType::kOk, "");
  } else {
    ReplyError(out, wire::CodeForStatus(s), s.message());
  }
}

Status LittleTableServer::CollectCounters(
    const std::string& name,
    std::vector<std::pair<std::string, uint64_t>>* out) {
  if (db_ != nullptr) {
    if (const std::shared_ptr<Cache>& cache = db_->block_cache()) {
      Cache::Stats cs = cache->GetStats();
      out->emplace_back("cache.hits", cs.hits);
      out->emplace_back("cache.misses", cs.misses);
      out->emplace_back("cache.inserts", cs.inserts);
      out->emplace_back("cache.evictions", cs.evictions);
      out->emplace_back("cache.charge_bytes", cs.charge);
      out->emplace_back("cache.capacity_bytes", cs.capacity);
    }
  }
  if (!name.empty()) {
    if (db_ == nullptr) return Status::NotFound("no such table: " + name);
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) return Status::NotFound("no such table: " + name);
    // The canonical export list lives with the counters themselves
    // (TableStats::ForEachCounter), so a counter added there shows up here,
    // in kStatsV2, in Prometheus text, and in the metrics sampler at once.
    table->stats().ForEachCounter([&](const char* key, uint64_t v) {
      out->emplace_back(key, v);
    });
  }
  return Status::OK();
}

void LittleTableServer::Dispatch(MsgType type, Slice body, std::string* out) {
  if (IsClusterOp(type)) {
    // Cluster opcodes belong to the extension (coordinator or replica
    // agent); the core server knows only that they exist, so that they get
    // latency histograms and pass the known-opcode gate.
    if (opts_.extension) {
      opts_.extension(type, body, out);
    } else {
      ReplyError(out, ErrCode::kBadRequest,
                 "cluster opcode not supported here");
    }
    return;
  }
  if (db_ == nullptr && type != MsgType::kPing && type != MsgType::kStats &&
      type != MsgType::kStatsV2) {
    // Pure-extension server (the coordinator): health checks and
    // server-wide stats work, everything table- or db-shaped does not.
    return ReplyError(out, ErrCode::kInvalidArgument,
                      "server has no database attached");
  }
  switch (type) {
    case MsgType::kPing:
      *out += wire::Frame(MsgType::kOk, "");
      return;

    case MsgType::kListTables: {
      std::string resp;
      std::vector<std::string> names = db_->ListTables();
      PutVarint32(&resp, static_cast<uint32_t>(names.size()));
      for (const std::string& n : names) PutLengthPrefixedSlice(&resp, n);
      *out += wire::Frame(MsgType::kTableList, resp);
      return;
    }

    case MsgType::kGetTable: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::shared_ptr<Table> table = db_->GetTable(name);
      if (!table) {
        return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
      }
      std::string resp;
      table->schema()->EncodeTo(&resp);
      PutVarint64(&resp, static_cast<uint64_t>(table->ttl()));
      *out += wire::Frame(MsgType::kTableInfo, resp);
      return;
    }

    case MsgType::kCreateTable: {
      std::string name;
      Schema schema;
      uint64_t ttl;
      if (!GetName(&body, &name) ||
          !Schema::DecodeFrom(&body, &schema).ok() ||
          !GetVarint64(&body, &ttl)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      TableOptions opts = db_->options().table_defaults;
      opts.ttl = static_cast<Timestamp>(ttl);
      return ReplyStatus(out, db_->CreateTable(name, schema, &opts));
    }

    case MsgType::kDropTable: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, db_->DropTable(name));
    }

    // Handled here rather than with the table-addressed requests below
    // because an empty name is legal: it asks for server-wide counters
    // (today, the shared block cache) without any table's.
    case MsgType::kStats: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::vector<std::pair<std::string, uint64_t>> entries;
      Status s = CollectCounters(name, &entries);
      if (!s.ok()) return ReplyStatus(out, s);
      std::string resp;
      PutVarint32(&resp, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, value] : entries) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, value);
      }
      *out += wire::Frame(MsgType::kStatsResult, resp);
      return;
    }

    case MsgType::kStatsV2: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::vector<std::pair<std::string, uint64_t>> entries;
      Status s = CollectCounters(name, &entries);
      if (!s.ok()) return ReplyStatus(out, s);
      for (const auto& [key, value] : metrics_.CounterValues()) {
        entries.emplace_back(key, static_cast<uint64_t>(value));
      }
      // Gauges ride the counter entries: same (name, value) shape on the
      // wire, so pre-gauge clients parse the reply unchanged.
      for (const auto& [key, value] : metrics_.GaugeValues()) {
        entries.emplace_back(key, static_cast<uint64_t>(value));
      }

      // Histograms: the server's per-opcode distributions, plus the
      // table's operation latencies when a table was named. Never-recorded
      // histograms are omitted so the reply stays proportional to actual
      // traffic.
      std::vector<std::pair<std::string, HistogramSnapshot>> hists;
      for (auto& [key, snap] : metrics_.HistogramSnapshots()) {
        if (snap.count > 0) hists.emplace_back(key, std::move(snap));
      }
      if (!name.empty()) {
        std::shared_ptr<Table> table = db_->GetTable(name);
        if (!table) {
          return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
        }
        table->stats().ForEachHistogram(
            [&](const char* key, const LatencyHistogram& h) {
              HistogramSnapshot snap = h.Snapshot();
              if (snap.count > 0) hists.emplace_back(key, std::move(snap));
            });
      }

      std::string resp;
      PutVarint32(&resp, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, value] : entries) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, value);
      }
      PutVarint32(&resp, static_cast<uint32_t>(hists.size()));
      for (const auto& [key, snap] : hists) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, snap.count);
        PutVarint64(&resp, snap.P50());
        PutVarint64(&resp, snap.P90());
        PutVarint64(&resp, snap.P99());
        PutVarint64(&resp, snap.P999());
        PutVarint64(&resp, snap.max);
      }
      *out += wire::Frame(MsgType::kStatsV2Result, resp);
      return;
    }

    default:
      break;
  }

  // All remaining requests address a table and carry its name first.
  std::string name;
  if (!GetName(&body, &name)) {
    return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
  }
  std::shared_ptr<Table> table = db_->GetTable(name);
  if (!table) {
    return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
  }
  std::shared_ptr<const Schema> schema = table->schema();

  // Requests encoded against a schema check the version (§3.5 evolutions
  // can land between a client's schema fetch and its next request).
  auto check_version = [&](Slice* in) -> bool {
    uint32_t version;
    if (!GetVarint32(in, &version)) return false;
    return version == schema->version();
  };

  switch (type) {
    case MsgType::kInsert: {
      uint32_t version;
      if (!GetVarint32(&body, &version)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      if (version != schema->version()) {
        return ReplyError(out, ErrCode::kSchemaChanged, "schema changed");
      }
      uint32_t count;
      if (!GetVarint32(&body, &count) || count > 10u * 1000 * 1000) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad row count");
      }
      std::vector<Row> rows;
      rows.reserve(count);
      const Timestamp now = db_->clock()->Now();
      for (uint32_t i = 0; i < count; i++) {
        Row row;
        if (!DecodeRow(&body, *schema, &row).ok()) {
          return ReplyError(out, ErrCode::kInvalidArgument, "bad row");
        }
        // A client may omit a row's timestamp entirely, in which case the
        // server sets it to the current time (§3.1).
        if (row[schema->ts_index()].AsInt() == wire::kOmittedTimestamp) {
          row[schema->ts_index()] = Value::Ts(now);
        }
        rows.push_back(std::move(row));
      }
      // Concurrent inserts from other connections' workers group-commit
      // inside InsertBatch (one critical section, statuses fanned out).
      return ReplyStatus(out, table->InsertBatch(rows));
    }

    case MsgType::kQuery: {
      QueryBounds bounds;
      if (!check_version(&body) ||
          !wire::DecodeBounds(&body, *schema, &bounds).ok()) {
        return ReplyError(out, ErrCode::kSchemaChanged,
                          "schema changed or bad bounds");
      }
      QueryResult result;
      Status s = table->Query(bounds, &result);
      if (!s.ok()) return ReplyStatus(out, s);
      // Stream rows in chunks; the last chunk carries the flags.
      size_t sent = 0;
      do {
        size_t n = std::min(kChunkRows, result.rows.size() - sent);
        bool final = sent + n == result.rows.size();
        std::string chunk;
        uint8_t flags = 0;
        if (final) flags |= wire::kChunkFinal;
        if (final && result.more_available) flags |= wire::kChunkMoreAvailable;
        chunk.push_back(static_cast<char>(flags));
        PutVarint32(&chunk, schema->version());
        PutVarint32(&chunk, static_cast<uint32_t>(n));
        for (size_t i = 0; i < n; i++) {
          EncodeRow(&chunk, *schema, result.rows[sent + i]);
        }
        *out += wire::Frame(MsgType::kQueryChunk, chunk);
        sent += n;
      } while (sent < result.rows.size());
      return;
    }

    case MsgType::kLatestRow: {
      Key prefix;
      if (!check_version(&body) ||
          !wire::DecodeKeyPrefix(&body, *schema, &prefix).ok()) {
        return ReplyError(out, ErrCode::kSchemaChanged,
                          "schema changed or bad prefix");
      }
      Row row;
      bool found = false;
      Status s = table->LatestRowForPrefix(prefix, &row, &found);
      if (!s.ok()) return ReplyStatus(out, s);
      std::string resp;
      resp.push_back(found ? 1 : 0);
      PutVarint32(&resp, schema->version());
      if (found) EncodeRow(&resp, *schema, row);
      *out += wire::Frame(MsgType::kRowResult, resp);
      return;
    }

    case MsgType::kFlushThrough: {
      uint64_t zz_ts;
      if (!GetVarint64(&body, &zz_ts)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->FlushThrough(ZigZagDecode(zz_ts)));
    }

    case MsgType::kAppendColumn: {
      // Column encoded as a length-prefixed name + type byte + default.
      Slice cname;
      if (!GetLengthPrefixedSlice(&body, &cname) || body.empty()) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      uint8_t type_byte = static_cast<uint8_t>(body[0]);
      body.remove_prefix(1);
      if (type_byte < 1 || type_byte > 6) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad column type");
      }
      Column column;
      column.name = cname.ToString();
      column.type = static_cast<ColumnType>(type_byte);
      if (!DecodeValue(&body, column.type, &column.default_value).ok()) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad default");
      }
      return ReplyStatus(out, table->AppendColumn(column));
    }

    case MsgType::kWidenColumn: {
      std::string cname;
      if (!GetName(&body, &cname)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->WidenColumn(cname));
    }

    case MsgType::kSetTtl: {
      uint64_t ttl;
      if (!GetVarint64(&body, &ttl)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->SetTtl(static_cast<Timestamp>(ttl)));
    }

    default:
      // Unreachable: unknown opcodes are rejected at decode with
      // kBadRequest, before Dispatch.
      return ReplyError(out, ErrCode::kBadRequest, "unknown message type");
  }
}

}  // namespace lt
