#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/row_codec.h"
#include "util/coding.h"

namespace lt {

using wire::ErrCode;
using wire::MsgType;

namespace {

// Rows per kQueryChunk frame.
constexpr size_t kChunkRows = 512;

// Bytes one PumpConnection call will read before yielding back to the
// event loop, so a firehosing client cannot starve the other connections.
// Unconsumed bytes stay queued in the transport; the next Wait reports the
// connection ready again immediately.
constexpr size_t kMaxPumpBytes = 256 * 1024;

// Chunks one streaming-query slice emits before yielding the worker, so a
// big scan shares the pool with other connections' requests.
constexpr int kSliceChunks = 4;

// Rows a chunk may *scan* (not return) before the slice re-checks its
// kill switches — cancellation, deadline, quota. Bounds how stale those
// checks can get on a selective scan that matches almost nothing.
constexpr uint64_t kChunkScanCap = 16384;

// Encoded-byte target for one kQueryChunk frame (chunks also cap at
// kChunkRows rows). Shrunk when the query byte budget is tight so the
// budget still fits several chunks.
constexpr size_t kChunkTargetBytes = 64 * 1024;

// When the flushed prefix of an outbound buffer exceeds this, compact.
constexpr size_t kOutbufCompactBytes = 1024 * 1024;

bool GetName(Slice* in, std::string* name) {
  Slice s;
  if (!GetLengthPrefixedSlice(in, &s)) return false;
  *name = s.ToString();
  return true;
}

// Metric-name suffix for each request opcode ("server.op.<name>.micros").
// Also the registry of known request opcodes: a frame whose (normalized)
// type byte has no name here is rejected with kBadRequest, never
// dispatched.
const char* OpName(MsgType type) {
  switch (type) {
    case MsgType::kPing: return "ping";
    case MsgType::kListTables: return "list_tables";
    case MsgType::kGetTable: return "get_table";
    case MsgType::kCreateTable: return "create_table";
    case MsgType::kDropTable: return "drop_table";
    case MsgType::kInsert: return "insert";
    case MsgType::kQuery: return "query";
    case MsgType::kLatestRow: return "latest_row";
    case MsgType::kFlushThrough: return "flush_through";
    case MsgType::kAppendColumn: return "append_column";
    case MsgType::kWidenColumn: return "widen_column";
    case MsgType::kSetTtl: return "set_ttl";
    case MsgType::kStats: return "stats";
    case MsgType::kStatsV2: return "stats_v2";
    case MsgType::kCancel: return "cancel";
    case MsgType::kSetTenant: return "set_tenant";
    case MsgType::kGetShardMap: return "get_shard_map";
    case MsgType::kAssignShard: return "assign_shard";
    case MsgType::kRoutedInsert: return "routed_insert";
    case MsgType::kRoutedQuery: return "routed_query";
    case MsgType::kRoutedCreate: return "routed_create";
    case MsgType::kReplicateRows: return "replicate_rows";
    case MsgType::kShipTablet: return "ship_tablet";
    case MsgType::kTabletSetSync: return "tablet_set_sync";
    default: return nullptr;
  }
}

// Opcodes handled by ServerOptions::extension rather than the core switch.
bool IsClusterOp(MsgType type) {
  switch (type) {
    case MsgType::kGetShardMap:
    case MsgType::kAssignShard:
    case MsgType::kRoutedInsert:
    case MsgType::kRoutedQuery:
    case MsgType::kRoutedCreate:
    case MsgType::kReplicateRows:
    case MsgType::kShipTablet:
    case MsgType::kTabletSetSync:
      return true;
    default:
      return false;
  }
}

}  // namespace

LittleTableServer::LittleTableServer(DB* db, uint16_t port)
    : LittleTableServer(db, [port] {
        ServerOptions o;
        o.port = port;
        return o;
      }()) {}

LittleTableServer::LittleTableServer(DB* db, const ServerOptions& options)
    : db_(db),
      opts_(options),
      idle_clock_(options.clock ? options.clock : SystemClock::Instance()),
      port_(options.port),
      transport_(options.transport ? options.transport
                                   : net::Transport::Tcp()) {
  // Resolve every instrument up front: the serve loop then records into
  // stable pointers with no registry lookups.
  for (int op = 0; op < 256; op++) {
    if (const char* name = OpName(static_cast<MsgType>(op))) {
      op_micros_[op] = metrics_.GetHistogram(std::string("server.op.") + name +
                                             ".micros");
    }
  }
  event_loop_lag_ = metrics_.GetHistogram("server.event_loop.lag_micros");
  run_queue_depth_ = metrics_.GetGauge("server.run_queue_depth");
  workers_busy_ = metrics_.GetGauge("server.workers_busy");
  worker_busy_micros_ = metrics_.GetCounter("server.worker_busy_micros");
  pending_frames_ = metrics_.GetGauge("server.pending_frames");
  connections_ = metrics_.GetCounter("server.connections");
  active_connections_ = metrics_.GetCounter("server.active_connections");
  requests_ = metrics_.GetCounter("server.requests");
  errors_ = metrics_.GetCounter("server.errors");
  idle_disconnects_ = metrics_.GetCounter("server.idle_disconnects");
  busy_rejects_ = metrics_.GetCounter("server.busy_rejects");
  shutdown_rejects_ = metrics_.GetCounter("server.shutdown_rejects");
  inline_pings_ = metrics_.GetCounter("server.inline_pings");
  query_shed_ = metrics_.GetCounter("server.query_shed");
  query_shed_quota_ = metrics_.GetCounter("server.query_shed.quota");
  query_shed_queue_full_ = metrics_.GetCounter("server.query_shed.queue_full");
  query_shed_wait_timeout_ =
      metrics_.GetCounter("server.query_shed.wait_timeout");
  query_deadline_exceeded_ =
      metrics_.GetCounter("server.query_deadline_exceeded");
  query_cancelled_ = metrics_.GetCounter("server.query_cancelled");
  stream_pauses_ = metrics_.GetCounter("server.stream_pauses");
  scans_active_ = metrics_.GetGauge("server.scans_active");
  scans_queued_ = metrics_.GetGauge("server.scans_queued");
  outbuf_bytes_ = metrics_.GetGauge("server.outbuf_bytes");
  queue_wait_micros_ = metrics_.GetHistogram("server.queue_wait_micros");
  stream_peak_bytes_ =
      metrics_.GetHistogram("server.query_stream_peak_bytes");
  admission_ =
      std::make_unique<AdmissionController>(opts_.admission, idle_clock_);
}

LittleTableServer::~LittleTableServer() { Stop(); }

Status LittleTableServer::Start() {
  LT_RETURN_IF_ERROR(transport_->Listen(port_, &listener_));
  port_ = listener_->port();
  LT_RETURN_IF_ERROR(transport_->NewPoller(&poller_));
  size_t n = opts_.worker_threads > 0 ? opts_.worker_threads : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; i++) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  event_thread_ = std::thread([this] { EventLoop(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void LittleTableServer::Stop() {
  if (stop_called_.exchange(true)) return;
  // Phase 1 — drain: requests already received run to completion (the
  // response is written before the request is counted done); any frame
  // arriving meanwhile, including on brand-new connections, is answered
  // with kShuttingDown. Bounded by drain_timeout_ms.
  {
    // The flag is set under drain_mu_, and the event loop checks it and
    // registers each request in one drain_mu_ critical section — so every
    // request either observes draining_ and is rejected, or is already
    // counted in active_requests_ before the wait below reads it. Without
    // that pairing a request could slip between the check and the count
    // and have its connection shut down mid-dispatch.
    std::unique_lock<std::mutex> lock(drain_mu_);
    draining_.store(true);
    // A request counts as finished only once its response bytes left the
    // outbound buffer: the event loop keeps flushing during this phase.
    drain_cv_.wait_for(lock, std::chrono::milliseconds(opts_.drain_timeout_ms),
                       [this] {
                         return active_requests_ == 0 &&
                                unflushed_conns_.load() == 0;
                       });
  }
  // Phase 2 — stop: close the listener, stop the event loop, force
  // remaining connections shut, and join the worker pool.
  stopping_.store(true);
  // Closing the listener wakes a blocked Accept, which then returns non-OK
  // and ends the accept loop.
  if (listener_) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();  // Releases the port.
  if (poller_) poller_->Wakeup();
  if (event_thread_.joinable()) event_thread_.join();
  // The event loop is gone, so conns_ is safe to walk from this thread.
  // Workers may be mid-write on a stalled peer; Shutdown unblocks them
  // (Connection::Shutdown is safe concurrent with in-flight I/O).
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    workers_stop_ = true;
    run_queue_.clear();
    run_queue_depth_->Set(0);
  }
  sched_cv_.notify_all();
  for (auto& [id, cs] : conns_) cs->conn->Shutdown();
  {
    std::lock_guard<std::mutex> lock(accepted_mu_);
    for (auto& c : accepted_) c->Shutdown();
  }
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    parked_.clear();
  }
  active_connections_->Add(-static_cast<int64_t>(conns_.size()));
  conns_.clear();  // Destroys the connections (closes them). Any live
                   // StreamState dies with its connection; QueryStream's
                   // destructor records its stats.
  {
    std::lock_guard<std::mutex> lock(accepted_mu_);
    accepted_.clear();
  }
  conn_count_.store(0);
  pending_frames_->Set(0);  // Any still-queued frames died with conns_.
  unflushed_conns_.store(0);
  outbuf_bytes_->Set(0);
  poller_.reset();
}

void LittleTableServer::AcceptLoop() {
  while (!stopping_.load()) {
    std::unique_ptr<net::Connection> conn;
    if (!listener_->Accept(&conn).ok()) break;
    if (stopping_.load()) break;
    if (opts_.max_connections > 0 &&
        conn_count_.load(std::memory_order_relaxed) >= opts_.max_connections) {
      // Over the cap: tell the client to back off, then close. Written
      // inline from the accept thread — no state is created for a rejected
      // connection. The write deadline is the I/O timeout: a
      // slow-but-healthy client still deserves the full reject frame.
      busy_rejects_->Increment();
      std::string reject;
      ReplyError(&reject, ErrCode::kServerBusy, "server busy: connection cap");
      conn->set_write_timeout_ms(opts_.io_timeout_ms);
      conn->WriteAll(reject.data(), reject.size());
      continue;
    }
    conn_count_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(accepted_mu_);
      accepted_.push_back(std::move(conn));
    }
    poller_->Wakeup();  // The event loop registers it.
  }
}

void LittleTableServer::EventLoop() {
  std::vector<uint64_t> ready;
  while (!stopping_.load()) {
    const Timestamp wait_start = MonotonicMicros();
    Status ws = poller_->Wait(opts_.poll_interval_ms, &ready);
    if (ws.ok() && ready.empty()) {
      // A pure timeout wakeup was *scheduled* for poll_interval_ms from
      // wait_start; anything beyond that is event-loop lag (kernel
      // scheduling delay, or the loop itself running behind). Early
      // returns (I/O ready, Wakeup) are on time by definition and clamp
      // to zero.
      const Timestamp scheduled =
          Timestamp{opts_.poll_interval_ms} * 1000;
      const Timestamp elapsed = MonotonicMicros() - wait_start;
      event_loop_lag_->Record(
          static_cast<uint64_t>(std::max<Timestamp>(0, elapsed - scheduled)));
    }
    if (stopping_.load()) break;
    if (!ws.ok()) {
      // Poll failures are transient (resource pressure); don't spin.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts_.poll_interval_ms));
      continue;
    }
    // Register connections handed off by the accept thread.
    std::deque<std::unique_ptr<net::Connection>> fresh;
    {
      std::lock_guard<std::mutex> lock(accepted_mu_);
      fresh.swap(accepted_);
    }
    for (std::unique_ptr<net::Connection>& c : fresh) {
      auto cs = std::make_shared<ConnState>();
      cs->id = next_conn_id_++;
      cs->conn = std::move(c);
      // Response writes get the I/O deadline so a stalled peer cannot pin
      // a worker forever. Reads are non-blocking (ReadSome) and need none.
      cs->conn->set_write_timeout_ms(opts_.io_timeout_ms);
      cs->last_activity = idle_clock_->Now();
      poller_->Add(cs->conn.get(), cs->id);
      conns_[cs->id] = cs;
      connections_->Increment();
      active_connections_->Add(1);
    }
    // Pump ready connections: read, reassemble frames, enqueue requests.
    for (uint64_t tag : ready) {
      auto it = conns_.find(tag);
      if (it == conns_.end()) continue;
      const std::shared_ptr<ConnState>& cs = it->second;
      {
        std::lock_guard<std::mutex> lock(sched_mu_);
        if (cs->dead) continue;
      }
      if (!PumpConnection(cs)) {
        bool resume = false;
        {
          std::lock_guard<std::mutex> lock(sched_mu_);
          cs->dead = true;
          // Connection-close cancellation: a peer that vanished mid-query
          // aborts the scan instead of letting it run to completion into
          // a buffer nobody will read. A parked stream is re-scheduled so
          // a worker finalizes it (releasing its admission slot).
          if (cs->stream) {
            cs->stream->cancel.store(true);
            if (!cs->running) {
              ScheduleLocked(cs);
              resume = true;
            }
          }
        }
        if (resume) sched_cv_.notify_one();
        // Stop watching; queued responses still flush, then IdleTick (or
        // the finishing worker's wakeup) reaps the connection.
        poller_->Remove(cs->conn.get());
      }
    }
    FlushTick();
    IdleTick();
  }
}

bool LittleTableServer::PumpConnection(const std::shared_ptr<ConnState>& cs) {
  char buf[16384];
  size_t pumped = 0;
  while (pumped < kMaxPumpBytes) {
    size_t got = 0;
    if (!cs->conn->ReadSome(buf, sizeof(buf), &got).ok()) {
      return false;  // EOF or reset; any partial frame in inbuf is dropped.
    }
    if (got == 0) break;  // Drained for now.
    pumped += got;
    // Idle time is measured from the clock at the last received byte —
    // never inferred from poll-slice counts.
    cs->last_activity = idle_clock_->Now();
    cs->inbuf.append(buf, got);
    // Reassemble and hand off every complete frame.
    size_t off = 0;
    bool keep = true;
    while (cs->inbuf.size() - off >= 4) {
      uint32_t len = DecodeFixed32(cs->inbuf.data() + off);
      if (len == 0 || len > wire::kMaxFrameBytes) {
        keep = false;  // Unframeable garbage; drop the connection.
        break;
      }
      if (cs->inbuf.size() - off < 4 + static_cast<size_t>(len)) break;
      std::string payload = cs->inbuf.substr(off + 4, len);
      off += 4 + len;
      if (!HandleFrame(cs, std::move(payload))) {
        keep = false;
        break;
      }
    }
    if (off > 0) cs->inbuf.erase(0, off);
    if (!keep) return false;
  }
  return true;
}

bool LittleTableServer::HandleFrame(const std::shared_ptr<ConnState>& cs,
                                    std::string payload) {
  if (payload.empty()) return false;  // Unreachable: frames have len >= 1.
  // Normalize the opcode byte exactly once. payload[0] is a (possibly
  // signed) char: a frame byte >= 0x80 must become 128..255, not a
  // negative enum value.
  const uint8_t op = static_cast<uint8_t>(payload[0]);
  const bool known = OpName(static_cast<MsgType>(op)) != nullptr;

  Task task;
  bool draining;
  {
    // Reject-or-register, atomically with the drain flag: either this
    // request registers in active_requests_ before Stop() starts waiting
    // (so the drain waits for its response), or it observes draining_ and
    // is rejected — never a half-dispatched request whose connection the
    // "finished" drain shuts down.
    std::lock_guard<std::mutex> lock(drain_mu_);
    draining = draining_.load();
    if (!draining && known) {
      active_requests_++;
      task.registered = true;
    }
  }
  if (draining) {
    // Shutting down: this frame arrived after the drain began, so it is
    // rejected rather than served — the client should reconnect to a
    // healthy server. The reject rides the ordered response path (behind
    // any in-flight responses), then the connection closes.
    shutdown_rejects_->Increment();
    ReplyError(&task.canned, ErrCode::kShuttingDown, "server shutting down");
    EnqueueTask(cs, std::move(task));
    return false;
  }
  requests_->Increment();
  if (!known) {
    // Unknown opcode: answer with kBadRequest instead of dispatching. The
    // framing is intact, so the connection stays usable.
    char hex[8];
    snprintf(hex, sizeof(hex), "0x%02x", op);
    ReplyError(&task.canned, ErrCode::kBadRequest,
               std::string("unknown message type ") + hex);
    EnqueueTask(cs, std::move(task));
    return true;
  }
  if (op == static_cast<uint8_t>(MsgType::kPing)) {
    // Health probes are answered inline from the event loop when the
    // connection has no queued work: a saturated worker pool (or a deep
    // run queue) must not make a healthy node look dead to the
    // coordinator's prober. Writing from here is safe because the FIFO
    // invariant (one worker per connection, front task only) means
    // !running && tasks.empty() ⇒ no worker can be writing to this
    // connection — and the outbound buffer must be empty too, or the
    // inline write would land mid-frame. Pings arriving behind pipelined
    // work still ride the ordered task path so responses stay in order.
    bool idle;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      idle = !cs->running && cs->tasks.empty();
    }
    if (idle) {
      bool wrote_inline = false;
      bool write_ok = true;
      {
        std::lock_guard<std::mutex> lock(cs->out_mu);
        if (cs->out_off == cs->outbuf.size() && !cs->write_failed) {
          // Blocking WriteAll under out_mu is safe here: no tasks ⇒ no
          // worker can contend for this connection's buffer, and every
          // other out_mu user runs on this (the event loop) thread.
          const Timestamp start = MonotonicMicros();
          const std::string resp = wire::Frame(MsgType::kOk, "");
          write_ok = cs->conn->WriteAll(resp.data(), resp.size()).ok();
          if (!write_ok) cs->write_failed = true;
          inline_pings_->Increment();
          if (LatencyHistogram* h = op_micros_[op]) {
            h->Record(static_cast<uint64_t>(MonotonicMicros() - start));
          }
          wrote_inline = true;
        }
      }
      if (wrote_inline) {
        if (task.registered) {
          {
            std::lock_guard<std::mutex> lock(drain_mu_);
            active_requests_--;
          }
          drain_cv_.notify_all();
        }
        return write_ok;
      }
    }
  }
  if (op == static_cast<uint8_t>(MsgType::kCancel)) {
    // Cancellation is out-of-band: it takes effect at decode time, not
    // behind the pipeline — aborting a stream the pipeline is stuck
    // behind is the whole point. A parked stream (admission queue or
    // backpressure) is re-scheduled so a worker slice finalizes it.
    bool resume = false;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (cs->stream) {
        cs->stream->cancel.store(true);
        if (!cs->running) {
          ScheduleLocked(cs);
          resume = true;
        }
      }
    }
    if (resume) sched_cv_.notify_one();
    // The acknowledgment rides the ordered response path, so it follows
    // the cancelled query's terminal frame. With no query in flight the
    // cancel is a no-op kOk.
    task.canned = wire::Frame(MsgType::kOk, "");
    EnqueueTask(cs, std::move(task));
    return true;
  }
  task.payload = std::move(payload);
  EnqueueTask(cs, std::move(task));
  return true;
}

void LittleTableServer::ScheduleLocked(const std::shared_ptr<ConnState>& cs) {
  // Invariant: a connection appears in run_queue_ at most once
  // (queued_run), and only when it has work and no worker on it. Parked
  // streams make spurious schedules possible (a resume racing a cancel);
  // the slice re-checks its state and re-parks, so they are harmless.
  if (cs->queued_run || cs->running || cs->tasks.empty() || workers_stop_) {
    return;
  }
  run_queue_.push_back(cs);
  cs->queued_run = true;
  run_queue_depth_->Set(static_cast<int64_t>(run_queue_.size()));
}

void LittleTableServer::EnqueueTask(const std::shared_ptr<ConnState>& cs,
                                    Task task) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    cs->tasks.push_back(std::move(task));
    pending_frames_->Increment();
    // Only the empty→nonempty transition schedules: a deeper queue means
    // the front task is running, queued, or parked (a parked stream must
    // not be resumed by unrelated frames arriving behind it).
    if (cs->tasks.size() == 1) {
      ScheduleLocked(cs);
      schedule = cs->queued_run;
    }
  }
  if (schedule) sched_cv_.notify_one();
}

void LittleTableServer::IdleTick() {
  const Timestamp now = idle_clock_->Now();
  bool notify_sched = false;
  // Shed admission waiters whose queue-wait deadline passed: each parked
  // connection is re-scheduled and a worker slice answers it kServerBusy —
  // an explicit reply, never a silent drop.
  {
    std::vector<AdmissionController::Departure> expired;
    admission_->ExpireWaiters(&expired);
    if (!expired.empty()) {
      std::lock_guard<std::mutex> lock(sched_mu_);
      for (const AdmissionController::Departure& d : expired) {
        auto it = parked_.find(d.id);
        if (it == parked_.end()) continue;
        std::shared_ptr<ConnState> cs = it->second;
        parked_.erase(it);
        if (cs->stream && cs->stream->queued) {
          cs->stream->queued = false;
          cs->stream->expired = true;
          cs->stream->queue_wait_micros = d.waited_micros;
          ScheduleLocked(cs);
          notify_sched = true;
        }
      }
    }
    if (!expired.empty()) UpdateScanGauges();
  }
  for (auto it = conns_.begin(); it != conns_.end();) {
    const std::shared_ptr<ConnState>& cs = it->second;
    bool reap = false;
    bool stalled = false;
    bool flushed;
    {
      std::lock_guard<std::mutex> lock(cs->out_mu);
      const size_t pending = cs->outbuf.size() - cs->out_off;
      if (pending > 0 && !cs->write_failed && opts_.io_timeout_ms > 0 &&
          now - cs->last_out_progress >=
              Timestamp{opts_.io_timeout_ms} * 1000) {
        // The peer took no response bytes for a full I/O timeout: give up
        // on the connection rather than hold its buffered responses (and
        // any parked stream's slot) forever.
        cs->write_failed = true;
        cs->outbuf.clear();
        cs->out_off = 0;
        if (cs->out_counted) {
          cs->out_counted = false;
          unflushed_conns_.fetch_sub(1);
        }
        stalled = true;
      }
      flushed = cs->write_failed || cs->outbuf.size() == cs->out_off;
    }
    if (stalled && draining_.load()) drain_cv_.notify_all();
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (stalled) cs->dead = true;
      // A dead connection with a stream still attached: make sure a
      // worker finalizes it (releasing its admission slot) — the cancel
      // may have been set after the stream parked.
      if (cs->dead && cs->stream && !cs->running) {
        cs->stream->cancel.store(true);
        ScheduleLocked(cs);
        notify_sched = true;
      }
      const bool busy = cs->running || !cs->tasks.empty();
      if (cs->dead) {
        // Tasks done and responses flushed (or unflushable): safe to
        // destroy.
        reap = !busy && flushed;
      } else if (opts_.idle_timeout_ms > 0 && !busy &&
                 now - cs->last_activity >=
                     Timestamp{opts_.idle_timeout_ms} * 1000) {
        idle_disconnects_->Increment();
        cs->dead = true;
        reap = flushed;
      }
    }
    if (reap) {
      poller_->Remove(cs->conn.get());
      active_connections_->Add(-1);
      conn_count_.fetch_sub(1, std::memory_order_relaxed);
      it = conns_.erase(it);  // Last owner (bar a worker) closes the conn.
    } else {
      ++it;
    }
  }
  if (notify_sched) sched_cv_.notify_all();
}

void LittleTableServer::TryFlushLocked(ConnState* cs) {
  while (cs->out_off < cs->outbuf.size()) {
    size_t wrote = 0;
    Status s = cs->conn->WriteSome(cs->outbuf.data() + cs->out_off,
                                   cs->outbuf.size() - cs->out_off, &wrote);
    if (!s.ok()) {
      cs->write_failed = true;
      cs->outbuf.clear();
      cs->out_off = 0;
      break;
    }
    if (wrote == 0) break;  // Transport full; poll for writability.
    cs->out_off += wrote;
    cs->last_out_progress = idle_clock_->Now();
  }
  if (cs->out_off == cs->outbuf.size()) {
    cs->outbuf.clear();
    cs->out_off = 0;
  } else if (cs->out_off > kOutbufCompactBytes) {
    cs->outbuf.erase(0, cs->out_off);
    cs->out_off = 0;
  }
  if (cs->outbuf.empty() && cs->out_counted) {
    cs->out_counted = false;
    unflushed_conns_.fetch_sub(1);
  }
}

void LittleTableServer::AppendOutput(const std::shared_ptr<ConnState>& cs,
                                     const std::string& data) {
  if (data.empty()) return;
  bool leftover;
  {
    std::lock_guard<std::mutex> lock(cs->out_mu);
    if (cs->write_failed) return;  // The peer will never see it anyway.
    if (cs->outbuf.empty()) cs->last_out_progress = idle_clock_->Now();
    cs->outbuf.append(data);
    if (!cs->out_counted) {
      cs->out_counted = true;
      unflushed_conns_.fetch_add(1);
    }
    // Opportunistic flush: on a draining peer the whole response usually
    // leaves here and the event loop never gets involved.
    TryFlushLocked(cs.get());
    leftover = !cs->write_failed && cs->out_off < cs->outbuf.size();
  }
  if (leftover) {
    // The event loop arms write interest and finishes the flush.
    if (!stopping_.load()) poller_->Wakeup();
  } else if (draining_.load()) {
    drain_cv_.notify_all();
  }
}

void LittleTableServer::FlushTick() {
  int64_t total_unflushed = 0;
  bool notify_sched = false;
  for (auto& [id, cs] : conns_) {
    size_t pending;
    bool failed;
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(cs->out_mu);
      const bool had = cs->out_off < cs->outbuf.size();
      if (had && !cs->write_failed) {
        TryFlushLocked(cs.get());
        drained = had && cs->outbuf.empty();
      }
      pending = cs->outbuf.size() - cs->out_off;
      failed = cs->write_failed;
      total_unflushed += static_cast<int64_t>(pending);
    }
    const bool want = pending > 0 && !failed;
    if (want != cs->want_write) {
      poller_->SetWritable(cs->conn.get(), want);
      cs->want_write = want;
    }
    if (drained && draining_.load()) drain_cv_.notify_all();
    // Resume a stream parked on backpressure once the buffer drains to
    // the low-water mark (half the budget) — or unconditionally on write
    // failure/cancel so the worker can finalize it.
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (cs->stream && cs->stream->paused && !cs->running) {
        const size_t low = opts_.query_budget_bytes / 2;
        if (failed || pending <= low || cs->stream->cancel.load()) {
          cs->stream->paused = false;
          ScheduleLocked(cs);
          notify_sched = true;
        }
      }
    }
  }
  outbuf_bytes_->Set(total_unflushed);
  if (notify_sched) sched_cv_.notify_all();
}

void LittleTableServer::UpdateScanGauges() {
  scans_active_->Set(static_cast<int64_t>(admission_->active_scans()));
  scans_queued_->Set(static_cast<int64_t>(admission_->queued_scans()));
}

void LittleTableServer::ResumeGranted(
    const std::vector<AdmissionController::Departure>& g) {
  if (g.empty()) return;
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    for (const AdmissionController::Departure& d : g) {
      auto it = parked_.find(d.id);
      if (it == parked_.end()) continue;  // Cancelled/died; slot was or
                                          // will be released by that path.
      std::shared_ptr<ConnState> cs = it->second;
      parked_.erase(it);
      if (cs->stream && cs->stream->queued) {
        cs->stream->queued = false;
        cs->stream->admitted = true;
        cs->stream->queue_wait_micros = d.waited_micros;
        ScheduleLocked(cs);
        notify = true;
      }
    }
  }
  if (notify) sched_cv_.notify_all();
}

LittleTableServer::SliceResult LittleTableServer::ExecuteQuerySlice(
    const std::shared_ptr<ConnState>& cs, Task& task) {
  const uint8_t kQueryOp = static_cast<uint8_t>(MsgType::kQuery);
  StreamState* st;
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    st = cs->stream.get();
  }
  // The pointer is stable unlocked: stream state is installed and torn
  // down only by slices of this connection's front task, and at most one
  // worker runs that at a time.
  if (st == nullptr) {
    // First slice: parse the request, then pass admission.
    const Timestamp op_start = MonotonicMicros();
    auto reply_now = [&](ErrCode code, const std::string& msg) {
      std::string out;
      ReplyError(&out, code, msg);
      AppendOutput(cs, out);
      if (LatencyHistogram* h = op_micros_[kQueryOp]) {
        h->Record(static_cast<uint64_t>(MonotonicMicros() - op_start));
      }
      return SliceResult::kDone;
    };
    Slice body(task.payload.data() + 1, task.payload.size() - 1);
    std::string name;
    if (!GetName(&body, &name)) {
      return reply_now(ErrCode::kInvalidArgument, "bad request");
    }
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) {
      return reply_now(ErrCode::kNotFound, "no such table: " + name);
    }
    std::shared_ptr<const Schema> schema = table->schema();
    uint32_t version = 0;
    QueryBounds bounds;
    if (!GetVarint32(&body, &version) || version != schema->version() ||
        !wire::DecodeBounds(&body, *schema, &bounds).ok()) {
      return reply_now(ErrCode::kSchemaChanged,
                       "schema changed or bad bounds");
    }
    // Slot exemption is judged on the limit the CLIENT asked for, before
    // the server's row cap rewrites it: a bounded point lookup should not
    // queue behind firehose scans, but an "everything" request is a scan
    // no matter how the cap truncates it.
    const bool slot_exempt =
        opts_.admission.small_query_row_limit > 0 && bounds.limit > 0 &&
        bounds.limit <= opts_.admission.small_query_row_limit;
    // §3.5: the server applies its own row cap even to an "everything"
    // query; truncation surfaces as more-available on the final chunk, so
    // paging clients continue past it transparently.
    if (opts_.default_query_row_cap > 0 &&
        (bounds.limit == 0 || bounds.limit > opts_.default_query_row_cap)) {
      bounds.limit = opts_.default_query_row_cap;
    }
    AdmissionController::Decision d;
    if (slot_exempt) {
      d = admission_->ChargeQuery(cs->tenant)
              ? AdmissionController::Decision::kAdmitted
              : AdmissionController::Decision::kShedQuota;
    } else {
      d = admission_->Request(cs->id, cs->tenant);
      UpdateScanGauges();
    }
    if (d == AdmissionController::Decision::kShedQuota) {
      query_shed_->Increment();
      query_shed_quota_->Increment();
      return reply_now(ErrCode::kResourceExhausted, "tenant quota exceeded");
    }
    if (d == AdmissionController::Decision::kShedQueueFull) {
      query_shed_->Increment();
      query_shed_queue_full_->Increment();
      return reply_now(ErrCode::kResourceExhausted, "admission queue full");
    }
    auto stream = std::make_unique<StreamState>();
    stream->table = std::move(table);
    stream->schema = std::move(schema);
    stream->bounds = bounds;
    stream->tenant = cs->tenant;
    stream->slot_exempt = slot_exempt;
    stream->op_start = op_start;
    if (opts_.query_deadline_ms > 0) {
      stream->deadline =
          idle_clock_->Now() + Timestamp{opts_.query_deadline_ms} * 1000;
    }
    std::lock_guard<std::mutex> lock(sched_mu_);
    st = stream.get();
    cs->stream = std::move(stream);
    if (d == AdmissionController::Decision::kQueued) {
      st->queued = true;
      parked_[cs->id] = cs;
      return SliceResult::kParked;  // A Release grant or expiry resumes us.
    }
    st->admitted = true;
  }

  // Tear-down common to every way a stream ends: record, append the
  // terminal frame (empty when silence is the answer — dead peer),
  // release the slot, detach. Stats are recorded BEFORE the terminal
  // frame is appended: once the client can observe the response, the
  // table's query counters must already reflect it (the deterministic
  // chaos sampler depends on that ordering).
  auto finalize = [&](bool release_slot, const std::string& terminal) {
    if (st->qs) st->qs->Finish();
    if (!terminal.empty()) AppendOutput(cs, terminal);
    if (release_slot && !st->slot_exempt) {
      std::vector<AdmissionController::Departure> granted;
      admission_->Release(&granted);
      ResumeGranted(granted);
      UpdateScanGauges();
    }
    if (st->queue_wait_micros >= 0) {
      queue_wait_micros_->Record(static_cast<uint64_t>(st->queue_wait_micros));
    }
    if (st->peak_bytes > 0) {
      stream_peak_bytes_->Record(static_cast<uint64_t>(st->peak_bytes));
    }
    if (LatencyHistogram* h = op_micros_[kQueryOp]) {
      h->Record(static_cast<uint64_t>(MonotonicMicros() - st->op_start));
    }
    std::lock_guard<std::mutex> lock(sched_mu_);
    cs->stream.reset();
    return SliceResult::kDone;
  };
  auto error_frame = [&](ErrCode code, const std::string& msg) {
    std::string out;
    ReplyError(&out, code, msg);
    return out;
  };

  bool queued, expired, admitted;
  const bool cancelled = st->cancel.load();
  bool wfail;
  {
    std::lock_guard<std::mutex> lock(cs->out_mu);
    wfail = cs->write_failed;
  }
  {
    std::lock_guard<std::mutex> lock(sched_mu_);
    st->paused = false;  // If we were parked on backpressure, no longer.
    queued = st->queued;
    expired = st->expired;
    admitted = st->admitted;
    if (queued && (cancelled || wfail)) {
      // Claim the waiter under sched_mu_ so a concurrent grant cannot
      // also act on it; the controller race is settled below.
      st->queued = false;
      parked_.erase(cs->id);
    }
  }
  if (queued && (cancelled || wfail)) {
    // A false CancelWaiter means a grant raced us out of the queue — the
    // slot is ours now and must be released on the way out.
    admitted = !admission_->CancelWaiter(cs->id);
    UpdateScanGauges();
    queued = false;
  }
  if (wfail) {
    // Peer unreachable: nothing to say, just unwind.
    return finalize(admitted, "");
  }
  if (expired) {
    query_shed_->Increment();
    query_shed_wait_timeout_->Increment();
    return finalize(admitted,
                    error_frame(ErrCode::kServerBusy,
                                "timed out waiting for a scan slot"));
  }
  if (cancelled) {
    query_cancelled_->Increment();
    return finalize(admitted,
                    error_frame(ErrCode::kCancelled, "query cancelled"));
  }
  if (queued) return SliceResult::kParked;  // Spurious resume; keep waiting.

  // Admitted: open the stream lazily so queued scans pin no tablet
  // snapshot while waiting.
  if (st->qs == nullptr) {
    Status s = st->table->NewQueryStream(st->bounds, &st->qs);
    if (!s.ok()) {
      std::string out;
      ReplyStatus(&out, s);
      return finalize(true, out);
    }
  }
  const size_t budget = opts_.query_budget_bytes;
  const size_t chunk_target =
      budget > 0
          ? std::min(kChunkTargetBytes, std::max<size_t>(1024, budget / 4))
          : kChunkTargetBytes;
  for (int chunk_i = 0; chunk_i < kSliceChunks; chunk_i++) {
    // Kill switches, re-checked between chunks inside the scan loop.
    if (st->cancel.load()) {
      query_cancelled_->Increment();
      return finalize(true,
                      error_frame(ErrCode::kCancelled, "query cancelled"));
    }
    {
      std::lock_guard<std::mutex> lock(cs->out_mu);
      wfail = cs->write_failed;
    }
    if (wfail) return finalize(true, "");
    if (st->deadline > 0 && idle_clock_->Now() >= st->deadline) {
      query_deadline_exceeded_->Increment();
      query_shed_->Increment();
      return finalize(true, error_frame(ErrCode::kResourceExhausted,
                                        "query deadline exceeded"));
    }
    // Backpressure: never build a chunk the budget cannot hold on top of
    // what the peer has not drained. Park — costing no worker thread —
    // and let FlushTick resume us at the low-water mark.
    size_t out_pending;
    {
      std::lock_guard<std::mutex> lock(cs->out_mu);
      out_pending = cs->outbuf.size() - cs->out_off;
    }
    // Two chunk-targets of headroom: the chunk about to be built may
    // overshoot its target by one row, and the accounted peak
    // (out_pending + frame) must stay within the budget, not one chunk
    // past it. A scan with nothing pending always proceeds — with a
    // budget smaller than two chunks, parking at zero pending would
    // pause/resume forever without emitting a byte.
    if (budget > 0 && out_pending > 0 &&
        out_pending + 2 * chunk_target > budget) {
      stream_pauses_->Increment();
      {
        std::lock_guard<std::mutex> lock(sched_mu_);
        st->paused = true;
      }
      // Poke the event loop so write interest is armed promptly.
      if (!stopping_.load()) poller_->Wakeup();
      return SliceResult::kParked;
    }
    // Pull one chunk's rows.
    std::string rowbuf;
    uint32_t n = 0;
    bool final = false;
    const uint64_t scan_start = st->qs->rows_scanned();
    Status s = Status::OK();
    Row row;
    while (n < kChunkRows && rowbuf.size() < chunk_target) {
      const uint64_t scanned_here = st->qs->rows_scanned() - scan_start;
      if (scanned_here >= kChunkScanCap) break;
      bool have = false, exhausted = false;
      s = st->qs->Next(kChunkScanCap - scanned_here, &row, &have, &exhausted);
      if (!s.ok()) break;
      if (have) {
        EncodeRow(&rowbuf, *st->schema, row);
        n++;
      } else if (exhausted) {
        final = true;
        break;
      } else {
        break;  // Scan-budget yield: recheck the kill switches.
      }
    }
    // Bill the newly scanned rows to the tenant's row bucket; a scan that
    // outran its tenant's budget is shed mid-stream.
    const uint64_t scanned_total = st->qs->rows_scanned();
    const uint64_t delta = scanned_total - st->charged_rows;
    st->charged_rows = scanned_total;
    if (delta > 0 && !admission_->ChargeScannedRows(st->tenant, delta)) {
      query_shed_->Increment();
      query_shed_quota_->Increment();
      return finalize(true, error_frame(ErrCode::kResourceExhausted,
                                        "scanned-rows quota exceeded"));
    }
    if (!s.ok()) {
      std::string out;
      ReplyStatus(&out, s);
      return finalize(true, out);
    }
    if (n > 0 || final) {
      uint8_t flags = 0;
      if (final) {
        flags |= wire::kChunkFinal;
        if (st->qs->more_available()) flags |= wire::kChunkMoreAvailable;
      }
      std::string chunk;
      chunk.push_back(static_cast<char>(flags));
      PutVarint32(&chunk, st->schema->version());
      PutVarint32(&chunk, n);
      chunk += rowbuf;
      const std::string frame = wire::Frame(MsgType::kQueryChunk, chunk);
      // Accounted memory this query pins at its worst moment: undrained
      // earlier chunks plus the frame about to be appended. Measured
      // before the flush so the number is budget-vs-gate, not peer speed.
      st->peak_bytes = std::max(st->peak_bytes, out_pending + frame.size());
      // The final chunk rides through finalize so table stats land before
      // the client can observe the end of the stream.
      if (final) return finalize(true, frame);
      AppendOutput(cs, frame);
    }
  }
  return SliceResult::kYield;  // Share the pool with other connections.
}

void LittleTableServer::WorkerLoop() {
  while (true) {
    std::shared_ptr<ConnState> cs;
    {
      std::unique_lock<std::mutex> lock(sched_mu_);
      sched_cv_.wait(lock,
                     [this] { return workers_stop_ || !run_queue_.empty(); });
      if (workers_stop_) return;
      cs = std::move(run_queue_.front());
      run_queue_.pop_front();
      run_queue_depth_->Set(static_cast<int64_t>(run_queue_.size()));
      cs->queued_run = false;
      if (cs->tasks.empty()) continue;  // Spurious resume; nothing to run.
      cs->running = true;
      workers_busy_->Increment();
    }
    const Timestamp busy_start = MonotonicMicros();
    // Only this worker touches the front task while running is set, and
    // the event loop only push_backs (which never invalidates deque
    // references), so the reference is stable without the lock.
    Task& task = cs->tasks.front();
    SliceResult sr = SliceResult::kDone;
    if (!task.canned.empty()) {
      AppendOutput(cs, task.canned);
    } else {
      const uint8_t op = static_cast<uint8_t>(task.payload[0]);
      if (op == static_cast<uint8_t>(MsgType::kQuery) && db_ != nullptr) {
        // Direct queries stream: executed in bounded slices under the
        // admission controller and the per-query byte budget instead of
        // materializing the whole result.
        sr = ExecuteQuerySlice(cs, task);
      } else if (op == static_cast<uint8_t>(MsgType::kSetTenant)) {
        // Binds the connection to a tenant (ConfigStore network id) for
        // quota accounting. Handled here rather than in Dispatch because
        // it addresses the connection, not the database.
        Slice body(task.payload.data() + 1, task.payload.size() - 1);
        const Timestamp start = MonotonicMicros();
        uint64_t network_id = 0;
        std::string out;
        if (!GetVarint64(&body, &network_id)) {
          ReplyError(&out, ErrCode::kInvalidArgument, "bad request");
        } else {
          cs->tenant = static_cast<int64_t>(network_id);
          out = wire::Frame(MsgType::kOk, "");
        }
        if (LatencyHistogram* h = op_micros_[op]) {
          h->Record(static_cast<uint64_t>(MonotonicMicros() - start));
        }
        AppendOutput(cs, out);
      } else {
        Slice body(task.payload.data() + 1, task.payload.size() - 1);
        std::string response;
        const Timestamp start = MonotonicMicros();
        Dispatch(static_cast<MsgType>(op), body, &response);
        if (LatencyHistogram* h = op_micros_[op]) {
          h->Record(static_cast<uint64_t>(MonotonicMicros() - start));
        }
        AppendOutput(cs, response);
      }
    }
    // Responses leave through the outbound buffer (AppendOutput), so a
    // stalled peer parks bytes, never this worker. The drain still waits
    // for the client to be able to read its answer: unflushed_conns_
    // stays nonzero until the buffer empties.
    bool write_ok;
    {
      std::lock_guard<std::mutex> lock(cs->out_mu);
      write_ok = !cs->write_failed;
    }
    const bool was_registered = sr == SliceResult::kDone && task.registered;
    int dropped_registered = 0;
    bool conn_finished = false;
    {
      std::lock_guard<std::mutex> lock(sched_mu_);
      if (sr == SliceResult::kDone) {
        cs->tasks.pop_front();
        pending_frames_->Decrement();
      }
      cs->running = false;
      workers_busy_->Decrement();
      if (!write_ok && sr == SliceResult::kDone) {
        // The peer can't receive responses; abandon the rest of the
        // pipeline but give the drain back their registrations. (A
        // streaming slice that saw the failure has already finalized, so
        // no stream state is dropped here.)
        cs->dead = true;
        for (const Task& t : cs->tasks) {
          if (t.registered) dropped_registered++;
        }
        pending_frames_->Add(-static_cast<int64_t>(cs->tasks.size()));
        cs->tasks.clear();
      }
      // kDone with tasks left, or kYield (stream wants the CPU back):
      // re-enter the run queue. kParked waits for its resume event.
      if (sr != SliceResult::kParked) {
        ScheduleLocked(cs);
        if (cs->queued_run) sched_cv_.notify_one();
      }
      conn_finished = cs->dead && cs->tasks.empty();
    }
    worker_busy_micros_->Add(
        static_cast<int64_t>(MonotonicMicros() - busy_start));
    if (was_registered || dropped_registered > 0) {
      {
        std::lock_guard<std::mutex> lock(drain_mu_);
        active_requests_ -= (was_registered ? 1 : 0) + dropped_registered;
      }
      drain_cv_.notify_all();
    }
    // A dead connection with a drained pipeline is ready to reap; poke the
    // event loop rather than waiting out its poll slice.
    if (conn_finished && !stopping_.load()) poller_->Wakeup();
  }
}

void LittleTableServer::ReplyError(std::string* out, ErrCode code,
                                   const std::string& message) {
  errors_->Increment();
  std::string body;
  body.push_back(static_cast<char>(code));
  PutLengthPrefixedSlice(&body, message);
  *out += wire::Frame(MsgType::kError, body);
}

void LittleTableServer::ReplyStatus(std::string* out, const Status& s) {
  if (s.ok()) {
    *out += wire::Frame(MsgType::kOk, "");
  } else {
    ReplyError(out, wire::CodeForStatus(s), s.message());
  }
}

Status LittleTableServer::CollectCounters(
    const std::string& name,
    std::vector<std::pair<std::string, uint64_t>>* out) {
  if (db_ != nullptr) {
    if (const std::shared_ptr<Cache>& cache = db_->block_cache()) {
      Cache::Stats cs = cache->GetStats();
      out->emplace_back("cache.hits", cs.hits);
      out->emplace_back("cache.misses", cs.misses);
      out->emplace_back("cache.inserts", cs.inserts);
      out->emplace_back("cache.evictions", cs.evictions);
      out->emplace_back("cache.charge_bytes", cs.charge);
      out->emplace_back("cache.capacity_bytes", cs.capacity);
    }
  }
  if (!name.empty()) {
    if (db_ == nullptr) return Status::NotFound("no such table: " + name);
    std::shared_ptr<Table> table = db_->GetTable(name);
    if (!table) return Status::NotFound("no such table: " + name);
    // The canonical export list lives with the counters themselves
    // (TableStats::ForEachCounter), so a counter added there shows up here,
    // in kStatsV2, in Prometheus text, and in the metrics sampler at once.
    table->stats().ForEachCounter([&](const char* key, uint64_t v) {
      out->emplace_back(key, v);
    });
  }
  return Status::OK();
}

void LittleTableServer::Dispatch(MsgType type, Slice body, std::string* out) {
  if (IsClusterOp(type)) {
    // Cluster opcodes belong to the extension (coordinator or replica
    // agent); the core server knows only that they exist, so that they get
    // latency histograms and pass the known-opcode gate.
    if (opts_.extension) {
      opts_.extension(type, body, out);
    } else {
      ReplyError(out, ErrCode::kBadRequest,
                 "cluster opcode not supported here");
    }
    return;
  }
  if (db_ == nullptr && type != MsgType::kPing && type != MsgType::kStats &&
      type != MsgType::kStatsV2) {
    // Pure-extension server (the coordinator): health checks and
    // server-wide stats work, everything table- or db-shaped does not.
    return ReplyError(out, ErrCode::kInvalidArgument,
                      "server has no database attached");
  }
  switch (type) {
    case MsgType::kPing:
      *out += wire::Frame(MsgType::kOk, "");
      return;

    case MsgType::kListTables: {
      std::string resp;
      std::vector<std::string> names = db_->ListTables();
      PutVarint32(&resp, static_cast<uint32_t>(names.size()));
      for (const std::string& n : names) PutLengthPrefixedSlice(&resp, n);
      *out += wire::Frame(MsgType::kTableList, resp);
      return;
    }

    case MsgType::kGetTable: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::shared_ptr<Table> table = db_->GetTable(name);
      if (!table) {
        return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
      }
      std::string resp;
      table->schema()->EncodeTo(&resp);
      PutVarint64(&resp, static_cast<uint64_t>(table->ttl()));
      *out += wire::Frame(MsgType::kTableInfo, resp);
      return;
    }

    case MsgType::kCreateTable: {
      std::string name;
      Schema schema;
      uint64_t ttl;
      if (!GetName(&body, &name) ||
          !Schema::DecodeFrom(&body, &schema).ok() ||
          !GetVarint64(&body, &ttl)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      TableOptions opts = db_->options().table_defaults;
      opts.ttl = static_cast<Timestamp>(ttl);
      return ReplyStatus(out, db_->CreateTable(name, schema, &opts));
    }

    case MsgType::kDropTable: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, db_->DropTable(name));
    }

    // Handled here rather than with the table-addressed requests below
    // because an empty name is legal: it asks for server-wide counters
    // (today, the shared block cache) without any table's.
    case MsgType::kStats: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::vector<std::pair<std::string, uint64_t>> entries;
      Status s = CollectCounters(name, &entries);
      if (!s.ok()) return ReplyStatus(out, s);
      std::string resp;
      PutVarint32(&resp, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, value] : entries) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, value);
      }
      *out += wire::Frame(MsgType::kStatsResult, resp);
      return;
    }

    case MsgType::kStatsV2: {
      std::string name;
      if (!GetName(&body, &name)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      std::vector<std::pair<std::string, uint64_t>> entries;
      Status s = CollectCounters(name, &entries);
      if (!s.ok()) return ReplyStatus(out, s);
      for (const auto& [key, value] : metrics_.CounterValues()) {
        entries.emplace_back(key, static_cast<uint64_t>(value));
      }
      // Gauges ride the counter entries: same (name, value) shape on the
      // wire, so pre-gauge clients parse the reply unchanged.
      for (const auto& [key, value] : metrics_.GaugeValues()) {
        entries.emplace_back(key, static_cast<uint64_t>(value));
      }

      // Histograms: the server's per-opcode distributions, plus the
      // table's operation latencies when a table was named. Never-recorded
      // histograms are omitted so the reply stays proportional to actual
      // traffic.
      std::vector<std::pair<std::string, HistogramSnapshot>> hists;
      for (auto& [key, snap] : metrics_.HistogramSnapshots()) {
        if (snap.count > 0) hists.emplace_back(key, std::move(snap));
      }
      if (!name.empty()) {
        std::shared_ptr<Table> table = db_->GetTable(name);
        if (!table) {
          return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
        }
        table->stats().ForEachHistogram(
            [&](const char* key, const LatencyHistogram& h) {
              HistogramSnapshot snap = h.Snapshot();
              if (snap.count > 0) hists.emplace_back(key, std::move(snap));
            });
      }

      std::string resp;
      PutVarint32(&resp, static_cast<uint32_t>(entries.size()));
      for (const auto& [key, value] : entries) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, value);
      }
      PutVarint32(&resp, static_cast<uint32_t>(hists.size()));
      for (const auto& [key, snap] : hists) {
        PutLengthPrefixedSlice(&resp, key);
        PutVarint64(&resp, snap.count);
        PutVarint64(&resp, snap.P50());
        PutVarint64(&resp, snap.P90());
        PutVarint64(&resp, snap.P99());
        PutVarint64(&resp, snap.P999());
        PutVarint64(&resp, snap.max);
      }
      *out += wire::Frame(MsgType::kStatsV2Result, resp);
      return;
    }

    default:
      break;
  }

  // All remaining requests address a table and carry its name first.
  std::string name;
  if (!GetName(&body, &name)) {
    return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
  }
  std::shared_ptr<Table> table = db_->GetTable(name);
  if (!table) {
    return ReplyError(out, ErrCode::kNotFound, "no such table: " + name);
  }
  std::shared_ptr<const Schema> schema = table->schema();

  // Requests encoded against a schema check the version (§3.5 evolutions
  // can land between a client's schema fetch and its next request).
  auto check_version = [&](Slice* in) -> bool {
    uint32_t version;
    if (!GetVarint32(in, &version)) return false;
    return version == schema->version();
  };

  switch (type) {
    case MsgType::kInsert: {
      uint32_t version;
      if (!GetVarint32(&body, &version)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      if (version != schema->version()) {
        return ReplyError(out, ErrCode::kSchemaChanged, "schema changed");
      }
      uint32_t count;
      if (!GetVarint32(&body, &count) || count > 10u * 1000 * 1000) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad row count");
      }
      std::vector<Row> rows;
      rows.reserve(count);
      const Timestamp now = db_->clock()->Now();
      for (uint32_t i = 0; i < count; i++) {
        Row row;
        if (!DecodeRow(&body, *schema, &row).ok()) {
          return ReplyError(out, ErrCode::kInvalidArgument, "bad row");
        }
        // A client may omit a row's timestamp entirely, in which case the
        // server sets it to the current time (§3.1).
        if (row[schema->ts_index()].AsInt() == wire::kOmittedTimestamp) {
          row[schema->ts_index()] = Value::Ts(now);
        }
        rows.push_back(std::move(row));
      }
      // Concurrent inserts from other connections' workers group-commit
      // inside InsertBatch (one critical section, statuses fanned out).
      return ReplyStatus(out, table->InsertBatch(rows));
    }

    case MsgType::kQuery: {
      QueryBounds bounds;
      if (!check_version(&body) ||
          !wire::DecodeBounds(&body, *schema, &bounds).ok()) {
        return ReplyError(out, ErrCode::kSchemaChanged,
                          "schema changed or bad bounds");
      }
      // Same server-side row cap as the streaming path (§3.5), so routed
      // queries delegated through Handle() observe identical limits.
      if (opts_.default_query_row_cap > 0 &&
          (bounds.limit == 0 || bounds.limit > opts_.default_query_row_cap)) {
        bounds.limit = opts_.default_query_row_cap;
      }
      QueryResult result;
      Status s = table->Query(bounds, &result);
      if (!s.ok()) return ReplyStatus(out, s);
      // Stream rows in chunks; the last chunk carries the flags.
      size_t sent = 0;
      do {
        size_t n = std::min(kChunkRows, result.rows.size() - sent);
        bool final = sent + n == result.rows.size();
        std::string chunk;
        uint8_t flags = 0;
        if (final) flags |= wire::kChunkFinal;
        if (final && result.more_available) flags |= wire::kChunkMoreAvailable;
        chunk.push_back(static_cast<char>(flags));
        PutVarint32(&chunk, schema->version());
        PutVarint32(&chunk, static_cast<uint32_t>(n));
        for (size_t i = 0; i < n; i++) {
          EncodeRow(&chunk, *schema, result.rows[sent + i]);
        }
        *out += wire::Frame(MsgType::kQueryChunk, chunk);
        sent += n;
      } while (sent < result.rows.size());
      return;
    }

    case MsgType::kLatestRow: {
      Key prefix;
      if (!check_version(&body) ||
          !wire::DecodeKeyPrefix(&body, *schema, &prefix).ok()) {
        return ReplyError(out, ErrCode::kSchemaChanged,
                          "schema changed or bad prefix");
      }
      Row row;
      bool found = false;
      Status s = table->LatestRowForPrefix(prefix, &row, &found);
      if (!s.ok()) return ReplyStatus(out, s);
      std::string resp;
      resp.push_back(found ? 1 : 0);
      PutVarint32(&resp, schema->version());
      if (found) EncodeRow(&resp, *schema, row);
      *out += wire::Frame(MsgType::kRowResult, resp);
      return;
    }

    case MsgType::kFlushThrough: {
      uint64_t zz_ts;
      if (!GetVarint64(&body, &zz_ts)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->FlushThrough(ZigZagDecode(zz_ts)));
    }

    case MsgType::kAppendColumn: {
      // Column encoded as a length-prefixed name + type byte + default.
      Slice cname;
      if (!GetLengthPrefixedSlice(&body, &cname) || body.empty()) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      uint8_t type_byte = static_cast<uint8_t>(body[0]);
      body.remove_prefix(1);
      if (type_byte < 1 || type_byte > 6) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad column type");
      }
      Column column;
      column.name = cname.ToString();
      column.type = static_cast<ColumnType>(type_byte);
      if (!DecodeValue(&body, column.type, &column.default_value).ok()) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad default");
      }
      return ReplyStatus(out, table->AppendColumn(column));
    }

    case MsgType::kWidenColumn: {
      std::string cname;
      if (!GetName(&body, &cname)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->WidenColumn(cname));
    }

    case MsgType::kSetTtl: {
      uint64_t ttl;
      if (!GetVarint64(&body, &ttl)) {
        return ReplyError(out, ErrCode::kInvalidArgument, "bad request");
      }
      return ReplyStatus(out, table->SetTtl(static_cast<Timestamp>(ttl)));
    }

    default:
      // Unreachable: unknown opcodes are rejected at decode with
      // kBadRequest, before Dispatch.
      return ReplyError(out, ErrCode::kBadRequest, "unknown message type");
  }
}

}  // namespace lt
