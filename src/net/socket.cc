#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lt {
namespace net {
namespace {

Status Errno(const std::string& what) {
  return Status::NetworkError(what + ": " + strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status Socket::WriteAll(const char* data, size_t n) {
  while (n > 0) {
    ssize_t w = send(fd_, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  return Status::OK();
}

Status Socket::ReadAll(char* data, size_t n) {
  while (n > 0) {
    ssize_t r = recv(fd_, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (r == 0) return Status::NetworkError("connection closed");
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Listen(uint16_t port, Socket* listener, uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(fd, 64) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  *listener = std::move(sock);
  return Status::OK();
}

Status Accept(const Socket& listener, Socket* conn) {
  while (true) {
    int fd = accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *conn = Socket(fd);
    return Status::OK();
  }
}

Status Connect(const std::string& host, uint16_t port, Socket* conn) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *conn = std::move(sock);
  return Status::OK();
}

}  // namespace net
}  // namespace lt
