#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/clock.h"

namespace lt {
namespace net {
namespace {

Status Errno(const std::string& what) {
  return Status::NetworkError(what + ": " + strerror(errno));
}

// Milliseconds left until `deadline_micros` (monotonic); -1 if no deadline.
int RemainingMs(int64_t deadline_micros) {
  if (deadline_micros < 0) return -1;
  int64_t left = deadline_micros - MonotonicMicros();
  if (left <= 0) return 0;
  return static_cast<int>((left + 999) / 1000);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    read_timeout_ms_ = other.read_timeout_ms_;
    write_timeout_ms_ = other.write_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status Socket::Wait(short events, int timeout_ms, bool* ready) {
  *ready = false;
  pollfd p{};
  p.fd = fd_;
  p.events = events;
  while (true) {
    int r = poll(&p, 1, timeout_ms);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Errno("poll");
    }
    // POLLERR/POLLHUP count as ready: the subsequent recv/send reports the
    // actual condition (EOF or error).
    *ready = r > 0;
    return Status::OK();
  }
}

Status Socket::WaitReadable(int timeout_ms, bool* ready) {
  return Wait(POLLIN, timeout_ms, ready);
}

Status Socket::WriteAll(const char* data, size_t n) {
  const int64_t deadline =
      write_timeout_ms_ > 0 ? MonotonicMicros() + write_timeout_ms_ * 1000
                            : -1;
  // A deadline requires a nonblocking fd: a blocking send() does not return
  // until the WHOLE buffer is queued, so once the socket buffer fills a
  // stalled peer would pin this thread past any deadline. Toggle O_NONBLOCK
  // for the duration and pace partial writes through the poll loop, which
  // re-checks the deadline between sends.
  int restore_flags = -1;
  if (deadline >= 0) {
    int flags = fcntl(fd_, F_GETFL, 0);
    if (flags >= 0 && !(flags & O_NONBLOCK) &&
        fcntl(fd_, F_SETFL, flags | O_NONBLOCK) == 0) {
      restore_flags = flags;
    }
  }
  Status s;
  while (n > 0) {
    if (deadline >= 0) {
      int wait_ms = RemainingMs(deadline);
      bool ready = false;
      s = Wait(POLLOUT, wait_ms, &ready);
      if (!s.ok()) break;
      if (!ready) {
        s = Status::DeadlineExceeded(
            "write timed out after " + std::to_string(write_timeout_ms_) +
            " ms");
        break;
      }
    }
    ssize_t w = send(fd_, data, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      s = Errno("send");
      break;
    }
    data += w;
    n -= static_cast<size_t>(w);
  }
  if (restore_flags >= 0) fcntl(fd_, F_SETFL, restore_flags);
  return s;
}

Status Socket::ReadAll(char* data, size_t n) {
  const size_t want = n;
  const int64_t deadline =
      read_timeout_ms_ > 0 ? MonotonicMicros() + read_timeout_ms_ * 1000 : -1;
  while (n > 0) {
    if (deadline >= 0) {
      int wait_ms = RemainingMs(deadline);
      bool ready = false;
      LT_RETURN_IF_ERROR(Wait(POLLIN, wait_ms, &ready));
      if (!ready) {
        return Status::DeadlineExceeded(
            "read timed out after " + std::to_string(read_timeout_ms_) +
            " ms (" + std::to_string(want - n) + "/" + std::to_string(want) +
            " bytes)");
      }
    }
    ssize_t r = recv(fd_, data, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("recv");
    }
    if (r == 0) {
      if (n == want) return Status::Unavailable("connection closed by peer");
      return Status::NetworkError("connection closed mid-read (" +
                                  std::to_string(want - n) + "/" +
                                  std::to_string(want) + " bytes)");
    }
    data += r;
    n -= static_cast<size_t>(r);
  }
  return Status::OK();
}

Status Listen(uint16_t port, Socket* listener, uint16_t* bound_port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(fd, 64) != 0) return Errno("listen");
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return Errno("getsockname");
    }
    *bound_port = ntohs(addr.sin_port);
  }
  *listener = std::move(sock);
  return Status::OK();
}

Status Accept(const Socket& listener, Socket* conn) {
  while (true) {
    int fd = accept(listener.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Errno("accept");
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *conn = Socket(fd);
    return Status::OK();
  }
}

Status Connect(const std::string& host, uint16_t port, Socket* conn,
               int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + host);
  }
  const std::string where = host + ":" + std::to_string(port);
  if (timeout_ms > 0) {
    // Nonblocking connect bounded by poll: start the handshake, wait for
    // writability, then read SO_ERROR for the outcome.
    int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int rc = connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      return Errno("connect " + where);
    }
    if (rc != 0) {
      pollfd p{};
      p.fd = fd;
      p.events = POLLOUT;
      int pr;
      do {
        pr = poll(&p, 1, timeout_ms);
      } while (pr < 0 && errno == EINTR);
      if (pr < 0) return Errno("poll");
      if (pr == 0) {
        return Status::DeadlineExceeded("connect " + where +
                                        " timed out after " +
                                        std::to_string(timeout_ms) + " ms");
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
        return Errno("getsockopt");
      }
      if (err != 0) {
        return Status::NetworkError("connect " + where + ": " +
                                    strerror(err));
      }
    }
    fcntl(fd, F_SETFL, flags);
  } else {
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      return Errno("connect " + where);
    }
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *conn = std::move(sock);
  return Status::OK();
}

}  // namespace net
}  // namespace lt
