// LittleTableServer: runs a DB as an independent server process reachable
// over TCP (§3.1), one thread per client connection.
//
// Inserts are acknowledged as soon as rows land in in-memory tablets — the
// server deliberately provides no way to learn whether data reached stable
// storage (§3.1); the FlushThrough command (§4.1.2) is the one explicit
// durability hook. Query responses stream in chunks so the client can
// surface rows before the scan completes; the final chunk carries the
// more-available flag for §3.5 continuation queries.
#ifndef LITTLETABLE_NET_SERVER_H_
#define LITTLETABLE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/db.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/metrics.h"

namespace lt {

/// Robustness knobs for the server's connection handling.
struct ServerOptions {
  /// Port to bind (0 = ephemeral).
  uint16_t port = 0;
  /// Transport to listen on; null means real TCP. The simulation harness
  /// injects a sim::SimTransport here to run the server with no real
  /// sockets.
  net::Transport* transport = nullptr;
  /// Maximum simultaneous client connections; further connects receive a
  /// kServerBusy error frame and are closed (0 = unlimited).
  size_t max_connections = 256;
  /// Disconnect a client after this long with no request (0 = never).
  int idle_timeout_ms = 0;
  /// How long Stop() waits for in-flight requests to finish before
  /// force-closing connections.
  int drain_timeout_ms = 5000;
  /// Granularity at which idle connection threads recheck the stop/drain
  /// flags while waiting for the next frame.
  int poll_interval_ms = 50;
  /// Deadline for reading the rest of a frame once its first bytes have
  /// arrived, and for writing responses; guards against stalled peers
  /// pinning connection threads (0 = no deadline).
  int io_timeout_ms = 30000;
};

class LittleTableServer {
 public:
  /// Serves `db` (not owned) on 127.0.0.1:`port` (0 = ephemeral) with
  /// default options.
  LittleTableServer(DB* db, uint16_t port = 0);
  LittleTableServer(DB* db, const ServerOptions& options);
  ~LittleTableServer();

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Graceful drain, then stop: in-flight requests get up to
  /// drain_timeout_ms to finish (frames arriving meanwhile are answered
  /// with kShuttingDown), after which the listener closes, remaining
  /// connections are shut down, and all threads are joined.
  void Stop();

  uint16_t port() const { return port_; }

  /// Connection threads currently tracked (live plus not-yet-reaped).
  /// Stays bounded under connection churn because the accept loop joins
  /// finished threads; tests assert on this.
  size_t NumConnThreads();

  /// Server-level metrics: per-opcode request latency histograms
  /// (server.op.<name>.micros) and connection/request/error counters
  /// (server.*). Exposed for kStatsV2 and for in-process embedding.
  MetricsRegistry& metrics() { return metrics_; }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t id, std::unique_ptr<net::Connection> conn);
  /// Joins connection threads that have already announced completion.
  /// threads_mu_ must NOT be held.
  void ReapFinished();
  /// Handles one request; appends response frames to `*out`.
  void Dispatch(wire::MsgType type, Slice body, std::string* out);

  void ReplyError(std::string* out, wire::ErrCode code,
                  const std::string& message);
  void ReplyStatus(std::string* out, const Status& s);

  /// Collects the kStats counter entries (shared block cache, plus
  /// `name`'s table counters when non-empty). Returns NotFound for an
  /// unknown table.
  Status CollectCounters(const std::string& name,
                         std::vector<std::pair<std::string, uint64_t>>* out);

  DB* const db_;
  const ServerOptions opts_;
  MetricsRegistry metrics_;
  // Per-opcode request-latency histograms, resolved once at construction
  // so the serve loop records without touching the registry lock. Indexed
  // by the request's MsgType byte; null for unused opcodes.
  LatencyHistogram* op_micros_[256] = {};
  Counter* connections_ = nullptr;
  Counter* active_connections_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* idle_disconnects_ = nullptr;
  Counter* busy_rejects_ = nullptr;
  Counter* shutdown_rejects_ = nullptr;
  uint16_t port_;
  net::Transport* const transport_;
  std::unique_ptr<net::Listener> listener_;
  // Shutdown is two-phase: draining_ (answer new frames with
  // kShuttingDown, let in-flight requests finish) then stopping_ (close
  // everything). stop_called_ makes Stop() idempotent.
  std::atomic<bool> stop_called_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int active_requests_ = 0;  // guarded by drain_mu_
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::map<uint64_t, std::thread> conn_threads_;
  // Ids of connection threads that have finished serving; pushing its own
  // id is a ServeConnection thread's last use of threads_mu_, so joining
  // a listed thread can never deadlock.
  std::vector<uint64_t> finished_ids_;
  uint64_t next_conn_id_ = 1;
  // Live connections by id, so Stop() can shut down blocked reads. Each
  // pointer is valid while registered: a connection thread erases its entry
  // (under threads_mu_) before destroying the connection.
  std::map<uint64_t, net::Connection*> live_conns_;
};

}  // namespace lt

#endif  // LITTLETABLE_NET_SERVER_H_
