// LittleTableServer: runs a DB as an independent server process reachable
// over TCP (§3.1), built around an event loop.
//
// Threading model: one accept thread (blocking Accept, inline kServerBusy
// rejects past the connection cap), one event-loop thread that owns a
// Poller over every live connection and does all frame reassembly, and a
// fixed pool of worker threads that execute decoded requests. A connection
// may have many requests in flight (pipelining); per connection, requests
// execute one at a time in arrival order and responses are written back in
// that order, so pipelined clients keep read-your-writes semantics.
// Cross-connection requests run in parallel on the pool — which is what
// feeds the Table-level group-commit insert coalescing.
//
// Inserts are acknowledged as soon as rows land in in-memory tablets — the
// server deliberately provides no way to learn whether data reached stable
// storage (§3.1); the FlushThrough command (§4.1.2) is the one explicit
// durability hook. Query responses stream in chunks so the client can
// surface rows before the scan completes; the final chunk carries the
// more-available flag for §3.5 continuation queries.
#ifndef LITTLETABLE_NET_SERVER_H_
#define LITTLETABLE_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/db.h"
#include "net/admission.h"
#include "net/transport.h"
#include "net/wire.h"
#include "util/clock.h"
#include "util/metrics.h"

namespace lt {

/// Robustness knobs for the server's connection handling.
struct ServerOptions {
  /// Port to bind (0 = ephemeral).
  uint16_t port = 0;
  /// Transport to listen on; null means real TCP. The simulation harness
  /// injects a sim::SimTransport here to run the server with no real
  /// sockets.
  net::Transport* transport = nullptr;
  /// Maximum simultaneous client connections; further connects receive a
  /// kServerBusy error frame and are closed (0 = unlimited).
  size_t max_connections = 256;
  /// Disconnect a client after this long with no request (0 = never).
  int idle_timeout_ms = 0;
  /// How long Stop() waits for in-flight requests to finish before
  /// force-closing connections.
  int drain_timeout_ms = 5000;
  /// Granularity of the event loop's housekeeping tick (idle-timeout
  /// checks, closed-connection reaping) when no I/O is ready.
  int poll_interval_ms = 50;
  /// Deadline for response writes; guards against stalled peers pinning
  /// worker threads (0 = no deadline).
  int io_timeout_ms = 30000;
  /// Request-execution threads. Decoded requests from all connections are
  /// executed by this fixed pool — connection count does not add threads.
  size_t worker_threads = 4;
  /// Clock for idle-timeout accounting (elapsed time between requests on a
  /// connection). Null = the real system clock; tests over SimTransport can
  /// inject the SimClock so idleness is simulated time.
  std::shared_ptr<Clock> clock;
  /// Cluster extension: invoked (from a worker thread) for the cluster
  /// opcodes (kGetShardMap..kTabletSetSync), appending response frames to
  /// the output string exactly as Dispatch does. A server without one
  /// answers those opcodes with kBadRequest. Installed by the coordinator
  /// and by replica agents (src/cluster).
  std::function<void(wire::MsgType type, Slice body, std::string* out)>
      extension;

  // --- Overload resilience -----------------------------------------------

  /// Server-side cap on rows one kQuery may return (§3.5: the server
  /// applies its own cap even when the client asks for everything). A
  /// client limit of 0, or above the cap, is clamped to it; truncation is
  /// reported through the final chunk's more-available flag so paging
  /// clients continue past it transparently. 0 = no server-level cap
  /// (TableOptions::server_row_limit still applies).
  uint64_t default_query_row_cap = 0;
  /// Per-query streaming byte budget: the most encoded-but-unacknowledged
  /// response data one query may pin (the chunk being built plus the
  /// connection's unflushed outbound buffer). A scan that fills the budget
  /// parks — costing no worker thread — and resumes when the client drains
  /// below half of it, so a slow reader holds bounded server memory.
  /// 0 = unbounded (a slow reader buffers the whole result).
  size_t query_budget_bytes = 4 * 1024 * 1024;
  /// Wall-clock deadline for one query, checked between chunks inside the
  /// scan loop; an over-deadline scan is shed mid-stream with
  /// kResourceExhausted. Measured on `clock`. 0 = none.
  int query_deadline_ms = 0;
  /// Concurrent-scan slots, FIFO wait queue, and per-tenant token-bucket
  /// quotas (keyed by the ConfigStore network id bound with kSetTenant).
  AdmissionOptions admission;
};

class LittleTableServer {
 public:
  /// Serves `db` (not owned) on 127.0.0.1:`port` (0 = ephemeral) with
  /// default options. `db` may be null for a pure-extension server (the
  /// cluster coordinator): kPing, kStats/kStatsV2 with an empty table name,
  /// and extension opcodes still work; everything else answers kError.
  LittleTableServer(DB* db, uint16_t port = 0);
  LittleTableServer(DB* db, const ServerOptions& options);
  ~LittleTableServer();

  /// Binds, listens, and starts the accept thread, event loop, and worker
  /// pool.
  Status Start();

  /// Graceful drain, then stop: in-flight requests get up to
  /// drain_timeout_ms to finish (frames arriving meanwhile are answered
  /// with kShuttingDown), after which the listener closes, remaining
  /// connections are shut down, and all threads are joined.
  void Stop();

  uint16_t port() const { return port_; }

  /// Live connections currently tracked by the event loop (including those
  /// handed off by accept but not yet registered). Converges to the number
  /// of open clients: the event loop reaps closed connections on its idle
  /// tick, so an idle server does not accumulate dead entries.
  size_t ConnectionCount() const {
    return conn_count_.load(std::memory_order_relaxed);
  }

  /// Historical alias for ConnectionCount(), from the thread-per-connection
  /// server. Connections no longer own threads; the worker pool is fixed.
  size_t NumConnThreads() { return ConnectionCount(); }

  /// Server-level metrics: per-opcode request latency histograms
  /// (server.op.<name>.micros) and connection/request/error counters
  /// (server.*). Exposed for kStatsV2 and for in-process embedding.
  MetricsRegistry& metrics() { return metrics_; }

  /// Executes one request synchronously on the caller's thread, appending
  /// response frames to `*out`. This is the cluster delegation hook: a
  /// replica agent's extension handler unwraps a routed request and hands
  /// the inner opcode back to the core dispatch (and the promotion path
  /// replays redo-buffered inserts through it).
  void Handle(wire::MsgType type, Slice body, std::string* out) {
    Dispatch(type, body, out);
  }

 private:
  // One request decoded from a connection's byte stream, or a canned
  // (precomputed) response that must still flow through the per-connection
  // FIFO so pipelined responses stay in order.
  struct Task {
    std::string payload;   // Frame payload (type byte + body); empty if canned.
    std::string canned;    // Prebuilt response frames (shutdown/bad-opcode).
    bool registered = false;  // Counted in active_requests_ for the drain.
  };

  // State of one in-flight streaming kQuery. Installed on the connection
  // by the first worker slice and torn down by the finalizing slice; the
  // pointer itself is guarded by sched_mu_, the scan internals are owned
  // by whichever worker is slicing (at most one: the stream task is the
  // connection's FIFO front for its whole lifetime).
  struct StreamState {
    std::shared_ptr<Table> table;
    std::shared_ptr<const Schema> schema;
    QueryBounds bounds;
    // Opened lazily on the first admitted slice, so queued scans pin no
    // tablet snapshot while they wait.
    std::unique_ptr<QueryStream> qs;
    int64_t tenant = 0;
    // --- Guarded by sched_mu_. ---
    bool queued = false;    // Waiting in the admission queue.
    bool admitted = false;  // Holds a scan slot (must be Release()d).
    // Small (limit-bounded) query admitted without a slot: finalize must
    // not Release, and it was never queued.
    bool slot_exempt = false;
    bool paused = false;    // Parked on outbound-buffer backpressure.
    bool expired = false;   // Queue wait timed out; shed on next slice.
    // Set by the event loop (kCancel frame, connection death); checked
    // between chunks by the slicing worker.
    std::atomic<bool> cancel{false};
    int64_t queue_wait_micros = -1;  // Set on grant/expiry, -1 = never queued.
    Timestamp deadline = 0;          // Idle-clock deadline; 0 = none.
    Timestamp op_start = 0;          // MonotonicMicros at first slice.
    uint64_t charged_rows = 0;       // Scanned rows already billed to quota.
    size_t peak_bytes = 0;           // Max outbound bytes pinned at once.
  };

  // Per-connection state. The event loop owns conn I/O state (inbuf,
  // last_activity, poller registration); the scheduling fields are guarded
  // by sched_mu_; the outbound buffer by out_mu (a leaf lock — never held
  // while acquiring sched_mu_ or drain_mu_). Held by shared_ptr: the
  // conns_ map keeps one reference, an executing worker another, so the
  // connection object outlives any in-flight response write.
  struct ConnState {
    uint64_t id = 0;
    std::unique_ptr<net::Connection> conn;
    std::string inbuf;            // Reassembly buffer (event loop only).
    Timestamp last_activity = 0;  // Idle clock reading (event loop only).
    // Tenant (ConfigStore network id) bound with kSetTenant. Only touched
    // while executing this connection's front task, which is serialized,
    // so no lock is needed.
    int64_t tenant = 0;
    // --- Outbound buffer, guarded by out_mu. Workers append response
    // frames and flush what the transport accepts without blocking; the
    // event loop flushes the rest as the peer drains. FIFO, so pipelined
    // responses keep request order.
    std::mutex out_mu;
    std::string outbuf;
    size_t out_off = 0;            // Flushed prefix of outbuf.
    bool write_failed = false;     // Transport write error or write stall.
    bool out_counted = false;      // Counted in unflushed_conns_.
    Timestamp last_out_progress = 0;  // Idle clock at last accepted byte.
    // Whether the poller is armed for writability (event loop only).
    bool want_write = false;
    // --- Guarded by sched_mu_. ---
    std::deque<Task> tasks;   // Decoded, not yet completed; front may run.
    bool running = false;     // A worker is executing this conn's front task.
    bool queued_run = false;  // Present in run_queue_.
    bool dead = false;        // No more reads; close once tasks drain.
    std::unique_ptr<StreamState> stream;  // In-flight streaming query.
  };

  // What one worker slice of a task decided: the task completed (pop it),
  // wants the CPU back soon (re-enqueue behind other connections), or
  // parked waiting for an external event — an admission grant or the
  // outbound buffer draining — that will re-schedule the connection.
  enum class SliceResult { kDone, kYield, kParked };

  void AcceptLoop();
  void EventLoop();
  void WorkerLoop();

  /// Reads whatever is available on `cs`, reassembles complete frames, and
  /// enqueues tasks. Returns false when the connection is finished (EOF,
  /// error, oversized frame) and should be marked dead.
  bool PumpConnection(const std::shared_ptr<ConnState>& cs);
  /// Handles one complete frame payload: drain check, opcode
  /// normalization, task enqueue. Returns false to kill the connection.
  bool HandleFrame(const std::shared_ptr<ConnState>& cs, std::string payload);
  /// Enqueues `task` on `cs` and schedules the connection on the worker
  /// run queue if no worker is already serving it.
  void EnqueueTask(const std::shared_ptr<ConnState>& cs, Task task);
  /// Pushes `cs` onto the worker run queue unless it is already there, a
  /// worker is serving it, or it has nothing to run. sched_mu_ must be
  /// held; the caller notifies sched_cv_ after unlocking.
  void ScheduleLocked(const std::shared_ptr<ConnState>& cs);
  /// Event-loop housekeeping: idle-timeout disconnects, queue-wait expiry,
  /// write-stall detection, and reaping of dead connections whose tasks
  /// and output have drained.
  void IdleTick();
  /// Event-loop outbound pass: flushes each connection's buffered output,
  /// arms/disarms poller write interest, and resumes streams parked on
  /// backpressure once their buffer drains below the low-water mark.
  void FlushTick();

  /// Appends response bytes to `cs`'s outbound buffer and flushes what the
  /// transport will take without blocking. Never blocks a worker on a slow
  /// peer; leftover bytes are flushed by the event loop as the peer drains.
  void AppendOutput(const std::shared_ptr<ConnState>& cs,
                    const std::string& data);
  /// Flushes as much buffered output as the transport accepts (out_mu
  /// held). Sets write_failed and drops the buffer on a transport error.
  void TryFlushLocked(ConnState* cs);

  /// Executes one slice of a streaming kQuery: admission on first entry,
  /// then up to a few chunks of rows — checking cancellation, the query
  /// deadline, the tenant's scanned-rows quota, and the outbound byte
  /// budget between chunks.
  SliceResult ExecuteQuerySlice(const std::shared_ptr<ConnState>& cs,
                                Task& task);
  /// Re-schedules connections whose queued scans were just granted slots.
  void ResumeGranted(const std::vector<AdmissionController::Departure>& g);
  void UpdateScanGauges();

  /// Handles one request; appends response frames to `*out`.
  void Dispatch(wire::MsgType type, Slice body, std::string* out);

  void ReplyError(std::string* out, wire::ErrCode code,
                  const std::string& message);
  void ReplyStatus(std::string* out, const Status& s);

  /// Collects the kStats counter entries (shared block cache, plus
  /// `name`'s table counters when non-empty). Returns NotFound for an
  /// unknown table.
  Status CollectCounters(const std::string& name,
                         std::vector<std::pair<std::string, uint64_t>>* out);

  DB* const db_;
  const ServerOptions opts_;
  const std::shared_ptr<Clock> idle_clock_;
  MetricsRegistry metrics_;
  // Per-opcode request-latency histograms, resolved once at construction
  // so the serve loop records without touching the registry lock. Indexed
  // by the request's MsgType byte; null for unused opcodes.
  LatencyHistogram* op_micros_[256] = {};
  // Event-loop health: how late the loop wakes relative to its scheduled
  // poll slice (scheduled-vs-actual wakeup; a saturated or preempted loop
  // shows here before anything times out).
  LatencyHistogram* event_loop_lag_ = nullptr;
  // Instantaneous depth of the worker run queue and number of busy
  // workers: together they say whether the pool is the bottleneck.
  Gauge* run_queue_depth_ = nullptr;
  Gauge* workers_busy_ = nullptr;
  // Cumulative microseconds workers spent executing requests (divide by
  // worker count and wall time for pool utilization).
  Counter* worker_busy_micros_ = nullptr;
  // Decoded-but-not-completed frames across all connections (pipelining
  // backlog).
  Gauge* pending_frames_ = nullptr;
  Counter* connections_ = nullptr;
  Counter* active_connections_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  Counter* idle_disconnects_ = nullptr;
  Counter* busy_rejects_ = nullptr;
  Counter* shutdown_rejects_ = nullptr;
  // Pings answered directly from the event loop (connection had no queued
  // work), bypassing the worker pool so a saturated pool cannot fail a
  // healthy node's health probe.
  Counter* inline_pings_ = nullptr;
  // Overload-resilience instruments. Sheds are always explicit error
  // replies; these count why.
  Counter* query_shed_ = nullptr;              // Total sheds, any cause.
  Counter* query_shed_quota_ = nullptr;        // Tenant token bucket dry.
  Counter* query_shed_queue_full_ = nullptr;   // Admission queue at cap.
  Counter* query_shed_wait_timeout_ = nullptr; // Queue-wait deadline hit.
  Counter* query_deadline_exceeded_ = nullptr;
  Counter* query_cancelled_ = nullptr;
  Counter* stream_pauses_ = nullptr;  // Scans parked on backpressure.
  Gauge* scans_active_ = nullptr;
  Gauge* scans_queued_ = nullptr;
  Gauge* outbuf_bytes_ = nullptr;  // Unflushed response bytes, all conns.
  LatencyHistogram* queue_wait_micros_ = nullptr;
  // Peak outbound bytes one streaming query pinned — the accounted-memory
  // check against query_budget_bytes.
  LatencyHistogram* stream_peak_bytes_ = nullptr;
  uint16_t port_;
  net::Transport* const transport_;
  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<net::Poller> poller_;
  // Shutdown is two-phase: draining_ (answer new frames with
  // kShuttingDown, let in-flight requests finish) then stopping_ (close
  // everything). stop_called_ makes Stop() idempotent.
  std::atomic<bool> stop_called_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopping_{false};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  int active_requests_ = 0;  // guarded by drain_mu_
  // Connections holding unflushed response bytes. The drain waits for
  // this to reach zero as well: a request is not "finished" until the
  // client can actually read its answer.
  std::atomic<int> unflushed_conns_{0};

  std::unique_ptr<AdmissionController> admission_;

  std::thread accept_thread_;
  std::thread event_thread_;
  std::vector<std::thread> workers_;

  // Accepted connections waiting for the event loop to register them.
  std::mutex accepted_mu_;
  std::deque<std::unique_ptr<net::Connection>> accepted_;

  // Connections registered with the poller; event-loop thread only.
  std::map<uint64_t, std::shared_ptr<ConnState>> conns_;
  uint64_t next_conn_id_ = 1;
  std::atomic<size_t> conn_count_{0};  // conns_ plus the accepted_ handoff.

  // Worker scheduling: connections with a runnable front task. A
  // connection appears at most once (running=false ∧ !tasks.empty() ⇒
  // queued), which is what serializes its tasks and keeps responses in
  // order.
  std::mutex sched_mu_;
  std::condition_variable sched_cv_;
  std::deque<std::shared_ptr<ConnState>> run_queue_;
  bool workers_stop_ = false;  // guarded by sched_mu_
  // Connections whose stream is parked in the admission wait queue, by
  // connection id — how a worker releasing a slot (or the event loop
  // expiring a wait) reaches a connection it does not otherwise own.
  // Guarded by sched_mu_.
  std::map<uint64_t, std::shared_ptr<ConnState>> parked_;
};

}  // namespace lt

#endif  // LITTLETABLE_NET_SERVER_H_
