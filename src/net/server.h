// LittleTableServer: runs a DB as an independent server process reachable
// over TCP (§3.1), one thread per client connection.
//
// Inserts are acknowledged as soon as rows land in in-memory tablets — the
// server deliberately provides no way to learn whether data reached stable
// storage (§3.1); the FlushThrough command (§4.1.2) is the one explicit
// durability hook. Query responses stream in chunks so the client can
// surface rows before the scan completes; the final chunk carries the
// more-available flag for §3.5 continuation queries.
#ifndef LITTLETABLE_NET_SERVER_H_
#define LITTLETABLE_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/db.h"
#include "net/socket.h"
#include "net/wire.h"
#include "util/metrics.h"

namespace lt {

class LittleTableServer {
 public:
  /// Serves `db` (not owned) on 127.0.0.1:`port` (0 = ephemeral).
  LittleTableServer(DB* db, uint16_t port = 0);
  ~LittleTableServer();

  /// Binds, listens, and starts the accept thread.
  Status Start();

  /// Stops accepting, closes the listener, and joins all threads.
  void Stop();

  uint16_t port() const { return port_; }

  /// Connection threads currently tracked (live plus not-yet-reaped).
  /// Stays bounded under connection churn because the accept loop joins
  /// finished threads; tests assert on this.
  size_t NumConnThreads();

  /// Server-level metrics: per-opcode request latency histograms
  /// (server.op.<name>.micros) and connection/request/error counters
  /// (server.*). Exposed for kStatsV2 and for in-process embedding.
  MetricsRegistry& metrics() { return metrics_; }

 private:
  void AcceptLoop();
  void ServeConnection(uint64_t id, net::Socket conn);
  /// Joins connection threads that have already announced completion.
  /// threads_mu_ must NOT be held.
  void ReapFinished();
  /// Handles one request; appends response frames to `*out`.
  void Dispatch(wire::MsgType type, Slice body, std::string* out);

  void ReplyError(std::string* out, wire::ErrCode code,
                  const std::string& message);
  void ReplyStatus(std::string* out, const Status& s);

  /// Collects the kStats counter entries (shared block cache, plus
  /// `name`'s table counters when non-empty). Returns NotFound for an
  /// unknown table.
  Status CollectCounters(const std::string& name,
                         std::vector<std::pair<std::string, uint64_t>>* out);

  DB* const db_;
  MetricsRegistry metrics_;
  // Per-opcode request-latency histograms, resolved once at construction
  // so the serve loop records without touching the registry lock. Indexed
  // by the request's MsgType byte; null for unused opcodes.
  LatencyHistogram* op_micros_[256] = {};
  Counter* connections_ = nullptr;
  Counter* active_connections_ = nullptr;
  Counter* requests_ = nullptr;
  Counter* errors_ = nullptr;
  uint16_t port_;
  net::Socket listener_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::mutex threads_mu_;
  std::map<uint64_t, std::thread> conn_threads_;
  // Ids of connection threads that have finished serving; pushing its own
  // id is a ServeConnection thread's last use of threads_mu_, so joining
  // a listed thread can never deadlock.
  std::vector<uint64_t> finished_ids_;
  uint64_t next_conn_id_ = 1;
  // Live connection fds, so Stop() can shut down blocked reads.
  std::set<int> live_fds_;
};

}  // namespace lt

#endif  // LITTLETABLE_NET_SERVER_H_
