// Client: the library applications link to talk to a LittleTable server —
// the role the paper's SQLite virtual-table adaptor plays (§3.1, §3.5).
//
// The client keeps one persistent TCP connection (disconnection is how it
// learns the server crashed, §3.1), caches each table's schema and sort
// order from the server, batches inserts, and paginates queries: when a
// result sets more-available, QueryAll updates the starting key bound to the
// last returned row's key and re-submits (§3.5). Requests encoded against a
// stale schema are transparently retried after a schema refresh.
//
// Thread safety: a Client serializes its requests internally; use one
// Client per concurrent stream (as the paper's one-process-per-grabber
// model does naturally).
//
// Fault tolerance: every socket operation carries a poll(2) deadline, so a
// hung server yields Status::DeadlineExceeded instead of blocking forever.
// On connection errors (peer gone, deadline expired, server draining) the
// client reconnects with capped exponential backoff + jitter and retries —
// but only idempotent requests (ping, queries, stats, schema fetches,
// flush-through). Inserts are NEVER blind-retried: a connection that died
// mid-insert leaves the outcome unknown, and the paper's §3.1 recovery
// story (clients re-read recent data from the device) owns that case.
#ifndef LITTLETABLE_NET_CLIENT_H_
#define LITTLETABLE_NET_CLIENT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/table.h"  // QueryResult
#include "net/transport.h"
#include "net/wire.h"
#include "util/clock.h"
#include "util/random.h"

namespace lt {

/// Deadlines and retry policy for a Client. Zero/negative timeouts block
/// forever (not recommended outside tests).
struct ClientOptions {
  int connect_timeout_ms = 5000;
  int read_timeout_ms = 30000;
  int write_timeout_ms = 30000;

  /// Reconnect-and-retry attempts after a connection error, for idempotent
  /// requests only (0 disables retries).
  int max_retries = 3;
  /// Exponential backoff between retries: initial delay, doubling per
  /// attempt, capped, with uniform jitter in [delay/2, delay].
  int backoff_initial_ms = 20;
  int backoff_max_ms = 1000;
  /// Seed for the jitter PRNG (deterministic for tests).
  uint64_t backoff_seed = 1;
  /// Overall budget for one logical request including every reconnect
  /// attempt and backoff sleep, measured on `clock` (0 = no budget, retry
  /// policy alone decides). Once the budget is exhausted no further retry
  /// is attempted and the last connection error is returned.
  int total_deadline_ms = 0;

  /// ConfigStore network id this client belongs to (0 = none). Sent as a
  /// kSetTenant binding after every connect and reconnect, so the server
  /// attributes the connection's queries to this tenant's quota across
  /// connection drops. A server too old to know the opcode answers with an
  /// error, which the client tolerates (no quotas there to attribute to).
  int64_t network_id = 0;

  /// Clock the total deadline is measured on; null = the system clock.
  /// Tests inject a SimClock and advance it from backoff_sleep.
  std::shared_ptr<Clock> clock;
  /// Called to sleep a backoff delay (milliseconds); null = a real
  /// std::this_thread sleep. The simulation harness injects a hook that
  /// advances SimClock instead, so retry storms cost no wall time.
  std::function<void(int64_t)> backoff_sleep;
  /// Transport to connect over; null means real TCP.
  net::Transport* transport = nullptr;
};

/// Quantile summary of one server-side latency histogram (microseconds).
struct HistogramQuantiles {
  uint64_t count = 0;
  uint64_t p50 = 0;
  uint64_t p90 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
  uint64_t max = 0;
};

/// Everything a kStatsV2 reply carries: the kStats counter map plus the
/// server's (and optionally one table's) latency distributions.
struct ServerStats {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramQuantiles> histograms;
};

class Client {
 public:
  /// Connects to a LittleTable server with default options.
  static Status Connect(const std::string& host, uint16_t port,
                        std::unique_ptr<Client>* out);
  /// Connects with explicit deadlines and retry policy.
  static Status Connect(const std::string& host, uint16_t port,
                        const ClientOptions& options,
                        std::unique_ptr<Client>* out);

  Status Ping();

  /// Single-attempt health probe under one explicit deadline covering the
  /// whole call — connect (when disconnected) and round trip — with no
  /// retries and no backoff: the coordinator's prober decides liveness
  /// from this call alone, and retrying would mask exactly the slowness
  /// it is there to detect. Socket deadlines are restored afterwards, so
  /// other requests on this Client keep their configured timeouts.
  Status Ping(int deadline_ms);

  Status ListTables(std::vector<std::string>* names);

  /// Creates a table with the given TTL (0 = retain forever).
  Status CreateTable(const std::string& table, const Schema& schema,
                     Timestamp ttl);
  Status DropTable(const std::string& table);

  /// Fetches (and caches) a table's schema and TTL.
  Status GetTableInfo(const std::string& table, Schema* schema,
                      Timestamp* ttl);

  /// Returns the cached schema, fetching it if needed.
  Result<std::shared_ptr<const Schema>> TableSchema(const std::string& table);

  /// Inserts a batch. Rows whose ts cell equals wire::kOmittedTimestamp get
  /// server-assigned current time (§3.1).
  Status Insert(const std::string& table, const std::vector<Row>& rows);

  /// One server round trip; result.more_available signals truncation by the
  /// server's row limit.
  Status Query(const std::string& table, const QueryBounds& bounds,
               QueryResult* result);

  /// One page of a paginated scan: like Query, but when the server
  /// truncated (`result->more_available`) *bounds is advanced past the last
  /// returned row (§3.5's continuation), so calling again fetches the next
  /// page. Loop until result->more_available is false:
  ///
  ///   QueryBounds page = ...;
  ///   QueryResult result;
  ///   do {
  ///     LT_RETURN_IF_ERROR(client->QueryPage("t", &page, &result));
  ///     consume(result.rows);
  ///   } while (result.more_available);
  Status QueryPage(const std::string& table, QueryBounds* bounds,
                   QueryResult* result);

  /// Full result: re-submits continuation queries past each server limit.
  Status QueryAll(const std::string& table, const QueryBounds& bounds,
                  std::vector<Row>* rows);

  /// Latest row whose key starts with `prefix` (§3.4.5).
  Status LatestRow(const std::string& table, const Key& prefix, Row* row,
                   bool* found);

  /// Asks the server to flush all tablets holding rows at or before `ts`
  /// (§4.1.2 extension).
  Status FlushThrough(const std::string& table, Timestamp ts);

  Status AppendColumn(const std::string& table, const Column& column);
  Status WidenColumn(const std::string& table, const std::string& column);
  Status SetTtl(const std::string& table, Timestamp ttl);

  /// Fetches server counters as a name -> value map: the shared block
  /// cache's "cache.*" entries, plus `table`'s "table.*" entries when
  /// `table` is non-empty. (Legacy kStats request — works against any
  /// server version.)
  Status Stats(const std::string& table,
               std::map<std::string, uint64_t>* stats);

  /// kStatsV2: the same counters plus "server.*" metrics and latency
  /// quantiles — per-opcode request latencies (server.op.*.micros) and,
  /// when `table` is non-empty, the table's insert/query/flush/merge/
  /// block-read distributions (table.*_micros).
  Status Stats(const std::string& table, ServerStats* stats);

  /// One request / one response frame, no retries: the building block the
  /// cluster layer is written against — its router owns retry and
  /// shard-map-refresh policy, so blind client-side retries would fight
  /// it. Serialized with every other request on this Client.
  Status Call(wire::MsgType type, const std::string& body,
              wire::MsgType* resp_type, std::string* resp_body);

  /// One request whose response is a stream of frames (e.g. a routed
  /// query's kQueryChunk sequence). `on_frame` runs once per frame and
  /// sets *done on the final one; returning an error aborts mid-stream
  /// and drops the connection (undrained frames leave it desynced).
  Status CallStream(wire::MsgType type, const std::string& body,
                    const std::function<Status(wire::MsgType type, Slice body,
                                               bool* done)>& on_frame);

  bool connected() const { return conn_ != nullptr; }

  /// Decodes a kError response body into its Status. Exposed for the
  /// cluster router, which interprets raw response frames from Call.
  static Status ErrorFromBody(Slice body);

  /// Number of transport connects performed (1 for the initial connect;
  /// each reconnect adds one). Exposed for tests and monitoring.
  uint64_t connect_count() const {
    return connect_count_.load(std::memory_order_relaxed);
  }

 private:
  explicit Client(const ClientOptions& options);

  /// Opens the transport connection if it is not currently open.
  Status EnsureConnectedLocked();
  /// Binds opts_.network_id to a freshly opened connection (kSetTenant).
  /// Transport errors propagate; an error *reply* is tolerated (pre-tenant
  /// servers do not know the opcode).
  Status BindTenantLocked();
  /// Sleeps the backoff delay for the given (0-based) retry attempt.
  /// Called WITHOUT mu_ held: the sleep must not stall other threads'
  /// requests on this Client.
  void Backoff(int attempt);
  /// True for errors where reconnect + retry may help: the peer vanished,
  /// a deadline expired, or the server said busy/shutting down.
  static bool IsConnectionError(const Status& s);
  /// Runs request attempts of `fn`, reconnecting and retrying on
  /// connection errors per the retry policy. Only for idempotent requests.
  /// Acquires mu_ around each attempt (callers must NOT hold it) and
  /// releases it for the backoff sleep, so one caller's retry storm does
  /// not block every other thread sharing this Client.
  template <typename Fn>
  Status WithRetries(Fn&& fn);

  /// Sends one frame and reads one response frame; closes the connection
  /// on any transport error so the next request reconnects cleanly.
  Status RoundTrip(wire::MsgType type, const std::string& body,
                   wire::MsgType* resp_type, std::string* resp_body);
  Status ReadFrame(wire::MsgType* type, std::string* body);
  /// Drops the cached schema for `table` (on kSchemaChanged).
  void InvalidateSchema(const std::string& table);
  Result<std::shared_ptr<const Schema>> SchemaLocked(const std::string& table);
  Status PingLocked();
  Status QueryLocked(const std::string& table, const QueryBounds& bounds,
                     QueryResult* result);
  Status LatestRowLocked(const std::string& table, const Key& prefix,
                         Row* row, bool* found);

  std::mutex mu_;
  std::string host_;
  uint16_t port_ = 0;
  ClientOptions opts_;
  net::Transport* transport_;
  std::shared_ptr<Clock> retry_clock_;
  Random rng_;
  std::atomic<uint64_t> connect_count_{0};
  std::unique_ptr<net::Connection> conn_;
  std::map<std::string, std::shared_ptr<const Schema>> schema_cache_;
};

}  // namespace lt

#endif  // LITTLETABLE_NET_CLIENT_H_
