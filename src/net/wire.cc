#include "net/wire.h"

#include "util/coding.h"

namespace lt {
namespace wire {

std::string Frame(MsgType type, const std::string& body) {
  std::string out;
  PutFixed32(&out, static_cast<uint32_t>(body.size() + 1));
  out.push_back(static_cast<char>(type));
  out += body;
  return out;
}

void EncodeKeyPrefix(std::string* dst, const Schema& schema, const Key& key) {
  PutVarint32(dst, static_cast<uint32_t>(key.size()));
  for (size_t i = 0; i < key.size(); i++) {
    EncodeValue(dst, key[i], schema.columns()[i].type);
  }
}

Status DecodeKeyPrefix(Slice* in, const Schema& schema, Key* out) {
  uint32_t n;
  if (!GetVarint32(in, &n) || n > schema.num_key_columns()) {
    return Status::Corruption("bad key prefix length");
  }
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; i++) {
    Value v;
    LT_RETURN_IF_ERROR(DecodeValue(in, schema.columns()[i].type, &v));
    out->push_back(std::move(v));
  }
  return Status::OK();
}

void EncodeBounds(std::string* dst, const Schema& schema,
                  const QueryBounds& bounds) {
  uint8_t flags = 0;
  if (bounds.min_key) flags |= 0x01;
  if (bounds.min_key && bounds.min_key->inclusive) flags |= 0x02;
  if (bounds.max_key) flags |= 0x04;
  if (bounds.max_key && bounds.max_key->inclusive) flags |= 0x08;
  if (bounds.min_ts_inclusive) flags |= 0x10;
  if (bounds.max_ts_inclusive) flags |= 0x20;
  if (bounds.direction == Direction::kDescending) flags |= 0x40;
  dst->push_back(static_cast<char>(flags));
  if (bounds.min_key) EncodeKeyPrefix(dst, schema, bounds.min_key->prefix);
  if (bounds.max_key) EncodeKeyPrefix(dst, schema, bounds.max_key->prefix);
  PutVarint64(dst, ZigZagEncode(bounds.min_ts));
  PutVarint64(dst, ZigZagEncode(bounds.max_ts));
  PutVarint64(dst, bounds.limit);
}

Status DecodeBounds(Slice* in, const Schema& schema, QueryBounds* out) {
  if (in->empty()) return Status::Corruption("bounds truncated");
  uint8_t flags = static_cast<uint8_t>((*in)[0]);
  in->remove_prefix(1);
  *out = QueryBounds();
  if (flags & 0x01) {
    KeyBound kb;
    kb.inclusive = flags & 0x02;
    LT_RETURN_IF_ERROR(DecodeKeyPrefix(in, schema, &kb.prefix));
    out->min_key = std::move(kb);
  }
  if (flags & 0x04) {
    KeyBound kb;
    kb.inclusive = flags & 0x08;
    LT_RETURN_IF_ERROR(DecodeKeyPrefix(in, schema, &kb.prefix));
    out->max_key = std::move(kb);
  }
  uint64_t zz_min, zz_max;
  if (!GetVarint64(in, &zz_min) || !GetVarint64(in, &zz_max) ||
      !GetVarint64(in, &out->limit)) {
    return Status::Corruption("bounds truncated");
  }
  out->min_ts = ZigZagDecode(zz_min);
  out->max_ts = ZigZagDecode(zz_max);
  out->min_ts_inclusive = flags & 0x10;
  out->max_ts_inclusive = flags & 0x20;
  out->direction =
      (flags & 0x40) ? Direction::kDescending : Direction::kAscending;
  return Status::OK();
}

ErrCode CodeForStatus(const Status& s) {
  switch (s.code()) {
    case Status::Code::kNotFound: return ErrCode::kNotFound;
    case Status::Code::kAlreadyExists: return ErrCode::kAlreadyExists;
    case Status::Code::kInvalidArgument: return ErrCode::kInvalidArgument;
    case Status::Code::kCorruption: return ErrCode::kCorruption;
    case Status::Code::kIOError: return ErrCode::kIOError;
    // Server-side kUnavailable means overload (e.g. flush backlog at the
    // hard cap): tell the client to back off.
    case Status::Code::kUnavailable: return ErrCode::kServerBusy;
    default: return ErrCode::kGeneric;
  }
}

Status StatusForCode(ErrCode code, const std::string& message) {
  switch (code) {
    case ErrCode::kNotFound: return Status::NotFound(message);
    case ErrCode::kAlreadyExists: return Status::AlreadyExists(message);
    case ErrCode::kInvalidArgument: return Status::InvalidArgument(message);
    case ErrCode::kSchemaChanged: return Status::Aborted(message);
    case ErrCode::kCorruption: return Status::Corruption(message);
    case ErrCode::kIOError: return Status::IOError(message);
    case ErrCode::kServerBusy:
      return Status::Unavailable(message.empty() ? "server busy" : message);
    case ErrCode::kShuttingDown:
      return Status::Unavailable(message.empty() ? "server shutting down"
                                                 : message);
    case ErrCode::kBadRequest:
      return Status::InvalidArgument(message.empty() ? "bad request"
                                                     : message);
    case ErrCode::kWrongShard:
      // Routing staleness is retryable after a shard-map refresh; Aborted
      // keeps it distinct from connection errors so a plain Client never
      // blind-retries it.
      return Status::Aborted(message.empty() ? "wrong shard" : message);
    case ErrCode::kResourceExhausted:
      // Same retry class as kServerBusy (back off, try again); the message
      // keeps the quota-vs-busy distinction visible to callers.
      return Status::Unavailable(message.empty() ? "resource exhausted"
                                                 : message);
    case ErrCode::kCancelled:
      // Aborted, not Unavailable: the client cancelled it; a blind retry
      // would resurrect the very work the caller just killed.
      return Status::Aborted(message.empty() ? "query cancelled" : message);
    case ErrCode::kGeneric: break;
  }
  return Status::NetworkError(message);
}

}  // namespace wire
}  // namespace lt
