// AdmissionController: the server's overload front door for scans.
//
// Two mechanisms compose (ROADMAP item 5, paper §3.5's "server caps what a
// query can do" made explicit):
//
//   1. Concurrent-scan slots with a FIFO wait queue. At most
//      max_concurrent_scans streaming queries execute at once; the next
//      max_queued_scans wait in arrival order, each with a queue-wait
//      deadline. Anything beyond that is shed immediately — an explicit
//      error reply, never a silent drop. Waiting costs no worker thread:
//      the waiter is a parked connection, resumed when a slot frees.
//
//   2. Per-tenant token buckets, keyed by the ConfigStore network id the
//      connection bound with kSetTenant: a queries/s bucket charged at
//      admission (an empty bucket sheds the query before it costs
//      anything) and a scanned-rows/s bucket charged as the scan proceeds
//      (a scan that outruns its tenant's row budget is shed mid-stream).
//      Rows are charged after the fact, so the bucket can go into debt;
//      the debt delays the tenant's next queries instead of this one —
//      which keeps the hot loop charge-and-check, not reserve-and-commit.
//
// All time comes from an injected Clock, so SimClock tests can exhaust and
// refill buckets or expire queue waits deterministically.
#ifndef LITTLETABLE_NET_ADMISSION_H_
#define LITTLETABLE_NET_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "util/clock.h"

namespace lt {

/// Rate limits for one tenant (a ConfigStore network). Zero rate =
/// unlimited on that axis. Burst defaults to one second's worth of rate
/// (minimum 1) when left 0.
struct TenantQuota {
  double queries_per_sec = 0;
  double query_burst = 0;
  double scanned_rows_per_sec = 0;
  double row_burst = 0;

  bool Unlimited() const {
    return queries_per_sec <= 0 && scanned_rows_per_sec <= 0;
  }
};

struct AdmissionOptions {
  /// Streaming scans allowed to execute concurrently (0 = unlimited, which
  /// disables the slot machinery entirely — quotas still apply).
  size_t max_concurrent_scans = 0;
  /// Scans allowed to wait for a slot; arrivals past this are shed with
  /// kResourceExhausted.
  size_t max_queued_scans = 64;
  /// How long a queued scan may wait before it is shed with kServerBusy
  /// (0 = wait forever).
  int queue_wait_timeout_ms = 1000;
  /// Queries whose client-requested row limit is at or below this skip
  /// the concurrent-scan slots (they still pay the tenant's query
  /// quota): a bounded point lookup should not queue behind firehose
  /// scans. Unbounded requests always compete for slots, even when the
  /// server's default row cap would truncate them. 0 disables the bypass.
  uint64_t small_query_row_limit = 512;
  /// Quota applied to any bound tenant without an explicit entry. A
  /// connection that never bound a tenant (network id 0) is exempt unless
  /// tenant_quotas carries an explicit entry for 0.
  TenantQuota default_quota;
  std::map<int64_t, TenantQuota> tenant_quotas;
};

class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options,
                      std::shared_ptr<Clock> clock);

  enum class Decision {
    kAdmitted,       // Slot granted; caller must Release() when done.
    kQueued,         // Parked in the FIFO wait queue; a later Release()
                     // grants it (reported via the granted list) or
                     // ExpireWaiters sheds it.
    kShedQueueFull,  // Queue at max_queued_scans: reply kResourceExhausted.
    kShedQuota,      // Tenant's query bucket is empty: kResourceExhausted.
  };

  /// One admission attempt for `waiter_id` (the server's connection id —
  /// unique among live waiters because a connection runs one scan at a
  /// time). Charges the tenant's query bucket on anything but
  /// kShedQueueFull.
  Decision Request(uint64_t waiter_id, int64_t tenant);

  /// Quota-only admission for a slot-exempt (small) query: charges the
  /// tenant's query bucket without taking a slot. False means shed with
  /// the quota error — the bucket is empty or paying off row debt.
  bool ChargeQuery(int64_t tenant);

  /// Charges `n` scanned rows against the tenant's row bucket. False when
  /// the bucket is now in debt — the caller should shed the scan with
  /// kResourceExhausted. Always true for unlimited tenants.
  bool ChargeScannedRows(int64_t tenant, uint64_t n);

  /// A waiter leaving the queue, with how long it waited (for the
  /// queue-wait histogram).
  struct Departure {
    uint64_t id = 0;
    int64_t waited_micros = 0;
  };

  /// Returns one slot and grants it to the queue head if any; granted
  /// waiters are appended to *granted (the caller resumes those parked
  /// connections). Call exactly once per kAdmitted request (and per
  /// granted waiter) when its scan finishes, fails, or is cancelled.
  void Release(std::vector<Departure>* granted);

  /// Removes a still-queued waiter (client cancel or connection death).
  /// True if it was found — i.e. it had NOT been granted; a false return
  /// means the waiter either was never queued or now holds a slot the
  /// caller must Release.
  bool CancelWaiter(uint64_t waiter_id);

  /// Moves waiters whose queue-wait deadline has passed out of the queue,
  /// appending them to *expired; the caller sheds each with kServerBusy.
  /// No-op when queue_wait_timeout_ms is 0.
  void ExpireWaiters(std::vector<Departure>* expired);

  size_t active_scans() const;
  size_t queued_scans() const;

 private:
  struct Bucket {
    double query_tokens = 0;
    double row_tokens = 0;
    Timestamp last_refill = 0;
    bool initialized = false;
  };
  struct Waiter {
    uint64_t id = 0;
    Timestamp enqueued_at = 0;
    Timestamp deadline = 0;  // 0 = none.
  };

  /// Resolves the quota for `tenant`; null means unlimited (skip buckets).
  const TenantQuota* QuotaFor(int64_t tenant) const;
  /// Charges the tenant's query bucket; false = shed on quota.
  bool ChargeQueryLocked(int64_t tenant, Timestamp now);
  Bucket& BucketFor(int64_t tenant, const TenantQuota& q, Timestamp now);
  static void Refill(Bucket* b, const TenantQuota& q, Timestamp now);
  static double BurstOr(double burst, double rate) {
    if (burst > 0) return burst;
    return rate > 1 ? rate : 1;
  }

  const AdmissionOptions opts_;
  const std::shared_ptr<Clock> clock_;

  mutable std::mutex mu_;
  size_t active_ = 0;
  std::deque<Waiter> queue_;
  std::map<int64_t, Bucket> buckets_;
};

}  // namespace lt

#endif  // LITTLETABLE_NET_ADMISSION_H_
