// Minimal TCP socket helpers for the server and client (loopback or LAN).
#ifndef LITTLETABLE_NET_SOCKET_H_
#define LITTLETABLE_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace lt {
namespace net {

/// RAII wrapper around a connected or listening socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Writes all of `data` (handles partial writes).
  Status WriteAll(const char* data, size_t n);
  /// Reads exactly n bytes; a clean EOF mid-read is a NetworkError.
  Status ReadAll(char* data, size_t n);

 private:
  int fd_ = -1;
};

/// Binds and listens on 127.0.0.1:port (port 0 picks an ephemeral port;
/// *bound_port receives the actual one).
Status Listen(uint16_t port, Socket* listener, uint16_t* bound_port);

/// Accepts one connection.
Status Accept(const Socket& listener, Socket* conn);

/// Connects to host:port.
Status Connect(const std::string& host, uint16_t port, Socket* conn);

}  // namespace net
}  // namespace lt

#endif  // LITTLETABLE_NET_SOCKET_H_
