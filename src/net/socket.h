// Minimal TCP socket helpers for the server and client (loopback or LAN).
//
// All blocking calls support deadlines via poll(2): a socket carries
// optional per-call read/write timeouts, and Connect() accepts a connect
// timeout. Deadline expiry surfaces as Status::DeadlineExceeded; a peer
// that closed the connection before any byte of a read surfaces as
// Status::Unavailable, so callers can tell "hung peer" from "gone peer"
// and retry accordingly.
#ifndef LITTLETABLE_NET_SOCKET_H_
#define LITTLETABLE_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace lt {
namespace net {

/// RAII wrapper around a connected or listening socket fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept
      : fd_(other.fd_),
        read_timeout_ms_(other.read_timeout_ms_),
        write_timeout_ms_(other.write_timeout_ms_) {
    other.fd_ = -1;
  }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Per-call deadlines for ReadAll/WriteAll in milliseconds; <= 0 means
  /// block forever (the default).
  void set_read_timeout_ms(int ms) { read_timeout_ms_ = ms; }
  void set_write_timeout_ms(int ms) { write_timeout_ms_ = ms; }

  /// Waits up to timeout_ms for the socket to become readable (a negative
  /// timeout waits forever). On return *ready is false iff the wait timed
  /// out. Lets a server poll in short slices and check shutdown flags
  /// between them.
  Status WaitReadable(int timeout_ms, bool* ready);

  /// Writes all of `data` (handles partial writes). Honors the write
  /// timeout as a deadline for the entire call.
  Status WriteAll(const char* data, size_t n);
  /// Reads exactly n bytes. Honors the read timeout as a deadline for the
  /// entire call (DeadlineExceeded on expiry). EOF before the first byte is
  /// Unavailable ("connection closed by peer"); EOF mid-read is a
  /// NetworkError (torn frame).
  Status ReadAll(char* data, size_t n);

 private:
  /// Polls for `events` until the deadline; *ready=false on timeout.
  Status Wait(short events, int timeout_ms, bool* ready);

  int fd_ = -1;
  int read_timeout_ms_ = 0;
  int write_timeout_ms_ = 0;
};

/// Binds and listens on 127.0.0.1:port (port 0 picks an ephemeral port;
/// *bound_port receives the actual one).
Status Listen(uint16_t port, Socket* listener, uint16_t* bound_port);

/// Accepts one connection.
Status Accept(const Socket& listener, Socket* conn);

/// Connects to host:port. A positive timeout_ms bounds the TCP handshake
/// (DeadlineExceeded on expiry); <= 0 blocks.
Status Connect(const std::string& host, uint16_t port, Socket* conn,
               int timeout_ms = 0);

}  // namespace net
}  // namespace lt

#endif  // LITTLETABLE_NET_SOCKET_H_
