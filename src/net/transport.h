// Transport abstraction: the byte-stream interface Server and Client speak,
// decoupled from real TCP so the whole system can run inside one
// deterministic process.
//
// Connection/Listener/Transport mirror the Socket helpers exactly — same
// deadline semantics, same EOF taxonomy (Unavailable before the first byte,
// NetworkError mid-read) — so porting callers is mechanical. Two
// implementations exist:
//   - Transport::Tcp(): wraps net::Socket (production);
//   - sim::SimTransport: an in-process network under SimClock with fault
//     injection (delays, partitions, resets, truncation, reordered
//     accepts), used by the deterministic simulation harness (lt_sim).
#ifndef LITTLETABLE_NET_TRANSPORT_H_
#define LITTLETABLE_NET_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace lt {
namespace net {

/// One bidirectional byte stream (the Socket contract, virtualized).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Per-call deadlines for ReadAll/WriteAll in milliseconds; <= 0 means
  /// block forever.
  virtual void set_read_timeout_ms(int ms) = 0;
  virtual void set_write_timeout_ms(int ms) = 0;

  /// Waits up to timeout_ms for data (negative = forever). On return *ready
  /// is false iff the wait timed out.
  virtual Status WaitReadable(int timeout_ms, bool* ready) = 0;

  /// Writes all of `data`; the write timeout bounds the entire call.
  virtual Status WriteAll(const char* data, size_t n) = 0;

  /// Reads exactly n bytes. DeadlineExceeded on timeout; EOF before the
  /// first byte is Unavailable, EOF mid-read is a NetworkError (torn frame).
  virtual Status ReadAll(char* data, size_t n) = 0;

  /// Non-blocking read of up to n bytes: whatever is available right now is
  /// copied into `data` and *got reports the count. OK with *got == 0 means
  /// nothing available yet (never end-of-stream). EOF surfaces as
  /// Unavailable; a reset as NetworkError. Used with a Poller by the
  /// event-loop server, which never wants to block on one connection.
  virtual Status ReadSome(char* data, size_t n, size_t* got) = 0;

  /// Non-blocking write of up to n bytes: whatever fits in the send buffer
  /// right now is accepted and *written reports the count. OK with
  /// *written == 0 means the peer's buffer is full (try again when the
  /// Poller reports the connection writable). A closed/reset connection is
  /// a NetworkError. The server's streaming write path uses this so a slow
  /// reader stalls its own connection's scan, never a worker thread.
  ///
  /// The default delegates to WriteAll (blocking): transports that never
  /// buffer-limit (tests' in-memory doubles) stay correct without changes.
  virtual Status WriteSome(const char* data, size_t n, size_t* written) {
    *written = 0;
    Status s = WriteAll(data, n);
    if (s.ok()) *written = n;
    return s;
  }

  /// Wakes any thread blocked in ReadAll/WaitReadable on this connection
  /// and makes further I/O fail — shutdown(2) semantics. Safe to call from
  /// another thread while I/O is in flight; the server uses this to unblock
  /// connection threads during Stop().
  virtual void Shutdown() = 0;
};

/// A bound, listening endpoint.
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks until a connection arrives or the listener is closed (then
  /// returns a non-OK status).
  virtual Status Accept(std::unique_ptr<Connection>* conn) = 0;

  /// Makes any blocked (and every future) Accept return promptly with a
  /// non-OK status. Safe to call from another thread. The port is released
  /// when the Listener is destroyed.
  virtual void Close() = 0;

  /// The actual bound port (resolves port 0 to the ephemeral pick).
  virtual uint16_t port() const = 0;
};

/// Readiness multiplexer: one blocking Wait covers many connections, so a
/// single event-loop thread can own frame reassembly for every client.
/// Add/Remove/Wait belong to that one thread; only Wakeup is thread-safe.
/// A Poller may only watch connections created by the Transport that built
/// it (the TCP poller needs fds, the sim poller needs sim pipes).
class Poller {
 public:
  virtual ~Poller() = default;

  /// Registers `conn` (not owned; must stay alive until Remove). `tag` is
  /// returned from Wait when the connection is ready.
  virtual void Add(Connection* conn, uint64_t tag) = 0;
  virtual void Remove(Connection* conn) = 0;

  /// Blocks until at least one registered connection is ready — data
  /// readable, or a pending EOF/reset that the next ReadSome will report —
  /// the timeout expires (negative = forever), or Wakeup is called.
  /// Appends ready tags to *ready (cleared first); empty on timeout/wakeup.
  virtual Status Wait(int timeout_ms, std::vector<uint64_t>* ready) = 0;

  /// Wakes a concurrent Wait early (thread-safe; sticky until the next
  /// Wait returns).
  virtual void Wakeup() = 0;

  /// Declares write interest for a registered connection: while set, Wait
  /// also reports the connection's tag when it can accept more bytes
  /// (WriteSome would make progress) or has a pending error. Event-loop
  /// thread only, like Add/Remove. Default no-op: transports whose
  /// WriteSome never returns 0 (the WriteAll-delegating default) need no
  /// write readiness.
  virtual void SetWritable(Connection* conn, bool want) {
    (void)conn;
    (void)want;
  }
};

/// Factory for listeners and outbound connections.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Binds and listens on `port` (0 = pick an ephemeral port).
  virtual Status Listen(uint16_t port, std::unique_ptr<Listener>* listener) = 0;

  /// Connects to host:port. A positive timeout_ms bounds the handshake
  /// (DeadlineExceeded on expiry); <= 0 blocks.
  virtual Status Connect(const std::string& host, uint16_t port,
                         int timeout_ms, std::unique_ptr<Connection>* conn) = 0;

  /// Creates a readiness multiplexer for this transport's connections.
  virtual Status NewPoller(std::unique_ptr<Poller>* poller) = 0;

  /// The process-wide real-TCP transport (loopback/LAN via net::Socket).
  static Transport* Tcp();
};

}  // namespace net
}  // namespace lt

#endif  // LITTLETABLE_NET_TRANSPORT_H_
