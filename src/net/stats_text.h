// Text exposition of ServerStats in the Prometheus line format
// (`name{label="v"} value`), so `lt_stats` output can be scraped or read
// directly. Metric names get a `littletable_` prefix with dots mapped to
// underscores; per-table metrics carry a `table` label; histograms expand
// to a _count line, one line per exported quantile, and a _max line.
#ifndef LITTLETABLE_NET_STATS_TEXT_H_
#define LITTLETABLE_NET_STATS_TEXT_H_

#include <string>

#include "net/client.h"

namespace lt {

/// Renders `stats` as exposition text. `table` (optional) is the table the
/// stats were fetched for; when non-empty, every `table.*` metric gets a
/// `{table="<name>"}` label.
std::string RenderStatsText(const ServerStats& stats,
                            const std::string& table = "");

}  // namespace lt

#endif  // LITTLETABLE_NET_STATS_TEXT_H_
