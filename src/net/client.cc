#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/row_codec.h"
#include "util/coding.h"

namespace lt {

using wire::ErrCode;
using wire::MsgType;

Status Client::Connect(const std::string& host, uint16_t port,
                       std::unique_ptr<Client>* out) {
  return Connect(host, port, ClientOptions(), out);
}

Status Client::Connect(const std::string& host, uint16_t port,
                       const ClientOptions& options,
                       std::unique_ptr<Client>* out) {
  std::unique_ptr<Client> client(new Client(options));
  client->host_ = host;
  client->port_ = port;
  LT_RETURN_IF_ERROR(client->Ping());
  *out = std::move(client);
  return Status::OK();
}

Client::Client(const ClientOptions& options)
    : opts_(options),
      transport_(options.transport ? options.transport
                                   : net::Transport::Tcp()),
      retry_clock_(options.clock ? options.clock : SystemClock::Instance()),
      rng_(options.backoff_seed) {}

Status Client::EnsureConnectedLocked() {
  if (conn_) return Status::OK();
  std::unique_ptr<net::Connection> conn;
  LT_RETURN_IF_ERROR(
      transport_->Connect(host_, port_, opts_.connect_timeout_ms, &conn));
  conn->set_read_timeout_ms(opts_.read_timeout_ms);
  conn->set_write_timeout_ms(opts_.write_timeout_ms);
  conn_ = std::move(conn);
  connect_count_.fetch_add(1, std::memory_order_relaxed);
  return BindTenantLocked();
}

Status Client::BindTenantLocked() {
  if (opts_.network_id == 0) return Status::OK();
  std::string req;
  PutVarint64(&req, static_cast<uint64_t>(opts_.network_id));
  MsgType type;
  std::string body;
  Status s = RoundTrip(MsgType::kSetTenant, req, &type, &body);
  if (!s.ok()) return s;
  // kError here means a pre-tenant server: it has no quotas to attribute
  // to, so the binding is moot — carry on unbound rather than failing
  // every connect against an older peer.
  return Status::OK();
}

void Client::Backoff(int attempt) {
  int64_t delay = opts_.backoff_initial_ms;
  for (int i = 0; i < attempt && delay < opts_.backoff_max_ms; i++) {
    delay *= 2;
  }
  delay = std::min<int64_t>(delay, opts_.backoff_max_ms);
  if (delay <= 0) return;
  {
    // Uniform jitter in [delay/2, delay] decorrelates clients retrying
    // against a recovering server. rng_ is guarded by mu_; the sleep
    // itself happens unlocked.
    std::lock_guard<std::mutex> lock(mu_);
    delay = delay / 2 + static_cast<int64_t>(rng_.Uniform(
                            static_cast<uint64_t>(delay / 2 + 1)));
  }
  if (opts_.backoff_sleep) {
    opts_.backoff_sleep(delay);
  } else {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
}

bool Client::IsConnectionError(const Status& s) {
  return s.IsNetworkError() || s.IsUnavailable() || s.IsDeadlineExceeded();
}

template <typename Fn>
Status Client::WithRetries(Fn&& fn) {
  // The total deadline caps the whole logical request — every attempt and
  // every backoff sleep — so a caller with an end-to-end budget is not held
  // for max_retries * (timeout + backoff).
  const Timestamp deadline =
      opts_.total_deadline_ms > 0
          ? retry_clock_->Now() + opts_.total_deadline_ms * 1000
          : 0;
  Status s;
  for (int attempt = 0;; attempt++) {
    {
      // mu_ covers one whole attempt (connect + round trip) but is
      // released before the backoff sleep — otherwise one failing request
      // would stall every other thread's call on this Client for up to
      // max_retries * (timeout + backoff).
      std::lock_guard<std::mutex> lock(mu_);
      s = EnsureConnectedLocked();
      if (s.ok()) {
        s = fn();
        if (s.ok() || !IsConnectionError(s)) return s;
        // The connection may be desynced (half-read frame) — drop it so
        // the next attempt starts from a clean handshake.
        conn_.reset();
      } else if (!IsConnectionError(s)) {
        return s;
      }
    }
    if (attempt >= opts_.max_retries) return s;
    if (deadline != 0 && retry_clock_->Now() >= deadline) return s;
    Backoff(attempt);
  }
}

Status Client::ReadFrame(MsgType* type, std::string* body) {
  char len_buf[4];
  LT_RETURN_IF_ERROR(conn_->ReadAll(len_buf, 4));
  uint32_t len = DecodeFixed32(len_buf);
  if (len == 0 || len > wire::kMaxFrameBytes) {
    return Status::NetworkError("bad frame length");
  }
  std::string payload(len, '\0');
  Status s = conn_->ReadAll(payload.data(), len);
  if (!s.ok()) {
    // A close after the header is a torn frame, not a clean goodbye.
    if (s.IsUnavailable()) {
      return Status::NetworkError("connection closed mid-frame");
    }
    return s;
  }
  *type = static_cast<MsgType>(payload[0]);
  body->assign(payload, 1, payload.size() - 1);
  return Status::OK();
}

Status Client::ErrorFromBody(Slice body) {
  if (body.empty()) return Status::NetworkError("malformed error frame");
  ErrCode code = static_cast<ErrCode>(body[0]);
  body.remove_prefix(1);
  Slice message;
  GetLengthPrefixedSlice(&body, &message);
  return wire::StatusForCode(code, message.ToString());
}

Status Client::RoundTrip(MsgType type, const std::string& body,
                         MsgType* resp_type, std::string* resp_body) {
  LT_RETURN_IF_ERROR(EnsureConnectedLocked());
  std::string frame = wire::Frame(type, body);
  Status s = conn_->WriteAll(frame.data(), frame.size());
  if (s.ok()) s = ReadFrame(resp_type, resp_body);
  if (!s.ok()) conn_.reset();
  return s;
}

Status Client::PingLocked() {
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kPing, "", &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  if (type != MsgType::kOk) return Status::NetworkError("bad ping response");
  return Status::OK();
}

Status Client::Ping() {
  return WithRetries([&] { return PingLocked(); });
}

Status Client::Ping(int deadline_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!conn_) {
    std::unique_ptr<net::Connection> conn;
    LT_RETURN_IF_ERROR(transport_->Connect(host_, port_, deadline_ms, &conn));
    conn->set_read_timeout_ms(opts_.read_timeout_ms);
    conn->set_write_timeout_ms(opts_.write_timeout_ms);
    conn_ = std::move(conn);
    connect_count_.fetch_add(1, std::memory_order_relaxed);
    LT_RETURN_IF_ERROR(BindTenantLocked());
  }
  conn_->set_read_timeout_ms(deadline_ms);
  conn_->set_write_timeout_ms(deadline_ms);
  Status s = PingLocked();
  if (conn_) {
    // RoundTrip resets conn_ on failure, so a surviving connection is the
    // one whose deadlines we tightened — restore them.
    conn_->set_read_timeout_ms(opts_.read_timeout_ms);
    conn_->set_write_timeout_ms(opts_.write_timeout_ms);
  }
  return s;
}

Status Client::Call(MsgType type, const std::string& body,
                    MsgType* resp_type, std::string* resp_body) {
  std::lock_guard<std::mutex> lock(mu_);
  return RoundTrip(type, body, resp_type, resp_body);
}

Status Client::CallStream(
    MsgType type, const std::string& body,
    const std::function<Status(MsgType, Slice, bool*)>& on_frame) {
  std::lock_guard<std::mutex> lock(mu_);
  LT_RETURN_IF_ERROR(EnsureConnectedLocked());
  std::string frame = wire::Frame(type, body);
  Status s = conn_->WriteAll(frame.data(), frame.size());
  while (s.ok()) {
    MsgType rt;
    std::string rb;
    s = ReadFrame(&rt, &rb);
    if (!s.ok()) break;
    bool done = false;
    Status cb = on_frame(rt, Slice(rb), &done);
    if (!cb.ok()) {
      // Aborting mid-stream leaves undrained frames on the wire; the
      // connection is desynced, so drop it.
      conn_.reset();
      return cb;
    }
    if (done) return Status::OK();
  }
  conn_.reset();
  return s;
}

Status Client::ListTables(std::vector<std::string>* names) {
  return WithRetries([&] {
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kListTables, "", &type, &body));
    if (type == MsgType::kError) return ErrorFromBody(body);
    if (type != MsgType::kTableList) {
      return Status::NetworkError("unexpected response");
    }
    Slice in(body);
    uint32_t count;
    if (!GetVarint32(&in, &count)) return Status::Corruption("bad table list");
    names->clear();
    for (uint32_t i = 0; i < count; i++) {
      Slice name;
      if (!GetLengthPrefixedSlice(&in, &name)) {
        return Status::Corruption("bad table list");
      }
      names->push_back(name.ToString());
    }
    return Status::OK();
  });
}

Status Client::CreateTable(const std::string& table, const Schema& schema,
                           Timestamp ttl) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string req;
  PutLengthPrefixedSlice(&req, table);
  schema.EncodeTo(&req);
  PutVarint64(&req, static_cast<uint64_t>(ttl));
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kCreateTable, req, &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  return Status::OK();
}

Status Client::DropTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  schema_cache_.erase(table);
  std::string req;
  PutLengthPrefixedSlice(&req, table);
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kDropTable, req, &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  return Status::OK();
}

Status Client::GetTableInfo(const std::string& table, Schema* schema,
                            Timestamp* ttl) {
  return WithRetries([&] {
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kGetTable, req, &type, &body));
    if (type == MsgType::kError) return ErrorFromBody(body);
    if (type != MsgType::kTableInfo) {
      return Status::NetworkError("unexpected response");
    }
    Slice in(body);
    LT_RETURN_IF_ERROR(Schema::DecodeFrom(&in, schema));
    uint64_t ttl_u;
    if (!GetVarint64(&in, &ttl_u)) return Status::Corruption("bad table info");
    if (ttl != nullptr) *ttl = static_cast<Timestamp>(ttl_u);
    schema_cache_[table] = std::make_shared<const Schema>(*schema);
    return Status::OK();
  });
}

Result<std::shared_ptr<const Schema>> Client::SchemaLocked(
    const std::string& table) {
  auto it = schema_cache_.find(table);
  if (it != schema_cache_.end()) return it->second;
  // Inline fetch (mu_ held): mirror GetTableInfo's body.
  std::string req;
  PutLengthPrefixedSlice(&req, table);
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kGetTable, req, &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  if (type != MsgType::kTableInfo) {
    return Status::NetworkError("unexpected response");
  }
  Slice in(body);
  Schema schema;
  LT_RETURN_IF_ERROR(Schema::DecodeFrom(&in, &schema));
  auto shared = std::make_shared<const Schema>(std::move(schema));
  schema_cache_[table] = shared;
  return shared;
}

Result<std::shared_ptr<const Schema>> Client::TableSchema(
    const std::string& table) {
  std::shared_ptr<const Schema> schema;
  Status s = WithRetries([&]() -> Status {
    auto r = SchemaLocked(table);
    if (!r.ok()) return r.status();
    schema = std::move(*r);
    return Status::OK();
  });
  if (!s.ok()) return s;
  return schema;
}

void Client::InvalidateSchema(const std::string& table) {
  schema_cache_.erase(table);
}

Status Client::Insert(const std::string& table, const std::vector<Row>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int attempt = 0; attempt < 2; attempt++) {
    LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                        SchemaLocked(table));
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    PutVarint32(&req, schema->version());
    PutVarint32(&req, static_cast<uint32_t>(rows.size()));
    for (const Row& row : rows) {
      if (!schema->RowMatches(row)) {
        return Status::InvalidArgument("row does not match table schema");
      }
      EncodeRow(&req, *schema, row);
    }
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kInsert, req, &type, &body));
    if (type == MsgType::kOk) return Status::OK();
    if (type != MsgType::kError) {
      return Status::NetworkError("unexpected response");
    }
    if (!body.empty() &&
        static_cast<ErrCode>(body[0]) == ErrCode::kSchemaChanged &&
        attempt == 0) {
      InvalidateSchema(table);
      continue;  // Refetch and retry once.
    }
    return ErrorFromBody(body);
  }
  return Status::Aborted("schema changed repeatedly");
}

Status Client::Query(const std::string& table, const QueryBounds& bounds,
                     QueryResult* result) {
  return WithRetries([&] { return QueryLocked(table, bounds, result); });
}

Status Client::QueryLocked(const std::string& table, const QueryBounds& bounds,
                           QueryResult* result) {
  result->rows.clear();
  result->more_available = false;
  for (int attempt = 0; attempt < 2; attempt++) {
    LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                        SchemaLocked(table));
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    PutVarint32(&req, schema->version());
    wire::EncodeBounds(&req, *schema, bounds);

    std::string frame = wire::Frame(MsgType::kQuery, req);
    LT_RETURN_IF_ERROR(conn_->WriteAll(frame.data(), frame.size()));

    result->rows.clear();
    bool schema_changed = false;
    while (true) {
      MsgType type;
      std::string body;
      LT_RETURN_IF_ERROR(ReadFrame(&type, &body));
      if (type == MsgType::kError) {
        if (!body.empty() &&
            static_cast<ErrCode>(body[0]) == ErrCode::kSchemaChanged &&
            attempt == 0) {
          schema_changed = true;
          break;
        }
        return ErrorFromBody(body);
      }
      if (type != MsgType::kQueryChunk) {
        return Status::NetworkError("unexpected response");
      }
      Slice in(body);
      if (in.empty()) return Status::Corruption("bad chunk");
      uint8_t flags = static_cast<uint8_t>(in[0]);
      in.remove_prefix(1);
      uint32_t version, count;
      if (!GetVarint32(&in, &version) || !GetVarint32(&in, &count)) {
        return Status::Corruption("bad chunk");
      }
      if (version != schema->version()) {
        return Status::Aborted("schema changed mid-query");
      }
      for (uint32_t i = 0; i < count; i++) {
        Row row;
        LT_RETURN_IF_ERROR(DecodeRow(&in, *schema, &row));
        result->rows.push_back(std::move(row));
      }
      if (flags & wire::kChunkFinal) {
        result->more_available = flags & wire::kChunkMoreAvailable;
        return Status::OK();
      }
    }
    if (schema_changed) {
      InvalidateSchema(table);
      continue;
    }
  }
  return Status::Aborted("schema changed repeatedly");
}

Status Client::QueryPage(const std::string& table, QueryBounds* bounds,
                         QueryResult* result) {
  LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                      TableSchema(table));
  LT_RETURN_IF_ERROR(Query(table, *bounds, result));
  if (result->more_available && !result->rows.empty()) {
    // §3.5: update the starting key bound to the last row returned and
    // re-submit (exclusive so the row is not repeated).
    Key last_key = schema->KeyOf(result->rows.back());
    if (bounds->direction == Direction::kAscending) {
      bounds->min_key = KeyBound{std::move(last_key), /*inclusive=*/false};
    } else {
      bounds->max_key = KeyBound{std::move(last_key), /*inclusive=*/false};
    }
  }
  return Status::OK();
}

Status Client::QueryAll(const std::string& table, const QueryBounds& bounds,
                        std::vector<Row>* rows) {
  rows->clear();
  QueryBounds page = bounds;
  const uint64_t want = bounds.limit;  // 0 = all rows.
  while (true) {
    if (want > 0) page.limit = want - rows->size();
    QueryResult result;
    LT_RETURN_IF_ERROR(QueryPage(table, &page, &result));
    const bool progressed = !result.rows.empty();
    for (Row& row : result.rows) rows->push_back(std::move(row));
    if (!result.more_available) return Status::OK();
    if (want > 0 && rows->size() >= want) return Status::OK();
    if (!progressed) return Status::OK();  // Defensive: no progress.
  }
}

Status Client::LatestRow(const std::string& table, const Key& prefix,
                         Row* row, bool* found) {
  return WithRetries(
      [&] { return LatestRowLocked(table, prefix, row, found); });
}

Status Client::LatestRowLocked(const std::string& table, const Key& prefix,
                               Row* row, bool* found) {
  *found = false;
  for (int attempt = 0; attempt < 2; attempt++) {
    LT_ASSIGN_OR_RETURN(std::shared_ptr<const Schema> schema,
                        SchemaLocked(table));
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    PutVarint32(&req, schema->version());
    wire::EncodeKeyPrefix(&req, *schema, prefix);
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kLatestRow, req, &type, &body));
    if (type == MsgType::kError) {
      if (!body.empty() &&
          static_cast<ErrCode>(body[0]) == ErrCode::kSchemaChanged &&
          attempt == 0) {
        InvalidateSchema(table);
        continue;
      }
      return ErrorFromBody(body);
    }
    if (type != MsgType::kRowResult) {
      return Status::NetworkError("unexpected response");
    }
    Slice in(body);
    if (in.empty()) return Status::Corruption("bad row result");
    bool has_row = in[0] != 0;
    in.remove_prefix(1);
    uint32_t version;
    if (!GetVarint32(&in, &version)) return Status::Corruption("bad row result");
    if (version != schema->version()) {
      InvalidateSchema(table);
      if (attempt == 0) continue;
      return Status::Aborted("schema changed repeatedly");
    }
    if (has_row) LT_RETURN_IF_ERROR(DecodeRow(&in, *schema, row));
    *found = has_row;
    return Status::OK();
  }
  return Status::Aborted("schema changed repeatedly");
}

Status Client::FlushThrough(const std::string& table, Timestamp ts) {
  // Idempotent: flushing through the same timestamp twice is a no-op.
  return WithRetries([&] {
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    PutVarint64(&req, ZigZagEncode(ts));
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kFlushThrough, req, &type, &body));
    if (type == MsgType::kError) return ErrorFromBody(body);
    return Status::OK();
  });
}

Status Client::AppendColumn(const std::string& table, const Column& column) {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateSchema(table);
  std::string req;
  PutLengthPrefixedSlice(&req, table);
  PutLengthPrefixedSlice(&req, column.name);
  req.push_back(static_cast<char>(column.type));
  EncodeValue(&req, column.default_value, column.type);
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kAppendColumn, req, &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  return Status::OK();
}

Status Client::WidenColumn(const std::string& table,
                           const std::string& column) {
  std::lock_guard<std::mutex> lock(mu_);
  InvalidateSchema(table);
  std::string req;
  PutLengthPrefixedSlice(&req, table);
  PutLengthPrefixedSlice(&req, column);
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kWidenColumn, req, &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  return Status::OK();
}

Status Client::SetTtl(const std::string& table, Timestamp ttl) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string req;
  PutLengthPrefixedSlice(&req, table);
  PutVarint64(&req, static_cast<uint64_t>(ttl));
  MsgType type;
  std::string body;
  LT_RETURN_IF_ERROR(RoundTrip(MsgType::kSetTtl, req, &type, &body));
  if (type == MsgType::kError) return ErrorFromBody(body);
  return Status::OK();
}

Status Client::Stats(const std::string& table,
                     std::map<std::string, uint64_t>* stats) {
  return WithRetries([&] {
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kStats, req, &type, &body));
    if (type == MsgType::kError) return ErrorFromBody(body);
    if (type != MsgType::kStatsResult) {
      return Status::NetworkError("unexpected response");
    }
    Slice in(body);
    uint32_t count;
    if (!GetVarint32(&in, &count)) {
      return Status::Corruption("bad stats reply");
    }
    stats->clear();
    for (uint32_t i = 0; i < count; i++) {
      Slice name;
      uint64_t value;
      if (!GetLengthPrefixedSlice(&in, &name) || !GetVarint64(&in, &value)) {
        return Status::Corruption("bad stats reply");
      }
      (*stats)[name.ToString()] = value;
    }
    return Status::OK();
  });
}

Status Client::Stats(const std::string& table, ServerStats* stats) {
  return WithRetries([&] {
    std::string req;
    PutLengthPrefixedSlice(&req, table);
    MsgType type;
    std::string body;
    LT_RETURN_IF_ERROR(RoundTrip(MsgType::kStatsV2, req, &type, &body));
    if (type == MsgType::kError) return ErrorFromBody(body);
    if (type != MsgType::kStatsV2Result) {
      return Status::NetworkError("unexpected response");
    }
    Slice in(body);
    uint32_t count;
    if (!GetVarint32(&in, &count)) {
      return Status::Corruption("bad stats reply");
    }
    stats->counters.clear();
    stats->histograms.clear();
    for (uint32_t i = 0; i < count; i++) {
      Slice name;
      uint64_t value;
      if (!GetLengthPrefixedSlice(&in, &name) || !GetVarint64(&in, &value)) {
        return Status::Corruption("bad stats reply");
      }
      stats->counters[name.ToString()] = value;
    }
    uint32_t nhist;
    if (!GetVarint32(&in, &nhist)) {
      return Status::Corruption("bad stats reply");
    }
    for (uint32_t i = 0; i < nhist; i++) {
      Slice name;
      HistogramQuantiles q;
      if (!GetLengthPrefixedSlice(&in, &name) ||
          !GetVarint64(&in, &q.count) || !GetVarint64(&in, &q.p50) ||
          !GetVarint64(&in, &q.p90) || !GetVarint64(&in, &q.p99) ||
          !GetVarint64(&in, &q.p999) || !GetVarint64(&in, &q.max)) {
        return Status::Corruption("bad stats reply");
      }
      stats->histograms[name.ToString()] = q;
    }
    return Status::OK();
  });
}

}  // namespace lt
