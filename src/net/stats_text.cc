#include "net/stats_text.h"

namespace lt {
namespace {

// "table.insert_micros" -> "littletable_table_insert_micros".
std::string MetricName(const std::string& raw) {
  std::string out = "littletable_";
  for (char c : raw) out.push_back(c == '.' ? '_' : c);
  return out;
}

bool IsTableMetric(const std::string& raw) {
  return raw.rfind("table.", 0) == 0;
}

// {table="usage"} / {table="usage",quantile="0.99"} / {quantile="0.99"}.
std::string Labels(const std::string& table, const char* quantile) {
  if (table.empty() && quantile == nullptr) return "";
  std::string out = "{";
  if (!table.empty()) {
    out += "table=\"" + table + "\"";
    if (quantile != nullptr) out += ",";
  }
  if (quantile != nullptr) {
    out += "quantile=\"";
    out += quantile;
    out += "\"";
  }
  out += "}";
  return out;
}

void AppendLine(std::string* out, const std::string& name,
                const std::string& labels, uint64_t value) {
  *out += name;
  *out += labels;
  *out += ' ';
  *out += std::to_string(value);
  *out += '\n';
}

}  // namespace

std::string RenderStatsText(const ServerStats& stats,
                            const std::string& table) {
  std::string out;
  for (const auto& [raw, value] : stats.counters) {
    const std::string label_table = IsTableMetric(raw) ? table : "";
    AppendLine(&out, MetricName(raw), Labels(label_table, nullptr), value);
  }
  for (const auto& [raw, q] : stats.histograms) {
    const std::string name = MetricName(raw);
    const std::string label_table = IsTableMetric(raw) ? table : "";
    AppendLine(&out, name + "_count", Labels(label_table, nullptr), q.count);
    AppendLine(&out, name, Labels(label_table, "0.5"), q.p50);
    AppendLine(&out, name, Labels(label_table, "0.9"), q.p90);
    AppendLine(&out, name, Labels(label_table, "0.99"), q.p99);
    AppendLine(&out, name, Labels(label_table, "0.999"), q.p999);
    AppendLine(&out, name + "_max", Labels(label_table, nullptr), q.max);
  }
  return out;
}

}  // namespace lt
