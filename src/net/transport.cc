#include "net/transport.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <mutex>

#include "net/socket.h"

namespace lt {
namespace net {
namespace {

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(Socket sock) : sock_(std::move(sock)) {}

  void set_read_timeout_ms(int ms) override { sock_.set_read_timeout_ms(ms); }
  void set_write_timeout_ms(int ms) override { sock_.set_write_timeout_ms(ms); }

  Status WaitReadable(int timeout_ms, bool* ready) override {
    return sock_.WaitReadable(timeout_ms, ready);
  }
  Status WriteAll(const char* data, size_t n) override {
    return sock_.WriteAll(data, n);
  }
  Status ReadAll(char* data, size_t n) override {
    return sock_.ReadAll(data, n);
  }

  Status ReadSome(char* data, size_t n, size_t* got) override {
    *got = 0;
    if (!sock_.valid()) return Status::NetworkError("connection shut down");
    ssize_t r = recv(sock_.fd(), data, n, MSG_DONTWAIT);
    if (r > 0) {
      *got = static_cast<size_t>(r);
      return Status::OK();
    }
    if (r == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();
    }
    return Status::NetworkError(std::string("recv: ") + strerror(errno));
  }

  Status WriteSome(const char* data, size_t n, size_t* written) override {
    *written = 0;
    if (!sock_.valid()) return Status::NetworkError("connection shut down");
    // MSG_NOSIGNAL: a write to a reset connection must surface as EPIPE,
    // not kill the process.
    ssize_t r = send(sock_.fd(), data, n, MSG_DONTWAIT | MSG_NOSIGNAL);
    if (r >= 0) {
      *written = static_cast<size_t>(r);
      return Status::OK();
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return Status::OK();  // Send buffer full; poll for writability.
    }
    return Status::NetworkError(std::string("send: ") + strerror(errno));
  }

  void Shutdown() override {
    // Blocked reads observe EOF; the fd itself is closed by the destructor
    // (the owning thread), never concurrently with in-flight I/O.
    if (sock_.valid()) shutdown(sock_.fd(), SHUT_RDWR);
  }

  int fd() const { return sock_.fd(); }

 private:
  Socket sock_;
};

// poll(2) over the registered connections' fds, with a self-pipe for
// cross-thread wakeups.
class TcpPoller final : public Poller {
 public:
  static Status Make(std::unique_ptr<Poller>* out) {
    int fds[2];
    if (pipe(fds) != 0) {
      return Status::IOError(std::string("pipe: ") + strerror(errno));
    }
    // Both ends non-blocking: draining stops at empty instead of blocking,
    // and a full pipe drops the (already pending) wakeup byte.
    fcntl(fds[0], F_SETFL, O_NONBLOCK);
    fcntl(fds[1], F_SETFL, O_NONBLOCK);
    out->reset(new TcpPoller(fds[0], fds[1]));
    return Status::OK();
  }

  ~TcpPoller() override {
    close(wake_rd_);
    close(wake_wr_);
  }

  void Add(Connection* conn, uint64_t tag) override {
    entries_.push_back({static_cast<TcpConnection*>(conn), tag, false});
  }

  void Remove(Connection* conn) override {
    for (size_t i = 0; i < entries_.size(); i++) {
      if (entries_[i].conn == conn) {
        entries_[i] = entries_.back();
        entries_.pop_back();
        return;
      }
    }
  }

  void SetWritable(Connection* conn, bool want) override {
    for (Entry& e : entries_) {
      if (e.conn == conn) {
        e.want_write = want;
        return;
      }
    }
  }

  Status Wait(int timeout_ms, std::vector<uint64_t>* ready) override {
    ready->clear();
    pfds_.clear();
    pfds_.push_back({wake_rd_, POLLIN, 0});
    for (const Entry& e : entries_) {
      pfds_.push_back(
          {e.conn->fd(), static_cast<short>(e.want_write ? POLLIN | POLLOUT
                                                         : POLLIN),
           0});
    }
    int r;
    do {
      r = poll(pfds_.data(), pfds_.size(), timeout_ms < 0 ? -1 : timeout_ms);
    } while (r < 0 && errno == EINTR);
    if (r < 0) return Status::IOError(std::string("poll: ") + strerror(errno));
    if (pfds_[0].revents != 0) {
      // Drain every queued wakeup byte; the wakeup itself reports no tags.
      char buf[64];
      while (read(wake_rd_, buf, sizeof(buf)) == sizeof(buf)) {
      }
    }
    for (size_t i = 0; i < entries_.size(); i++) {
      if (pfds_[i + 1].revents & (POLLIN | POLLOUT | POLLERR | POLLHUP)) {
        ready->push_back(entries_[i].tag);
      }
    }
    return Status::OK();
  }

  void Wakeup() override {
    char b = 1;
    ssize_t ignored = write(wake_wr_, &b, 1);
    (void)ignored;
  }

 private:
  TcpPoller(int wake_rd, int wake_wr) : wake_rd_(wake_rd), wake_wr_(wake_wr) {}

  struct Entry {
    TcpConnection* conn;
    uint64_t tag;
    bool want_write;
  };
  std::vector<Entry> entries_;
  std::vector<struct pollfd> pfds_;
  const int wake_rd_;
  const int wake_wr_;
};

class TcpListener final : public Listener {
 public:
  TcpListener(Socket sock, uint16_t port)
      : sock_(std::move(sock)), port_(port) {}

  Status Accept(std::unique_ptr<Connection>* conn) override {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Aborted("listener closed");
    }
    Socket s;
    LT_RETURN_IF_ERROR(net::Accept(sock_, &s));
    // Close() wakes a blocked accept(2) by connecting to the port; that
    // poke connection (and any client racing the shutdown) is discarded.
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Aborted("listener closed");
    }
    *conn = std::make_unique<TcpConnection>(std::move(s));
    return Status::OK();
  }

  void Close() override {
    if (closed_.exchange(true)) return;
    // close(2) on the listening fd does not reliably interrupt a blocked
    // accept(2); a loopback connect does. The fd stays open until the
    // destructor so the accept thread never touches a closed fd.
    Socket poke;
    net::Connect("127.0.0.1", port_, &poke);
  }

  uint16_t port() const override { return port_; }

 private:
  Socket sock_;
  const uint16_t port_;
  std::atomic<bool> closed_{false};
};

class TcpTransport final : public Transport {
 public:
  Status Listen(uint16_t port, std::unique_ptr<Listener>* listener) override {
    Socket sock;
    uint16_t bound = 0;
    LT_RETURN_IF_ERROR(net::Listen(port, &sock, &bound));
    *listener = std::make_unique<TcpListener>(std::move(sock), bound);
    return Status::OK();
  }

  Status Connect(const std::string& host, uint16_t port, int timeout_ms,
                 std::unique_ptr<Connection>* conn) override {
    Socket sock;
    LT_RETURN_IF_ERROR(net::Connect(host, port, &sock, timeout_ms));
    *conn = std::make_unique<TcpConnection>(std::move(sock));
    return Status::OK();
  }

  Status NewPoller(std::unique_ptr<Poller>* poller) override {
    return TcpPoller::Make(poller);
  }
};

}  // namespace

Transport* Transport::Tcp() {
  static TcpTransport* tcp = new TcpTransport();
  return tcp;
}

}  // namespace net
}  // namespace lt
