#include "net/transport.h"

#include <sys/socket.h>

#include <atomic>

#include "net/socket.h"

namespace lt {
namespace net {
namespace {

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(Socket sock) : sock_(std::move(sock)) {}

  void set_read_timeout_ms(int ms) override { sock_.set_read_timeout_ms(ms); }
  void set_write_timeout_ms(int ms) override { sock_.set_write_timeout_ms(ms); }

  Status WaitReadable(int timeout_ms, bool* ready) override {
    return sock_.WaitReadable(timeout_ms, ready);
  }
  Status WriteAll(const char* data, size_t n) override {
    return sock_.WriteAll(data, n);
  }
  Status ReadAll(char* data, size_t n) override {
    return sock_.ReadAll(data, n);
  }

  void Shutdown() override {
    // Blocked reads observe EOF; the fd itself is closed by the destructor
    // (the owning thread), never concurrently with in-flight I/O.
    if (sock_.valid()) shutdown(sock_.fd(), SHUT_RDWR);
  }

 private:
  Socket sock_;
};

class TcpListener final : public Listener {
 public:
  TcpListener(Socket sock, uint16_t port)
      : sock_(std::move(sock)), port_(port) {}

  Status Accept(std::unique_ptr<Connection>* conn) override {
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Aborted("listener closed");
    }
    Socket s;
    LT_RETURN_IF_ERROR(net::Accept(sock_, &s));
    // Close() wakes a blocked accept(2) by connecting to the port; that
    // poke connection (and any client racing the shutdown) is discarded.
    if (closed_.load(std::memory_order_acquire)) {
      return Status::Aborted("listener closed");
    }
    *conn = std::make_unique<TcpConnection>(std::move(s));
    return Status::OK();
  }

  void Close() override {
    if (closed_.exchange(true)) return;
    // close(2) on the listening fd does not reliably interrupt a blocked
    // accept(2); a loopback connect does. The fd stays open until the
    // destructor so the accept thread never touches a closed fd.
    Socket poke;
    net::Connect("127.0.0.1", port_, &poke);
  }

  uint16_t port() const override { return port_; }

 private:
  Socket sock_;
  const uint16_t port_;
  std::atomic<bool> closed_{false};
};

class TcpTransport final : public Transport {
 public:
  Status Listen(uint16_t port, std::unique_ptr<Listener>* listener) override {
    Socket sock;
    uint16_t bound = 0;
    LT_RETURN_IF_ERROR(net::Listen(port, &sock, &bound));
    *listener = std::make_unique<TcpListener>(std::move(sock), bound);
    return Status::OK();
  }

  Status Connect(const std::string& host, uint16_t port, int timeout_ms,
                 std::unique_ptr<Connection>* conn) override {
    Socket sock;
    LT_RETURN_IF_ERROR(net::Connect(host, port, &sock, timeout_ms));
    *conn = std::make_unique<TcpConnection>(std::move(sock));
    return Status::OK();
  }
};

}  // namespace

Transport* Transport::Tcp() {
  static TcpTransport* tcp = new TcpTransport();
  return tcp;
}

}  // namespace net
}  // namespace lt
