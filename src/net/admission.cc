#include "net/admission.h"

#include <algorithm>

namespace lt {

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         std::shared_ptr<Clock> clock)
    : opts_(options), clock_(std::move(clock)) {}

const TenantQuota* AdmissionController::QuotaFor(int64_t tenant) const {
  auto it = opts_.tenant_quotas.find(tenant);
  if (it != opts_.tenant_quotas.end()) {
    return it->second.Unlimited() ? nullptr : &it->second;
  }
  // An unbound connection (tenant 0) is exempt from the default quota:
  // lumping every anonymous client into one shared bucket would make them
  // shed each other. Operators who want that bind an explicit entry for 0.
  if (tenant == 0) return nullptr;
  return opts_.default_quota.Unlimited() ? nullptr : &opts_.default_quota;
}

void AdmissionController::Refill(Bucket* b, const TenantQuota& q,
                                 Timestamp now) {
  const double dt_sec =
      b->last_refill > 0 && now > b->last_refill
          ? static_cast<double>(now - b->last_refill) / 1e6
          : 0;
  b->last_refill = now;
  if (q.queries_per_sec > 0) {
    b->query_tokens = std::min(BurstOr(q.query_burst, q.queries_per_sec),
                               b->query_tokens + dt_sec * q.queries_per_sec);
  }
  if (q.scanned_rows_per_sec > 0) {
    b->row_tokens =
        std::min(BurstOr(q.row_burst, q.scanned_rows_per_sec),
                 b->row_tokens + dt_sec * q.scanned_rows_per_sec);
  }
}

AdmissionController::Bucket& AdmissionController::BucketFor(
    int64_t tenant, const TenantQuota& q, Timestamp now) {
  Bucket& b = buckets_[tenant];
  if (!b.initialized) {
    // A fresh tenant starts with a full burst allowance.
    b.query_tokens = BurstOr(q.query_burst, q.queries_per_sec);
    b.row_tokens = BurstOr(q.row_burst, q.scanned_rows_per_sec);
    b.last_refill = now;
    b.initialized = true;
  } else {
    Refill(&b, q, now);
  }
  return b;
}

bool AdmissionController::ChargeQueryLocked(int64_t tenant, Timestamp now) {
  if (const TenantQuota* q = QuotaFor(tenant)) {
    Bucket& b = BucketFor(tenant, *q, now);
    if (q->queries_per_sec > 0) {
      if (b.query_tokens < 1) return false;
      b.query_tokens -= 1;
    }
    // A scan admitted while the row bucket is still paying off an earlier
    // scan's debt would shed on its first chunk anyway; shed it now, before
    // it costs a slot.
    if (q->scanned_rows_per_sec > 0 && b.row_tokens < 0) return false;
  }
  return true;
}

bool AdmissionController::ChargeQuery(int64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  return ChargeQueryLocked(tenant, clock_->Now());
}

AdmissionController::Decision AdmissionController::Request(uint64_t waiter_id,
                                                           int64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const Timestamp now = clock_->Now();
  if (!ChargeQueryLocked(tenant, now)) return Decision::kShedQuota;
  if (opts_.max_concurrent_scans == 0 || active_ < opts_.max_concurrent_scans) {
    active_++;
    return Decision::kAdmitted;
  }
  if (queue_.size() >= opts_.max_queued_scans) return Decision::kShedQueueFull;
  Waiter w;
  w.id = waiter_id;
  w.enqueued_at = now;
  w.deadline = opts_.queue_wait_timeout_ms > 0
                   ? now + Timestamp{opts_.queue_wait_timeout_ms} * 1000
                   : 0;
  queue_.push_back(w);
  return Decision::kQueued;
}

bool AdmissionController::ChargeScannedRows(int64_t tenant, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  const TenantQuota* q = QuotaFor(tenant);
  if (q == nullptr || q->scanned_rows_per_sec <= 0) return true;
  const Timestamp now = clock_->Now();
  Bucket& b = BucketFor(tenant, *q, now);
  b.row_tokens -= static_cast<double>(n);
  return b.row_tokens >= 0;
}

void AdmissionController::Release(std::vector<Departure>* granted) {
  std::lock_guard<std::mutex> lock(mu_);
  const Timestamp now = clock_->Now();
  if (active_ > 0) active_--;
  // FIFO: hand freed slots to the head of the wait queue. A loop rather
  // than a single grant so a shrinking active count can never strand
  // waiters while slots sit idle.
  while (!queue_.empty() &&
         (opts_.max_concurrent_scans == 0 ||
          active_ < opts_.max_concurrent_scans)) {
    const Waiter& w = queue_.front();
    granted->push_back({w.id, std::max<Timestamp>(0, now - w.enqueued_at)});
    queue_.pop_front();
    active_++;
  }
}

bool AdmissionController::CancelWaiter(uint64_t waiter_id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == waiter_id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void AdmissionController::ExpireWaiters(std::vector<Departure>* expired) {
  std::lock_guard<std::mutex> lock(mu_);
  if (opts_.queue_wait_timeout_ms <= 0 || queue_.empty()) return;
  const Timestamp now = clock_->Now();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->deadline > 0 && now >= it->deadline) {
      expired->push_back(
          {it->id, std::max<Timestamp>(0, now - it->enqueued_at)});
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

size_t AdmissionController::active_scans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

size_t AdmissionController::queued_scans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace lt
