// Wire protocol between the LittleTable server and its clients (§3.1).
//
// The paper's clients load a custom adaptor into SQLite's virtual-table
// interface; internally that adaptor speaks a binary protocol over a
// persistent TCP connection to the server — listing tables, fetching each
// table's schema and sort order, and performing inserts and queries. This
// header defines that protocol.
//
// Framing: every message is [fixed32 payload_length][payload], where the
// payload begins with a one-byte message type. Row and bounds encodings are
// schema-dependent, so requests carry the schema version the client encoded
// against; the server answers kErrSchemaChanged when stale and the client
// refreshes its cached schema and retries.
//
// Durability surface (§3.1): there is deliberately NO acknowledgement that
// an insert reached stable storage — the server replies as soon as rows are
// in an in-memory tablet. Clients detect server crashes via disconnection
// and re-read recent data from their devices.
#ifndef LITTLETABLE_NET_WIRE_H_
#define LITTLETABLE_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/bounds.h"
#include "core/schema.h"

namespace lt {
namespace wire {

enum class MsgType : uint8_t {
  // Requests.
  kPing = 1,
  kListTables = 2,
  kGetTable = 3,      // body: name
  kCreateTable = 4,   // body: name, schema, ttl
  kDropTable = 5,     // body: name
  kInsert = 6,        // body: name, schema version, row count, rows
  kQuery = 7,         // body: name, schema version, bounds
  kLatestRow = 8,     // body: name, schema version, prefix
  kFlushThrough = 9,  // body: name, ts (§4.1.2 extension)
  kAppendColumn = 10, // body: name, column
  kWidenColumn = 11,  // body: name, column name
  kSetTtl = 12,       // body: name, ttl
  kStats = 13,        // body: name ("" = server-wide counters only)
  kStatsV2 = 14,      // body: name ("" = server-wide); adds histograms

  // Cluster requests (src/cluster). A server without a cluster extension
  // handler answers these with kBadRequest; the coordinator and replica
  // agents install handlers via ServerOptions::extension.
  kGetShardMap = 15,   // body: empty; answered with kShardMapResult
  kAssignShard = 16,   // body: group, epoch, role byte, peer host, peer port
  kRoutedInsert = 17,  // body: group, epoch, then a kInsert body
  kRoutedQuery = 18,   // body: group, epoch, then a full read-op payload
                       //       (type byte + body: kQuery/kLatestRow/
                       //       kGetTable/kFlushThrough)
  kRoutedCreate = 19,  // body: group, epoch, then a kCreateTable body
  kReplicateRows = 20, // body: group, epoch, stream, floor, first_seq,
                       //       count, entries (redo window shipping)
  kShipTablet = 21,    // body: group, epoch, table, tablet meta, crc32c,
                       //       payload (whole immutable tablet file)
  kTabletSetSync = 22, // body: group, epoch, stream, redo floor, per-table
                       //       authoritative tablet lists; prunes extras

  // Overload control (PR 10).
  kCancel = 23,        // body: empty. Aborts the connection's in-flight
                       //       streaming query (the query answers kError/
                       //       kCancelled as its terminal frame); a no-op
                       //       kOk when nothing is in flight. Handled
                       //       out-of-band at decode time so it overtakes
                       //       the very scan it aborts.
  kSetTenant = 24,     // body: varint64 ConfigStore network id. Binds the
                       //       connection to a tenant for per-tenant
                       //       quota accounting; 0 clears the binding.

  // Responses.
  kOk = 64,
  kError = 65,       // body: code byte, message
  kTableList = 66,   // body: count, names
  kTableInfo = 67,   // body: schema, ttl
  kQueryChunk = 68,  // body: flags, schema version, row count, rows
  kRowResult = 69,   // body: found byte, schema version, row
  kStatsResult = 70, // body: count, then (name, varint64 value) pairs
  // kStats's counter section followed by latency histograms: varint32
  // count, then per histogram (name, varint64 count, p50, p90, p99, p999,
  // max — all microseconds). Old servers answer kStatsV2 with kError
  // (unknown message type); old clients simply never send kStatsV2, so
  // both directions stay backward compatible.
  kStatsV2Result = 71,
  kShardMapResult = 72,  // body: encoded cluster::ShardMap
  // Body: varint64 contiguously-stored redo head. A kTabletSetSync reply
  // additionally appends the secondary's authoritative per-table tablet
  // lists (varint32 table count, then per table: len-prefixed name,
  // varint32 file count, per file: len-prefixed filename, varint64
  // file_bytes, varint64 row_count) so the primary's peer picture
  // self-heals after a secondary restart.
  kRedoAck = 73,
};

/// Error codes carried by kError.
enum class ErrCode : uint8_t {
  kGeneric = 0,
  kNotFound = 1,
  kAlreadyExists = 2,
  kInvalidArgument = 3,
  kSchemaChanged = 4,  // Client must refetch the table schema and retry.
  kCorruption = 5,
  kIOError = 6,
  kServerBusy = 7,     // Connection cap reached or ingest backlogged; retry
                       // with backoff.
  kShuttingDown = 8,   // Server is draining; reconnect elsewhere/later.
  kBadRequest = 9,     // Malformed frame: unknown opcode byte. The request
                       // was never dispatched; retrying it verbatim fails
                       // the same way.
  kWrongShard = 10,    // Routed request hit a node that is not the current
                       // primary for that (group, epoch): the client must
                       // refetch the shard map and retry.
  kResourceExhausted = 11,  // Load shed: a per-tenant quota ran dry or the
                            // admission wait queue is full. Retryable
                            // after backoff, like kServerBusy, but names
                            // the cause so clients can distinguish "this
                            // tenant is over its budget" from "the server
                            // is busy".
  kCancelled = 12,     // The request was aborted by a kCancel from the
                       // same connection (terminal frame of the cancelled
                       // query). Not retryable: the caller asked for it.
};

/// kQueryChunk flags.
constexpr uint8_t kChunkFinal = 0x1;          // Last chunk of this query.
constexpr uint8_t kChunkMoreAvailable = 0x2;  // Server row limit was hit.

/// Sentinel "client omitted the timestamp" value: the server replaces it
/// with the current time (§3.1).
constexpr Timestamp kOmittedTimestamp = INT64_MIN;

/// Maximum accepted frame payload (defensive bound).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

// ---- Frame assembly. Payload = type byte + body. ----

/// Builds a complete frame (length prefix + type + body).
std::string Frame(MsgType type, const std::string& body);

// ---- Body encodings. ----

void EncodeBounds(std::string* dst, const Schema& schema,
                  const QueryBounds& bounds);
Status DecodeBounds(Slice* in, const Schema& schema, QueryBounds* out);

/// Key prefixes (used by bounds and latest-row requests).
void EncodeKeyPrefix(std::string* dst, const Schema& schema, const Key& key);
Status DecodeKeyPrefix(Slice* in, const Schema& schema, Key* out);

/// Status <-> wire error mapping.
ErrCode CodeForStatus(const Status& s);
Status StatusForCode(ErrCode code, const std::string& message);

}  // namespace wire
}  // namespace lt

#endif  // LITTLETABLE_NET_WIRE_H_
