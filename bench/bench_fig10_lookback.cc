// Figure 10 reproduction: query lookback vs. row TTL distributions.
//
// Paper (§5.2.5): the pair of CDFs that justifies two-dimensional
// clustering. Over 90% of requests to a representative Dashboard page ask
// only for data from the most recent week, yet most tables retain rows for
// a year or longer (TTLs are set by available disk, not by demand).
// Clustering by timestamp keeps the hot recent data co-located (and cached)
// while old data costs nothing but disk space.
//
// The reproduction samples a Dashboard-like query generator (debugging
// looks at the last hour or two; monthly/annual reporting reaches further
// back — §3.4.2's "anthropocentric ranges") and a TTL catalog shaped like
// §5.2.5's description, then prints both CDFs.
#include <cstdio>

#include "bench/bench_util.h"
#include "util/histogram.h"

int main() {
  using namespace lt;
  using namespace lt::bench;
  PrintHeader("Figure 10", "Query lookback vs. row TTL distributions");

  Random rng(10);

  // Query lookbacks: mixture of debugging (minutes-hours), daily/weekly
  // graphs, and rare deep forensics/reporting.
  Samples lookback_days;
  for (int i = 0; i < 20000; i++) {
    double kind = rng.NextDouble();
    double days;
    if (kind < 0.45) {
      days = (5 + rng.Uniform(115)) / (24.0 * 60);        // 5..120 minutes.
    } else if (kind < 0.75) {
      days = (1 + rng.Uniform(24)) / 24.0;                // 1..24 hours.
    } else if (kind < 0.92) {
      days = 1 + rng.Uniform(7);                          // 1..7 days.
    } else if (kind < 0.985) {
      days = 7 + rng.Uniform(24);                         // 1..4+ weeks.
    } else {
      days = 31 + rng.Uniform(360);                       // Forensics.
    }
    lookback_days.Add(days);
  }

  // Row TTLs per table: most tables retain a year or more, trimmed only by
  // disk space; a minority of high-volume source tables age out sooner.
  Samples ttl_days;
  for (int i = 0; i < 270; i++) {
    double kind = rng.NextDouble();
    double days;
    if (kind < 0.12) {
      days = 14 + rng.Uniform(76);          // High-volume sources: 2-13 weeks.
    } else if (kind < 0.3) {
      days = 180 + rng.Uniform(185);        // ~6-12 months.
    } else {
      days = 365 + rng.Uniform(420);        // A year or (much) longer.
    }
    ttl_days.Add(days);
  }

  double week_frac = lookback_days.CdfAt(7.0);
  printf("\nqueries within 1 week of now: %.1f%% (paper: >90%%)\n",
         100 * week_frac);
  printf("tables retaining >= 1 year: %.1f%% (paper: 'most tables')\n\n",
         100 * (1.0 - ttl_days.CdfAt(364.9)));

  printf("%-14s %-22s %-18s\n", "horizon", "query lookback CDF",
         "row TTL CDF");
  struct Point {
    const char* label;
    double days;
  };
  const Point kPoints[] = {{"1 day", 1},        {"3 days", 3},
                           {"1 week", 7},       {"2 weeks", 14},
                           {"1 month", 30},     {"3 months", 91},
                           {"6 months", 182},   {"13 months", 396},
                           {"26 months", 792}};
  for (const Point& p : kPoints) {
    printf("%-14s %-22.3f %-18.3f\n", p.label, lookback_days.CdfAt(p.days),
           ttl_days.CdfAt(p.days));
  }
  return 0;
}
