// Appendix reproduction: the merge policy's two logarithmic bounds.
//
// The appendix proves that merging the first adjacent pair (t_i, t_{i+1})
// with |t_i| <= 2|t_{i+1}| (plus any newer adjacent tablets) leaves
// O(log T) tablets when no merge applies, and rewrites any one row at most
// O(log T) times. This bench runs the real PickMerge policy over growing
// flush streams and prints both measured quantities next to log2(T).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "core/merge_policy.h"

namespace lt {
namespace bench {
namespace {

struct SimResult {
  size_t final_tablets;
  int max_rewrites;
};

SimResult RunMergeSim(size_t n_flushes, Random* rng) {
  Timestamp now = 2000 * kMicrosPerWeek;
  Timestamp base = now - 100 * kMicrosPerWeek;  // One deep-past week bin.
  MergePolicyOptions opts;
  opts.min_tablet_age = 0;
  opts.rollover_delay_frac = 0;
  opts.max_merged_bytes = UINT64_MAX;

  struct Sim {
    uint64_t bytes;
    int rewrites;
  };
  std::vector<TabletMeta> metas;
  std::vector<Sim> sims;
  int name = 0;
  int max_rewrites = 0;
  for (size_t i = 0; i < n_flushes; i++) {
    TabletMeta meta;
    meta.filename = std::to_string(name++);
    meta.min_ts = base + static_cast<Timestamp>(i) * 100;
    meta.max_ts = meta.min_ts + 50;
    meta.file_bytes = 1 + (rng ? rng->Uniform(16) : 0);
    meta.row_count = meta.file_bytes;
    meta.flushed_at = now;
    metas.push_back(meta);
    sims.push_back(Sim{meta.file_bytes, 0});
    while (true) {
      MergePick pick = PickMerge(metas, now, "bench", opts);
      if (!pick.valid()) break;
      uint64_t total = 0;
      int rewrites = 0;
      for (size_t j = pick.begin; j < pick.end; j++) {
        total += sims[j].bytes;
        rewrites = std::max(rewrites, sims[j].rewrites);
      }
      TabletMeta merged;
      merged.filename = std::to_string(name++);
      merged.min_ts = metas[pick.begin].min_ts;
      merged.max_ts = metas[pick.end - 1].max_ts;
      merged.file_bytes = total;
      merged.row_count = total;
      merged.flushed_at = now;
      metas.erase(metas.begin() + pick.begin, metas.begin() + pick.end);
      sims.erase(sims.begin() + pick.begin, sims.begin() + pick.end);
      metas.insert(metas.begin() + pick.begin, merged);
      sims.insert(sims.begin() + pick.begin, Sim{total, rewrites + 1});
      max_rewrites = std::max(max_rewrites, rewrites + 1);
    }
  }
  return SimResult{metas.size(), max_rewrites};
}

}  // namespace
}  // namespace bench
}  // namespace lt

int main() {
  using namespace lt;
  using namespace lt::bench;
  PrintHeader("Appendix", "Merge policy: tablets and rewrites are O(log T)");
  printf("%-12s %-10s %-16s %-14s %-14s\n", "flushes", "log2(T)",
         "final tablets", "max rewrites", "sizes");

  for (size_t n : {64u, 256u, 1024u, 4096u, 16384u, 65536u}) {
    SimResult uniform = RunMergeSim(n, nullptr);
    Random rng(n);
    SimResult random = RunMergeSim(n, &rng);
    double log_t = std::log2(static_cast<double>(n));
    printf("%-12zu %-10.1f %-16zu %-14d uniform\n", n, log_t,
           uniform.final_tablets, uniform.max_rewrites);
    printf("%-12s %-10s %-16zu %-14d random\n", "", "", random.final_tablets,
           random.max_rewrites);
  }
  printf("\nboth columns should grow ~linearly in log2(T), never faster.\n");
  return 0;
}
