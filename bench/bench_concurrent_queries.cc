// Mixed-load latency benchmark for the overload-resilience work (PR 10).
//
// The workload is the CPE shape that motivated admission control: a few
// "reporting" clients run full-table scans whose results dwarf the
// per-query byte budget, while many "interactive" clients run small
// point-prefix queries and care about tail latency. Without admission
// slots, every scan grabs a worker thread and a materialized result at
// once, and interactive p99 rides on the scans' coattails; with the
// streaming executor plus a small concurrent-scan cap, scans queue and
// stream within the budget while interactive queries keep a worker free.
//
// Runs the real server over SimTransport and reports interactive-query
// p50/p99/max plus scan throughput for two configurations of the same
// binary:
//
//   baseline   unlimited concurrent scans, effectively unbounded budget
//              (the pre-PR posture)
//   governed   max_concurrent_scans bounded + small streaming byte budget
//
// `--smoke` shrinks the row counts and iteration counts to a seconds-scale
// sanity pass (registered in tier-1 ctest) and exits nonzero if either
// configuration fails to complete its workload or sheds anything — the
// governed run is sized so queues form but never overflow.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/sim_transport.h"

namespace {

using namespace lt;

bool smoke = false;

Schema EventsSchema() {
  return Schema({Column("device", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("bytes", ColumnType::kInt64),
                 Column("payload", ColumnType::kBlob)},
                /*num_key_columns=*/2);
}

struct RunResult {
  std::vector<int64_t> interactive_micros;  // One entry per point query.
  uint64_t scans_done = 0;
  uint64_t scan_rows = 0;
  uint64_t errors = 0;
  double wall_ms = 0;
};

struct RunConfig {
  const char* name;
  size_t max_concurrent_scans;  // 0 = unlimited (baseline).
  size_t query_budget_bytes;    // 0 = server default.
};

// Stands up a fresh DB + server, preloads `devices * rows_per_device`
// rows, then runs scanner and interactive client threads to completion.
RunResult RunOne(const RunConfig& cfg, int devices, int rows_per_device,
                 int scanners, int scans_each, int interactive,
                 int queries_each) {
  RunResult out;
  sim::SimTransport transport;
  MemEnv env;
  auto clock = std::make_shared<SimClock>(100 * kMicrosPerWeek);
  DbOptions dopts;
  dopts.background_maintenance = false;
  std::unique_ptr<DB> db;
  if (!DB::Open(&env, clock, "/srv", dopts, &db).ok()) abort();

  ServerOptions sopts;
  sopts.port = 7610;
  sopts.transport = &transport;
  sopts.admission.max_concurrent_scans = cfg.max_concurrent_scans;
  // Big enough that smoke-sized queues never overflow or time out: this
  // benchmark measures latency shape, not shedding.
  sopts.admission.max_queued_scans = 1024;
  sopts.admission.queue_wait_timeout_ms = 0;
  if (cfg.query_budget_bytes > 0) {
    sopts.query_budget_bytes = cfg.query_budget_bytes;
  }
  LittleTableServer server(db.get(), sopts);
  if (!server.Start().ok()) abort();

  auto connect = [&] {
    ClientOptions copts;
    copts.transport = &transport;
    copts.clock = clock;
    std::unique_ptr<Client> c;
    if (!Client::Connect("sim", 7610, copts, &c).ok()) abort();
    return c;
  };

  {
    auto loader = connect();
    if (!loader->CreateTable("events", EventsSchema(), 0).ok()) abort();
    Random rng(42);
    std::vector<Row> batch;
    for (int d = 0; d < devices; d++) {
      for (int i = 0; i < rows_per_device; i++) {
        std::string payload(48, '\0');
        for (char& ch : payload) {
          ch = static_cast<char>('a' + rng.Uniform(26));
        }
        batch.push_back({Value::Int64(d), Value::Ts(clock->Now() + i),
                         Value::Int64(i), Value::Blob(std::move(payload))});
        if (batch.size() == 500) {
          if (!loader->Insert("events", batch).ok()) abort();
          batch.clear();
        }
      }
    }
    if (!batch.empty() && !loader->Insert("events", batch).ok()) abort();
  }

  std::atomic<uint64_t> scans_done{0}, scan_rows{0}, errors{0};
  std::vector<std::vector<int64_t>> lat(interactive);
  std::vector<std::thread> threads;
  auto start = std::chrono::steady_clock::now();

  for (int s = 0; s < scanners; s++) {
    threads.emplace_back([&, s] {
      auto c = connect();
      for (int i = 0; i < scans_each; i++) {
        std::vector<Row> rows;
        if (c->QueryAll("events", QueryBounds{}, &rows).ok()) {
          scans_done.fetch_add(1);
          scan_rows.fetch_add(rows.size());
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (int t = 0; t < interactive; t++) {
    threads.emplace_back([&, t] {
      auto c = connect();
      Random rng(1000 + t);
      lat[t].reserve(queries_each);
      for (int i = 0; i < queries_each; i++) {
        Key prefix = {Value::Int64(rng.Uniform(devices))};
        QueryBounds b = QueryBounds::ForPrefix(prefix);
        b.limit = 50;
        QueryResult res;
        auto q0 = std::chrono::steady_clock::now();
        Status st = c->Query("events", b, &res);
        auto q1 = std::chrono::steady_clock::now();
        if (!st.ok()) {
          errors.fetch_add(1);
          continue;
        }
        lat[t].push_back(
            std::chrono::duration_cast<std::chrono::microseconds>(q1 - q0)
                .count());
      }
    });
  }
  for (auto& th : threads) th.join();
  out.wall_ms = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - start)
                    .count() /
                1e3;

  for (auto& v : lat) {
    out.interactive_micros.insert(out.interactive_micros.end(), v.begin(),
                                  v.end());
  }
  std::sort(out.interactive_micros.begin(), out.interactive_micros.end());
  out.scans_done = scans_done.load();
  out.scan_rows = scan_rows.load();
  out.errors = errors.load();
  server.Stop();
  return out;
}

int64_t Pct(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t i = static_cast<size_t>(p * (sorted.size() - 1));
  return sorted[i];
}

}  // namespace

int main(int argc, char** argv) {
  using lt::bench::PrintHeader;
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  const int devices = smoke ? 8 : 32;
  const int rows_per_device = smoke ? 400 : 4000;
  const int scanners = smoke ? 2 : 4;
  const int scans_each = smoke ? 2 : 8;
  const int interactive = smoke ? 4 : 8;
  const int queries_each = smoke ? 50 : 400;

  const RunConfig configs[] = {
      {"baseline", 0, 256 * 1024 * 1024},
      {"governed", 2, 128 * 1024},
  };

  PrintHeader("Concurrent queries",
              "Interactive tail latency under scan load, before/after "
              "admission control");
  printf("(%d scanners x %d full scans over %d rows, %d interactive "
         "clients x %d point queries)\n\n",
         scanners, scans_each, devices * rows_per_device, interactive,
         queries_each);
  printf("%-10s %-10s %-10s %-10s %-10s %-10s %-8s %-10s\n", "config",
         "p50 us", "p99 us", "max us", "queries", "scans", "errors",
         "wall ms");

  bool ok = true;
  for (const RunConfig& cfg : configs) {
    RunResult r = RunOne(cfg, devices, rows_per_device, scanners,
                         scans_each, interactive, queries_each);
    printf("%-10s %-10lld %-10lld %-10lld %-10zu %-10llu %-8llu %-10.1f\n",
           cfg.name,
           static_cast<long long>(Pct(r.interactive_micros, 0.50)),
           static_cast<long long>(Pct(r.interactive_micros, 0.99)),
           static_cast<long long>(
               r.interactive_micros.empty() ? 0 : r.interactive_micros.back()),
           r.interactive_micros.size(),
           static_cast<unsigned long long>(r.scans_done),
           static_cast<unsigned long long>(r.errors), r.wall_ms);
    const uint64_t want_queries =
        static_cast<uint64_t>(interactive) * queries_each;
    const uint64_t want_scans =
        static_cast<uint64_t>(scanners) * scans_each;
    if (r.errors != 0 || r.interactive_micros.size() != want_queries ||
        r.scans_done != want_scans) {
      fprintf(stderr,
              "FAIL(%s): errors=%llu queries=%zu/%llu scans=%llu/%llu — "
              "mixed load must complete without shedding at this size\n",
              cfg.name, static_cast<unsigned long long>(r.errors),
              r.interactive_micros.size(),
              static_cast<unsigned long long>(want_queries),
              static_cast<unsigned long long>(r.scans_done),
              static_cast<unsigned long long>(want_scans));
      ok = false;
    }
  }
  printf("\n(governed: scans bounded to 2 slots and a 128 KB streaming "
         "budget; baseline: unlimited)\n");
  return ok ? 0 : 1;
}
