// Shared harness for the paper-reproduction benchmarks.
//
// The paper's microbenchmarks (§5.1.1) run on a single 7,200 RPM spindle:
// ~120 MB/s sequential, ~8 ms seek, with caches dropped between runs, rows
// of 32-bit integers padded to a target size with xorshift-random (and thus
// incompressible) bytes, and six key columns.
//
// This harness reproduces the setup on any machine by running the engine on
// a MemEnv wrapped in SimDiskEnv (see env/sim_disk_env.h). Reported times
// combine the two serial components of our implementation:
//
//     elapsed = real CPU time + simulated disk time
//
// which is accurate because the engine performs its I/O synchronously on
// the calling thread — time the disk model charges is time a real spindle
// would have kept that thread waiting. The simulated clock is advanced in
// step with elapsed time so age-based flushes, the 90-second merge delay,
// and TTLs all run at the same *relative* cadence as the paper's runs.
//
// Absolute numbers will not match the paper's hardware; the shapes — who
// wins, where curves level off, how costs scale with tablet count — are the
// reproduction target (see EXPERIMENTS.md).
#ifndef LITTLETABLE_BENCH_BENCH_UTIL_H_
#define LITTLETABLE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <memory>
#include <string>

#include "core/db.h"
#include "env/mem_env.h"
#include "env/sim_disk_env.h"
#include "util/random.h"

namespace lt {
namespace bench {

/// The paper's disk parameters.
constexpr int64_t kDiskSeekMicros = 8000;
constexpr int64_t kDiskBytesPerSec = 120 * 1000 * 1000;

/// One benchmark environment: engine + simulated spindle + virtual clock.
class BenchEnv {
 public:
  explicit BenchEnv(SimDiskOptions disk_options = DefaultDisk(),
                    DbOptions db_options = DefaultDb());

  static SimDiskOptions DefaultDisk();
  static DbOptions DefaultDb();

  DB* db() { return db_.get(); }
  SimDiskEnv* disk() { return &sim_; }
  SimClock* clock() { return clock_.get(); }
  const std::shared_ptr<SimClock>& clock_ptr() { return clock_; }

  /// Starts (or restarts) the combined timer.
  void StartTimer();
  /// Stops the timer and returns combined elapsed microseconds
  /// (CPU + simulated disk); also advances the virtual clock by that much.
  int64_t StopTimerMicros();

  /// Drops the simulated page/drive caches (the paper clears caches before
  /// each run).
  void ClearCaches() { sim_.ClearCaches(); }

  /// Advances virtual time without charging benchmark time.
  void AdvanceClock(Timestamp micros) { clock_->Advance(micros); }

  /// Tears down and reopens the DB (for cold-cache/restart measurements).
  Status ReopenDb();

 private:
  MemEnv mem_;
  SimDiskEnv sim_;
  std::shared_ptr<SimClock> clock_;
  DbOptions db_options_;
  std::unique_ptr<DB> db_;
  std::chrono::steady_clock::time_point cpu_start_;
  int64_t disk_start_ = 0;
};

/// The §5.1.1 microbenchmark schema: six key columns (five int64 dimensions
/// + ts) and one blob payload column.
Schema MicroSchema();

/// A row for MicroSchema with incompressible payload sized so the encoded
/// row is ~`row_bytes`. `key` spreads across the five key dimensions.
Row MicroRow(Random* rng, uint64_t key, Timestamp ts, size_t row_bytes);

/// Encoded size of a MicroRow (for MB/s accounting).
size_t MicroRowBytes(const Schema& schema, const Row& row);

/// Prints the standard benchmark banner.
void PrintHeader(const std::string& figure, const std::string& description);

}  // namespace bench
}  // namespace lt

#endif  // LITTLETABLE_BENCH_BENCH_UTIL_H_
