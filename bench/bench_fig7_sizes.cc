// Figure 7 reproduction: distribution of PostgreSQL and LittleTable sizes
// across production shards.
//
// Paper (§5.2.1): shards are split when their PostgreSQL size exceeds RAM
// or LittleTable data fills the disks, so LittleTable stores ~20x more than
// PostgreSQL — roughly the disk:RAM ratio of the servers. As of January
// 2017: 320 TB total LittleTable (largest instance 6.7 TB) vs. 14 TB total
// PostgreSQL (largest 341 GB), across several hundred shards.
//
// This is a characterization of the deployment, not of the engine, so the
// reproduction draws a synthetic shard population from a log-normal-ish
// model calibrated to the paper's published aggregates and prints the same
// CDF and summary statistics. (See DESIGN.md substitution #4.)
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "util/histogram.h"

int main() {
  using namespace lt;
  using namespace lt::bench;
  PrintHeader("Figure 7",
              "Distribution of PostgreSQL and LittleTable sizes per shard");

  const int kShards = 400;  // "several hundred LittleTable servers".
  Random rng(20170104);

  Samples lt_sizes_tb, pg_sizes_gb;
  // Shard LittleTable sizes: mixture of mostly-moderate shards with a heavy
  // tail, scaled so the total is ~320 TB and the max ~6.7 TB.
  for (int i = 0; i < kShards; i++) {
    // Sum of three uniforms approximates a bell; exponentiate for skew.
    double u = (rng.NextDouble() + rng.NextDouble() + rng.NextDouble()) / 3.0;
    double tb = 0.08 * std::exp(4.4 * u);  // ~0.08 .. ~6.5 TB.
    lt_sizes_tb.Add(tb);
    // PostgreSQL is kept under RAM: ~1/20 of LittleTable with its own
    // variation, capped near the 341 GB maximum.
    double gb = tb * 1000.0 / 20.0 * (0.6 + 0.8 * rng.NextDouble());
    if (gb > 341) gb = 341;
    pg_sizes_gb.Add(gb);
  }

  double lt_total = 0, pg_total = 0;
  for (double v : lt_sizes_tb.values()) lt_total += v;
  for (double v : pg_sizes_gb.values()) pg_total += v;

  printf("\nshards: %d\n", kShards);
  printf("LittleTable total: %.0f TB (paper: 320 TB), max shard %.1f TB "
         "(paper: 6.7 TB)\n", lt_total, lt_sizes_tb.Max());
  printf("PostgreSQL  total: %.1f TB (paper: 14 TB), max shard %.0f GB "
         "(paper: 341 GB)\n", pg_total / 1000.0, pg_sizes_gb.Max());
  printf("LT:PG ratio: %.1fx (paper: ~20x, the servers' disk:RAM ratio)\n\n",
         lt_total * 1000.0 / pg_total);

  printf("%-12s %-22s %-22s\n", "CDF", "LittleTable (TB)", "PostgreSQL (GB)");
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    printf("%-12.2f %-22.2f %-22.1f\n", q, lt_sizes_tb.Quantile(q),
           pg_sizes_gb.Quantile(q));
  }
  return 0;
}
