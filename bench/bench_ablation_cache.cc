// Ablation: the sharded LRU block cache on the scan path.
//
// §3.5 charges every block access one seek plus a CRC check and an lzmini
// decompress — even when a dashboard re-reads the same hot tablet every few
// seconds. The block cache keeps verified, decompressed blocks in memory so
// repeat reads skip all three. This bench writes one ~16 MB tablet, then
// re-scans it 20 times with the OS page cache dropped before every pass
// (the dashboard-under-memory-pressure case the paper's §5.1.1 methodology
// models with explicit cache drops), sweeping the cache capacity:
//
//   0      — every scan pays full simulated disk + decompress
//   4 MB   — cache smaller than the working set: a sequential scan evicts
//            each block before coming back around (classic LRU thrash)
//   64 MB  — the whole tablet stays resident after the first pass
#include <cstdio>

#include "bench/bench_util.h"

namespace lt {
namespace bench {
namespace {

constexpr int kRows = 32 * 1024;
constexpr size_t kRowBytes = 512;  // ~16 MB of incompressible row data.
constexpr int kScans = 20;

struct AblationResult {
  double rows_per_sec;
  double hit_rate;
  uint64_t evictions;
  int64_t seeks;
};

AblationResult Run(uint64_t cache_bytes) {
  DbOptions dopts = BenchEnv::DefaultDb();
  dopts.block_cache_bytes = cache_bytes;
  BenchEnv env(BenchEnv::DefaultDisk(), dopts);

  TableOptions topts;
  topts.flush_bytes = 1ull << 40;  // One flush -> one tablet.
  topts.bloom_bits_per_key = 0;
  if (!env.db()->CreateTable("scan", MicroSchema(), &topts).ok()) abort();
  auto table = env.db()->GetTable("scan");

  Random rng(42);
  Timestamp base = env.clock()->Now();
  std::vector<Row> batch;
  for (int i = 0; i < kRows; i++) {
    batch.push_back(MicroRow(&rng, i, base + i, kRowBytes));
    if (batch.size() == 1024) {
      if (!table->InsertBatch(batch).ok()) abort();
      batch.clear();
    }
  }
  if (!table->FlushAll().ok()) abort();

  int64_t seeks_before = env.disk()->seek_count();
  env.StartTimer();
  for (int scan = 0; scan < kScans; scan++) {
    // Drop the simulated page cache before every pass: block reads that
    // miss the block cache pay real (simulated) disk time each time.
    env.ClearCaches();
    QueryBounds bounds;
    bounds.limit = kRows;
    QueryResult result;
    if (!table->Query(bounds, &result).ok() ||
        result.rows.size() != static_cast<size_t>(kRows)) {
      abort();
    }
  }
  int64_t micros = env.StopTimerMicros();

  AblationResult r;
  r.rows_per_sec =
      static_cast<double>(kScans) * kRows / (static_cast<double>(micros) / 1e6);
  r.hit_rate = table->stats().BlockCacheHitRate();
  r.evictions = env.db()->block_cache()
                    ? env.db()->block_cache()->GetStats().evictions
                    : 0;
  r.seeks = env.disk()->seek_count() - seeks_before;
  return r;
}

void Report(const char* label, const AblationResult& r) {
  printf("%-10s %-14.0f %-10.1f %-11llu %-8lld\n", label, r.rows_per_sec,
         100.0 * r.hit_rate, static_cast<unsigned long long>(r.evictions),
         static_cast<long long>(r.seeks));
}

}  // namespace
}  // namespace bench
}  // namespace lt

int main() {
  using namespace lt::bench;
  PrintHeader("Ablation: block cache capacity on the re-scan path",
              "20 full scans of one ~16 MB tablet, page cache dropped "
              "between passes");
  printf("%-10s %-14s %-10s %-11s %-8s\n", "cache", "rows/s", "hit %",
         "evictions", "seeks");
  AblationResult none = Run(0);
  Report("off", none);
  AblationResult small = Run(4ull << 20);
  Report("4 MB", small);
  AblationResult big = Run(64ull << 20);
  Report("64 MB", big);
  printf("\nspeedup 64 MB vs off: %.1fx (hit rate %.1f%%)\n",
         big.rows_per_sec / none.rows_per_sec, 100.0 * big.hit_rate);
  return 0;
}
