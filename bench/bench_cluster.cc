// Replication-cost benchmark for the cluster layer (src/cluster).
//
// Three questions, answered on SimTransport so the numbers are CPU cost,
// not kernel scheduling noise:
//
//   1. What does routing cost? Insert throughput through ClusterClient
//      (coordinator map fetch + routed frames + redo buffering on the
//      primary) vs. a plain Client against a bare server.
//   2. What does a ship round cost? ShipOnce wall time as the backlog
//      since the last round grows — the redo tail replication, the flush,
//      and the whole-tablet copies.
//   3. How fast is failover? Simulated time and probe rounds from primary
//      death to a promoted, serving secondary.
//
// Usage: bench_cluster [--rows=N]   (default 20000 rows per phase)
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/agent.h"
#include "cluster/cluster_client.h"
#include "cluster/coordinator.h"
#include "cluster/shard_map.h"
#include "core/db.h"
#include "env/mem_env.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/sim_transport.h"

using namespace lt;

namespace {

constexpr Timestamp kEpoch = Timestamp{1700000000} * 1000000;

Schema DevSchema() {
  return Schema({Column("device", ColumnType::kInt64),
                 Column("ts", ColumnType::kTimestamp),
                 Column("v", ColumnType::kDouble)},
                /*num_key_columns=*/2);
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Cluster {
  std::shared_ptr<SimClock> clock;
  std::unique_ptr<sim::SimTransport> transport;
  MemEnv env_a, env_b;
  std::unique_ptr<DB> db_a, db_b;
  std::unique_ptr<cluster::ReplicaAgent> agent_a, agent_b;
  std::unique_ptr<cluster::Coordinator> coord;
  std::unique_ptr<cluster::ClusterClient> router;

  bool Up() {
    clock = std::make_shared<SimClock>(kEpoch);
    sim::SimTransportOptions topts;
    topts.clock = clock;
    transport = std::make_unique<sim::SimTransport>(topts);

    DbOptions dopts;
    dopts.background_maintenance = false;
    dopts.logger = std::make_shared<Logger>(
        LogLevel::kError, std::make_shared<CaptureLogSink>());
    if (!DB::Open(&env_a, clock, "node", dopts, &db_a).ok()) return false;
    if (!DB::Open(&env_b, clock, "node", dopts, &db_b).ok()) return false;

    auto start_agent = [&](DB* db, const char* name, uint16_t port,
                           std::unique_ptr<cluster::ReplicaAgent>* out) {
      cluster::AgentOptions aopts;
      aopts.port = port;
      aopts.transport = transport->ForNode(name);
      aopts.client.clock = clock;
      aopts.redo_window = 1 << 20;  // Never the bottleneck here.
      *out = std::make_unique<cluster::ReplicaAgent>(db, aopts);
      return (*out)->Start().ok();
    };
    if (!start_agent(db_a.get(), "a", 9001, &agent_a)) return false;
    if (!start_agent(db_b.get(), "b", 9002, &agent_b)) return false;

    cluster::CoordinatorOptions copts;
    copts.port = 9000;
    copts.transport = transport->ForNode("coord");
    copts.client.clock = clock;
    coord = std::make_unique<cluster::Coordinator>(copts);
    coord->AddGroup(0, 0, UINT64_MAX, {"a", 9001}, {"b", 9002});
    if (!coord->Start().ok()) return false;
    coord->ProbeOnce();

    cluster::ClusterClientOptions ccopts;
    ccopts.transport = transport->ForNode("client");
    ccopts.client.clock = clock;
    ccopts.client.backoff_sleep = [this](int64_t ms) {
      clock->Advance(ms * 1000);
      coord->ProbeOnce();
    };
    return cluster::ClusterClient::Connect("coord", 9000, ccopts, &router)
        .ok();
  }
};

std::vector<Row> Batch(int64_t base, int n) {
  std::vector<Row> rows;
  rows.reserve(n);
  for (int i = 0; i < n; i++) {
    rows.push_back({Value::Int64(1 + (base + i) % 64),
                    Value::Ts(kEpoch + (base + i) * 1000),
                    Value::Double(i * 0.5)});
  }
  return rows;
}

void BenchRouting(int total_rows) {
  const int kBatch = 100;

  // Baseline: plain client against a bare single-node server.
  MemEnv env;
  auto clock = std::make_shared<SimClock>(kEpoch);
  sim::SimTransportOptions topts;
  topts.clock = clock;
  sim::SimTransport transport(topts);
  DbOptions dopts;
  dopts.background_maintenance = false;
  std::unique_ptr<DB> db;
  if (!DB::Open(&env, clock, "solo", dopts, &db).ok()) return;
  ServerOptions sopts;
  sopts.port = 9100;
  sopts.transport = transport.ForNode("srv");
  LittleTableServer server(db.get(), sopts);
  if (!server.Start().ok()) return;
  ClientOptions copts;
  copts.clock = clock;
  copts.transport = transport.ForNode("cli");
  std::unique_ptr<Client> plain;
  if (!Client::Connect("srv", 9100, copts, &plain).ok()) return;
  if (!plain->CreateTable("dev", DevSchema(), 0).ok()) return;

  int64_t t0 = NowMicros();
  for (int done = 0; done < total_rows; done += kBatch) {
    if (!plain->Insert("dev", Batch(done, kBatch)).ok()) return;
  }
  const double plain_us = static_cast<double>(NowMicros() - t0);

  // Routed: same workload through the cluster stack.
  Cluster c;
  if (!c.Up()) return;
  if (!c.router->CreateTable("dev", DevSchema(), 0).ok()) return;
  t0 = NowMicros();
  for (int done = 0; done < total_rows; done += kBatch) {
    if (!c.router->Insert("dev", Batch(done, kBatch)).ok()) return;
  }
  const double routed_us = static_cast<double>(NowMicros() - t0);

  printf("routing overhead (%d rows, batches of %d)\n", total_rows, kBatch);
  printf("  %-28s %10.0f rows/s\n", "plain client -> bare server",
         total_rows / (plain_us / 1e6));
  printf("  %-28s %10.0f rows/s  (%.2fx the bare path)\n",
         "ClusterClient -> primary", total_rows / (routed_us / 1e6),
         routed_us / plain_us);
}

void BenchShipRound(int total_rows) {
  Cluster c;
  if (!c.Up()) return;
  if (!c.router->CreateTable("dev", DevSchema(), 0).ok()) return;
  if (!c.agent_a->ShipOnce().ok()) return;

  printf("ship round cost by backlog\n");
  int64_t next = 0;  // Keys must stay unique across rounds (§3.4.4).
  for (int backlog : {1000, 5000, total_rows}) {
    for (int done = 0; done < backlog; done += 500, next += 500) {
      if (!c.router->Insert("dev", Batch(next, 500)).ok()) return;
    }
    const int64_t t0 = NowMicros();
    Status s = c.agent_a->ShipOnce();
    const double us = static_cast<double>(NowMicros() - t0);
    if (!s.ok()) {
      printf("  ship failed: %s\n", s.ToString().c_str());
      return;
    }
    printf("  %-28s %8.1f ms  (%.0f rows/s shipped)\n",
           (std::to_string(backlog) + " rows behind").c_str(), us / 1000.0,
           backlog / (us / 1e6));
    c.clock->Advance(60 * 1000000);  // Age out the memtablets between runs.
  }
}

void BenchFailover() {
  Cluster c;
  if (!c.Up()) return;
  if (!c.router->CreateTable("dev", DevSchema(), 0).ok()) return;
  if (!c.router->Insert("dev", Batch(0, 1000)).ok()) return;
  if (!c.agent_a->ShipOnce().ok()) return;

  // Kill the primary; drive probe rounds at the default cadence until the
  // secondary serves.
  c.transport->ResetNodeConnections("a");
  c.agent_a->Stop();
  const Timestamp dead_at = c.clock->Now();
  int rounds = 0;
  while (c.coord->failovers() == 0 && rounds < 50) {
    c.clock->Advance(500 * 1000);  // Default probe_interval_ms.
    c.coord->ProbeOnce();
    rounds++;
  }
  std::vector<Row> rows;
  const bool serving =
      c.coord->failovers() == 1 &&
      c.router->QueryAll("dev", QueryBounds{}, &rows).ok() &&
      rows.size() == 1000;
  printf("failover\n");
  printf("  %-28s %8.1f s simulated, %d probe rounds, %s\n",
         "primary death -> serving",
         static_cast<double>(c.clock->Now() - dead_at) / 1e6, rounds,
         serving ? "promoted secondary answers with every shipped row"
                 : "FAILED");
}

}  // namespace

int main(int argc, char** argv) {
  int rows = 20000;
  for (int i = 1; i < argc; i++) {
    if (strncmp(argv[i], "--rows=", 7) == 0) rows = atoi(argv[i] + 7);
  }
  if (rows < 1000) rows = 1000;
  BenchRouting(rows);
  BenchShipRound(rows);
  BenchFailover();
  return 0;
}
