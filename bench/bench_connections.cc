// Connection-scaling benchmark for the event-loop server.
//
// The thread-per-connection server needed one OS thread per client, so
// 10k mostly-idle pollers (the CPE fleet shape from §2.1) meant 10k
// threads. The event-loop server holds every connection in one poller and
// executes requests on a fixed worker pool, so the thread count stays
// constant while connections scale.
//
// This benchmark runs the real server over SimTransport (no kernel fd
// limits, no ephemeral-port exhaustion) and sweeps the connection count:
// each connection sends pipelined ping bursts, and we report aggregate
// request throughput plus the process thread count at peak — the number
// that used to grow linearly.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "net/server.h"
#include "net/wire.h"
#include "sim/sim_transport.h"
#include "util/coding.h"

namespace {

// Threads in this process, from /proc (Linux); -1 if unreadable.
int CountThreads() {
  FILE* f = fopen("/proc/self/status", "r");
  if (!f) return -1;
  char line[256];
  int n = -1;
  while (fgets(line, sizeof(line), f)) {
    if (sscanf(line, "Threads:\t%d", &n) == 1) break;
  }
  fclose(f);
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lt;
  using namespace lt::bench;
  std::vector<size_t> sweep = {1000, 5000, 10000};
  for (int i = 1; i < argc; i++) {
    if (strcmp(argv[i], "--full") == 0) sweep.push_back(100000);
  }
  constexpr int kPipelineDepth = 4;  // Pings per burst, per connection.
  constexpr int kWaves = 2;

  PrintHeader("Connections", "Request throughput vs. simulated connections");
  printf("(event-loop server, %d worker threads; pipelined pings, depth %d)\n\n",
         4, kPipelineDepth);
  printf("%-12s %-12s %-14s %-14s %-10s\n", "connections", "requests",
         "wall ms", "req/s", "threads");

  const int threads_baseline = CountThreads();
  for (size_t n : sweep) {
    sim::SimTransport transport;
    MemEnv env;
    auto clock = std::make_shared<SimClock>(100 * kMicrosPerWeek);
    DbOptions dopts;
    dopts.background_maintenance = false;
    std::unique_ptr<DB> db;
    if (!DB::Open(&env, clock, "/srv", dopts, &db).ok()) abort();

    ServerOptions sopts;
    sopts.port = 7600;
    sopts.transport = &transport;
    sopts.max_connections = 0;  // The sweep is the cap experiment.
    LittleTableServer server(db.get(), sopts);
    if (!server.Start().ok()) abort();

    std::vector<std::unique_ptr<net::Connection>> conns;
    conns.reserve(n);
    for (size_t i = 0; i < n; i++) {
      std::unique_ptr<net::Connection> c;
      if (!transport.Connect("sim", 7600, 1000, &c).ok()) abort();
      conns.push_back(std::move(c));
    }

    const std::string burst = [&] {
      std::string b;
      for (int i = 0; i < kPipelineDepth; i++) {
        b += wire::Frame(wire::MsgType::kPing, "");
      }
      return b;
    }();

    int threads_peak = 0;
    auto start = std::chrono::steady_clock::now();
    for (int wave = 0; wave < kWaves; wave++) {
      for (auto& c : conns) {
        if (!c->WriteAll(burst.data(), burst.size()).ok()) abort();
      }
      threads_peak = std::max(threads_peak, CountThreads());
      for (auto& c : conns) {
        for (int i = 0; i < kPipelineDepth; i++) {
          char len_buf[4];
          if (!c->ReadAll(len_buf, 4).ok()) abort();
          uint32_t len = DecodeFixed32(len_buf);
          std::string payload(len, '\0');
          if (!c->ReadAll(payload.data(), len).ok()) abort();
          if (static_cast<uint8_t>(payload[0]) !=
              static_cast<uint8_t>(wire::MsgType::kOk)) {
            abort();
          }
        }
      }
    }
    auto wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();

    const size_t requests = n * kPipelineDepth * kWaves;
    printf("%-12zu %-12zu %-14.1f %-14.0f %-10d\n", n, requests,
           wall_us / 1e3, requests / (wall_us / 1e6), threads_peak);

    conns.clear();
    server.Stop();
  }
  printf("\nthreads before any server: %d (fixed pool: thread count does not "
         "scale with connections)\n",
         threads_baseline);
  return 0;
}
